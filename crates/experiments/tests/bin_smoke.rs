//! End-to-end smoke test of the `figures` binary: spawn the real
//! executable at a tiny scale and check the artifacts.

use std::process::Command;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

#[test]
fn fig4_end_to_end_writes_csv_and_prints_table() {
    let dir = std::env::temp_dir().join(format!("rds_binsmoke_{}", std::process::id()));
    let out = figures()
        .args([
            "fig4",
            "--graphs",
            "2",
            "--tasks",
            "20",
            "--procs",
            "3",
            "--realizations",
            "40",
            "--generations",
            "15",
            "--uls",
            "2,6",
            "--seed",
            "3",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fig4"));
    assert!(stdout.contains("Makespan"));
    let csv = std::fs::read_to_string(dir.join("fig4.csv")).expect("csv written");
    assert!(csv.starts_with("series,x,y"));
    assert!(csv.lines().count() > 4);

    // The report subcommand renders the directory back.
    let rep = figures()
        .args(["report", "--out", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(rep.status.success());
    assert!(String::from_utf8_lossy(&rep.stdout).contains("fig4"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommand_and_bad_flags_fail_cleanly() {
    let out = figures().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = figures()
        .args(["fig4", "--graphs", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("must be positive"));

    let out = figures().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

//! `figures` — regenerate the paper's evaluation figures.
//!
//! ```text
//! figures <subcommand> [flags]
//!
//! paper figures:  fig2 fig3 fig4 fig5 fig6 fig7 fig8 sweep all
//! extensions:     corr future dynamic law ccr contention gatune faults
//!                 replication adaptive online chaos energy
//! utilities:      report   (re-render every results/*.csv as tables)
//!
//! flags:
//!   --full                paper scale (100 graphs, 1000 realizations, 1000 gens)
//!   --graphs N            task graphs per data point        [default 5]
//!   --tasks N             tasks per graph                   [default 60]
//!   --procs N             processors                        [default 8]
//!   --realizations N      Monte Carlo realizations          [default 200]
//!   --generations N       GA generation cap                 [default 300]
//!   --uls a,b,c           uncertainty levels                [default 2,4,6,8]
//!   --ccr X               communication-to-computation      [default 0.1]
//!   --stride N            history sampling stride (fig2/3)  [default 10]
//!   --fault-scales a,b,c  fault-rate multipliers (faults)    [default 0,0.25,0.5,1]
//!   --replication-budget X  replicas / task count (replication)  [default 1]
//!   --placement P         critical|fragile|random           [default critical]
//!   --ckpt-interval X     checkpoint interval in (0,1]      [default 0.25]
//!   --ckpt-overhead X     per-checkpoint overhead fraction  [default 0.02]
//!   --epsilon X           deadline factor epsilon (adaptive) [default 1.2]
//!   --trigger X           sentinel trigger fraction          [default 0.3]
//!   --max-replans N       sentinel replan budget             [default 3]
//!   --optional-fraction X droppable task fraction (adaptive) [default 0.25]
//!   --online-jobs N       jobs per arrival stream (online)   [default 40]
//!   --oversub a,b,c       oversubscription factors (online)  [default 1,1.5,2,3]
//!   --admission-floor P   admission probability floor        [default 0.5]
//!   --drop-floor P        mid-flight drop floor              [default 0.25]
//!   --online-samples N    Monte Carlo samples per estimate   [default 64]
//!   --rel-mins a,b,c      reliability floors (energy)        [default 0.9,0.95,0.99]
//!   --seed N              master seed                       [default 42]
//!   --out DIR             CSV output directory              [default results]
//! ```
//!
//! `sweep`/`all` run the shared ε sweep once and emit figs 5–8 from it.

use std::process::ExitCode;

use rds_experiments::config::ExperimentConfig;
use rds_experiments::figures::{
    adaptive_cmp, ccr_study, chaos_study, contention_cmp, correlation, dynamic_cmp, energy_cmp,
    fault_cmp, fig2_3, fig4, fig5_6, fig7_8, future, gatune, law, online_cmp, replication_cmp,
    sweep,
};
use rds_experiments::output::FigureData;

fn emit(fig: &FigureData, cfg: &ExperimentConfig) {
    println!("{}", fig.to_table());
    match fig.write_csv(&cfg.out_dir) {
        Ok(path) => println!("wrote {}\n", path.display()),
        Err(e) => eprintln!("warning: could not write CSV: {e}\n"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: figures <fig2|fig3|fig4|fig5|fig6|fig7|fig8|sweep|all|\
             corr|future|dynamic|law|contention|ccr|gatune|faults|replication|adaptive|online|chaos|\
             energy|report> \
             [flags]"
        );
        return ExitCode::FAILURE;
    };
    let cfg = match ExperimentConfig::from_args(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# config: graphs={} tasks={} procs={} realizations={} generations={} uls={:?} seed={}",
        cfg.graphs,
        cfg.tasks,
        cfg.procs,
        cfg.realizations,
        cfg.ga.max_generations,
        cfg.uls,
        cfg.seed
    );

    let run_sweep_figs = |which: &[&str]| {
        let sweeps = sweep::sweep_all(&cfg, &sweep::sweep_epsilon_grid());
        if which.contains(&"fig5") {
            emit(&fig5_6::fig5_from_sweeps(&sweeps), &cfg);
        }
        if which.contains(&"fig6") {
            emit(&fig5_6::fig6_from_sweeps(&sweeps), &cfg);
        }
        if which.contains(&"fig7") {
            emit(&fig7_8::fig7_from_sweeps(&sweeps), &cfg);
        }
        if which.contains(&"fig8") {
            emit(&fig7_8::fig8_from_sweeps(&sweeps), &cfg);
        }
    };

    match cmd.as_str() {
        "fig2" => emit(&fig2_3::run_fig2(&cfg), &cfg),
        "fig3" => emit(&fig2_3::run_fig3(&cfg), &cfg),
        "fig4" => emit(&fig4::run_fig4(&cfg), &cfg),
        "fig5" => run_sweep_figs(&["fig5"]),
        "fig6" => run_sweep_figs(&["fig6"]),
        "fig7" => run_sweep_figs(&["fig7"]),
        "fig8" => run_sweep_figs(&["fig8"]),
        "sweep" => run_sweep_figs(&["fig5", "fig6", "fig7", "fig8"]),
        "corr" => emit(&correlation::run_correlation(&cfg), &cfg),
        "future" => emit(&future::run_future(&cfg), &cfg),
        "dynamic" => emit(&dynamic_cmp::run_dynamic_cmp(&cfg), &cfg),
        "law" => emit(&law::run_law(&cfg), &cfg),
        "contention" => emit(&contention_cmp::run_contention(&cfg), &cfg),
        "ccr" => emit(&ccr_study::run_ccr(&cfg), &cfg),
        "gatune" => emit(&gatune::run_gatune(&cfg), &cfg),
        "faults" => emit(&fault_cmp::run_fault_cmp(&cfg), &cfg),
        "replication" => emit(&replication_cmp::run_replication_cmp(&cfg), &cfg),
        "adaptive" => emit(&adaptive_cmp::run_adaptive_cmp(&cfg), &cfg),
        "online" => emit(&online_cmp::run_online_cmp(&cfg), &cfg),
        "energy" => {
            let (summary, pareto) = energy_cmp::run_energy_cmp(&cfg);
            emit(&summary, &cfg);
            emit(&pareto, &cfg);
        }
        "chaos" => emit(&chaos_study::run_chaos_study(&cfg), &cfg),
        "report" => match rds_experiments::output::render_report(&cfg.out_dir) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error reading {}: {e}", cfg.out_dir);
                return ExitCode::FAILURE;
            }
        },
        "all" => {
            emit(&fig2_3::run_fig2(&cfg), &cfg);
            emit(&fig2_3::run_fig3(&cfg), &cfg);
            emit(&fig4::run_fig4(&cfg), &cfg);
            run_sweep_figs(&["fig5", "fig6", "fig7", "fig8"]);
            emit(&correlation::run_correlation(&cfg), &cfg);
        }
        other => {
            eprintln!("unknown subcommand {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! Figure output: CSV files plus a terminal rendering.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use rds_stats::series::Series;

/// The data behind one figure: labelled series over a common x axis.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Figure identifier, e.g. `"fig4"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            series: Vec::new(),
        }
    }

    /// Adds one series.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Renders the CSV content (`series,x,y` rows with a header).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("series,x,y\n");
        for s in &self.series {
            out.push_str(&s.to_csv_rows());
        }
        out
    }

    /// Writes `<out_dir>/<id>.csv`, creating the directory.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, out_dir: &str) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(out_dir)?;
        let path = Path::new(out_dir).join(format!("{}.csv", self.id));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// A compact terminal table: one row per x, one column per series.
    #[must_use]
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        // Header.
        let _ = write!(out, "{:>10}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>22}", truncate(&s.label, 22));
        }
        out.push('\n');
        // Union of x values in first-series order (series share x grids).
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>10.3}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {y:>22.5}");
                    }
                    None => {
                        let _ = write!(out, " {:>22}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

impl FigureData {
    /// Parses figure data back from its CSV form (header `series,x,y`).
    /// Metadata (title/axis labels) is not stored in the CSV; the id is
    /// taken from the caller (usually the file stem).
    ///
    /// # Errors
    /// Returns a message naming the offending line.
    pub fn from_csv(id: &str, csv: &str) -> Result<Self, String> {
        let mut lines = csv.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == "series,x,y" => {}
            Some((_, h)) => return Err(format!("expected 'series,x,y' header, got '{h}'")),
            None => return Err("empty CSV".into()),
        }
        let mut fig = FigureData::new(id, id, "x", "y");
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            // Split from the right: series labels may contain commas.
            let mut parts = line.rsplitn(3, ',');
            let y = parts
                .next()
                .ok_or_else(|| format!("line {}: missing y", i + 1))?;
            let x = parts
                .next()
                .ok_or_else(|| format!("line {}: missing x", i + 1))?;
            let label = parts
                .next()
                .ok_or_else(|| format!("line {}: missing series", i + 1))?;
            let x = parse_cell(x).ok_or_else(|| format!("line {}: bad x '{x}'", i + 1))?;
            let y = parse_cell(y).ok_or_else(|| format!("line {}: bad y '{y}'", i + 1))?;
            match fig.series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.push(x, y),
                None => {
                    let mut s = Series::new(label);
                    s.push(x, y);
                    fig.push(s);
                }
            }
        }
        Ok(fig)
    }
}

/// Reads every `*.csv` in `dir` and renders each as a terminal table —
/// the `figures report` subcommand.
///
/// # Errors
/// Propagates I/O errors; skips files that fail to parse, reporting them
/// in the output.
pub fn render_report(dir: &str) -> std::io::Result<String> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    entries.sort();
    let mut out = String::new();
    for path in entries {
        let id = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("figure")
            .to_owned();
        let csv = fs::read_to_string(&path)?;
        match FigureData::from_csv(&id, &csv) {
            Ok(fig) => {
                out.push_str(&fig.to_table());
                out.push('\n');
            }
            Err(e) => {
                out.push_str(&format!("# {id}: unparseable ({e})\n\n"));
            }
        }
    }
    Ok(out)
}

/// Parses one CSV numeric cell: a plain float, or the [`rds_stats::series::NA`]
/// sentinel written for non-finite values, which maps back to `NaN`.
fn parse_cell(s: &str) -> Option<f64> {
    if s.trim() == rds_stats::series::NA {
        return Some(f64::NAN);
    }
    s.trim().parse::<f64>().ok().filter(|v| v.is_finite())
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut f = FigureData::new("figX", "Test", "UL", "improvement");
        let mut a = Series::new("Makespan");
        a.push(2.0, 0.1);
        a.push(4.0, 0.2);
        let mut b = Series::new("R1");
        b.push(2.0, 0.3);
        b.push(4.0, 0.4);
        f.push(a);
        f.push(b);
        f
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines.len(), 5);
        assert!(lines.contains(&"Makespan,2,0.1"));
        assert!(lines.contains(&"R1,4,0.4"));
    }

    #[test]
    fn table_renders_all_series() {
        let t = sample().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("Makespan"));
        assert!(t.contains("R1"));
        assert!(t.contains("0.40000"));
    }

    #[test]
    fn csv_roundtrip() {
        let fig = sample();
        let back = FigureData::from_csv("figX", &fig.to_csv()).unwrap();
        assert_eq!(back.series.len(), 2);
        assert_eq!(back.series[0].label, "Makespan");
        assert_eq!(back.series[0].points, vec![(2.0, 0.1), (4.0, 0.2)]);
        assert_eq!(back.series[1].points, vec![(2.0, 0.3), (4.0, 0.4)]);
    }

    #[test]
    fn csv_labels_with_commas_roundtrip() {
        let mut fig = FigureData::new("f", "t", "x", "y");
        let mut s = Series::new("UL=2.0,Makespan");
        s.push(1.0, 2.0);
        fig.push(s);
        let back = FigureData::from_csv("f", &fig.to_csv()).unwrap();
        assert_eq!(back.series[0].label, "UL=2.0,Makespan");
        assert_eq!(back.series[0].points, vec![(1.0, 2.0)]);
    }

    #[test]
    fn non_finite_values_roundtrip_as_na() {
        // Infinite robustness (no realization misses the bound) and NaN
        // means (no completed realization) must survive a CSV round trip
        // without producing unparseable rows.
        let mut fig = FigureData::new("f", "t", "x", "y");
        let mut s = Series::new("R1:HEFT");
        s.push(0.0, f64::INFINITY);
        s.push(0.5, f64::NAN);
        s.push(1.0, 2.25);
        fig.push(s);
        let csv = fig.to_csv();
        assert!(csv.contains("R1:HEFT,0,NA"));
        assert!(!csv.contains("inf"));
        assert!(!csv.contains("NaN"));
        let back = FigureData::from_csv("f", &csv).unwrap();
        let pts = &back.series[0].points;
        assert_eq!(pts.len(), 3);
        assert!(pts[0].1.is_nan());
        assert!(pts[1].1.is_nan());
        assert_eq!(pts[2], (1.0, 2.25));
    }

    #[test]
    fn csv_parse_errors() {
        assert!(FigureData::from_csv("f", "").is_err());
        assert!(FigureData::from_csv("f", "wrong,header,here\n").is_err());
        assert!(FigureData::from_csv("f", "series,x,y\nA,notanumber,1\n").is_err());
    }

    #[test]
    fn report_renders_directory() {
        let dir = std::env::temp_dir().join(format!("rds_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        sample().write_csv(dir.to_str().unwrap()).unwrap();
        std::fs::write(dir.join("broken.csv"), "garbage").unwrap();
        let report = render_report(dir.to_str().unwrap()).unwrap();
        assert!(report.contains("figX"));
        assert!(report.contains("Makespan"));
        assert!(report.contains("unparseable"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("rds_test_output");
        let path = sample().write_csv(dir.to_str().unwrap()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("series,x,y"));
        std::fs::remove_file(path).unwrap();
    }
}

//! Sensitivity of the paper's conclusion to the realization law.
//!
//! §5 models actual durations as uniform. Does "bounded-makespan slack
//! maximization improves measured robustness" survive under other noise
//! laws with the same mean? This study re-runs the Figure-4 comparison
//! (GA at ε = 1.2 vs HEFT) under the three laws of
//! [`rds_platform::RealizationLaw`]: the paper's uniform, a mean/variance-
//! matched truncated normal, and a heavy-tailed shifted exponential.
//!
//! The schedulers are *identical* across laws (they only see `UL·B`);
//! only the Monte Carlo realizations differ.

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::heft_schedule;
use rds_platform::RealizationLaw;
use rds_sched::instance::Instance;
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_stats::series::{log_ratio, Series};

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// The laws compared, with display labels.
pub const LAWS: [(RealizationLaw, &str); 3] = [
    (RealizationLaw::Uniform, "uniform"),
    (RealizationLaw::TruncatedNormal, "normal"),
    (RealizationLaw::ShiftedExponential, "exponential"),
];

/// Swaps the realization law of an instance (schedulers are unaffected).
fn with_law(inst: &Instance, law: RealizationLaw) -> Instance {
    Instance::new(
        inst.graph.clone(),
        inst.platform.clone(),
        inst.timing.clone().with_law(law),
    )
    .expect("law swap preserves dimensions")
}

fn gains_one_graph(cfg: &ExperimentConfig, g: usize, ul: f64) -> Vec<f64> {
    let inst = cfg.instance(g, ul);
    let heft = heft_schedule(&inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.2,
        reference_makespan: heft.makespan,
    };
    let ga = GaEngine::new(&inst, cfg.ga.seed(cfg.sub_seed("ga-law", g)), objective).run();
    let robust = ga.best_schedule(&inst);
    let mc = RealizationConfig::with_realizations(cfg.realizations).seed(cfg.sub_seed("mc-law", g));

    LAWS.iter()
        .map(|&(law, _)| {
            let li = with_law(&inst, law);
            let h = monte_carlo(&li, &heft.schedule, &mc).expect("HEFT valid");
            let r = monte_carlo(&li, &robust, &mc).expect("GA valid");
            log_ratio(r.r1, h.r1)
        })
        .collect()
}

/// Runs the law-sensitivity study: x = UL, one series per law, y = mean
/// `ln(R1_GA / R1_HEFT)`.
#[must_use]
pub fn run_law(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "law",
        "R1 improvement of the eps=1.2 GA over HEFT under different realization laws",
        "UL",
        "ln(R1_GA / R1_HEFT)",
    );
    let mut series: Vec<Series> = LAWS.iter().map(|&(_, label)| Series::new(label)).collect();
    for &ul in &cfg.uls {
        let rows: Vec<Vec<f64>> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| gains_one_graph(cfg, g, ul))
            .collect();
        for (li, s) in series.iter_mut().enumerate() {
            let gains: Vec<f64> = rows.iter().map(|r| r[li]).collect();
            s.push(ul, mean_finite(&gains).unwrap_or(f64::NAN));
        }
    }
    for s in series {
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusion_holds_across_laws_at_moderate_ul() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 3;
        cfg.realizations = 120;
        cfg.uls = vec![4.0];
        cfg.ga = cfg.ga.max_generations(40).stall_generations(20);
        let fig = run_law(&cfg);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            let y = s.points[0].1;
            assert!(
                y > -0.05,
                "{}: robustness gain should not invert under this law, got {y}",
                s.label
            );
        }
    }
}

//! Static vs dynamic scheduling under uncertainty.
//!
//! The paper's introduction names dynamic scheduling as the obvious
//! alternative to static-robust scheduling. This study compares, on the
//! same realizations: static HEFT, the paper's static-robust GA
//! (ε = 1.2), and an on-line EFT dispatcher with HEFT's prioritization
//! ([`rds_sched::dynamic`]).
//!
//! Output series (x = UL, averaged over graphs):
//!
//! * `M:<scheduler>` — mean realized makespan normalized by static HEFT's
//!   mean realized makespan (lower is faster in the real environment);
//! * `CoV:<scheduler>` — coefficient of variation of realized makespans
//!   (lower is more predictable).

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::heft_schedule;
use rds_sched::dynamic::{dynamic_makespans, DynamicPriority};
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_stats::describe::OnlineStats;
use rds_stats::series::Series;

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

#[derive(Debug, Clone, Copy)]
struct Row {
    mean_ratio: f64,
    cov: f64,
}

fn study_one_graph(cfg: &ExperimentConfig, g: usize, ul: f64) -> [Row; 3] {
    let inst = cfg.instance(g, ul);
    let heft = heft_schedule(&inst);
    let mc =
        RealizationConfig::with_realizations(cfg.realizations).seed(cfg.sub_seed("mc-dynamic", g));
    let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).expect("HEFT valid");

    let objective = Objective::EpsilonConstraint {
        epsilon: 1.2,
        reference_makespan: heft.makespan,
    };
    let ga = GaEngine::new(&inst, cfg.ga.seed(cfg.sub_seed("ga-dynamic", g)), objective).run();
    let ga_rep = monte_carlo(&inst, &ga.best_schedule(&inst), &mc).expect("GA valid");

    let dyn_ms = dynamic_makespans(
        &inst,
        DynamicPriority::UpwardRank,
        cfg.realizations,
        cfg.sub_seed("dyn-realizations", g),
    );
    let dyn_stats = OnlineStats::from_iter(dyn_ms.iter().copied());

    let base = heft_rep.mean_makespan;
    [
        Row {
            mean_ratio: 1.0,
            cov: heft_rep.makespan_cov(),
        },
        Row {
            mean_ratio: ga_rep.mean_makespan / base,
            cov: ga_rep.makespan_cov(),
        },
        Row {
            mean_ratio: dyn_stats.mean() / base,
            cov: dyn_stats.std_dev() / dyn_stats.mean(),
        },
    ]
}

/// Scheduler labels, aligned with [`study_one_graph`]'s rows.
const LABELS: [&str; 3] = ["HEFT(static)", "GA(static,eps=1.2)", "EFT(dynamic)"];

/// Runs the static-vs-dynamic study.
#[must_use]
pub fn run_dynamic_cmp(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "dynamic",
        "Static vs dynamic scheduling under uncertainty",
        "UL",
        "M:* = mean realized makespan / HEFT; CoV:* = realized-makespan CoV",
    );
    let mut m_series: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("M:{l}")))
        .collect();
    let mut cov_series: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("CoV:{l}")))
        .collect();

    for &ul in &cfg.uls {
        let rows: Vec<[Row; 3]> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| study_one_graph(cfg, g, ul))
            .collect();
        for s in 0..LABELS.len() {
            let ratios: Vec<f64> = rows.iter().map(|r| r[s].mean_ratio).collect();
            let covs: Vec<f64> = rows.iter().map(|r| r[s].cov).collect();
            m_series[s].push(ul, mean_finite(&ratios).unwrap_or(f64::NAN));
            cov_series[s].push(ul, mean_finite(&covs).unwrap_or(f64::NAN));
        }
    }
    for s in m_series.into_iter().chain(cov_series) {
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_study_shapes() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.realizations = 60;
        cfg.uls = vec![4.0];
        cfg.ga = cfg.ga.max_generations(25).stall_generations(15);
        let fig = run_dynamic_cmp(&cfg);
        assert_eq!(fig.series.len(), 6);
        let get = |label: &str| -> f64 {
            fig.series.iter().find(|s| s.label == label).unwrap().points[0].1
        };
        // HEFT normalizes to exactly 1.
        assert!((get("M:HEFT(static)") - 1.0).abs() < 1e-12);
        // The GA pays at most its eps budget in the real environment
        // (generous slack for realization noise).
        assert!(get("M:GA(static,eps=1.2)") < 1.4);
        // The dynamic dispatcher is competitive: within 2x of HEFT.
        assert!(get("M:EFT(dynamic)") < 2.0);
        // All CoVs are positive and sane.
        for l in [
            "CoV:HEFT(static)",
            "CoV:GA(static,eps=1.2)",
            "CoV:EFT(dynamic)",
        ] {
            let v = get(l);
            assert!(v > 0.0 && v < 1.0, "{l} = {v}");
        }
    }
}

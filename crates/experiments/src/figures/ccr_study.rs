//! Sensitivity of the robustness gain to communication intensity.
//!
//! The paper fixes CCR = 0.1 (computation-dominated workloads). This
//! study re-runs the Figure-4 comparison (ε = 1.2 GA vs HEFT, fixed
//! UL = 4) across a CCR sweep: as communication grows, schedules gain
//! structural gaps (waiting for transfers) that act as incidental slack,
//! and the communication part of the critical path is *deterministic* in
//! the paper's model — both effects change how much explicit slack
//! optimization can add.
//!
//! Output series (x = CCR): `R1gain` = mean `ln(R1_GA/R1_HEFT)`;
//! `M0ratio` = mean `M₀_GA / M₀_HEFT`; `HEFT_missrate` for context.

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::heft_schedule;
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_stats::series::{log_ratio, Series};

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// The CCR grid swept (the paper's 0.1 plus communication-heavier mixes).
pub const CCR_GRID: [f64; 4] = [0.1, 0.5, 1.0, 2.0];

/// The fixed uncertainty level of the study.
pub const STUDY_UL: f64 = 4.0;

#[derive(Debug, Clone, Copy)]
struct Row {
    r1_gain: f64,
    m0_ratio: f64,
    heft_miss: f64,
}

fn study_one_graph(cfg: &ExperimentConfig, g: usize, ccr: f64) -> Row {
    let mut cfg_ccr = cfg.clone();
    cfg_ccr.ccr = ccr;
    let inst = cfg_ccr.instance(g, STUDY_UL);
    let heft = heft_schedule(&inst);
    let mc = RealizationConfig::with_realizations(cfg.realizations).seed(cfg.sub_seed("mc-ccr", g));
    let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).expect("HEFT valid");
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.2,
        reference_makespan: heft.makespan,
    };
    let ga = GaEngine::new(&inst, cfg.ga.seed(cfg.sub_seed("ga-ccr", g)), objective).run();
    let ga_rep = monte_carlo(&inst, &ga.best_schedule(&inst), &mc).expect("GA valid");
    Row {
        r1_gain: log_ratio(ga_rep.r1, heft_rep.r1),
        m0_ratio: ga_rep.expected_makespan / heft_rep.expected_makespan,
        heft_miss: heft_rep.miss_rate,
    }
}

/// Runs the CCR sensitivity study.
#[must_use]
pub fn run_ccr(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "ccr",
        "Robustness gain vs communication intensity (UL = 4, eps = 1.2)",
        "CCR",
        "R1gain = ln(R1_GA/R1_HEFT); M0ratio = M0_GA/M0_HEFT",
    );
    let mut s_gain = Series::new("R1gain");
    let mut s_ratio = Series::new("M0ratio");
    let mut s_miss = Series::new("HEFT_missrate");
    for &ccr in &CCR_GRID {
        let rows: Vec<Row> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| study_one_graph(cfg, g, ccr))
            .collect();
        let pick = |f: &dyn Fn(&Row) -> f64| {
            let v: Vec<f64> = rows.iter().map(f).collect();
            mean_finite(&v).unwrap_or(f64::NAN)
        };
        s_gain.push(ccr, pick(&|r| r.r1_gain));
        s_ratio.push(ccr, pick(&|r| r.m0_ratio));
        s_miss.push(ccr, pick(&|r| r.heft_miss));
    }
    fig.push(s_gain);
    fig.push(s_ratio);
    fig.push(s_miss);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccr_study_shapes() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.realizations = 60;
        cfg.ga = cfg.ga.max_generations(25).stall_generations(15);
        let fig = run_ccr(&cfg);
        assert_eq!(fig.series.len(), 3);
        let gain = fig.series.iter().find(|s| s.label == "R1gain").unwrap();
        assert_eq!(gain.points.len(), CCR_GRID.len());
        // The gain never inverts badly at any CCR.
        for &(ccr, y) in &gain.points {
            assert!(y > -0.15, "CCR {ccr}: R1 gain {y}");
        }
        // The GA stays within its eps budget everywhere.
        let ratio = fig.series.iter().find(|s| s.label == "M0ratio").unwrap();
        for &(_, y) in &ratio.points {
            assert!(y <= 1.2 + 1e-6);
        }
    }
}

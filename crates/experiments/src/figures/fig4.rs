//! Figure 4: improvement over HEFT at ε = 1.0.
//!
//! For each uncertainty level, solve the ε-constraint problem with
//! ε = 1.0 (only schedules with expected makespan below HEFT's are
//! feasible) and report, averaged over graphs, the natural-log ratios:
//!
//! * makespan: `ln(mean_realized_M_HEFT / mean_realized_M_GA)` — positive
//!   when the GA's schedule also runs faster in the real environment;
//! * `R1`: `ln(R1_GA / R1_HEFT)`;
//! * `R2`: `ln(R2_GA / R2_HEFT)`.
//!
//! Expected shape (§5.2): all three positive; the `R1` gain is largest at
//! low UL (≈ +13% at UL = 2) and shrinks as uncertainty grows; `R2` gains
//! are smaller than `R1` gains.

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::heft_schedule;
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_stats::series::{log_ratio, Series};

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// Per-graph improvement triple.
#[derive(Debug, Clone, Copy)]
struct Improvement {
    makespan: f64,
    r1: f64,
    r2: f64,
}

fn improvement_one_graph(cfg: &ExperimentConfig, g: usize, ul: f64) -> Improvement {
    let inst = cfg.instance(g, ul);
    let heft = heft_schedule(&inst);
    let mc =
        RealizationConfig::with_realizations(cfg.realizations).seed(cfg.sub_seed("mc-fig4", g));
    let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).expect("HEFT schedule valid");

    let objective = Objective::EpsilonConstraint {
        epsilon: 1.0,
        reference_makespan: heft.makespan,
    };
    let ga = GaEngine::new(&inst, cfg.ga.seed(cfg.sub_seed("ga-fig4", g)), objective).run();
    let schedule = ga.best_schedule(&inst);
    let ga_rep = monte_carlo(&inst, &schedule, &mc).expect("GA schedule valid");

    Improvement {
        makespan: log_ratio(heft_rep.mean_makespan, ga_rep.mean_makespan),
        r1: log_ratio(ga_rep.r1, heft_rep.r1),
        r2: log_ratio(ga_rep.r2, heft_rep.r2),
    }
}

/// Figure 4 generator.
#[must_use]
pub fn run_fig4(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "fig4",
        "Performance improvement over HEFT (eps = 1.0)",
        "UL",
        "ln ratio of relative improvement over HEFT",
    );
    let mut s_mk = Series::new("Makespan");
    let mut s_r1 = Series::new("R1");
    let mut s_r2 = Series::new("R2");
    for &ul in &cfg.uls {
        let imps: Vec<Improvement> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| improvement_one_graph(cfg, g, ul))
            .collect();
        let mk: Vec<f64> = imps.iter().map(|i| i.makespan).collect();
        let r1: Vec<f64> = imps.iter().map(|i| i.r1).collect();
        let r2: Vec<f64> = imps.iter().map(|i| i.r2).collect();
        s_mk.push(ul, mean_finite(&mk).unwrap_or(f64::NAN));
        s_r1.push(ul, mean_finite(&r1).unwrap_or(f64::NAN));
        s_r2.push(ul, mean_finite(&r2).unwrap_or(f64::NAN));
    }
    fig.push(s_mk);
    fig.push(s_r1);
    fig.push(s_r2);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_r1_improvement_is_positive() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 3;
        let fig = run_fig4(&cfg);
        assert_eq!(fig.series.len(), 3);
        let r1 = fig.series.iter().find(|s| s.label == "R1").unwrap();
        // The whole point of the paper: robustness improves over HEFT even
        // with the makespan capped at HEFT's.
        for &(ul, y) in &r1.points {
            assert!(
                y > -0.02,
                "R1 improvement at UL={ul} should be non-negative, got {y}"
            );
        }
        // Makespan must not regress (expected makespan is constrained, and
        // the realized mean tracks it).
        let mk = fig.series.iter().find(|s| s.label == "Makespan").unwrap();
        for &(ul, y) in &mk.points {
            assert!(y > -0.05, "makespan at UL={ul} regressed: {y}");
        }
    }
}

//! Does the robustness edge survive communication contention?
//!
//! §3.1 assumes contention-free communication; the single-port model of
//! [`rds_sched::contention`] is harsher and more realistic. This study
//! schedules with the contention-free model (as the paper does), then
//! *evaluates* both HEFT and the ε = 1.2 GA schedule under single-port
//! contention: realized makespans are computed with serialized transfers,
//! and `R1` is measured against the contention-aware expected makespan.
//!
//! Run with a meaningful `--ccr` (e.g. 1.0): at the paper's CCR = 0.1 the
//! network is nearly idle and contention changes little.
//!
//! Output series (x = UL, averaged over graphs):
//!
//! * `penalty:<sched>` — `M₀(contention) / M₀(free)`: how much the
//!   contention-free plan underestimates reality;
//! * `R1gain:free` / `R1gain:contention` — `ln(R1_GA/R1_HEFT)` under each
//!   evaluation model.

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::heft_schedule;
use rds_sched::contention::evaluate_with_contention;
use rds_sched::disjunctive::DisjunctiveGraph;
use rds_sched::instance::Instance;
use rds_sched::metrics::r1_from_tardiness;
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_sched::schedule::Schedule;
use rds_sched::timing::expected_durations;
use rds_stats::rng::SeedStream;
use rds_stats::series::{log_ratio, Series};

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// Contention-aware Monte Carlo: realized makespans with serialized
/// transfers, aggregated into `(M0_cont, R1_cont)`.
fn contention_r1(
    inst: &Instance,
    schedule: &Schedule,
    realizations: usize,
    seed: u64,
) -> (f64, f64) {
    let ds = DisjunctiveGraph::build(&inst.graph, schedule).expect("valid schedule");
    let expected = expected_durations(&inst.timing, schedule);
    let m0 = evaluate_with_contention(&inst.graph, &ds, schedule, &inst.platform, &expected)
        .timed
        .makespan;
    let seeds = SeedStream::new(seed);
    let assignment = schedule.assignment();
    let mean_tardiness: f64 = (0..realizations)
        .into_par_iter()
        .map(|i| {
            let mut rng = seeds.nth_rng(i as u64);
            let durations = inst.timing.sample_assigned(assignment, &mut rng);
            let m =
                evaluate_with_contention(&inst.graph, &ds, schedule, &inst.platform, &durations)
                    .timed
                    .makespan;
            (m - m0).max(0.0) / m0
        })
        .sum::<f64>()
        / realizations as f64;
    (m0, r1_from_tardiness(mean_tardiness))
}

#[derive(Debug, Clone, Copy)]
struct Row {
    penalty_heft: f64,
    penalty_ga: f64,
    r1_gain_free: f64,
    r1_gain_cont: f64,
}

fn study_one_graph(cfg: &ExperimentConfig, g: usize, ul: f64) -> Row {
    let inst = cfg.instance(g, ul);
    let heft = heft_schedule(&inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.2,
        reference_makespan: heft.makespan,
    };
    let ga = GaEngine::new(
        &inst,
        cfg.ga.seed(cfg.sub_seed("ga-contention", g)),
        objective,
    )
    .run();
    let robust = ga.best_schedule(&inst);

    // Contention-free reference.
    let mc = RealizationConfig::with_realizations(cfg.realizations)
        .seed(cfg.sub_seed("mc-contention", g));
    let h_free = monte_carlo(&inst, &heft.schedule, &mc).expect("valid");
    let g_free = monte_carlo(&inst, &robust, &mc).expect("valid");

    // Contention-aware.
    let (h_m0c, h_r1c) = contention_r1(
        &inst,
        &heft.schedule,
        cfg.realizations,
        cfg.sub_seed("mc-contention", g),
    );
    let (g_m0c, g_r1c) = contention_r1(
        &inst,
        &robust,
        cfg.realizations,
        cfg.sub_seed("mc-contention", g),
    );

    Row {
        penalty_heft: h_m0c / h_free.expected_makespan,
        penalty_ga: g_m0c / g_free.expected_makespan,
        r1_gain_free: log_ratio(g_free.r1, h_free.r1),
        r1_gain_cont: log_ratio(g_r1c, h_r1c),
    }
}

/// Runs the contention study.
#[must_use]
pub fn run_contention(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "contention",
        "Single-port contention: plan penalty and robustness edge",
        "UL",
        "penalty:* = M0(cont)/M0(free); R1gain:* = ln(R1_GA/R1_HEFT)",
    );
    let mut s_ph = Series::new("penalty:HEFT");
    let mut s_pg = Series::new("penalty:GA");
    let mut s_rf = Series::new("R1gain:free");
    let mut s_rc = Series::new("R1gain:contention");
    for &ul in &cfg.uls {
        let rows: Vec<Row> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| study_one_graph(cfg, g, ul))
            .collect();
        let pick = |f: &dyn Fn(&Row) -> f64| -> f64 {
            let v: Vec<f64> = rows.iter().map(f).collect();
            mean_finite(&v).unwrap_or(f64::NAN)
        };
        s_ph.push(ul, pick(&|r| r.penalty_heft));
        s_pg.push(ul, pick(&|r| r.penalty_ga));
        s_rf.push(ul, pick(&|r| r.r1_gain_free));
        s_rc.push(ul, pick(&|r| r.r1_gain_cont));
    }
    fig.push(s_ph);
    fig.push(s_pg);
    fig.push(s_rf);
    fig.push(s_rc);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_penalty_is_at_least_one() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.realizations = 50;
        cfg.ccr = 1.0;
        cfg.uls = vec![4.0];
        cfg.ga = cfg.ga.max_generations(20).stall_generations(10);
        let fig = run_contention(&cfg);
        assert_eq!(fig.series.len(), 4);
        let get = |label: &str| -> f64 {
            fig.series.iter().find(|s| s.label == label).unwrap().points[0].1
        };
        assert!(get("penalty:HEFT") >= 1.0 - 1e-9);
        assert!(get("penalty:GA") >= 1.0 - 1e-9);
        // With CCR=1 the penalty should actually bite.
        assert!(get("penalty:HEFT") > 1.01, "{}", get("penalty:HEFT"));
    }
}

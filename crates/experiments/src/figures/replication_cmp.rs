//! Proactive robustness: replication and checkpoint/restart.
//!
//! The fault study ([`crate::figures::fault_cmp`]) compares *reactive*
//! recovery policies; this study measures what the two *proactive*
//! mechanisms of [`rds_sched::replication`] and
//! [`rds_sched::recovery::CheckpointConfig`] buy on top of a fixed
//! reactive policy (`RetrySameProc` — deliberately the policy that cannot
//! migrate, so survival hinges on the proactive provisions). All four
//! combos see identical realizations and fault scenarios, and replicas
//! draw from their own RNG substream, so the comparison is paired:
//!
//! * `baseline` — HEFT schedule, retry-in-place recovery;
//! * `replication` — plus slack-aware replicas
//!   ([`rds_sched::replication::plan_replicas`] under the configured
//!   budget and placement policy), first-finisher-wins at runtime;
//! * `checkpoint` — plus periodic checkpoints (resume-from-fraction);
//! * `repl+ckpt` — both.
//!
//! Output series (x = fault-rate scale, averaged over graphs):
//!
//! * `Pc:<combo>` — completion probability;
//! * `Meff:<combo>` — fault-adjusted mean makespan
//!   ([`FaultRobustnessReport::effective_mean`]) / HEFT's fault-free `M₀`;
//! * `dup:<combo>` — mean wasted duplicate work per realization / `M₀`
//!   (the price of replication);
//! * `wins:replication` — mean tasks completed by a replica.
//!
//! Replication never touches the fault-free plan: the planner only fills
//! idle slack windows (`M₀` identical by construction, asserted by the
//! executor's bit-identity tests), so at scale 0 every combo completes
//! every realization and the only visible difference is duplicate work.
//!
//! [`FaultRobustnessReport::effective_mean`]: rds_sched::metrics::FaultRobustnessReport::effective_mean

use rayon::prelude::*;

use rds_heft::heft_schedule;
use rds_sched::faults::FaultConfig;
use rds_sched::realization::{failure_penalty, monte_carlo_replicated, RealizationConfig};
use rds_sched::recovery::{CheckpointConfig, RecoveryConfig, RecoveryPolicy};
use rds_sched::replication::{plan_replicas, ReplicaPlan, ReplicationConfig};
use rds_stats::series::Series;

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// Uncertainty level for the replication study (the paper's mid-range).
const UL: f64 = 4.0;

/// Combo labels, aligned with [`study_one_graph`]'s cell order.
const LABELS: [&str; 4] = ["baseline", "replication", "checkpoint", "repl+ckpt"];

/// Base fault mix scaled along the x axis. Heavier on permanent failures
/// and crashes than the reactive study: failures are what replicas absorb
/// (under `RetrySameProc` a dead processor strands its queue), crashes are
/// what checkpoints amortize.
#[must_use]
pub fn base_faults() -> FaultConfig {
    FaultConfig {
        failure_rate: 0.4,
        slowdown_rate: 0.1,
        straggler_rate: 0.1,
        crash_rate: 0.3,
        ..FaultConfig::default()
    }
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Completion probability.
    pc: f64,
    /// Fault-adjusted mean makespan / HEFT's fault-free `M₀`.
    meff: f64,
    /// Mean duplicate work / `M₀`.
    dup: f64,
    /// Mean replica wins.
    wins: f64,
}

/// One graph, all scales × combos. Outer index: scale; inner: [`LABELS`].
fn study_one_graph(cfg: &ExperimentConfig, g: usize) -> Vec<[Cell; 4]> {
    let inst = cfg.instance(g, UL);
    let heft = heft_schedule(&inst);
    let rcfg = ReplicationConfig {
        budget: cfg.replication_budget,
        policy: cfg.placement,
        seed: cfg.sub_seed("replica-placement", g),
        ..ReplicationConfig::default()
    };
    let plan = plan_replicas(&inst, &heft.schedule, &rcfg)
        .expect("HEFT schedules are acyclic by construction");
    let empty = ReplicaPlan::empty(inst.task_count());
    let ckpt = CheckpointConfig::new(cfg.checkpoint_interval, cfg.checkpoint_overhead)
        .expect("config validated by from_args");
    let retry = RecoveryConfig::new(RecoveryPolicy::RetrySameProc);
    let retry_ckpt = retry.with_checkpoint(ckpt);
    // Plan × recovery per combo; an empty plan makes `monte_carlo_replicated`
    // bit-identical to `monte_carlo_faulty`, so all four share one code path.
    let combos: [(&ReplicaPlan, &RecoveryConfig); 4] = [
        (&empty, &retry),
        (&plan, &retry),
        (&empty, &retry_ckpt),
        (&plan, &retry_ckpt),
    ];
    let mc = RealizationConfig::with_realizations(cfg.realizations)
        .seed(cfg.sub_seed("mc-replication", g));
    let penalty = failure_penalty(&inst);
    let base = base_faults();

    cfg.fault_scales
        .iter()
        .map(|&scale| {
            // One horizon for every combo so all see identical scenarios.
            let faults = base.scaled(scale).with_horizon(heft.makespan);
            let mut cells = [Cell {
                pc: f64::NAN,
                meff: f64::NAN,
                dup: f64::NAN,
                wins: f64::NAN,
            }; 4];
            for (i, &(replicas, recovery)) in combos.iter().enumerate() {
                let rep =
                    monte_carlo_replicated(&inst, &heft.schedule, replicas, &mc, &faults, recovery)
                        .expect("HEFT schedules are acyclic by construction");
                cells[i] = Cell {
                    pc: rep.completion_probability,
                    meff: rep.effective_mean(penalty) / heft.makespan,
                    dup: rep.mean_duplicate_work / heft.makespan,
                    wins: rep.mean_replica_wins,
                };
            }
            cells
        })
        .collect()
}

/// Runs the replication/checkpoint study.
#[must_use]
pub fn run_replication_cmp(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "replication",
        "Proactive robustness: replication and checkpoint/restart",
        "fault-rate scale",
        "Pc:* = completion probability; Meff:* = fault-adjusted mean / M0; \
         dup:* = duplicate work / M0; wins",
    );
    let per_graph: Vec<Vec<[Cell; 4]>> = (0..cfg.graphs)
        .into_par_iter()
        .map(|g| study_one_graph(cfg, g))
        .collect();

    let mut pc: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("Pc:{l}")))
        .collect();
    let mut meff: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("Meff:{l}")))
        .collect();
    let mut dup: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("dup:{l}")))
        .collect();
    let mut wins = Series::new("wins:replication");

    for (si, &scale) in cfg.fault_scales.iter().enumerate() {
        for c in 0..LABELS.len() {
            let pcs: Vec<f64> = per_graph.iter().map(|g| g[si][c].pc).collect();
            let meffs: Vec<f64> = per_graph.iter().map(|g| g[si][c].meff).collect();
            let dups: Vec<f64> = per_graph.iter().map(|g| g[si][c].dup).collect();
            pc[c].push(scale, mean_finite(&pcs).unwrap_or(f64::NAN));
            meff[c].push(scale, mean_finite(&meffs).unwrap_or(f64::NAN));
            dup[c].push(scale, mean_finite(&dups).unwrap_or(f64::NAN));
        }
        let ws: Vec<f64> = per_graph.iter().map(|g| g[si][1].wins).collect();
        wins.push(scale, mean_finite(&ws).unwrap_or(f64::NAN));
    }
    for s in pc.into_iter().chain(meff).chain(dup) {
        fig.push(s);
    }
    fig.push(wins);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(fig: &FigureData, label: &str, x: f64) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-12)
            .unwrap_or_else(|| panic!("missing x={x} in {label}"))
            .1
    }

    /// The study's acceptance criterion: at a fixed fault rate replication
    /// achieves strictly higher completion probability than no-replication,
    /// while at scale 0 (fault-free) every combo completes everything and
    /// the planned makespans coincide.
    #[test]
    fn replication_study_raises_completion_probability() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.tasks = 25;
        cfg.procs = 4;
        cfg.realizations = 60;
        cfg.fault_scales = vec![0.0, 1.0];
        let fig = run_replication_cmp(&cfg);
        assert_eq!(fig.series.len(), 13);

        // Fault-free control: nothing fails under any combo (replicas and
        // checkpoints are pure insurance; the planner never perturbs the
        // fault-free plan).
        for l in LABELS {
            assert_eq!(get(&fig, &format!("Pc:{l}"), 0.0), 1.0, "{l}");
        }
        // First-finisher-wins can only shorten realizations, while
        // checkpoints are paid on every attempt, crashed or not.
        assert!(get(&fig, "Meff:replication", 0.0) <= get(&fig, "Meff:baseline", 0.0));
        assert!(get(&fig, "Meff:checkpoint", 0.0) >= get(&fig, "Meff:baseline", 0.0));

        // Under failures, retry-in-place strands queues; replicas rescue
        // some of those realizations (and never lose one).
        assert!(get(&fig, "Pc:baseline", 1.0) < 1.0);
        assert!(
            get(&fig, "Pc:replication", 1.0) > get(&fig, "Pc:baseline", 1.0),
            "replication {} !> baseline {}",
            get(&fig, "Pc:replication", 1.0),
            get(&fig, "Pc:baseline", 1.0)
        );
        assert!(get(&fig, "Pc:repl+ckpt", 1.0) > get(&fig, "Pc:checkpoint", 1.0));
        // Replication pays in duplicate work and records its wins.
        assert!(get(&fig, "dup:replication", 1.0) > 0.0);
        assert!(get(&fig, "wins:replication", 1.0) > 0.0);
        assert!(get(&fig, "dup:baseline", 1.0) <= get(&fig, "dup:replication", 1.0));
    }
}

//! Online multi-tenant scheduling: completion-probability admission and
//! autonomous dropping against FIFO baselines.
//!
//! A seeded stream of DAG jobs arrives on a shared platform
//! ([`rds_sched::online`]); the x axis sweeps the offered load
//! (oversubscription factor). Three arms replay the *same* stream with
//! the *same* truth durations (common random numbers — the arms differ
//! only in policy, never in luck):
//!
//! * `prob` — completion-probability admission plus the autonomous
//!   controller (shed optional tasks, drop doomed jobs);
//! * `fifo-drop` — admit everything, but keep the autonomous controller;
//! * `fifo-nodrop` — admit everything and never intervene (the classic
//!   best-effort baseline).
//!
//! Output series (averaged over graphs):
//!
//! * `hit:<arm>` — deadline hit rate, with rejected and dropped jobs
//!   counted against the service;
//! * `goodput:<arm>` — expected work of deadline-hitting jobs as a
//!   fraction of the offered work;
//! * `rejected:<arm>` / `dropped:<arm>` — fraction of arrivals rejected
//!   at admission / dropped mid-flight.
//!
//! The claim under test: under oversubscription (≥ 1.5×), refusing or
//! shedding work the platform cannot finish *raises* the hit rate over
//! admitting everything — saying no beats best-effort.

use rayon::prelude::*;

use rds_sched::online::{run_online, AdmissionPolicy, DropPolicy, OnlineConfig, OnlineStreamSpec};
use rds_stats::series::Series;

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// Arm labels, aligned with [`ARMS`].
const LABELS: [&str; 3] = ["prob", "fifo-drop", "fifo-nodrop"];

/// Admission/drop policy per arm.
const ARMS: [(AdmissionPolicy, DropPolicy); 3] = [
    (
        AdmissionPolicy::CompletionProbability,
        DropPolicy::Autonomous,
    ),
    (AdmissionPolicy::Fifo, DropPolicy::Autonomous),
    (AdmissionPolicy::Fifo, DropPolicy::Never),
];

#[derive(Debug, Clone, Copy)]
struct Cell {
    hit: f64,
    goodput: f64,
    rejected: f64,
    dropped: f64,
}

/// One stream (graph seed `g`) at one oversubscription factor, all arms.
fn study_one_stream(cfg: &ExperimentConfig, g: usize, oversub: f64) -> [Cell; 3] {
    let ul = cfg.uls.first().copied().unwrap_or(4.0);
    let jobs = OnlineStreamSpec::new(cfg.online_jobs, cfg.tasks, cfg.procs)
        .seed(cfg.sub_seed("online-stream", g))
        .uncertainty_level(ul)
        .oversubscription(oversub)
        .optional_fraction(cfg.optional_fraction)
        .generate()
        .expect("valid online stream configuration");
    // One run seed per stream, shared by every arm: identical truth
    // durations, so the arms differ only in policy.
    let run_seed = cfg.sub_seed("online-run", g);
    let mut cells = [Cell {
        hit: f64::NAN,
        goodput: f64::NAN,
        rejected: f64::NAN,
        dropped: f64::NAN,
    }; 3];
    for (i, &(admission, drop_policy)) in ARMS.iter().enumerate() {
        let run_cfg = OnlineConfig::default()
            .seed(run_seed)
            .samples(cfg.online_samples)
            .admission(admission)
            .drop_policy(drop_policy)
            .floors(cfg.admission_floor, cfg.drop_floor);
        let report = run_online(&jobs, &run_cfg).expect("generated streams are well-formed");
        let arrived = report.arrived.max(1) as f64;
        cells[i] = Cell {
            hit: report.deadline_hit_rate,
            goodput: if report.offered_weight > 0.0 {
                report.goodput / report.offered_weight
            } else {
                f64::NAN
            },
            rejected: report.rejected as f64 / arrived,
            dropped: report.dropped as f64 / arrived,
        };
    }
    cells
}

/// Runs the online multi-tenant admission study.
#[must_use]
pub fn run_online_cmp(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "online",
        "Online multi-tenant scheduling: probability admission vs FIFO baselines",
        "oversubscription factor",
        "hit:* = deadline hit rate (rejections and drops count against it); \
         goodput:* = hit work / offered work; rejected/dropped = fraction of arrivals",
    );
    let points: Vec<(usize, f64)> = (0..cfg.graphs)
        .flat_map(|g| cfg.oversubscriptions.iter().map(move |&o| (g, o)))
        .collect();
    let results: Vec<((usize, f64), [Cell; 3])> = points
        .into_par_iter()
        .map(|(g, o)| ((g, o), study_one_stream(cfg, g, o)))
        .collect();

    let mut hit: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("hit:{l}")))
        .collect();
    let mut goodput: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("goodput:{l}")))
        .collect();
    let mut rejected: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("rejected:{l}")))
        .collect();
    let mut dropped: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("dropped:{l}")))
        .collect();
    for &o in &cfg.oversubscriptions {
        let rows: Vec<&[Cell; 3]> = results
            .iter()
            .filter(|((_, x), _)| (*x - o).abs() < 1e-12)
            .map(|(_, c)| c)
            .collect();
        for a in 0..LABELS.len() {
            let hs: Vec<f64> = rows.iter().map(|r| r[a].hit).collect();
            let gs: Vec<f64> = rows.iter().map(|r| r[a].goodput).collect();
            let rs: Vec<f64> = rows.iter().map(|r| r[a].rejected).collect();
            let ds: Vec<f64> = rows.iter().map(|r| r[a].dropped).collect();
            hit[a].push(o, mean_finite(&hs).unwrap_or(f64::NAN));
            goodput[a].push(o, mean_finite(&gs).unwrap_or(f64::NAN));
            rejected[a].push(o, mean_finite(&rs).unwrap_or(f64::NAN));
            dropped[a].push(o, mean_finite(&ds).unwrap_or(f64::NAN));
        }
    }
    for s in hit
        .into_iter()
        .chain(goodput)
        .chain(rejected)
        .chain(dropped)
    {
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(fig: &FigureData, label: &str, x: f64) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-12)
            .unwrap_or_else(|| panic!("missing x={x} in {label}"))
            .1
    }

    /// The study's acceptance criterion: under oversubscription the
    /// probability-admission arm rejects a nonzero fraction of arrivals
    /// and converts that refusal into a *strictly* higher deadline hit
    /// rate than the admit-everything, never-drop baseline; relaxed
    /// (undersubscribed) streams show no penalty for the gate.
    #[test]
    fn probability_admission_beats_fifo_under_load() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.tasks = 20;
        cfg.procs = 3;
        cfg.online_jobs = 14;
        cfg.online_samples = 32;
        cfg.uls = vec![4.0];
        cfg.oversubscriptions = vec![0.25, 3.0];
        let fig = run_online_cmp(&cfg);
        assert_eq!(fig.series.len(), 12);

        // Relaxed stream: everything is admitted and nothing is dropped,
        // so the gate costs nothing.
        let relaxed_prob = get(&fig, "hit:prob", 0.25);
        let relaxed_fifo = get(&fig, "hit:fifo-nodrop", 0.25);
        assert_eq!(get(&fig, "rejected:prob", 0.25), 0.0);
        assert_eq!(get(&fig, "dropped:prob", 0.25), 0.0);
        assert!(
            (relaxed_prob - relaxed_fifo).abs() < 1e-12,
            "gate must be free when relaxed: {relaxed_prob} vs {relaxed_fifo}"
        );

        // Oversubscribed stream: the gate says no, and saying no wins.
        let prob = get(&fig, "hit:prob", 3.0);
        let nodrop = get(&fig, "hit:fifo-nodrop", 3.0);
        assert!(get(&fig, "rejected:prob", 3.0) > 0.0);
        assert_eq!(get(&fig, "rejected:fifo-nodrop", 3.0), 0.0);
        assert_eq!(get(&fig, "dropped:fifo-nodrop", 3.0), 0.0);
        assert!(prob > nodrop, "hit:prob {prob} !> hit:fifo-nodrop {nodrop}");
        assert!(
            get(&fig, "goodput:prob", 3.0) >= get(&fig, "goodput:fifo-nodrop", 3.0),
            "refused work must not lower delivered goodput"
        );
    }
}

//! Future-work study: stochastic-information-guided scheduling (§6).
//!
//! The paper closes by proposing to feed the scheduler *stochastic*
//! information rather than expectations alone. This experiment evaluates
//! that idea using the closed-form standard deviation of the realization
//! law: `SHEFT(k)` plans with `E[c] + k·σ` (see
//! [`rds_heft::stochastic`]), compared against plain HEFT and the paper's
//! ε-constraint GA at ε = 1.2.
//!
//! Output series (x = UL, averaged over graphs):
//!
//! * `R1:<scheduler>` — `ln(R1 / R1_HEFT)`: robustness gain over HEFT;
//! * `M0:<scheduler>` — `M₀ / M₀_HEFT`: the expected-makespan price paid.

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::{heft_schedule, sheft_schedule};
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_stats::series::{log_ratio, Series};

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// The SHEFT risk factors compared.
pub const SHEFT_KS: [f64; 3] = [0.5, 1.0, 2.0];

#[derive(Debug, Clone, Copy)]
struct Row {
    r1_gain: f64,
    m0_ratio: f64,
}

fn study_one_graph(cfg: &ExperimentConfig, g: usize, ul: f64) -> Vec<Row> {
    let inst = cfg.instance(g, ul);
    let heft = heft_schedule(&inst);
    let mc =
        RealizationConfig::with_realizations(cfg.realizations).seed(cfg.sub_seed("mc-future", g));
    let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).expect("HEFT valid");

    let mut rows = Vec::with_capacity(SHEFT_KS.len() + 1);
    for &k in &SHEFT_KS {
        let s = sheft_schedule(&inst, k);
        let rep = monte_carlo(&inst, &s.schedule, &mc).expect("SHEFT valid");
        rows.push(Row {
            r1_gain: log_ratio(rep.r1, heft_rep.r1),
            m0_ratio: rep.expected_makespan / heft_rep.expected_makespan,
        });
    }
    // The paper's GA at a mild makespan budget.
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.2,
        reference_makespan: heft.makespan,
    };
    let ga = GaEngine::new(&inst, cfg.ga.seed(cfg.sub_seed("ga-future", g)), objective).run();
    let rep = monte_carlo(&inst, &ga.best_schedule(&inst), &mc).expect("GA valid");
    rows.push(Row {
        r1_gain: log_ratio(rep.r1, heft_rep.r1),
        m0_ratio: rep.expected_makespan / heft_rep.expected_makespan,
    });
    rows
}

/// Scheduler labels, aligned with the per-graph study rows.
#[must_use]
pub fn scheduler_labels() -> Vec<String> {
    SHEFT_KS
        .iter()
        .map(|k| format!("SHEFT(k={k})"))
        .chain(std::iter::once("GA(eps=1.2)".to_owned()))
        .collect()
}

/// Runs the future-work study.
#[must_use]
pub fn run_future(cfg: &ExperimentConfig) -> FigureData {
    let labels = scheduler_labels();
    let mut fig = FigureData::new(
        "future",
        "Stochastic-information-guided scheduling vs HEFT (paper future work)",
        "UL",
        "R1:* = ln(R1/R1_HEFT); M0:* = M0/M0_HEFT",
    );
    let mut r1_series: Vec<Series> = labels
        .iter()
        .map(|l| Series::new(format!("R1:{l}")))
        .collect();
    let mut m0_series: Vec<Series> = labels
        .iter()
        .map(|l| Series::new(format!("M0:{l}")))
        .collect();

    for &ul in &cfg.uls {
        let rows: Vec<Vec<Row>> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| study_one_graph(cfg, g, ul))
            .collect();
        for s in 0..labels.len() {
            let gains: Vec<f64> = rows.iter().map(|r| r[s].r1_gain).collect();
            let ratios: Vec<f64> = rows.iter().map(|r| r[s].m0_ratio).collect();
            r1_series[s].push(ul, mean_finite(&gains).unwrap_or(f64::NAN));
            m0_series[s].push(ul, mean_finite(&ratios).unwrap_or(f64::NAN));
        }
    }
    for s in r1_series.into_iter().chain(m0_series) {
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_study_produces_consistent_series() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.realizations = 60;
        cfg.uls = vec![6.0];
        cfg.ga = cfg.ga.max_generations(25).stall_generations(15);
        let fig = run_future(&cfg);
        // 4 schedulers × 2 metric families.
        assert_eq!(fig.series.len(), 8);
        // Makespan ratios: SHEFT pays more as k grows (weak monotonicity
        // with tolerance — tiny smoke sample).
        let m0 = |label: &str| -> f64 {
            fig.series
                .iter()
                .find(|s| s.label == format!("M0:{label}"))
                .unwrap()
                .points[0]
                .1
        };
        assert!(m0("SHEFT(k=0.5)") >= 0.95, "ratios are around/above 1");
        assert!(
            m0("SHEFT(k=2)") + 1e-9 >= m0("SHEFT(k=0.5)") - 0.1,
            "larger k should not be dramatically cheaper"
        );
        // The GA respects its eps = 1.2 budget.
        assert!(m0("GA(eps=1.2)") <= 1.2 + 1e-6);
    }
}

//! Energy- and reliability-aware tri-objective scheduling study.
//!
//! For every (uncertainty level, reliability floor) pair the study runs
//! the constrained tri-objective NSGA-II ([`rds_ga::nsga2_tri`]) on each
//! task graph: minimize expected makespan and total energy, maximize
//! average slack, subject to schedule reliability ≥ the floor. The DVFS
//! ladder lets the search slow tasks down for energy, which the
//! exponential reliability model punishes — the floor decides how much
//! of that trade is admissible.
//!
//! Two figures come out:
//!
//! * `energy` — the summary sweep (x = UL, one series set per floor):
//!   - `hv:rX` — mean front hypervolume against the front's own nadir
//!     point (margin 1.1), a volume-of-trade-space indicator;
//!   - `saving:rX` — mean fractional energy saving of the cheapest
//!     feasible front member over full-speed HEFT on the same instance;
//!   - `front:rX` — mean front size;
//!   - `feasible:rX` — fraction of graphs whose final front satisfies
//!     the floor;
//!   - `evalrate:rX` — mean tri-evaluations per second (kernel
//!     throughput, snapshotted into `BENCH_energy.json` by
//!     `scripts/energy_quick.sh`).
//! * `energy_pareto` — the Pareto surface of graph 0 (x = front point
//!   index sorted by makespan; series `rX:ulY:makespan|slack|energy|
//!   reliability` carry the objective triple plus the constraint value
//!   point by point).
//!
//! The claim under test: relaxing the reliability floor strictly grows
//! the attainable energy saving — reliability is the price of slowing
//! down.

use std::time::Instant;

use rayon::prelude::*;

use rds_ga::{
    evaluate_all_tri, nadir_reference, nsga2_tri, tri_hypervolume, Chromosome, TriChromosome,
    TriEvaluation,
};
use rds_heft::heft_schedule;
use rds_platform::EnergyModel;
use rds_stats::series::Series;

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// Nadir margin for the per-front hypervolume reference point.
const NADIR_MARGIN: f64 = 1.1;

/// One (graph, UL, floor) cell of the sweep.
struct Cell {
    ul: f64,
    rel_min: f64,
    /// Front hypervolume against its own nadir (NaN when infeasible).
    hv: f64,
    /// Fractional energy saving of the cheapest feasible member vs
    /// full-speed HEFT (NaN when infeasible).
    saving: f64,
    front_size: f64,
    feasible: f64,
    evals_per_sec: f64,
    /// The front's evaluations, kept only for graph 0 (Pareto surface).
    front: Vec<TriEvaluation>,
}

/// Runs one tri-objective search and scores its front.
fn study_one(cfg: &ExperimentConfig, g: usize, ul: f64, rel_min: f64) -> Cell {
    let inst = cfg.instance(g, ul);
    let model = EnergyModel::default_for(cfg.procs);
    let params = cfg
        .ga
        .seed(cfg.sub_seed(&format!("energy-ul{ul}-r{rel_min}"), g));

    let started = Instant::now();
    let result = nsga2_tri(&inst, &model, rel_min, params);
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let evals_per_sec = result.evaluations as f64 / elapsed;

    // Full-speed HEFT through the same model: the no-DVFS energy
    // baseline every saving is measured against.
    let heft = heft_schedule(&inst);
    let full = TriChromosome::full_speed(
        Chromosome::from_schedule(&inst.graph, &heft.schedule),
        &model,
    );
    let baseline = evaluate_all_tri(&inst, &model, std::slice::from_ref(&full))[0];

    let mut front: Vec<TriEvaluation> = result.front.iter().map(|p| p.eval).collect();
    front.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));

    let (hv, saving) = if result.feasible {
        let hv = nadir_reference(&front, NADIR_MARGIN)
            .map_or(f64::NAN, |r| tri_hypervolume(&front, r));
        let cheapest = front
            .iter()
            .map(|e| e.energy)
            .fold(f64::INFINITY, f64::min);
        let saving = if baseline.energy > 0.0 {
            (baseline.energy - cheapest) / baseline.energy
        } else {
            f64::NAN
        };
        (hv, saving)
    } else {
        (f64::NAN, f64::NAN)
    };

    Cell {
        ul,
        rel_min,
        hv,
        saving,
        front_size: front.len() as f64,
        feasible: f64::from(u8::from(result.feasible)),
        evals_per_sec,
        front: if g == 0 { front } else { Vec::new() },
    }
}

/// Runs the energy study: the summary sweep plus graph 0's Pareto
/// surface.
#[must_use]
pub fn run_energy_cmp(cfg: &ExperimentConfig) -> (FigureData, FigureData) {
    let mut fig = FigureData::new(
        "energy",
        "Tri-objective energy/reliability sweep: hypervolume and energy saving vs UL",
        "uncertainty level",
        "hv:rX = front hypervolume; saving:rX = energy saved vs full-speed HEFT; \
         front:rX = front size; feasible:rX = fraction of feasible fronts; \
         evalrate:rX = tri-evaluations per second",
    );
    let points: Vec<(usize, f64, f64)> = (0..cfg.graphs)
        .flat_map(|g| {
            cfg.uls.iter().flat_map(move |&ul| {
                cfg.rel_mins.iter().map(move |&r| (g, ul, r))
            })
        })
        .collect();
    let cells: Vec<Cell> = points
        .into_par_iter()
        .map(|(g, ul, r)| study_one(cfg, g, ul, r))
        .collect();

    for &r in &cfg.rel_mins {
        let tag = format!("r{r:.2}");
        let mut hv = Series::new(format!("hv:{tag}"));
        let mut saving = Series::new(format!("saving:{tag}"));
        let mut front = Series::new(format!("front:{tag}"));
        let mut feasible = Series::new(format!("feasible:{tag}"));
        let mut evalrate = Series::new(format!("evalrate:{tag}"));
        for &ul in &cfg.uls {
            let rows: Vec<&Cell> = cells
                .iter()
                .filter(|c| (c.ul - ul).abs() < 1e-12 && (c.rel_min - r).abs() < 1e-12)
                .collect();
            let col = |f: fn(&Cell) -> f64| -> Vec<f64> { rows.iter().map(|c| f(c)).collect() };
            hv.push(ul, mean_finite(&col(|c| c.hv)).unwrap_or(f64::NAN));
            saving.push(ul, mean_finite(&col(|c| c.saving)).unwrap_or(f64::NAN));
            front.push(ul, mean_finite(&col(|c| c.front_size)).unwrap_or(f64::NAN));
            feasible.push(ul, mean_finite(&col(|c| c.feasible)).unwrap_or(f64::NAN));
            evalrate.push(ul, mean_finite(&col(|c| c.evals_per_sec)).unwrap_or(f64::NAN));
        }
        for s in [hv, saving, front, feasible, evalrate] {
            fig.push(s);
        }
    }

    let mut pareto = FigureData::new(
        "energy_pareto",
        "Pareto surface of graph 0 (x = front index, makespan-sorted)",
        "front point index",
        "objective value per series (makespan / slack / energy / reliability)",
    );
    for cell in cells.iter().filter(|c| !c.front.is_empty()) {
        let tag = format!("r{:.2}:ul{}", cell.rel_min, cell.ul);
        let mut mk = Series::new(format!("{tag}:makespan"));
        let mut sl = Series::new(format!("{tag}:slack"));
        let mut en = Series::new(format!("{tag}:energy"));
        let mut rel = Series::new(format!("{tag}:reliability"));
        for (i, e) in cell.front.iter().enumerate() {
            let x = i as f64;
            mk.push(x, e.makespan);
            sl.push(x, e.avg_slack);
            en.push(x, e.energy);
            rel.push(x, e.reliability);
        }
        for s in [mk, sl, en, rel] {
            pareto.push(s);
        }
    }
    (fig, pareto)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(fig: &FigureData, label: &str, x: f64) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-12)
            .unwrap_or_else(|| panic!("missing x={x} in {label}"))
            .1
    }

    /// Smoke acceptance: a lenient floor yields a feasible front with
    /// positive hypervolume and a nonnegative energy saving, and the
    /// Pareto surface honours the reliability constraint point by point.
    #[test]
    fn energy_study_emits_feasible_front_and_positive_hypervolume() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.tasks = 16;
        cfg.procs = 3;
        cfg.uls = vec![2.0];
        cfg.rel_mins = vec![0.85];
        let (fig, pareto) = run_energy_cmp(&cfg);

        assert_eq!(get(&fig, "feasible:r0.85", 2.0), 1.0);
        assert!(get(&fig, "hv:r0.85", 2.0) > 0.0);
        assert!(get(&fig, "front:r0.85", 2.0) >= 1.0);
        assert!(get(&fig, "evalrate:r0.85", 2.0) > 0.0);
        // Slowing down can only save energy, never cost it, relative to
        // the full-speed HEFT baseline.
        assert!(get(&fig, "saving:r0.85", 2.0) >= 0.0);

        let rel = pareto
            .series
            .iter()
            .find(|s| s.label == "r0.85:ul2:reliability")
            .expect("graph 0 surface present");
        assert!(!rel.points.is_empty());
        assert!(rel.points.iter().all(|&(_, y)| y >= 0.85 && y <= 1.0));
    }
}

//! Figures 7 and 8: the best ε for the overall performance P(s) (Eq. 9).
//!
//! For every uncertainty level, the ε sweep provides per-ε aggregates of
//! the two log terms of Eq. 9 (`ln(M_HEFT/M(ε))` and `ln(R(ε)/R_HEFT)`).
//! `P` is linear in those terms, so averaging the terms over graphs and
//! then maximizing equals averaging `P` itself. One series per UL; x is
//! the user weight `r`; y is the maximizing ε.
//!
//! Expected shapes (§5.2): best ε decreases as `r` grows (makespan-focused
//! users want tight ε); larger UL pushes the best ε higher at small `r`.

use rds_stats::series::Series;

use crate::config::ExperimentConfig;
use crate::figures::sweep::{sweep_all, sweep_epsilon_grid, UlSweep};
use crate::output::FigureData;

/// The r grid of the figures: 0.0, 0.1, …, 1.0.
#[must_use]
pub fn r_grid() -> Vec<f64> {
    (0..=10).map(|i| 0.1 * f64::from(i)).collect()
}

fn build(id: &str, title: &str, sweeps: &[UlSweep], pick_r1: bool) -> FigureData {
    let mut fig = FigureData::new(id, title, "r", "best epsilon");
    for s in sweeps {
        let rob_term = if pick_r1 { &s.r1_term } else { &s.r2_term };
        let mut series = Series::new(format!("UL={:.1}", s.ul));
        for r in r_grid() {
            let best = s
                .epsilons
                .iter()
                .enumerate()
                .filter(|&(ei, _)| s.mk_term[ei].is_finite() && rob_term[ei].is_finite())
                .max_by(|&(a, _), &(b, _)| {
                    let pa = r * s.mk_term[a] + (1.0 - r) * rob_term[a];
                    let pb = r * s.mk_term[b] + (1.0 - r) * rob_term[b];
                    pa.total_cmp(&pb)
                })
                .map(|(_, &eps)| eps)
                .unwrap_or(f64::NAN);
            series.push(r, best);
        }
        fig.push(series);
    }
    fig
}

/// Figure 7 from precomputed sweeps (overall performance uses `R1`).
#[must_use]
pub fn fig7_from_sweeps(sweeps: &[UlSweep]) -> FigureData {
    build(
        "fig7",
        "Best eps for overall performance based on R1 and makespan",
        sweeps,
        true,
    )
}

/// Figure 8 from precomputed sweeps (overall performance uses `R2`).
#[must_use]
pub fn fig8_from_sweeps(sweeps: &[UlSweep]) -> FigureData {
    build(
        "fig8",
        "Best eps for overall performance based on R2 and makespan",
        sweeps,
        false,
    )
}

/// Figure 7 generator (runs its own sweep).
#[must_use]
pub fn run_fig7(cfg: &ExperimentConfig) -> FigureData {
    fig7_from_sweeps(&sweep_all(cfg, &sweep_epsilon_grid()))
}

/// Figure 8 generator (runs its own sweep).
#[must_use]
pub fn run_fig8(cfg: &ExperimentConfig) -> FigureData {
    fig8_from_sweeps(&sweep_all(cfg, &sweep_epsilon_grid()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::sweep::UlSweep;

    /// A synthetic sweep with a clean monotone trade-off.
    fn synthetic() -> UlSweep {
        // eps 1.0..2.0: makespan term falls (GA loses speed), robustness
        // term rises.
        let epsilons = vec![1.0, 1.25, 1.5, 1.75, 2.0];
        let mk_term = vec![0.05, -0.1, -0.25, -0.42, -0.6];
        let r1_term = vec![0.1, 0.35, 0.55, 0.68, 0.75];
        UlSweep {
            ul: 4.0,
            epsilons,
            r1_improvement: vec![0.0; 5],
            r2_improvement: vec![0.0; 5],
            mk_term,
            r1_term: r1_term.clone(),
            r2_term: r1_term,
        }
    }

    #[test]
    fn best_eps_is_monotone_non_increasing_in_r() {
        let fig = fig7_from_sweeps(&[synthetic()]);
        let pts = &fig.series[0].points;
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-12,
                "best eps must not rise with r: {pts:?}"
            );
        }
        // Pure robustness (r=0) wants the largest eps; pure makespan (r=1)
        // the smallest.
        assert_eq!(pts[0].1, 2.0);
        assert_eq!(pts[10].1, 1.0);
    }

    #[test]
    fn fig8_mirrors_structure() {
        let fig = fig8_from_sweeps(&[synthetic()]);
        assert_eq!(fig.id, "fig8");
        assert_eq!(fig.series.len(), 1);
        assert_eq!(fig.series[0].points.len(), 11);
    }
}

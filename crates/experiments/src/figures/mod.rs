//! Figure generators.
//!
//! * [`fig2_3`] — evolution of realized makespan / slack / R1 along GA
//!   generations under the two single objectives.
//! * [`fig4`] — improvement over HEFT at ε = 1.0.
//! * [`sweep`] — the shared ε-sweep machinery feeding Figures 5–8.
//! * [`fig5_6`] — robustness improvement when relaxing ε.
//! * [`fig7_8`] — best ε for the overall performance P(s).

pub mod adaptive_cmp;
pub mod ccr_study;
pub mod chaos_study;
pub mod contention_cmp;
pub mod correlation;
pub mod dynamic_cmp;
pub mod energy_cmp;
pub mod fault_cmp;
pub mod fig2_3;
pub mod fig4;
pub mod fig5_6;
pub mod fig7_8;
pub mod future;
pub mod gatune;
pub mod law;
pub mod online_cmp;
pub mod replication_cmp;
pub mod sweep;

//! Slack-effectiveness study (the paper's experimental question 1,
//! quantified).
//!
//! §5.1 argues from evolution traces that slack is an effective lever on
//! robustness. This companion experiment measures it directly: for each
//! workload, collect the schedule snapshots along a slack-maximizing GA
//! trajectory (plus the HEFT anchor) — the same population the paper's
//! Fig. 3 observes — Monte Carlo each snapshot, and report the rank
//! correlation between the schedule's **average slack** and its measured
//! robustness (`R1`, `R2`) as well as its **relative tardiness**
//! (negative correlation expected).
//!
//! The trajectory is the right sample: across *arbitrary* (e.g. uniformly
//! random) schedules, slack confounds with sheer makespan — a badly
//! serialized schedule is long, and sums of many independent durations
//! concentrate, making it deceptively "robust" in the relative-tardiness
//! sense. That is precisely the paper's remark that optimizing slack
//! alone yields robust-but-slow schedules; the claim being tested is that
//! *along an optimization path*, more slack buys more robustness.
//!
//! Slack is correlated in two normalizations: raw `σ̄` and
//! makespan-normalized `σ̄/M₀`.

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::heft_schedule;
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_stats::corr::spearman;
use rds_stats::rng::SeedStream;
use rds_stats::series::Series;

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// One schedule's coordinates in the correlation study.
#[derive(Debug, Clone, Copy)]
struct Sample {
    slack: f64,
    slack_norm: f64,
    /// Fraction of tasks with zero slack — Bölöni & Marinescu's
    /// critical-component count, normalized (fewer critical components ⇒
    /// more robust, so a *negative* correlation with R1 is expected).
    critical_fraction: f64,
    r1: f64,
    r2: f64,
    tardiness: f64,
}

/// Maximum number of trajectory snapshots Monte-Carloed per graph.
const MAX_SNAPSHOTS: usize = 30;

fn samples_one_graph(cfg: &ExperimentConfig, g: usize, ul: f64) -> Vec<Sample> {
    let inst = cfg.instance(g, ul);
    let seeds = SeedStream::new(cfg.sub_seed("corr", g));
    let mc =
        RealizationConfig::with_realizations(cfg.realizations).seed(seeds.branch("mc").nth_seed(0));

    // The slack-maximizing trajectory (HEFT-seeded, so the low-slack end
    // is anchored by a *sensible* schedule, not a random one).
    let ga = GaEngine::new(
        &inst,
        cfg.ga
            .seed(seeds.branch("ga").nth_seed(0))
            .max_generations(cfg.ga.max_generations.min(150)),
        Objective::MaximizeSlack,
    )
    .run();

    // Distinct best-chromosome snapshots along the history, subsampled to
    // a bounded budget, plus the HEFT anchor.
    let heft = heft_schedule(&inst);
    let mut schedules = vec![heft.schedule.clone()];
    let mut seen = std::collections::HashSet::new();
    let stride = (ga.history.len() / MAX_SNAPSHOTS).max(1);
    for entry in ga.history.iter().step_by(stride) {
        if seen.insert(entry.best_chromosome.fingerprint()) {
            schedules.push(entry.best_chromosome.decode(inst.proc_count()));
        }
    }

    schedules
        .iter()
        .map(|s| {
            let rep = monte_carlo(&inst, s, &mc).expect("valid schedule");
            let analysis = rds_sched::slack::analyze_expected(&inst, s).expect("valid schedule");
            Sample {
                slack: rep.average_slack,
                slack_norm: rep.average_slack / rep.expected_makespan,
                critical_fraction: analysis.critical_tasks().len() as f64
                    / inst.task_count() as f64,
                r1: rep.r1,
                r2: rep.r2,
                tardiness: rep.mean_tardiness,
            }
        })
        .collect()
}

/// Runs the correlation study: x = UL; one series per (slack variant,
/// robustness metric) pair, y = mean Spearman rank correlation over
/// graphs.
#[must_use]
pub fn run_correlation(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "correlation",
        "Rank correlation between schedule slack and measured robustness",
        "UL",
        "Spearman rho (mean over graphs)",
    );
    let mut series: Vec<Series> = [
        "slack~R1",
        "slack~R2",
        "slack~tardiness",
        "slack/M0~R1",
        "slack/M0~R2",
        "critical~R1",
    ]
    .iter()
    .map(|l| Series::new(*l))
    .collect();

    for &ul in &cfg.uls {
        let per_graph: Vec<Vec<Sample>> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| samples_one_graph(cfg, g, ul))
            .collect();

        let corr_over_graphs = |fx: fn(&Sample) -> f64, fy: fn(&Sample) -> f64| -> f64 {
            let rhos: Vec<f64> = per_graph
                .iter()
                .map(|samples| {
                    let xs: Vec<f64> = samples.iter().map(&fx).collect();
                    let ys: Vec<f64> = samples.iter().map(&fy).collect();
                    // Drop graphs with non-finite metrics (all-feasible R1
                    // = inf cannot happen at UL >= 2, but guard anyway).
                    if ys.iter().all(|y| y.is_finite()) {
                        spearman(&xs, &ys)
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            mean_finite(&rhos).unwrap_or(f64::NAN)
        };

        series[0].push(ul, corr_over_graphs(|s| s.slack, |s| s.r1));
        series[1].push(ul, corr_over_graphs(|s| s.slack, |s| s.r2));
        series[2].push(ul, corr_over_graphs(|s| s.slack, |s| s.tardiness));
        series[3].push(ul, corr_over_graphs(|s| s.slack_norm, |s| s.r1));
        series[4].push(ul, corr_over_graphs(|s| s.slack_norm, |s| s.r2));
        series[5].push(ul, corr_over_graphs(|s| s.critical_fraction, |s| s.r1));
    }
    for s in series {
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_slack_positively_predicts_robustness() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.realizations = 80;
        cfg.uls = vec![4.0];
        let fig = run_correlation(&cfg);
        assert_eq!(fig.series.len(), 6);
        let get = |label: &str| -> f64 {
            fig.series.iter().find(|s| s.label == label).unwrap().points[0].1
        };
        // The paper's core claim, quantified: normalized slack rises with
        // measured robustness.
        assert!(
            get("slack/M0~R1") > 0.3,
            "slack/M0 vs R1 rho = {}",
            get("slack/M0~R1")
        );
        // And the raw-slack/tardiness correlation must be negative (more
        // slack, relatively smaller overruns).
        assert!(
            get("slack~tardiness") < 0.0,
            "slack vs tardiness rho = {}",
            get("slack~tardiness")
        );
    }
}

//! Schedule robustness under injected faults.
//!
//! The paper's §5 environment is non-deterministic only in task durations;
//! this study extends the same protocol with the fault model of
//! [`rds_sched::faults`] — permanent processor failures, transient
//! slowdown windows, stragglers and task crashes — and compares how the
//! schedulers degrade as fault rates grow. Compared on the *same*
//! realizations and fault scenarios (shared `(seed, realization,
//! fault-kind)` streams):
//!
//! * static HEFT under the three recovery policies (`FailStop`,
//!   `RetrySameProc`, `MigrateReplan`);
//! * the paper's static-robust GA (ε = 1.2) under `FailStop` and
//!   `MigrateReplan`;
//! * the on-line EFT dispatcher, which retries crashes and routes around
//!   dead processors by construction.
//!
//! Output series (x = fault-rate scale, averaged over graphs):
//!
//! * `Meff:<combo>` — fault-adjusted mean makespan
//!   ([`FaultRobustnessReport::effective_mean`] with the pessimistic
//!   restart penalty of [`failure_penalty`]), normalized by HEFT's
//!   expected fault-free makespan `M₀`;
//! * `fail:<combo>` — fraction of realizations the combo failed to finish;
//! * `R1:<combo>` — tardiness robustness over completed realizations for
//!   the migrating combos.
//!
//! [`FaultRobustnessReport::effective_mean`]: rds_sched::metrics::FaultRobustnessReport::effective_mean
//! [`failure_penalty`]: rds_sched::realization::failure_penalty

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::heft_schedule;
use rds_sched::dynamic::{dynamic_makespans_faulty, DynamicPriority};
use rds_sched::faults::FaultConfig;
use rds_sched::realization::{failure_penalty, monte_carlo_faulty, RealizationConfig};
use rds_sched::recovery::{RecoveryConfig, RecoveryPolicy};
use rds_stats::series::Series;

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// Uncertainty level for the fault study (the paper's mid-range setting).
const UL: f64 = 4.0;

/// Combo labels, aligned with [`study_one_graph`]'s cell order.
const LABELS: [&str; 6] = [
    "HEFT+FailStop",
    "HEFT+Retry",
    "HEFT+Migrate",
    "GA+FailStop",
    "GA+Migrate",
    "EFT(dynamic)",
];

/// Base fault mix scaled along the x axis: aggressive enough that the
/// quick configuration separates the recovery policies, gated entirely by
/// the scale (scale 0 is the fault-free control).
#[must_use]
pub fn base_faults() -> FaultConfig {
    FaultConfig {
        failure_rate: 0.25,
        slowdown_rate: 0.3,
        straggler_rate: 0.15,
        crash_rate: 0.1,
        ..FaultConfig::default()
    }
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Fault-adjusted mean makespan / HEFT's fault-free `M₀`.
    meff: f64,
    /// Failed-realization rate.
    fail: f64,
    /// R1 over completed realizations.
    r1: f64,
}

/// One graph, all scales × combos. Outer index: scale; inner: [`LABELS`].
fn study_one_graph(cfg: &ExperimentConfig, g: usize) -> Vec<[Cell; 6]> {
    let inst = cfg.instance(g, UL);
    let heft = heft_schedule(&inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.2,
        reference_makespan: heft.makespan,
    };
    let ga = GaEngine::new(&inst, cfg.ga.seed(cfg.sub_seed("ga-faults", g)), objective).run();
    let ga_sched = ga.best_schedule(&inst);
    let mc =
        RealizationConfig::with_realizations(cfg.realizations).seed(cfg.sub_seed("mc-faults", g));
    let penalty = failure_penalty(&inst);
    let base = base_faults();

    let statics: [(&rds_sched::schedule::Schedule, RecoveryPolicy); 5] = [
        (&heft.schedule, RecoveryPolicy::FailStop),
        (&heft.schedule, RecoveryPolicy::RetrySameProc),
        (&heft.schedule, RecoveryPolicy::MigrateReplan),
        (&ga_sched, RecoveryPolicy::FailStop),
        (&ga_sched, RecoveryPolicy::MigrateReplan),
    ];

    cfg.fault_scales
        .iter()
        .map(|&scale| {
            // One horizon for every combo so all see identical scenarios.
            let faults = base.scaled(scale).with_horizon(heft.makespan);
            let mut cells = [Cell {
                meff: f64::NAN,
                fail: f64::NAN,
                r1: f64::NAN,
            }; 6];
            for (i, (schedule, policy)) in statics.iter().enumerate() {
                let rep = monte_carlo_faulty(
                    &inst,
                    schedule,
                    &mc,
                    &faults,
                    &RecoveryConfig::new(*policy),
                )
                .expect("schedules validated by their constructors");
                cells[i] = Cell {
                    meff: rep.effective_mean(penalty) / heft.makespan,
                    fail: rep.failed_rate,
                    r1: rep.r1,
                };
            }
            // The dynamic dispatcher re-routes around failures natively;
            // RetrySameProc gives it crash retries on top.
            let dyn_ms = dynamic_makespans_faulty(
                &inst,
                DynamicPriority::UpwardRank,
                cfg.realizations,
                cfg.sub_seed("dyn-faults", g),
                &faults,
                &RecoveryConfig::new(RecoveryPolicy::RetrySameProc),
            );
            let failed = dyn_ms.iter().filter(|m| m.is_none()).count();
            let sum: f64 = dyn_ms.iter().map(|m| m.unwrap_or(penalty)).sum();
            cells[5] = Cell {
                meff: sum / dyn_ms.len() as f64 / heft.makespan,
                fail: failed as f64 / dyn_ms.len() as f64,
                r1: f64::NAN,
            };
            cells
        })
        .collect()
}

/// Runs the fault-robustness study.
#[must_use]
pub fn run_fault_cmp(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "faults",
        "Schedule robustness under injected faults",
        "fault-rate scale",
        "Meff:* = fault-adjusted mean makespan / HEFT M0; fail:* = failure rate; R1:*",
    );
    let per_graph: Vec<Vec<[Cell; 6]>> = (0..cfg.graphs)
        .into_par_iter()
        .map(|g| study_one_graph(cfg, g))
        .collect();

    let mut meff: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("Meff:{l}")))
        .collect();
    let mut fail: Vec<Series> = LABELS
        .iter()
        .map(|l| Series::new(format!("fail:{l}")))
        .collect();
    let mut r1 = vec![Series::new("R1:HEFT+Migrate"), Series::new("R1:GA+Migrate")];

    for (si, &scale) in cfg.fault_scales.iter().enumerate() {
        for c in 0..LABELS.len() {
            let meffs: Vec<f64> = per_graph.iter().map(|g| g[si][c].meff).collect();
            let fails: Vec<f64> = per_graph.iter().map(|g| g[si][c].fail).collect();
            meff[c].push(scale, mean_finite(&meffs).unwrap_or(f64::NAN));
            fail[c].push(scale, mean_finite(&fails).unwrap_or(f64::NAN));
        }
        for (ri, c) in [2usize, 4].into_iter().enumerate() {
            let r1s: Vec<f64> = per_graph.iter().map(|g| g[si][c].r1).collect();
            r1[ri].push(scale, mean_finite(&r1s).unwrap_or(f64::NAN));
        }
    }
    for s in meff.into_iter().chain(fail).chain(r1) {
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(fig: &FigureData, label: &str, x: f64) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-12)
            .unwrap_or_else(|| panic!("missing x={x} in {label}"))
            .1
    }

    #[test]
    fn fault_study_separates_recovery_policies() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.tasks = 25;
        cfg.procs = 4;
        cfg.realizations = 40;
        cfg.fault_scales = vec![0.0, 1.0];
        cfg.ga = cfg.ga.max_generations(20).stall_generations(10);
        let fig = run_fault_cmp(&cfg);
        assert_eq!(fig.series.len(), 14);

        // Fault-free control: nothing fails, recovery policy is irrelevant,
        // so the HEFT combos coincide exactly on the shared realizations.
        for l in LABELS {
            assert_eq!(get(&fig, &format!("fail:{l}"), 0.0), 0.0, "{l}");
        }
        assert_eq!(
            get(&fig, "Meff:HEFT+FailStop", 0.0),
            get(&fig, "Meff:HEFT+Migrate", 0.0)
        );

        // With permanent failures on, FailStop loses realizations and the
        // restart penalty makes migration strictly better (the acceptance
        // criterion of the fault subsystem).
        assert!(get(&fig, "fail:HEFT+FailStop", 1.0) > 0.0);
        assert!(
            get(&fig, "Meff:HEFT+Migrate", 1.0) < get(&fig, "Meff:HEFT+FailStop", 1.0),
            "migrate {} !< failstop {}",
            get(&fig, "Meff:HEFT+Migrate", 1.0),
            get(&fig, "Meff:HEFT+FailStop", 1.0)
        );
        assert!(get(&fig, "Meff:GA+Migrate", 1.0) < get(&fig, "Meff:GA+FailStop", 1.0));
        // Migration completes everything; so does the dynamic dispatcher.
        assert_eq!(get(&fig, "fail:HEFT+Migrate", 1.0), 0.0);
        assert_eq!(get(&fig, "fail:EFT(dynamic)", 1.0), 0.0);
    }
}

//! Adaptive robustness: the sentinel executor against static and dynamic
//! baselines.
//!
//! The earlier fault studies measure *reactive* repair
//! ([`crate::figures::fault_cmp`]) and *proactive* provisioning
//! ([`crate::figures::replication_cmp`]). This study measures what the
//! *adaptive* layer — [`rds_sched::sentinel`]'s slack accounts and
//! escalation ladder (bounded replans → speculation → graceful
//! degradation) — buys against an ε-deadline `ε · M₀`. Four arms share
//! realizations and fault scenarios wherever the engines allow:
//!
//! * `static` — HEFT schedule, fail-stop (no recovery at all);
//! * `recovery` — HEFT schedule, migrate-replan on failures only;
//! * `dynamic` — fully online list scheduling
//!   ([`rds_sched::dynamic`], upward-rank priority, retry-in-place);
//! * `sentinel` — HEFT schedule, migrate-replan, plus the sentinel with
//!   a slack-aware replica plan to arm speculatively and the rear
//!   `--optional-fraction` of each graph (in topological order) marked
//!   droppable.
//!
//! Output series (x = fault-rate scale, one set per uncertainty level,
//! averaged over graphs):
//!
//! * `miss:<arm>@UL<u>` — deadline-miss rate at ε (failed realizations
//!   count as misses; for the sentinel a *degraded* completion that
//!   makes the deadline is a hit — the degradation shows up in
//!   `degrade:` instead);
//! * `Meff:<arm>@UL<u>` — fault-adjusted mean makespan / `M₀`;
//! * `repairs:sentinel@UL<u>` — mean sentinel-initiated replans per
//!   realization (bounded by `--max-replans`);
//! * `degrade:sentinel@UL<u>` — mean optional tasks dropped per
//!   realization;
//! * `miss_lo:/miss_hi:sentinel@UL<u>` — bootstrap 95% CI on the
//!   sentinel's miss rate ([`FaultRobustnessReport::deadline_miss_ci`]),
//!   averaged over graphs.
//!
//! The fault mix is straggler-heavy: stragglers are precisely the
//! disturbance a purely reactive policy never notices (nothing fails,
//! the schedule just quietly overruns), so they isolate the value of
//! watching the slack accounts.
//!
//! [`FaultRobustnessReport::deadline_miss_ci`]: rds_sched::metrics::FaultRobustnessReport::deadline_miss_ci

use rayon::prelude::*;

use rds_heft::heft_schedule;
use rds_sched::dynamic::{dynamic_makespans_faulty, DynamicPriority};
use rds_sched::faults::FaultConfig;
use rds_sched::realization::{
    failure_penalty, monte_carlo_adaptive, monte_carlo_faulty, RealizationConfig,
};
use rds_sched::recovery::{RecoveryConfig, RecoveryPolicy};
use rds_sched::replication::{plan_replicas, ReplicationConfig};
use rds_sched::sentinel::SentinelConfig;
use rds_stats::series::Series;

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// Arm labels, aligned with [`study_one_graph`]'s cell order.
const LABELS: [&str; 4] = ["static", "recovery", "dynamic", "sentinel"];

/// Bootstrap resamples for the sentinel's miss-rate CI.
const CI_RESAMPLES: usize = 400;

/// Base fault mix scaled along the x axis: straggler-heavy (see module
/// docs), with enough permanent failures to keep the repair machinery
/// honest.
#[must_use]
pub fn base_faults() -> FaultConfig {
    FaultConfig {
        failure_rate: 0.1,
        slowdown_rate: 0.1,
        straggler_rate: 0.3,
        straggler_factor: 3.0,
        crash_rate: 0.05,
        ..FaultConfig::default()
    }
}

/// Marks the rear `fraction` of the graph's tasks (by topological order)
/// optional. Walking the order backwards keeps the optional set
/// successor-closed, which is what [`rds_graph`]'s `mark_optional`
/// enforces. Returns the number marked.
fn mark_rear_optional(inst: &mut rds_sched::instance::Instance, fraction: f64) -> usize {
    let order =
        rds_graph::topo::topological_order(&inst.graph).expect("generated instances are acyclic");
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let target = ((order.len() as f64) * fraction).round() as usize;
    let mut marked = 0;
    for &t in order.iter().rev() {
        if marked >= target {
            break;
        }
        if inst.graph.mark_optional(t) {
            marked += 1;
        }
    }
    marked
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Deadline-miss rate at ε.
    miss: f64,
    /// Fault-adjusted mean makespan / M₀.
    meff: f64,
    /// Mean sentinel replans (sentinel arm; reactive replans otherwise).
    repairs: f64,
    /// Mean dropped optional tasks (sentinel arm only).
    degrade: f64,
    /// Bootstrap CI on the miss rate (sentinel arm only).
    miss_lo: f64,
    miss_hi: f64,
}

impl Cell {
    const NAN: Self = Self {
        miss: f64::NAN,
        meff: f64::NAN,
        repairs: f64::NAN,
        degrade: f64::NAN,
        miss_lo: f64::NAN,
        miss_hi: f64::NAN,
    };
}

/// One graph at one uncertainty level, all scales × arms.
/// Outer index: scale; inner: [`LABELS`].
fn study_one_graph(cfg: &ExperimentConfig, g: usize, ul: f64) -> Vec<[Cell; 4]> {
    let mut inst = cfg.instance(g, ul);
    mark_rear_optional(&mut inst, cfg.optional_fraction);
    let heft = heft_schedule(&inst);
    let deadline = cfg.epsilon * heft.makespan;
    let rcfg = ReplicationConfig {
        budget: cfg.replication_budget,
        policy: cfg.placement,
        seed: cfg.sub_seed("replica-placement", g),
        ..ReplicationConfig::default()
    };
    let plan = plan_replicas(&inst, &heft.schedule, &rcfg)
        .expect("HEFT schedules are acyclic by construction");
    let scfg = SentinelConfig::default()
        .with_epsilon(cfg.epsilon)
        .with_trigger(cfg.sentinel_trigger)
        .with_max_replans(cfg.max_replans);
    let fail_stop = RecoveryConfig::new(RecoveryPolicy::FailStop);
    let migrate = RecoveryConfig::new(RecoveryPolicy::MigrateReplan);
    let retry = RecoveryConfig::new(RecoveryPolicy::RetrySameProc);
    let mc_seed = cfg.sub_seed("mc-adaptive", g);
    let mc = RealizationConfig::with_realizations(cfg.realizations).seed(mc_seed);
    let penalty = failure_penalty(&inst);
    let base = base_faults();

    cfg.fault_scales
        .iter()
        .map(|&scale| {
            // One horizon for every arm so all see identical scenarios.
            let faults = base.scaled(scale).with_horizon(heft.makespan);
            let mut cells = [Cell::NAN; 4];
            for (i, recovery) in [(0, &fail_stop), (1, &migrate)] {
                let rep = monte_carlo_faulty(&inst, &heft.schedule, &mc, &faults, recovery)
                    .expect("HEFT schedules are acyclic by construction")
                    .with_deadline(deadline);
                cells[i] = Cell {
                    miss: rep.deadline_miss_rate.unwrap_or(f64::NAN),
                    meff: rep.effective_mean(penalty) / heft.makespan,
                    repairs: rep.mean_replans,
                    ..Cell::NAN
                };
            }
            // The dynamic dispatcher routes around failures natively;
            // retry-in-place gives it crash retries on top. Same seed as
            // the static arms, so it faces the same realizations.
            let dyn_ms = dynamic_makespans_faulty(
                &inst,
                DynamicPriority::UpwardRank,
                cfg.realizations,
                mc_seed,
                &faults,
                &retry,
            );
            let missed = dyn_ms
                .iter()
                .filter(|m| m.map_or(true, |ms| ms > deadline))
                .count();
            let sum: f64 = dyn_ms.iter().map(|m| m.unwrap_or(penalty)).sum();
            cells[2] = Cell {
                miss: missed as f64 / dyn_ms.len() as f64,
                meff: sum / dyn_ms.len() as f64 / heft.makespan,
                ..Cell::NAN
            };
            let rep =
                monte_carlo_adaptive(&inst, &heft.schedule, &plan, &mc, &faults, &migrate, &scfg)
                    .expect("HEFT schedules are acyclic by construction");
            let ci = rep.deadline_miss_ci(CI_RESAMPLES, mc_seed);
            cells[3] = Cell {
                miss: rep.deadline_miss_rate.unwrap_or(f64::NAN),
                meff: rep.effective_mean(penalty) / heft.makespan,
                repairs: rep.mean_sentinel_replans,
                degrade: rep.mean_dropped_tasks,
                miss_lo: ci.as_ref().map_or(f64::NAN, |c| c.lo),
                miss_hi: ci.as_ref().map_or(f64::NAN, |c| c.hi),
            };
            cells
        })
        .collect()
}

/// Runs the adaptive (sentinel) study.
#[must_use]
pub fn run_adaptive_cmp(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "adaptive",
        "Adaptive robustness: sentinel executor vs static and dynamic baselines",
        "fault-rate scale",
        "miss:* = deadline-miss rate at epsilon; Meff:* = fault-adjusted mean / M0; \
         repairs/degrade = sentinel effort; miss_lo/hi = bootstrap 95% CI",
    );
    let jobs: Vec<(usize, f64)> = (0..cfg.graphs)
        .flat_map(|g| cfg.uls.iter().map(move |&ul| (g, ul)))
        .collect();
    let per_job: Vec<((usize, f64), Vec<[Cell; 4]>)> = jobs
        .into_par_iter()
        .map(|(g, ul)| ((g, ul), study_one_graph(cfg, g, ul)))
        .collect();

    for &ul in &cfg.uls {
        let rows: Vec<&Vec<[Cell; 4]>> = per_job
            .iter()
            .filter(|((_, u), _)| (*u - ul).abs() < 1e-12)
            .map(|(_, cells)| cells)
            .collect();
        let mut miss: Vec<Series> = LABELS
            .iter()
            .map(|l| Series::new(format!("miss:{l}@UL{ul}")))
            .collect();
        let mut meff: Vec<Series> = LABELS
            .iter()
            .map(|l| Series::new(format!("Meff:{l}@UL{ul}")))
            .collect();
        let mut repairs = Series::new(format!("repairs:sentinel@UL{ul}"));
        let mut degrade = Series::new(format!("degrade:sentinel@UL{ul}"));
        let mut lo = Series::new(format!("miss_lo:sentinel@UL{ul}"));
        let mut hi = Series::new(format!("miss_hi:sentinel@UL{ul}"));
        for (si, &scale) in cfg.fault_scales.iter().enumerate() {
            for c in 0..LABELS.len() {
                let ms: Vec<f64> = rows.iter().map(|r| r[si][c].miss).collect();
                let es: Vec<f64> = rows.iter().map(|r| r[si][c].meff).collect();
                miss[c].push(scale, mean_finite(&ms).unwrap_or(f64::NAN));
                meff[c].push(scale, mean_finite(&es).unwrap_or(f64::NAN));
            }
            let sent: Vec<&Cell> = rows.iter().map(|r| &r[si][3]).collect();
            let rs: Vec<f64> = sent.iter().map(|c| c.repairs).collect();
            let ds: Vec<f64> = sent.iter().map(|c| c.degrade).collect();
            let los: Vec<f64> = sent.iter().map(|c| c.miss_lo).collect();
            let his: Vec<f64> = sent.iter().map(|c| c.miss_hi).collect();
            repairs.push(scale, mean_finite(&rs).unwrap_or(f64::NAN));
            degrade.push(scale, mean_finite(&ds).unwrap_or(f64::NAN));
            lo.push(scale, mean_finite(&los).unwrap_or(f64::NAN));
            hi.push(scale, mean_finite(&his).unwrap_or(f64::NAN));
        }
        for s in miss.into_iter().chain(meff) {
            fig.push(s);
        }
        fig.push(repairs);
        fig.push(degrade);
        fig.push(lo);
        fig.push(hi);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(fig: &FigureData, label: &str, x: f64) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-12)
            .unwrap_or_else(|| panic!("missing x={x} in {label}"))
            .1
    }

    /// The study's acceptance criterion: at UL ≥ 1.5 under the
    /// straggler-heavy mix, the sentinel's deadline-miss rate at ε is
    /// strictly below both the static-with-recovery arm and the pure
    /// dynamic arm, its replan effort respects the budget, and the CI
    /// brackets the point estimate.
    #[test]
    fn sentinel_beats_static_recovery_and_dynamic_on_misses() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.tasks = 30;
        cfg.procs = 4;
        cfg.realizations = 100;
        cfg.uls = vec![1.5];
        // Scale 0.5 keeps every arm's miss rate interior (scale 1 of this
        // mix saturates all arms near 1.0, where no ordering is visible).
        cfg.fault_scales = vec![0.5];
        cfg.optional_fraction = 0.4;
        cfg.sentinel_trigger = 0.2;
        let fig = run_adaptive_cmp(&cfg);
        assert_eq!(fig.series.len(), 12);

        let sentinel = get(&fig, "miss:sentinel@UL1.5", 0.5);
        let recovery = get(&fig, "miss:recovery@UL1.5", 0.5);
        let dynamic = get(&fig, "miss:dynamic@UL1.5", 0.5);
        let stat = get(&fig, "miss:static@UL1.5", 0.5);
        assert!(
            sentinel < recovery,
            "sentinel {sentinel} !< recovery {recovery}"
        );
        assert!(
            sentinel < dynamic,
            "sentinel {sentinel} !< dynamic {dynamic}"
        );
        assert!(stat >= recovery, "fail-stop cannot out-miss migrate-replan");

        // Replan effort respects the budget and the degradation stage
        // engages under pressure.
        assert!(get(&fig, "repairs:sentinel@UL1.5", 0.5) <= cfg.max_replans as f64);
        assert!(get(&fig, "degrade:sentinel@UL1.5", 0.5) > 0.0);

        // The bootstrap CI brackets the point estimate.
        let lo = get(&fig, "miss_lo:sentinel@UL1.5", 0.5);
        let hi = get(&fig, "miss_hi:sentinel@UL1.5", 0.5);
        assert!(
            lo <= sentinel && sentinel <= hi,
            "[{lo}, {hi}] !∋ {sentinel}"
        );
    }
}

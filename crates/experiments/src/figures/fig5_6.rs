//! Figures 5 and 6: robustness improvement from relaxing ε.
//!
//! One series per uncertainty level; x is ε ∈ (1.0, 2.0]; y is the mean
//! relative improvement of `R1` (Fig. 5) / `R2` (Fig. 6) over the ε = 1.0
//! solution. Expected shapes (§5.2): improvements grow with ε; larger UL
//! keeps improving at large ε while small UL saturates early ("at UL = 2.0
//! there is relatively no more improvement of R1 after ε = 1.6; at
//! UL = 8.0 the robustness is still improving at ε = 2.0"); the `R2`
//! curves for different ULs are less spread out than the `R1` curves.

use rds_stats::series::Series;

use crate::config::ExperimentConfig;
use crate::figures::sweep::{sweep_all, sweep_epsilon_grid, UlSweep};
use crate::output::FigureData;

fn build(id: &str, title: &str, sweeps: &[UlSweep], pick_r1: bool) -> FigureData {
    let mut fig = FigureData::new(
        id,
        title,
        "epsilon",
        if pick_r1 {
            "R1 improvement over eps = 1.0"
        } else {
            "R2 improvement over eps = 1.0"
        },
    );
    for s in sweeps {
        let mut series = Series::new(format!("UL={:.1}", s.ul));
        let imp = if pick_r1 {
            &s.r1_improvement
        } else {
            &s.r2_improvement
        };
        for (ei, &eps) in s.epsilons.iter().enumerate() {
            if eps > 1.0 + 1e-12 {
                series.push(eps, imp[ei]);
            }
        }
        fig.push(series);
    }
    fig
}

/// Figure 5 from precomputed sweeps.
#[must_use]
pub fn fig5_from_sweeps(sweeps: &[UlSweep]) -> FigureData {
    build("fig5", "R1 improvement over eps = 1.0", sweeps, true)
}

/// Figure 6 from precomputed sweeps.
#[must_use]
pub fn fig6_from_sweeps(sweeps: &[UlSweep]) -> FigureData {
    build("fig6", "R2 improvement over eps = 1.0", sweeps, false)
}

/// Figure 5 generator (runs its own sweep).
#[must_use]
pub fn run_fig5(cfg: &ExperimentConfig) -> FigureData {
    fig5_from_sweeps(&sweep_all(cfg, &sweep_epsilon_grid()))
}

/// Figure 6 generator (runs its own sweep).
#[must_use]
pub fn run_fig6(cfg: &ExperimentConfig) -> FigureData {
    fig6_from_sweeps(&sweep_all(cfg, &sweep_epsilon_grid()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::sweep::sweep_ul;

    #[test]
    fn fig5_series_have_expected_grid() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.uls = vec![4.0];
        cfg.ga = cfg.ga.max_generations(20).stall_generations(10);
        let sweeps = vec![sweep_ul(&cfg, 4.0, &[1.0, 1.4, 2.0])];
        let fig = fig5_from_sweeps(&sweeps);
        assert_eq!(fig.series.len(), 1);
        // Reference point 1.0 is excluded from the plot.
        let xs: Vec<f64> = fig.series[0].points.iter().map(|&(x, _)| x).collect();
        assert_eq!(xs, vec![1.4, 2.0]);
        let fig6 = fig6_from_sweeps(&sweeps);
        assert_eq!(fig6.series[0].points.len(), 2);
    }
}

//! Crash-safety study: the service's durability and supervision claims
//! measured under injected chaos, at increasing worker-panic rates.
//!
//! Three scenarios run at every panic rate on the x axis:
//!
//! * **live** — a batch drains through a journaled, supervised service
//!   while chaos kills worker threads mid-job. Claims: no job is lost
//!   (`lost:live` ≡ 0), the journal owes nothing after a clean drain
//!   (`pending:live` ≡ 0), and panics convert into retries or typed
//!   failures (`retries:live`, `failed:live`).
//! * **restart** — the journal file is cut at byte N mid-run (a
//!   simulated `kill -9`); a second service incarnation recovers it.
//!   Claims: every accepted-and-unfinished job in the surviving prefix
//!   is replayed to a terminal result (`lost:restart` ≡ 0), and
//!   `recovery-ms:restart` reports the wall-clock cost of replay.
//! * **brownout** — a paused service is flooded past its brownout
//!   ladder, then drained under the same panic chaos. Claims: the
//!   accounting of shed/fast-rejected/degraded/completed jobs balances
//!   exactly (`lost:brownout` ≡ 0) while the ladder visibly engages
//!   (`shed:brownout`, `degraded:brownout`).
//!
//! `scripts/chaos_quick.sh` snapshots this figure into
//! `BENCH_serve.json` and fails CI on any nonzero loss.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rds_sched::{Instance, InstanceSpec};
use rds_service::{
    Algo, BrownoutConfig, JobError, JobSpec, Journal, Service, ServiceChaos, ServiceConfig,
    SupervisorConfig,
};
use rds_stats::series::Series;

use crate::config::ExperimentConfig;
use crate::output::FigureData;

/// Worker-panic probabilities swept on the x axis.
const PANIC_RATES: [f64; 3] = [0.0, 0.3, 0.6];

/// Jobs per scenario run.
const JOBS: usize = 12;

fn unique_journal(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "rds_chaos_study_{}_{}_{tag}.wal",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn instance(cfg: &ExperimentConfig, which: usize) -> Arc<Instance> {
    Arc::new(
        InstanceSpec::new(cfg.tasks.clamp(10, 25), cfg.procs.clamp(2, 4))
            .seed(cfg.sub_seed("chaos-instance", which))
            .build()
            .expect("chaos study instance"),
    )
}

/// A mixed batch: express list-scheduler jobs plus a few quick GA jobs
/// (heavy lane), so both lanes and both work shapes face the chaos.
fn batch(cfg: &ExperimentConfig, n: usize) -> Vec<JobSpec> {
    let a = instance(cfg, 0);
    let b = instance(cfg, 1);
    (0..n)
        .map(|i| {
            let inst = if i % 2 == 0 { &a } else { &b };
            if i % 4 == 3 {
                JobSpec::new(format!("job-{i:02}"), Algo::Ga, Arc::clone(inst))
                    .seed(cfg.sub_seed("chaos-ga", i))
                    .generations(6)
            } else {
                JobSpec::new(format!("job-{i:02}"), Algo::Heft, Arc::clone(inst))
            }
        })
        .collect()
}

fn supervision() -> SupervisorConfig {
    SupervisorConfig::default()
        .max_attempts(4)
        .backoff_base(Duration::from_millis(1))
        .backoff_cap(Duration::from_millis(5))
}

fn chaos(cfg: &ExperimentConfig, rate: f64, arm: usize) -> ServiceChaos {
    ServiceChaos::seeded(cfg.sub_seed("chaos-seed", arm)).panic_rate(rate)
}

/// Per-scenario outcome row, keyed into the figure's series.
struct Cell {
    lost: f64,
    pending_after_drain: f64,
    completed: f64,
    failed: f64,
    retries: f64,
    restart_lost: f64,
    restart_recovered: f64,
    recovery_ms: f64,
    brownout_lost: f64,
    brownout_shed: f64,
    brownout_degraded: f64,
}

/// Scenario 1: journaled service drains a batch while chaos kills
/// workers. Returns (lost, pending-after-drain, completed, failed,
/// retries-per-job).
fn live_scenario(cfg: &ExperimentConfig, rate: f64) -> (f64, f64, f64, f64, f64) {
    let path = unique_journal("live");
    let _ = std::fs::remove_file(&path);
    let config = ServiceConfig::default()
        .workers(3)
        .journal(&path)
        .supervisor(supervision())
        .chaos(chaos(cfg, rate, 0));
    let (results, metrics) = Service::run_batch(config, batch(cfg, JOBS));
    let lost = JOBS.saturating_sub(results.len());
    // After a clean drain the journal owes the next incarnation nothing.
    let recovery = Journal::recover_file(&path).expect("journal scans");
    std::fs::remove_file(&path).ok();
    (
        lost as f64,
        recovery.pending.len() as f64,
        metrics.completed as f64 / JOBS as f64,
        metrics.failed as f64 / JOBS as f64,
        metrics.retries as f64 / JOBS as f64,
    )
}

/// Scenario 2: the journal is cut at byte N mid-run; a fresh incarnation
/// replays the surviving obligation. Returns (lost, recovered,
/// recovery-ms).
fn restart_scenario(cfg: &ExperimentConfig, rate: f64) -> (f64, f64, f64) {
    let path = unique_journal("restart");
    let _ = std::fs::remove_file(&path);
    // Cut deep enough that the header plus several accepted records
    // survive, shallow enough that the tail of the run is torn off.
    let first = ServiceConfig::default()
        .workers(2)
        .journal(&path)
        .supervisor(supervision())
        .chaos(chaos(cfg, rate, 1).journal_kill_at(6000));
    let _ = Service::run_batch(first, batch(cfg, JOBS));

    // What does the cut file owe? (Ground truth for the loss count.)
    let owed: HashSet<String> = Journal::recover_file(&path)
        .expect("cut journal scans")
        .pending
        .iter()
        .map(|e| e.id.clone())
        .collect();

    let second = ServiceConfig::default()
        .workers(2)
        .journal(&path)
        .supervisor(supervision());
    let (service, rx) = Service::try_start(second).expect("restart incarnation");
    let started = Instant::now();
    let report = service.recover().expect("journal recovery");
    let mut terminal: HashSet<String> = HashSet::new();
    for _ in 0..report.replayed + report.failed {
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(result) => {
                terminal.insert(result.id);
            }
            Err(_) => break,
        }
    }
    let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
    service.shutdown();
    std::fs::remove_file(&path).ok();
    let lost = owed.iter().filter(|id| !terminal.contains(*id)).count();
    (lost as f64, report.replayed as f64, recovery_ms)
}

/// Scenario 3: flood a paused brownout service past its ladder, then
/// drain under panic chaos. Returns (lost, shed-frac, degraded-frac).
fn brownout_scenario(cfg: &ExperimentConfig, rate: f64) -> (f64, f64, f64) {
    let config = ServiceConfig::default()
        .workers(1)
        .queue_capacity(64)
        .paused()
        .supervisor(supervision())
        .brownout(
            BrownoutConfig::default()
                .depths(2.0, 5.0, 9.0)
                .alpha(1.0)
                .retry_after_ms(50),
        )
        .chaos(chaos(cfg, rate, 2));
    let (service, rx) = Service::start(config);
    let n = 2 * JOBS;
    let mut refused = 0usize;
    let mut accepted = 0usize;
    for spec in batch(cfg, n) {
        match service.submit(spec) {
            Ok(()) => accepted += 1,
            Err(
                JobError::Overloaded { .. } | JobError::Rejected(_) | JobError::RateLimited { .. },
            ) => refused += 1,
            Err(JobError::Failed(e)) => panic!("admission cannot fail a job: {e}"),
        }
    }
    service.resume();
    let mut terminal = 0usize;
    while terminal < accepted {
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(_) => terminal += 1,
            Err(_) => break,
        }
    }
    let metrics = service.shutdown();
    let lost = accepted.saturating_sub(terminal) + n.saturating_sub(accepted + refused);
    (
        lost as f64,
        (metrics.brownout_shed + metrics.breaker_fast_rejections) as f64 / n as f64,
        metrics.brownout_degraded as f64 / n as f64,
    )
}

fn run_rate(cfg: &ExperimentConfig, rate: f64) -> Cell {
    let (lost, pending, completed, failed, retries) = live_scenario(cfg, rate);
    let (restart_lost, restart_recovered, recovery_ms) = restart_scenario(cfg, rate);
    let (brownout_lost, brownout_shed, brownout_degraded) = brownout_scenario(cfg, rate);
    Cell {
        lost,
        pending_after_drain: pending,
        completed,
        failed,
        retries,
        restart_lost,
        restart_recovered,
        recovery_ms,
        brownout_lost,
        brownout_shed,
        brownout_degraded,
    }
}

/// Runs the crash-safety study across the panic-rate grid.
#[must_use]
pub fn run_chaos_study(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "chaos",
        "Crash-safe serving: job loss, recovery, and brownout under injected chaos",
        "worker panic rate",
        "lost:* must be 0; completed/failed/shed/degraded are fractions of \
         offered jobs; recovery-ms is wall-clock replay time",
    );
    let labels = [
        "lost:live",
        "pending:live",
        "completed:live",
        "failed:live",
        "retries:live",
        "lost:restart",
        "recovered:restart",
        "recovery-ms:restart",
        "lost:brownout",
        "shed:brownout",
        "degraded:brownout",
    ];
    let mut series: Vec<Series> = labels.iter().map(|l| Series::new(*l)).collect();
    for &rate in &PANIC_RATES {
        let cell = run_rate(cfg, rate);
        let values = [
            cell.lost,
            cell.pending_after_drain,
            cell.completed,
            cell.failed,
            cell.retries,
            cell.restart_lost,
            cell.restart_recovered,
            cell.recovery_ms,
            cell.brownout_lost,
            cell.brownout_shed,
            cell.brownout_degraded,
        ];
        for (s, v) in series.iter_mut().zip(values) {
            s.push(rate, v);
        }
    }
    for s in series {
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(fig: &FigureData, label: &str, x: f64) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-12)
            .unwrap_or_else(|| panic!("missing x={x} in {label}"))
            .1
    }

    /// The study's acceptance criterion: zero job loss in every scenario
    /// at every panic rate, an empty journal after a clean drain, and a
    /// brownout ladder that visibly sheds under flood.
    #[test]
    fn chaos_study_loses_nothing_and_recovers() {
        let cfg = ExperimentConfig::smoke();
        let fig = run_chaos_study(&cfg);
        for &rate in &PANIC_RATES {
            assert_eq!(get(&fig, "lost:live", rate), 0.0, "rate {rate}");
            assert_eq!(get(&fig, "pending:live", rate), 0.0, "rate {rate}");
            assert_eq!(get(&fig, "lost:restart", rate), 0.0, "rate {rate}");
            assert_eq!(get(&fig, "lost:brownout", rate), 0.0, "rate {rate}");
            assert!(
                (get(&fig, "completed:live", rate) + get(&fig, "failed:live", rate) - 1.0).abs()
                    < 1e-9,
                "rate {rate}: every job ends terminal"
            );
            assert!(get(&fig, "shed:brownout", rate) > 0.0, "flood must shed");
        }
        // Chaos really fired at nonzero rates: retries or failures show.
        assert!(
            get(&fig, "retries:live", 0.6) + get(&fig, "failed:live", 0.6) > 0.0,
            "panic chaos left no trace"
        );
        assert_eq!(get(&fig, "retries:live", 0.0), 0.0, "quiet path retries");
    }
}

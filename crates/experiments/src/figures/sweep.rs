//! The shared ε sweep behind Figures 5–8.
//!
//! For every uncertainty level and every ε on the grid, run the
//! ε-constraint GA on each graph and Monte Carlo the best schedule. The
//! aggregation keeps exactly the quantities the four figures need:
//!
//! * relative `R1`/`R2` improvement over the ε = 1.0 point (Figs. 5–6);
//! * mean log ratios against HEFT: `ln(M_HEFT/M(ε))`, `ln(R(ε)/R_HEFT)`
//!   (Figs. 7–8 plug these into Eq. 9).

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_heft::heft_schedule;
use rds_sched::realization::{monte_carlo, RealizationConfig};
use rds_stats::series::log_ratio;

use crate::config::{mean_finite, ExperimentConfig};

/// Metrics of one (graph, ε) cell.
#[derive(Debug, Clone, Copy)]
pub struct CellMetrics {
    /// Mean realized makespan of the GA schedule.
    pub mean_makespan: f64,
    /// `R1` of the GA schedule.
    pub r1: f64,
    /// `R2` of the GA schedule.
    pub r2: f64,
}

/// Per-UL sweep results, aggregated over graphs.
#[derive(Debug, Clone)]
pub struct UlSweep {
    /// The uncertainty level.
    pub ul: f64,
    /// The ε grid (index 0 must be 1.0 — the reference point).
    pub epsilons: Vec<f64>,
    /// Mean relative `R1` improvement over ε = 1.0, per ε.
    pub r1_improvement: Vec<f64>,
    /// Mean relative `R2` improvement over ε = 1.0, per ε.
    pub r2_improvement: Vec<f64>,
    /// Mean `ln(M_HEFT / M(ε))` (realized means), per ε.
    pub mk_term: Vec<f64>,
    /// Mean `ln(R1(ε) / R1_HEFT)`, per ε.
    pub r1_term: Vec<f64>,
    /// Mean `ln(R2(ε) / R2_HEFT)`, per ε.
    pub r2_term: Vec<f64>,
}

/// The paper's ε grid for the sweep figures: 1.0, 1.2, …, 2.0 (Fig. 5–6
/// plot from 1.2; 1.0 is the reference and Fig. 7–8 include it).
#[must_use]
pub fn sweep_epsilon_grid() -> Vec<f64> {
    (0..=5).map(|i| 1.0 + 0.2 * f64::from(i)).collect()
}

/// Runs the sweep for one uncertainty level.
#[must_use]
pub fn sweep_ul(cfg: &ExperimentConfig, ul: f64, epsilons: &[f64]) -> UlSweep {
    assert!(
        (epsilons[0] - 1.0).abs() < 1e-12,
        "epsilon grid must start at the 1.0 reference"
    );
    // cells[g][e]
    let cells: Vec<(Vec<CellMetrics>, CellMetrics)> = (0..cfg.graphs)
        .into_par_iter()
        .map(|g| {
            let inst = cfg.instance(g, ul);
            let heft = heft_schedule(&inst);
            let mc = RealizationConfig::with_realizations(cfg.realizations)
                .seed(cfg.sub_seed("mc-sweep", g));
            let heft_rep = monte_carlo(&inst, &heft.schedule, &mc).expect("HEFT valid");
            let heft_cell = CellMetrics {
                mean_makespan: heft_rep.mean_makespan,
                r1: heft_rep.r1,
                r2: heft_rep.r2,
            };
            let row: Vec<CellMetrics> = epsilons
                .iter()
                .enumerate()
                .map(|(ei, &epsilon)| {
                    let objective = Objective::EpsilonConstraint {
                        epsilon,
                        reference_makespan: heft.makespan,
                    };
                    let seed = cfg.sub_seed("ga-sweep", g * 1000 + ei);
                    let ga = GaEngine::new(&inst, cfg.ga.seed(seed), objective).run();
                    let schedule = ga.best_schedule(&inst);
                    let rep = monte_carlo(&inst, &schedule, &mc).expect("GA valid");
                    CellMetrics {
                        mean_makespan: rep.mean_makespan,
                        r1: rep.r1,
                        r2: rep.r2,
                    }
                })
                .collect();
            (row, heft_cell)
        })
        .collect();

    let ne = epsilons.len();
    let agg = |f: &dyn Fn(&CellMetrics, &CellMetrics, &CellMetrics) -> f64| -> Vec<f64> {
        (0..ne)
            .map(|ei| {
                let vals: Vec<f64> = cells
                    .iter()
                    .map(|(row, heft)| f(&row[ei], &row[0], heft))
                    .collect();
                mean_finite(&vals).unwrap_or(f64::NAN)
            })
            .collect()
    };

    UlSweep {
        ul,
        epsilons: epsilons.to_vec(),
        r1_improvement: agg(&|c, base, _| {
            if base.r1.is_finite() && c.r1.is_finite() && base.r1 > 0.0 {
                (c.r1 - base.r1) / base.r1
            } else {
                f64::NAN
            }
        }),
        r2_improvement: agg(&|c, base, _| {
            if base.r2.is_finite() && c.r2.is_finite() && base.r2 > 0.0 {
                (c.r2 - base.r2) / base.r2
            } else {
                f64::NAN
            }
        }),
        mk_term: agg(&|c, _, h| log_ratio(h.mean_makespan, c.mean_makespan)),
        r1_term: agg(&|c, _, h| log_ratio(c.r1, h.r1)),
        r2_term: agg(&|c, _, h| log_ratio(c.r2, h.r2)),
    }
}

/// Runs the sweep for every configured uncertainty level.
#[must_use]
pub fn sweep_all(cfg: &ExperimentConfig, epsilons: &[f64]) -> Vec<UlSweep> {
    cfg.uls
        .iter()
        .map(|&ul| sweep_ul(cfg, ul, epsilons))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_starts_at_reference() {
        let g = sweep_epsilon_grid();
        assert_eq!(g[0], 1.0);
        assert!((g[5] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_reference_improvement_is_zero() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.ga = cfg.ga.max_generations(20).stall_generations(10);
        let s = sweep_ul(&cfg, 4.0, &[1.0, 1.6]);
        assert_eq!(s.epsilons.len(), 2);
        // Improvement of eps=1.0 over itself is exactly 0.
        assert!(s.r1_improvement[0].abs() < 1e-12);
        assert!(s.r2_improvement[0].abs() < 1e-12);
        // Relaxing to 1.6 should not hurt robustness.
        assert!(
            s.r1_improvement[1] > -0.1,
            "R1 improvement at eps=1.6: {}",
            s.r1_improvement[1]
        );
    }

    #[test]
    #[should_panic(expected = "reference")]
    fn grid_without_reference_rejected() {
        let cfg = ExperimentConfig::smoke();
        let _ = sweep_ul(&cfg, 2.0, &[1.2, 1.6]);
    }
}

//! GA hyper-parameter sensitivity.
//!
//! The paper fixes `Np = 20, pc = 0.9, pm = 0.1` without justification.
//! This study checks how sensitive the ε-constraint result is to those
//! choices at an **equal evaluation budget** (population × generations is
//! held constant, so a bigger population gets fewer generations): the
//! achieved average slack at ε = 1.4, relative to the paper's
//! configuration.
//!
//! Output: x = configuration index; series `slack_vs_paper` =
//! `mean σ̄(config) / σ̄(paper)`, plus a `label:<i>` legend series is not
//! expressible in the CSV, so labels are printed to stderr and recorded
//! in the series name.

use rayon::prelude::*;

use rds_ga::{GaEngine, GaParams, GaRunStats, Objective};
use rds_heft::heft_schedule;
use rds_stats::series::Series;

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// The configurations compared. `(label, population, pm, pc)`; the
/// generation count is `budget / population`.
pub const CONFIGS: [(&str, usize, f64, f64); 6] = [
    ("paper Np=20 pm=0.1 pc=0.9", 20, 0.1, 0.9),
    ("small-pop Np=10", 10, 0.1, 0.9),
    ("big-pop Np=40", 40, 0.1, 0.9),
    ("low-mutation pm=0.02", 20, 0.02, 0.9),
    ("high-mutation pm=0.4", 20, 0.4, 0.9),
    ("low-crossover pc=0.3", 20, 0.1, 0.3),
];

fn slack_one(
    cfg: &ExperimentConfig,
    g: usize,
    population: usize,
    pm: f64,
    pc: f64,
) -> (f64, GaRunStats) {
    let inst = cfg.instance(g, 4.0);
    let heft = heft_schedule(&inst);
    let budget = cfg.ga.max_generations * cfg.ga.population;
    let generations = (budget / population).max(1);
    let mut params = GaParams::paper()
        .population(population)
        .max_generations(generations)
        .stall_generations(generations) // equal budget: no early stop
        .seed(cfg.sub_seed("gatune", g));
    params.mutation_prob = pm;
    params.crossover_prob = pc;
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.4,
        reference_makespan: heft.makespan,
    };
    let result = GaEngine::new(&inst, params, objective).run();
    (result.best_eval.avg_slack, result.stats)
}

/// Runs the tuning study.
#[must_use]
pub fn run_gatune(cfg: &ExperimentConfig) -> FigureData {
    let mut fig = FigureData::new(
        "gatune",
        "GA hyper-parameter sensitivity at equal evaluation budget (eps = 1.4, UL = 4)",
        "config",
        "best slack relative to the paper configuration",
    );
    // Per-graph paper-config slack as the normalizer.
    let paper_runs: Vec<(f64, GaRunStats)> = (0..cfg.graphs)
        .into_par_iter()
        .map(|g| slack_one(cfg, g, CONFIGS[0].1, CONFIGS[0].2, CONFIGS[0].3))
        .collect();
    let paper: Vec<f64> = paper_runs.iter().map(|&(s, _)| s).collect();
    let mut stats = GaRunStats::default();
    for (_, s) in &paper_runs {
        stats.absorb(s);
    }

    for (ci, &(label, np, pm, pc)) in CONFIGS.iter().enumerate() {
        let runs: Vec<(f64, GaRunStats)> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| {
                if ci == 0 {
                    // Reuse the normalizer runs (stats already absorbed).
                    (paper[g], GaRunStats::default())
                } else {
                    slack_one(cfg, g, np, pm, pc)
                }
            })
            .collect();
        let ratios: Vec<f64> = runs
            .iter()
            .zip(&paper)
            .map(|(&(s, _), &p)| if p > 0.0 { s / p } else { f64::NAN })
            .collect();
        for (_, s) in &runs {
            stats.absorb(s);
        }
        let mut series = Series::new(label);
        series.push(ci as f64, mean_finite(&ratios).unwrap_or(f64::NAN));
        fig.push(series);
    }
    eprintln!(
        "gatune: {} kernel evals, memo hit rate {:.2}, {:.0} evals/s",
        stats.kernel_evals,
        stats.memo_hit_rate(),
        stats.evals_per_sec()
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_normalizes_to_one() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 2;
        cfg.ga = cfg.ga.max_generations(20).population(10);
        let fig = run_gatune(&cfg);
        assert_eq!(fig.series.len(), CONFIGS.len());
        let paper = &fig.series[0];
        assert!((paper.points[0].1 - 1.0).abs() < 1e-12);
        // Every variant stays within a sane band of the paper config at
        // this tiny scale.
        for s in &fig.series {
            let y = s.points[0].1;
            assert!(y.is_finite() && y > 0.2 && y < 3.0, "{}: {y}", s.label);
        }
    }
}

//! Figures 2 and 3: metric evolution along GA generations.
//!
//! For every uncertainty level, run the GA with a *single* objective —
//! minimize makespan (Fig. 2) or maximize slack (Fig. 3) — and, every
//! `history_stride` generations, re-evaluate the generation's best schedule
//! in the simulated "real environment": mean realized makespan over the
//! Monte Carlo realizations, the schedule's average slack, and `R1`. The
//! plotted value is the natural-log ratio of each metric to its step-0
//! value, averaged over graphs.
//!
//! Expected shapes (paper §5.1): under the makespan objective, slack and
//! R1 *fall* as evolution proceeds (all series negative), and at high UL
//! the realized-makespan gain flattens ("overfitting"); under the slack
//! objective, slack and R1 *rise* together while the makespan rises too —
//! slack and robustness are positively related, slack and makespan
//! conflict.

use std::collections::HashMap;

use rayon::prelude::*;

use rds_ga::{GaEngine, Objective};
use rds_sched::realization::{realized_makespans_with, RealizationConfig};
use rds_sched::slack;
use rds_sched::timing::expected_durations;
use rds_stats::series::{log_ratio, Series};

use crate::config::{mean_finite, ExperimentConfig};
use crate::output::FigureData;

/// Realized metrics of one schedule snapshot.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    mean_makespan: f64,
    avg_slack: f64,
    r1: f64,
}

/// Per-graph evolution traces, sampled every `stride` generations.
fn trace_one_graph(
    cfg: &ExperimentConfig,
    objective: Objective,
    g: usize,
    ul: f64,
    steps: &[usize],
) -> Vec<Snapshot> {
    let inst = cfg.instance(g, ul);
    // The evolution figures measure the GA's own progress relative to its
    // step-0 population, so the HEFT seed is disabled here: with it, the
    // step-0 best is already HEFT-quality and the curves flatten (the
    // paper's Fig. 2 shows the makespan dropping far below its step-0
    // value, which is only possible from a random start). The stall rule
    // is also disabled so every run traces the full generation range.
    let params = cfg
        .ga
        .seed(cfg.sub_seed("ga-evolution", g))
        .without_heft_seed()
        .stall_generations(cfg.ga.max_generations.max(1));
    let ga = GaEngine::new(&inst, params, objective).run();
    let mc = RealizationConfig::with_realizations(cfg.realizations)
        .seed(cfg.sub_seed("mc-evolution", g));

    // The best chromosome is often unchanged across strides; cache realized
    // metrics by fingerprint.
    let mut cache: HashMap<u64, Snapshot> = HashMap::new();
    steps
        .iter()
        .map(|&s| {
            let idx = s.min(ga.history.len() - 1);
            let entry = &ga.history[idx];
            let fp = entry.best_chromosome.fingerprint();
            if let Some(&snap) = cache.get(&fp) {
                return snap;
            }
            let schedule = entry.best_chromosome.decode(inst.proc_count());
            let ds = rds_sched::disjunctive::DisjunctiveGraph::build(&inst.graph, &schedule)
                .expect("GA chromosomes decode to valid schedules");
            let durations = expected_durations(&inst.timing, &schedule);
            let analysis = slack::analyze(&ds, &schedule, &inst.platform, &durations);
            let makespans = realized_makespans_with(&inst, &schedule, &ds, &mc);
            let n = makespans.len() as f64;
            let mean_makespan = makespans.iter().sum::<f64>() / n;
            let mean_tardiness = makespans
                .iter()
                .map(|&m| (m - analysis.makespan).max(0.0) / analysis.makespan)
                .sum::<f64>()
                / n;
            let snap = Snapshot {
                mean_makespan,
                avg_slack: analysis.average_slack,
                r1: rds_sched::metrics::r1_from_tardiness(mean_tardiness),
            };
            cache.insert(fp, snap);
            snap
        })
        .collect()
}

fn run_evolution(
    cfg: &ExperimentConfig,
    objective: Objective,
    id: &str,
    title: &str,
) -> FigureData {
    let steps: Vec<usize> = (0..=cfg.ga.max_generations)
        .step_by(cfg.history_stride)
        .collect();
    let mut fig = FigureData::new(
        id,
        title,
        "generation",
        "ln ratio of the change relative to step 0",
    );
    for &ul in &cfg.uls {
        // Parallel over graphs; deterministic because each graph derives
        // its own seeds.
        let traces: Vec<Vec<Snapshot>> = (0..cfg.graphs)
            .into_par_iter()
            .map(|g| trace_one_graph(cfg, objective, g, ul, &steps))
            .collect();

        let mut s_mk = Series::new(format!("UL={ul:.1},Makespan"));
        let mut s_slack = Series::new(format!("UL={ul:.1},Slack"));
        let mut s_r1 = Series::new(format!("UL={ul:.1},R1"));
        for (si, &step) in steps.iter().enumerate() {
            let mk: Vec<f64> = traces
                .iter()
                .map(|t| log_ratio(t[si].mean_makespan, t[0].mean_makespan))
                .collect();
            let sl: Vec<f64> = traces
                .iter()
                .map(|t| log_ratio(t[si].avg_slack, t[0].avg_slack))
                .collect();
            let r1: Vec<f64> = traces
                .iter()
                .map(|t| log_ratio(t[si].r1, t[0].r1))
                .collect();
            s_mk.push(step as f64, mean_finite(&mk).unwrap_or(f64::NAN));
            s_slack.push(step as f64, mean_finite(&sl).unwrap_or(f64::NAN));
            s_r1.push(step as f64, mean_finite(&r1).unwrap_or(f64::NAN));
        }
        fig.push(s_mk);
        fig.push(s_slack);
        fig.push(s_r1);
    }
    fig
}

/// Figure 2: evolution under the *minimize makespan* objective.
#[must_use]
pub fn run_fig2(cfg: &ExperimentConfig) -> FigureData {
    run_evolution(
        cfg,
        Objective::MinimizeMakespan,
        "fig2",
        "Evolution of a GA when minimizing the makespan is the objective",
    )
}

/// Figure 3: evolution under the *maximize slack* objective.
#[must_use]
pub fn run_fig3(cfg: &ExperimentConfig) -> FigureData {
    run_evolution(
        cfg,
        Objective::MaximizeSlack,
        "fig3",
        "Evolution of a GA when maximizing the slack is the objective",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_slack_rises_and_makespan_rises() {
        let cfg = ExperimentConfig::smoke();
        let fig = run_fig3(&cfg);
        // 2 ULs × 3 metrics.
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            assert_eq!(
                s.points.len(),
                cfg.ga.max_generations / cfg.history_stride + 1
            );
            // Step 0 is the reference: ln ratio 0.
            assert_eq!(s.points[0].1, 0.0);
        }
        // Slack series end above 0 (slack grows under the slack objective).
        for s in fig.series.iter().filter(|s| s.label.contains("Slack")) {
            assert!(
                s.last_y().unwrap() > 0.0,
                "{}: slack should rise, got {:?}",
                s.label,
                s.last_y()
            );
        }
        // Makespan rises as well (the two objectives conflict).
        for s in fig.series.iter().filter(|s| s.label.contains("Makespan")) {
            assert!(
                s.last_y().unwrap() >= -0.05,
                "{}: makespan should not fall under slack objective",
                s.label
            );
        }
    }

    #[test]
    fn fig2_slack_falls_under_makespan_objective_at_low_ul() {
        // §5.1: "for small uncertainty level, the decrease of slack and
        // robustness is more significant" — the trend is only reliable at
        // low UL, so the smoke assertion checks the UL=2 series.
        let mut cfg = ExperimentConfig::smoke();
        cfg.graphs = 3;
        cfg.ga = cfg.ga.max_generations(60).stall_generations(30);
        let fig = run_fig2(&cfg);
        let s = fig
            .series
            .iter()
            .find(|s| s.label == "UL=2.0,Slack")
            .expect("UL=2 slack series present");
        assert!(
            s.last_y().unwrap() <= 0.1,
            "slack should fall (or at least not grow) when minimizing \
             makespan at low UL, got {:?}",
            s.last_y()
        );
        // And the makespan series itself must improve (go negative).
        let mk = fig
            .series
            .iter()
            .find(|s| s.label == "UL=2.0,Makespan")
            .unwrap();
        assert!(
            mk.last_y().unwrap() < 0.0,
            "realized makespan should improve at low UL, got {:?}",
            mk.last_y()
        );
    }
}

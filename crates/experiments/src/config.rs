//! Shared experiment configuration and CLI parsing.

use rds_ga::GaParams;
use rds_sched::instance::{Instance, InstanceSpec};
use rds_sched::replication::PlacementPolicy;
use rds_stats::rng::SeedStream;

/// Scale and workload knobs shared by every figure generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of random task graphs per data point (paper: 100).
    pub graphs: usize,
    /// Tasks per graph (paper: 100).
    pub tasks: usize,
    /// Processors (paper does not state m; 8 is the conventional choice for
    /// n = 100 in the HEFT literature).
    pub procs: usize,
    /// Monte Carlo realizations per schedule (paper: 1000).
    pub realizations: usize,
    /// GA parameters (paper: Np=20, pc=0.9, pm=0.1, 1000 gens / 100 stall).
    pub ga: GaParams,
    /// Uncertainty levels swept (paper: 2, 4, 6, 8).
    pub uls: Vec<f64>,
    /// Master seed.
    pub seed: u64,
    /// Communication-to-computation ratio (paper: 0.1; the contention
    /// study raises it).
    pub ccr: f64,
    /// Evolution-history sampling stride for Figs. 2–3 (realized metrics
    /// are recomputed every `stride` generations).
    pub history_stride: usize,
    /// Fault-rate multipliers swept by the fault-robustness figure: each
    /// scale multiplies every rate in the base
    /// [`rds_sched::faults::FaultConfig`] (0 = fault-free control).
    pub fault_scales: Vec<f64>,
    /// Replica budget for the replication study, as a fraction of the task
    /// count (1.0 = one replica per task when slack windows allow).
    pub replication_budget: f64,
    /// Replica placement policy for the replication study.
    pub placement: PlacementPolicy,
    /// Checkpoint interval for the replication study, as a fraction of a
    /// task's duration (must lie in `(0, 1]`).
    pub checkpoint_interval: f64,
    /// Per-checkpoint overhead as a fraction of the task's duration.
    pub checkpoint_overhead: f64,
    /// Deadline factor ε for the adaptive study: the deadline is
    /// `ε · M₀` (must be ≥ 1).
    pub epsilon: f64,
    /// Sentinel trigger fraction: an overrun fires when it exceeds this
    /// fraction of the task's slack account.
    pub sentinel_trigger: f64,
    /// Sentinel replan budget per realization.
    pub max_replans: usize,
    /// Fraction of each graph's tasks marked droppable (`optional`) for
    /// the adaptive study's graceful-degradation stage, taken from the
    /// rear of a topological order so the optional set is
    /// successor-closed.
    pub optional_fraction: f64,
    /// Jobs per stream for the online multi-tenant study.
    pub online_jobs: usize,
    /// Oversubscription factors swept by the online study (mean offered
    /// load relative to what the platform can absorb; 1 = critically
    /// loaded).
    pub oversubscriptions: Vec<f64>,
    /// Completion-probability floor below which an online arrival is
    /// rejected.
    pub admission_floor: f64,
    /// Completion-probability floor below which a committed online job is
    /// shed/dropped mid-flight.
    pub drop_floor: f64,
    /// Monte-Carlo samples per online completion-probability estimate.
    pub online_samples: usize,
    /// Reliability floors swept by the energy study: each threshold
    /// constrains the tri-objective front to schedules whose success
    /// probability stays at or above it.
    pub rel_mins: Vec<f64>,
    /// Output directory for CSV files.
    pub out_dir: String,
}

impl Default for ExperimentConfig {
    /// Laptop-scale defaults preserving the figures' shapes.
    fn default() -> Self {
        Self {
            graphs: 5,
            tasks: 60,
            procs: 8,
            realizations: 200,
            ga: GaParams::paper().max_generations(300).stall_generations(60),
            uls: vec![2.0, 4.0, 6.0, 8.0],
            seed: 42,
            ccr: 0.1,
            history_stride: 10,
            fault_scales: vec![0.0, 0.25, 0.5, 1.0],
            replication_budget: 1.0,
            placement: PlacementPolicy::CriticalPathFirst,
            checkpoint_interval: 0.25,
            checkpoint_overhead: 0.02,
            epsilon: 1.2,
            sentinel_trigger: 0.3,
            max_replans: 3,
            optional_fraction: 0.25,
            online_jobs: 40,
            oversubscriptions: vec![1.0, 1.5, 2.0, 3.0],
            admission_floor: 0.5,
            drop_floor: 0.25,
            online_samples: 64,
            rel_mins: vec![0.90, 0.95, 0.99],
            out_dir: "results".to_owned(),
        }
    }
}

impl ExperimentConfig {
    /// The paper's full-scale configuration.
    #[must_use]
    pub fn full() -> Self {
        Self {
            graphs: 100,
            tasks: 100,
            realizations: 1000,
            ga: GaParams::paper(),
            history_stride: 25,
            ..Self::default()
        }
    }

    /// A minimal smoke configuration for tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            graphs: 2,
            tasks: 25,
            procs: 4,
            realizations: 50,
            ga: GaParams::quick().max_generations(30).stall_generations(15),
            uls: vec![2.0, 8.0],
            seed: 7,
            ccr: 0.1,
            history_stride: 10,
            fault_scales: vec![0.0, 1.0],
            ..Self::default()
        }
    }

    /// Builds the instance for graph index `g` at uncertainty level `ul`.
    /// The graph and BCET matrix depend only on `(seed, g)`, so all ULs see
    /// the same workloads — the paper's UL sweep design.
    ///
    /// # Panics
    /// Panics when generation fails (configuration invariants are checked
    /// by the generators).
    #[must_use]
    pub fn instance(&self, g: usize, ul: f64) -> Instance {
        let graph_seed = SeedStream::new(self.seed)
            .branch("graphs")
            .nth_seed(g as u64);
        InstanceSpec::new(self.tasks, self.procs)
            .seed(graph_seed)
            .uncertainty_level(ul)
            .ccr(self.ccr)
            .build()
            .expect("valid experiment configuration")
    }

    /// Sub-seed for stochastic component `label` of graph `g`.
    #[must_use]
    pub fn sub_seed(&self, label: &str, g: usize) -> u64 {
        SeedStream::new(self.seed).branch(label).nth_seed(g as u64)
    }

    /// Parses CLI flags (everything after the subcommand). Unknown flags
    /// are an error; every flag takes a value except `--full` and
    /// `--serial`.
    ///
    /// # Errors
    /// Returns a usage message on malformed input.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut cfg = ExperimentConfig::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut take = || -> Result<&String, String> {
                it.next()
                    .ok_or_else(|| format!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--full" => {
                    cfg = ExperimentConfig::full();
                }
                "--graphs" => cfg.graphs = parse(take()?)?,
                "--tasks" => cfg.tasks = parse(take()?)?,
                "--procs" => cfg.procs = parse(take()?)?,
                "--realizations" => cfg.realizations = parse(take()?)?,
                "--generations" => {
                    let g: usize = parse(take()?)?;
                    cfg.ga = cfg.ga.max_generations(g).stall_generations(g.max(5));
                }
                "--seed" => cfg.seed = parse(take()?)?,
                "--stride" => cfg.history_stride = parse(take()?)?,
                "--ccr" => cfg.ccr = parse(take()?)?,
                "--out" => cfg.out_dir = take()?.clone(),
                "--uls" => {
                    cfg.uls = parse_list(take()?)?;
                }
                "--fault-scales" => {
                    cfg.fault_scales = parse_list(take()?)?;
                }
                "--replication-budget" => cfg.replication_budget = parse(take()?)?,
                "--placement" => {
                    let v = take()?;
                    cfg.placement = PlacementPolicy::parse(v)
                        .ok_or_else(|| format!("unknown placement policy {v}"))?;
                }
                "--ckpt-interval" => cfg.checkpoint_interval = parse(take()?)?,
                "--ckpt-overhead" => cfg.checkpoint_overhead = parse(take()?)?,
                "--epsilon" => cfg.epsilon = parse(take()?)?,
                "--trigger" => cfg.sentinel_trigger = parse(take()?)?,
                "--max-replans" => cfg.max_replans = parse(take()?)?,
                "--optional-fraction" => cfg.optional_fraction = parse(take()?)?,
                "--online-jobs" => cfg.online_jobs = parse(take()?)?,
                "--oversub" => cfg.oversubscriptions = parse_list(take()?)?,
                "--admission-floor" => cfg.admission_floor = parse(take()?)?,
                "--drop-floor" => cfg.drop_floor = parse(take()?)?,
                "--online-samples" => cfg.online_samples = parse(take()?)?,
                "--rel-mins" => cfg.rel_mins = parse_list(take()?)?,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if cfg.graphs == 0 || cfg.tasks == 0 || cfg.procs == 0 || cfg.realizations == 0 {
            return Err("graphs/tasks/procs/realizations must be positive".into());
        }
        if cfg.history_stride == 0 {
            return Err("stride must be positive".into());
        }
        if cfg.fault_scales.iter().any(|&s| s < 0.0 || !s.is_finite()) {
            return Err("fault scales must be finite and non-negative".into());
        }
        if !cfg.replication_budget.is_finite() || cfg.replication_budget < 0.0 {
            return Err("replication budget must be finite and non-negative".into());
        }
        if !(cfg.checkpoint_interval > 0.0 && cfg.checkpoint_interval <= 1.0) {
            return Err("checkpoint interval must lie in (0, 1]".into());
        }
        if !cfg.checkpoint_overhead.is_finite() || cfg.checkpoint_overhead < 0.0 {
            return Err("checkpoint overhead must be finite and non-negative".into());
        }
        if !cfg.epsilon.is_finite() || cfg.epsilon < 1.0 {
            return Err("epsilon must be finite and at least 1".into());
        }
        if !cfg.sentinel_trigger.is_finite() || cfg.sentinel_trigger < 0.0 {
            return Err("trigger must be finite and non-negative".into());
        }
        if !(0.0..=1.0).contains(&cfg.optional_fraction) {
            return Err("optional fraction must lie in [0, 1]".into());
        }
        if cfg.online_jobs == 0 || cfg.online_samples == 0 {
            return Err("online jobs and samples must be positive".into());
        }
        if cfg
            .oversubscriptions
            .iter()
            .any(|&o| !o.is_finite() || o <= 0.0)
        {
            return Err("oversubscription factors must be finite and positive".into());
        }
        if !(0.0..=1.0).contains(&cfg.admission_floor) || !(0.0..=1.0).contains(&cfg.drop_floor) {
            return Err("admission and drop floors must lie in [0, 1]".into());
        }
        if cfg.rel_mins.is_empty() || cfg.rel_mins.iter().any(|&r| !(r > 0.0 && r <= 1.0)) {
            return Err("reliability thresholds must lie in (0, 1]".into());
        }
        Ok(cfg)
    }
}

fn parse_list(s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|v| v.trim().parse::<f64>().map_err(|e| e.to_string()))
        .collect()
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse::<T>()
        .map_err(|e| format!("invalid value {s}: {e}"))
}

/// Mean of the finite values in `xs`; `None` when none are finite.
#[must_use]
pub fn mean_finite(xs: &[f64]) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x.is_finite() {
            sum += x;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn default_flags_roundtrip() {
        let cfg = ExperimentConfig::from_args(&[]).unwrap();
        assert_eq!(cfg, ExperimentConfig::default());
    }

    #[test]
    fn full_flag_scales_up() {
        let cfg = ExperimentConfig::from_args(&args(&["--full"])).unwrap();
        assert_eq!(cfg.graphs, 100);
        assert_eq!(cfg.tasks, 100);
        assert_eq!(cfg.realizations, 1000);
        assert_eq!(cfg.ga.max_generations, 1000);
    }

    #[test]
    fn individual_flags_apply() {
        let cfg = ExperimentConfig::from_args(&args(&[
            "--graphs", "3", "--tasks", "40", "--seed", "9", "--uls", "2,4", "--out", "/tmp/x",
        ]))
        .unwrap();
        assert_eq!(cfg.graphs, 3);
        assert_eq!(cfg.tasks, 40);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.uls, vec![2.0, 4.0]);
        assert_eq!(cfg.out_dir, "/tmp/x");
    }

    #[test]
    fn bad_flags_error() {
        assert!(ExperimentConfig::from_args(&args(&["--bogus"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--graphs"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--graphs", "zero"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--graphs", "0"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--fault-scales", "-1"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--fault-scales", "0,nope"])).is_err());
    }

    #[test]
    fn replication_flags_apply_and_validate() {
        let cfg = ExperimentConfig::from_args(&args(&[
            "--replication-budget",
            "0.5",
            "--placement",
            "fragile",
            "--ckpt-interval",
            "0.2",
            "--ckpt-overhead",
            "0.05",
        ]))
        .unwrap();
        assert_eq!(cfg.replication_budget, 0.5);
        assert_eq!(cfg.placement, PlacementPolicy::MostFragileFirst);
        assert_eq!(cfg.checkpoint_interval, 0.2);
        assert_eq!(cfg.checkpoint_overhead, 0.05);
        assert!(ExperimentConfig::from_args(&args(&["--replication-budget", "-1"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--placement", "psychic"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--ckpt-interval", "0"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--ckpt-interval", "1.5"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--ckpt-overhead", "-0.1"])).is_err());
        // Defaults: full coverage, critical-path-first, quarter checkpoints.
        let d = ExperimentConfig::default();
        assert_eq!(d.replication_budget, 1.0);
        assert_eq!(d.placement, PlacementPolicy::CriticalPathFirst);
    }

    #[test]
    fn sentinel_flags_apply_and_validate() {
        let cfg = ExperimentConfig::from_args(&args(&[
            "--epsilon",
            "1.5",
            "--trigger",
            "0.1",
            "--max-replans",
            "5",
            "--optional-fraction",
            "0.4",
        ]))
        .unwrap();
        assert_eq!(cfg.epsilon, 1.5);
        assert_eq!(cfg.sentinel_trigger, 0.1);
        assert_eq!(cfg.max_replans, 5);
        assert_eq!(cfg.optional_fraction, 0.4);
        assert!(ExperimentConfig::from_args(&args(&["--epsilon", "0.9"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--trigger", "-0.1"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--optional-fraction", "1.1"])).is_err());
        let d = ExperimentConfig::default();
        assert_eq!(d.epsilon, 1.2);
        assert_eq!(d.max_replans, 3);
    }

    #[test]
    fn online_flags_apply_and_validate() {
        let cfg = ExperimentConfig::from_args(&args(&[
            "--online-jobs",
            "12",
            "--oversub",
            "1,2",
            "--admission-floor",
            "0.6",
            "--drop-floor",
            "0.2",
            "--online-samples",
            "32",
        ]))
        .unwrap();
        assert_eq!(cfg.online_jobs, 12);
        assert_eq!(cfg.oversubscriptions, vec![1.0, 2.0]);
        assert_eq!(cfg.admission_floor, 0.6);
        assert_eq!(cfg.drop_floor, 0.2);
        assert_eq!(cfg.online_samples, 32);
        assert!(ExperimentConfig::from_args(&args(&["--online-jobs", "0"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--oversub", "0"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--admission-floor", "1.5"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--online-samples", "0"])).is_err());
        let d = ExperimentConfig::default();
        assert_eq!(d.oversubscriptions, vec![1.0, 1.5, 2.0, 3.0]);
        assert_eq!(d.admission_floor, 0.5);
    }

    #[test]
    fn rel_mins_flag_applies_and_validates() {
        let cfg = ExperimentConfig::from_args(&args(&["--rel-mins", "0.8,0.99"])).unwrap();
        assert_eq!(cfg.rel_mins, vec![0.8, 0.99]);
        assert!(ExperimentConfig::from_args(&args(&["--rel-mins", "0"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--rel-mins", "1.1"])).is_err());
        assert!(ExperimentConfig::from_args(&args(&["--rel-mins", ""])).is_err());
        assert_eq!(ExperimentConfig::default().rel_mins, vec![0.90, 0.95, 0.99]);
    }

    #[test]
    fn fault_scales_flag_applies() {
        let cfg = ExperimentConfig::from_args(&args(&["--fault-scales", "0,0.5,2"])).unwrap();
        assert_eq!(cfg.fault_scales, vec![0.0, 0.5, 2.0]);
        assert_eq!(
            ExperimentConfig::default().fault_scales,
            vec![0.0, 0.25, 0.5, 1.0]
        );
    }

    #[test]
    fn instances_share_graph_across_uls() {
        let cfg = ExperimentConfig::smoke();
        let a = cfg.instance(0, 2.0);
        let b = cfg.instance(0, 8.0);
        assert_eq!(a.graph, b.graph);
        assert_ne!(a.timing.ul_matrix().mean(), b.timing.ul_matrix().mean());
        let c = cfg.instance(1, 2.0);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn mean_finite_filters() {
        assert_eq!(mean_finite(&[1.0, 3.0]), Some(2.0));
        assert_eq!(mean_finite(&[1.0, f64::INFINITY, 3.0]), Some(2.0));
        assert_eq!(mean_finite(&[f64::NAN]), None);
        assert_eq!(mean_finite(&[]), None);
    }
}

//! Experiment harness regenerating the paper's evaluation figures.
//!
//! The paper's evaluation (§5) has no numbered tables; the artifacts are
//! Figures 2–8. Each figure has a generator here, reachable through the
//! `figures` binary:
//!
//! | Figure | Generator | What it shows |
//! |---|---|---|
//! | 2 | [`figures::fig2_3::run_fig2`] | GA evolution, makespan objective: log-ratio vs step 0 of realized makespan / slack / R1 at UL ∈ {2,4,6,8} |
//! | 3 | [`figures::fig2_3::run_fig3`] | same, slack objective |
//! | 4 | [`figures::fig4::run_fig4`] | ln-ratio improvement over HEFT at ε = 1.0 of makespan, R1, R2 vs UL |
//! | 5 | [`figures::fig5_6::run_fig5`] | relative R1 improvement over ε = 1.0 for ε ∈ [1.2, 2.0] |
//! | 6 | [`figures::fig5_6::run_fig6`] | same for R2 |
//! | 7 | [`figures::fig7_8::run_fig7`] | best ε for overall performance P(s) with R1, vs r |
//! | 8 | [`figures::fig7_8::run_fig8`] | same with R2 |
//!
//! Scale knobs (graphs, realizations, generations) default to a laptop-
//! friendly configuration preserving every qualitative shape; `--full`
//! restores the paper's 100 graphs × 1000 realizations × 1000 generations.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod figures;
pub mod output;

pub use config::ExperimentConfig;
pub use output::FigureData;

//! Processors and the fully connected interconnect.

use std::fmt;

use rds_stats::matrix::Matrix;

/// Dense processor identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Errors from platform construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The transfer-rate matrix was not `m × m`.
    RateShape {
        /// Expected processor count.
        procs: usize,
        /// Actual rows of the provided matrix.
        rows: usize,
        /// Actual cols of the provided matrix.
        cols: usize,
    },
    /// A transfer rate was zero, negative or non-finite.
    InvalidRate {
        /// Source processor.
        from: ProcId,
        /// Destination processor.
        to: ProcId,
        /// Offending rate.
        rate: f64,
    },
    /// The platform had no processors.
    Empty,
    /// The core-type vector was not `m` long.
    TypeShape {
        /// Expected processor count.
        procs: usize,
        /// Actual vector length.
        len: usize,
    },
    /// A core type was `≥ 64` (types index a 64-bit affinity mask).
    TypeRange {
        /// Offending processor.
        proc: ProcId,
        /// Offending type value.
        ty: u8,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::RateShape { procs, rows, cols } => write!(
                f,
                "transfer-rate matrix must be {procs}x{procs}, got {rows}x{cols}"
            ),
            PlatformError::InvalidRate { from, to, rate } => {
                write!(f, "invalid transfer rate {rate} for {from} -> {to}")
            }
            PlatformError::Empty => write!(f, "platform must have at least one processor"),
            PlatformError::TypeShape { procs, len } => {
                write!(f, "core-type vector must have length {procs}, got {len}")
            }
            PlatformError::TypeRange { proc, ty } => {
                write!(f, "core type {ty} on {proc} exceeds the 64-type mask width")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// A fully connected heterogeneous multiprocessor.
///
/// Communication between distinct processors costs `data / rate`; on the
/// same processor it costs zero (§3.1: intra-processor communication cost
/// is assumed to be zero). Communication never contends and overlaps with
/// computation, so no link-occupancy bookkeeping is needed.
///
/// Processors may optionally carry a *core type* (`0..64`): a task whose
/// affinity mask has bit `ty` clear cannot run on a core of type `ty`.
/// Untyped platforms (`core_types == None`, the default and the paper's
/// model) accept every task everywhere and compare equal to pre-typed
/// platforms with the same rates.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    rates: Matrix,
    core_types: Option<Vec<u8>>,
}

impl Platform {
    /// A platform of `m` processors with every inter-processor link at
    /// `rate` data units per time unit.
    ///
    /// # Errors
    /// Returns [`PlatformError`] when `m == 0` or `rate` is invalid.
    pub fn uniform(m: usize, rate: f64) -> Result<Self, PlatformError> {
        if m == 0 {
            return Err(PlatformError::Empty);
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(PlatformError::InvalidRate {
                from: ProcId(0),
                to: ProcId(0),
                rate,
            });
        }
        Ok(Self {
            rates: Matrix::filled(m, m, rate),
            core_types: None,
        })
    }

    /// A platform from an explicit `m × m` transfer-rate matrix.
    ///
    /// Diagonal entries are ignored (intra-processor communication is free
    /// by the model); off-diagonal entries must be positive and finite.
    ///
    /// # Errors
    /// Returns [`PlatformError`] on shape or rate violations.
    pub fn from_rates(m: usize, rates: Matrix) -> Result<Self, PlatformError> {
        if m == 0 {
            return Err(PlatformError::Empty);
        }
        if rates.rows() != m || rates.cols() != m {
            return Err(PlatformError::RateShape {
                procs: m,
                rows: rates.rows(),
                cols: rates.cols(),
            });
        }
        for (r, c, v) in rates.iter() {
            if r != c && !(v.is_finite() && v > 0.0) {
                return Err(PlatformError::InvalidRate {
                    from: ProcId(r as u32),
                    to: ProcId(c as u32),
                    rate: v,
                });
            }
        }
        Ok(Self {
            rates,
            core_types: None,
        })
    }

    /// Attaches core types, one per processor, each `< 64` so it indexes a
    /// bit of the per-task `u64` affinity mask.
    ///
    /// # Errors
    /// Returns [`PlatformError`] on length mismatch or a type `≥ 64`.
    pub fn with_core_types(mut self, types: Vec<u8>) -> Result<Self, PlatformError> {
        if types.len() != self.proc_count() {
            return Err(PlatformError::TypeShape {
                procs: self.proc_count(),
                len: types.len(),
            });
        }
        if let Some((p, &ty)) = types.iter().enumerate().find(|(_, &t)| t >= 64) {
            return Err(PlatformError::TypeRange {
                proc: ProcId(p as u32),
                ty,
            });
        }
        self.core_types = Some(types);
        Ok(self)
    }

    /// The core types, if this platform is typed.
    #[inline]
    #[must_use]
    pub fn core_types(&self) -> Option<&[u8]> {
        self.core_types.as_deref()
    }

    /// `true` when processors carry core types.
    #[inline]
    #[must_use]
    pub fn is_typed(&self) -> bool {
        self.core_types.is_some()
    }

    /// The core type of `p` (`0` on untyped platforms).
    #[inline]
    #[must_use]
    pub fn core_type(&self, p: ProcId) -> u8 {
        self.core_types.as_ref().map_or(0, |t| t[p.index()])
    }

    /// May a task with affinity `mask` run on `p`? Always `true` on
    /// untyped platforms; on typed ones, bit `core_type(p)` of the mask
    /// must be set.
    #[inline]
    #[must_use]
    pub fn supports(&self, p: ProcId, mask: u64) -> bool {
        match &self.core_types {
            None => true,
            Some(t) => mask & (1u64 << t[p.index()]) != 0,
        }
    }

    /// Number of processors `m`.
    #[inline]
    pub fn proc_count(&self) -> usize {
        self.rates.rows()
    }

    /// Iterator over all processor ids.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.proc_count() as u32).map(ProcId)
    }

    /// Transfer rate of the `from → to` link.
    #[inline]
    pub fn rate(&self, from: ProcId, to: ProcId) -> f64 {
        self.rates[(from.index(), to.index())]
    }

    /// Communication time for `data` units from `from` to `to` — zero when
    /// the processors coincide or no data moves.
    #[inline]
    pub fn comm_time(&self, data: f64, from: ProcId, to: ProcId) -> f64 {
        if from == to || data == 0.0 {
            0.0
        } else {
            data / self.rate(from, to)
        }
    }

    /// Mean transfer rate over all ordered off-diagonal pairs (used by
    /// HEFT's rank, which averages communication costs).
    pub fn mean_rate(&self) -> f64 {
        let m = self.proc_count();
        if m <= 1 {
            // No inter-processor links; any positive value works since all
            // communication is free. Use 1 to keep `data / rate` finite.
            return 1.0;
        }
        let mut sum = 0.0;
        for (r, c, v) in self.rates.iter() {
            if r != c {
                sum += v;
            }
        }
        sum / (m * (m - 1)) as f64
    }

    /// Mean communication time for `data` units over distinct processor
    /// pairs, weighted by the probability `1/m` that two random placements
    /// coincide (the standard "average communication cost" of HEFT).
    pub fn mean_comm_time(&self, data: f64) -> f64 {
        let m = self.proc_count() as f64;
        if m <= 1.0 || data == 0.0 {
            return 0.0;
        }
        // P(distinct) = (m-1)/m; mean time when distinct = data / mean_rate.
        (m - 1.0) / m * data / self.mean_rate()
    }
}

/// Per-processor liveness over time: which processors are up, and since
/// when the dead ones are gone.
///
/// The paper's platform is immortal; the fault/recovery layer
/// (`rds-sched`) marks processors down as permanent failures occur and
/// consults this when placing work. Kept in the platform crate so every
/// layer shares one vocabulary for "which processors may I use".
#[derive(Debug, Clone, PartialEq)]
pub struct Availability {
    down_at: Vec<Option<f64>>,
}

impl Availability {
    /// All `m` processors up.
    ///
    /// # Panics
    /// Panics when `m == 0`.
    #[must_use]
    pub fn all_up(m: usize) -> Self {
        assert!(m > 0, "platform must have at least one processor");
        Self {
            down_at: vec![None; m],
        }
    }

    /// Number of processors tracked.
    #[inline]
    #[must_use]
    pub fn proc_count(&self) -> usize {
        self.down_at.len()
    }

    /// Marks `p` permanently down from time `at` (keeps the earliest mark
    /// if called twice).
    pub fn mark_down(&mut self, p: ProcId, at: f64) {
        let slot = &mut self.down_at[p.index()];
        match slot {
            Some(existing) if *existing <= at => {}
            _ => *slot = Some(at),
        }
    }

    /// Is `p` up (never marked down)?
    #[inline]
    #[must_use]
    pub fn is_up(&self, p: ProcId) -> bool {
        self.down_at[p.index()].is_none()
    }

    /// Is `p` usable at time `t` (up, or marked down strictly after `t`)?
    #[inline]
    #[must_use]
    pub fn is_up_at(&self, p: ProcId, t: f64) -> bool {
        self.down_at[p.index()].is_none_or(|d| d > t)
    }

    /// When `p` went down, if it did.
    #[inline]
    #[must_use]
    pub fn down_time(&self, p: ProcId) -> Option<f64> {
        self.down_at[p.index()]
    }

    /// Number of processors still up.
    #[must_use]
    pub fn up_count(&self) -> usize {
        self.down_at.iter().filter(|d| d.is_none()).count()
    }

    /// `true` while at least one processor is up.
    #[must_use]
    pub fn any_up(&self) -> bool {
        self.down_at.iter().any(Option::is_none)
    }

    /// The processors still up, in id order.
    pub fn up_procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.down_at
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(p, _)| ProcId(p as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_platform() {
        let p = Platform::uniform(4, 2.0).unwrap();
        assert_eq!(p.proc_count(), 4);
        assert_eq!(p.rate(ProcId(0), ProcId(3)), 2.0);
        assert_eq!(p.comm_time(10.0, ProcId(0), ProcId(1)), 5.0);
        assert_eq!(p.comm_time(10.0, ProcId(2), ProcId(2)), 0.0);
        assert_eq!(p.comm_time(0.0, ProcId(0), ProcId(1)), 0.0);
        assert_eq!(p.mean_rate(), 2.0);
    }

    #[test]
    fn rejects_empty_or_bad_rate() {
        assert_eq!(Platform::uniform(0, 1.0).unwrap_err(), PlatformError::Empty);
        assert!(matches!(
            Platform::uniform(2, 0.0).unwrap_err(),
            PlatformError::InvalidRate { .. }
        ));
        assert!(matches!(
            Platform::uniform(2, f64::NAN).unwrap_err(),
            PlatformError::InvalidRate { .. }
        ));
    }

    #[test]
    fn from_rates_validates_shape_and_entries() {
        let bad_shape = Matrix::zeros(2, 3);
        assert!(matches!(
            Platform::from_rates(2, bad_shape).unwrap_err(),
            PlatformError::RateShape { .. }
        ));

        // Zero off-diagonal is invalid; zero diagonal is fine (ignored).
        let mut rates = Matrix::filled(2, 2, 1.0);
        rates[(0, 0)] = 0.0;
        rates[(1, 1)] = 0.0;
        assert!(Platform::from_rates(2, rates.clone()).is_ok());
        rates[(0, 1)] = 0.0;
        assert!(matches!(
            Platform::from_rates(2, rates).unwrap_err(),
            PlatformError::InvalidRate { .. }
        ));
    }

    #[test]
    fn heterogeneous_rates() {
        let rates = Matrix::from_rows(&[&[0.0, 1.0], &[4.0, 0.0]]);
        let p = Platform::from_rates(2, rates).unwrap();
        assert_eq!(p.comm_time(8.0, ProcId(0), ProcId(1)), 8.0);
        assert_eq!(p.comm_time(8.0, ProcId(1), ProcId(0)), 2.0);
        assert_eq!(p.mean_rate(), 2.5);
    }

    #[test]
    fn single_proc_mean_comm_is_zero() {
        let p = Platform::uniform(1, 1.0).unwrap();
        assert_eq!(p.mean_comm_time(100.0), 0.0);
    }

    #[test]
    fn mean_comm_time_scales_with_data() {
        let p = Platform::uniform(4, 2.0).unwrap();
        // (m-1)/m * data/rate = 3/4 * 10/2 = 3.75
        assert!((p.mean_comm_time(10.0) - 3.75).abs() < 1e-12);
    }

    #[test]
    fn availability_tracks_downed_processors() {
        let mut a = Availability::all_up(3);
        assert_eq!(a.proc_count(), 3);
        assert_eq!(a.up_count(), 3);
        assert!(a.any_up());
        a.mark_down(ProcId(1), 5.0);
        assert!(!a.is_up(ProcId(1)));
        assert!(a.is_up(ProcId(0)));
        assert_eq!(a.down_time(ProcId(1)), Some(5.0));
        assert_eq!(a.up_count(), 2);
        // Time-scoped queries: usable strictly before the failure instant.
        assert!(a.is_up_at(ProcId(1), 4.9));
        assert!(!a.is_up_at(ProcId(1), 5.0));
        assert!(a.is_up_at(ProcId(0), 1e12));
        // Earliest mark wins.
        a.mark_down(ProcId(1), 9.0);
        assert_eq!(a.down_time(ProcId(1)), Some(5.0));
        a.mark_down(ProcId(1), 2.0);
        assert_eq!(a.down_time(ProcId(1)), Some(2.0));
        assert_eq!(a.up_procs().collect::<Vec<_>>(), vec![ProcId(0), ProcId(2)]);
        a.mark_down(ProcId(0), 0.0);
        a.mark_down(ProcId(2), 0.0);
        assert!(!a.any_up());
        assert_eq!(a.up_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn availability_rejects_empty_platform() {
        let _ = Availability::all_up(0);
    }

    #[test]
    fn untyped_platform_supports_everything() {
        let p = Platform::uniform(3, 1.0).unwrap();
        assert!(!p.is_typed());
        assert_eq!(p.core_types(), None);
        assert_eq!(p.core_type(ProcId(2)), 0);
        assert!(p.supports(ProcId(0), 0)); // even the empty mask
        assert!(p.supports(ProcId(2), u64::MAX));
    }

    #[test]
    fn typed_platform_masks_feasibility() {
        let p = Platform::uniform(3, 1.0)
            .unwrap()
            .with_core_types(vec![0, 1, 0])
            .unwrap();
        assert!(p.is_typed());
        assert_eq!(p.core_types(), Some(&[0u8, 1, 0][..]));
        assert_eq!(p.core_type(ProcId(1)), 1);
        // Mask with only bit 0: runs on type-0 cores only.
        assert!(p.supports(ProcId(0), 1));
        assert!(!p.supports(ProcId(1), 1));
        assert!(p.supports(ProcId(2), 1));
        // Mask with only bit 1.
        assert!(!p.supports(ProcId(0), 2));
        assert!(p.supports(ProcId(1), 2));
        // Full mask runs anywhere.
        assert!(p.supports(ProcId(1), u64::MAX));
    }

    #[test]
    fn typing_preserves_untyped_equality() {
        let a = Platform::uniform(2, 1.0).unwrap();
        let b = Platform::uniform(2, 1.0).unwrap();
        assert_eq!(a, b);
        let typed = b.with_core_types(vec![0, 1]).unwrap();
        assert_ne!(a, typed);
    }

    #[test]
    fn core_type_validation() {
        let p = Platform::uniform(2, 1.0).unwrap();
        assert!(matches!(
            p.clone().with_core_types(vec![0]).unwrap_err(),
            PlatformError::TypeShape { procs: 2, len: 1 }
        ));
        assert!(matches!(
            p.with_core_types(vec![0, 64]).unwrap_err(),
            PlatformError::TypeRange { ty: 64, .. }
        ));
    }
}

//! Processors and the fully connected interconnect.

use std::fmt;

use rds_stats::matrix::Matrix;

/// Dense processor identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Errors from platform construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The transfer-rate matrix was not `m × m`.
    RateShape {
        /// Expected processor count.
        procs: usize,
        /// Actual rows of the provided matrix.
        rows: usize,
        /// Actual cols of the provided matrix.
        cols: usize,
    },
    /// A transfer rate was zero, negative or non-finite.
    InvalidRate {
        /// Source processor.
        from: ProcId,
        /// Destination processor.
        to: ProcId,
        /// Offending rate.
        rate: f64,
    },
    /// The platform had no processors.
    Empty,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::RateShape { procs, rows, cols } => write!(
                f,
                "transfer-rate matrix must be {procs}x{procs}, got {rows}x{cols}"
            ),
            PlatformError::InvalidRate { from, to, rate } => {
                write!(f, "invalid transfer rate {rate} for {from} -> {to}")
            }
            PlatformError::Empty => write!(f, "platform must have at least one processor"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// A fully connected heterogeneous multiprocessor.
///
/// Communication between distinct processors costs `data / rate`; on the
/// same processor it costs zero (§3.1: intra-processor communication cost
/// is assumed to be zero). Communication never contends and overlaps with
/// computation, so no link-occupancy bookkeeping is needed.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    rates: Matrix,
}

impl Platform {
    /// A platform of `m` processors with every inter-processor link at
    /// `rate` data units per time unit.
    ///
    /// # Errors
    /// Returns [`PlatformError`] when `m == 0` or `rate` is invalid.
    pub fn uniform(m: usize, rate: f64) -> Result<Self, PlatformError> {
        if m == 0 {
            return Err(PlatformError::Empty);
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(PlatformError::InvalidRate {
                from: ProcId(0),
                to: ProcId(0),
                rate,
            });
        }
        Ok(Self {
            rates: Matrix::filled(m, m, rate),
        })
    }

    /// A platform from an explicit `m × m` transfer-rate matrix.
    ///
    /// Diagonal entries are ignored (intra-processor communication is free
    /// by the model); off-diagonal entries must be positive and finite.
    ///
    /// # Errors
    /// Returns [`PlatformError`] on shape or rate violations.
    pub fn from_rates(m: usize, rates: Matrix) -> Result<Self, PlatformError> {
        if m == 0 {
            return Err(PlatformError::Empty);
        }
        if rates.rows() != m || rates.cols() != m {
            return Err(PlatformError::RateShape {
                procs: m,
                rows: rates.rows(),
                cols: rates.cols(),
            });
        }
        for (r, c, v) in rates.iter() {
            if r != c && !(v.is_finite() && v > 0.0) {
                return Err(PlatformError::InvalidRate {
                    from: ProcId(r as u32),
                    to: ProcId(c as u32),
                    rate: v,
                });
            }
        }
        Ok(Self { rates })
    }

    /// Number of processors `m`.
    #[inline]
    pub fn proc_count(&self) -> usize {
        self.rates.rows()
    }

    /// Iterator over all processor ids.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.proc_count() as u32).map(ProcId)
    }

    /// Transfer rate of the `from → to` link.
    #[inline]
    pub fn rate(&self, from: ProcId, to: ProcId) -> f64 {
        self.rates[(from.index(), to.index())]
    }

    /// Communication time for `data` units from `from` to `to` — zero when
    /// the processors coincide or no data moves.
    #[inline]
    pub fn comm_time(&self, data: f64, from: ProcId, to: ProcId) -> f64 {
        if from == to || data == 0.0 {
            0.0
        } else {
            data / self.rate(from, to)
        }
    }

    /// Mean transfer rate over all ordered off-diagonal pairs (used by
    /// HEFT's rank, which averages communication costs).
    pub fn mean_rate(&self) -> f64 {
        let m = self.proc_count();
        if m <= 1 {
            // No inter-processor links; any positive value works since all
            // communication is free. Use 1 to keep `data / rate` finite.
            return 1.0;
        }
        let mut sum = 0.0;
        for (r, c, v) in self.rates.iter() {
            if r != c {
                sum += v;
            }
        }
        sum / (m * (m - 1)) as f64
    }

    /// Mean communication time for `data` units over distinct processor
    /// pairs, weighted by the probability `1/m` that two random placements
    /// coincide (the standard "average communication cost" of HEFT).
    pub fn mean_comm_time(&self, data: f64) -> f64 {
        let m = self.proc_count() as f64;
        if m <= 1.0 || data == 0.0 {
            return 0.0;
        }
        // P(distinct) = (m-1)/m; mean time when distinct = data / mean_rate.
        (m - 1.0) / m * data / self.mean_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_platform() {
        let p = Platform::uniform(4, 2.0).unwrap();
        assert_eq!(p.proc_count(), 4);
        assert_eq!(p.rate(ProcId(0), ProcId(3)), 2.0);
        assert_eq!(p.comm_time(10.0, ProcId(0), ProcId(1)), 5.0);
        assert_eq!(p.comm_time(10.0, ProcId(2), ProcId(2)), 0.0);
        assert_eq!(p.comm_time(0.0, ProcId(0), ProcId(1)), 0.0);
        assert_eq!(p.mean_rate(), 2.0);
    }

    #[test]
    fn rejects_empty_or_bad_rate() {
        assert_eq!(Platform::uniform(0, 1.0).unwrap_err(), PlatformError::Empty);
        assert!(matches!(
            Platform::uniform(2, 0.0).unwrap_err(),
            PlatformError::InvalidRate { .. }
        ));
        assert!(matches!(
            Platform::uniform(2, f64::NAN).unwrap_err(),
            PlatformError::InvalidRate { .. }
        ));
    }

    #[test]
    fn from_rates_validates_shape_and_entries() {
        let bad_shape = Matrix::zeros(2, 3);
        assert!(matches!(
            Platform::from_rates(2, bad_shape).unwrap_err(),
            PlatformError::RateShape { .. }
        ));

        // Zero off-diagonal is invalid; zero diagonal is fine (ignored).
        let mut rates = Matrix::filled(2, 2, 1.0);
        rates[(0, 0)] = 0.0;
        rates[(1, 1)] = 0.0;
        assert!(Platform::from_rates(2, rates.clone()).is_ok());
        rates[(0, 1)] = 0.0;
        assert!(matches!(
            Platform::from_rates(2, rates).unwrap_err(),
            PlatformError::InvalidRate { .. }
        ));
    }

    #[test]
    fn heterogeneous_rates() {
        let rates = Matrix::from_rows(&[&[0.0, 1.0], &[4.0, 0.0]]);
        let p = Platform::from_rates(2, rates).unwrap();
        assert_eq!(p.comm_time(8.0, ProcId(0), ProcId(1)), 8.0);
        assert_eq!(p.comm_time(8.0, ProcId(1), ProcId(0)), 2.0);
        assert_eq!(p.mean_rate(), 2.5);
    }

    #[test]
    fn single_proc_mean_comm_is_zero() {
        let p = Platform::uniform(1, 1.0).unwrap();
        assert_eq!(p.mean_comm_time(100.0), 0.0);
    }

    #[test]
    fn mean_comm_time_scales_with_data() {
        let p = Platform::uniform(4, 2.0).unwrap();
        // (m-1)/m * data/rate = 3/4 * 10/2 = 3.75
        assert!((p.mean_comm_time(10.0) - 3.75).abs() < 1e-12);
    }
}

//! Heterogeneous platform model (§3.1 of the paper).
//!
//! A computing system is a set `P = {p_1..p_m}` of `m` fully connected
//! heterogeneous processors with:
//!
//! * a transfer-rate matrix `TR` (m×m) — the communication time for `d`
//!   units of data from a task on `p_a` to one on `p_b` is `d / TR[a][b]`,
//!   and **zero** when `a == b` (intra-processor communication is free);
//! * a best-case execution time matrix `B` (n×m);
//! * an uncertainty-level matrix `UL` (n×m): the *actual* execution time of
//!   task `i` on processor `j` is `c_ij ~ U(b_ij, (2·UL_ij − 1)·b_ij)` with
//!   expectation `UL_ij · b_ij`. Schedulers only ever see the expectation;
//!   realizations are drawn by the Monte Carlo engine.
//!
//! [`Platform`] carries the processor count and `TR`; [`TimingModel`]
//! carries `B` and `UL` for one (graph, platform) pairing.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod gen;
pub mod power;
pub mod proc;
pub mod timing;

pub use gen::PlatformSpec;
pub use power::{EnergyModel, FreqLadder, PowerError, PowerModel, ReliabilityModel};
pub use proc::{Availability, Platform, ProcId};
pub use timing::{RealizationLaw, TimingModel};

//! The timing model: BCET matrix `B`, uncertainty matrix `UL`, expected
//! durations, and the realization law.
//!
//! The scheduler-facing quantity is the **expected execution time**
//! `E[c_ij] = UL_ij · b_ij` (the paper's schedulers are fed expected times,
//! §1). The Monte Carlo engine draws **realized** durations from
//! `c_ij ~ U(b_ij, (2·UL_ij − 1)·b_ij)` (§5). `UL_ij = 1` degenerates to
//! the deterministic case `c_ij = b_ij`.

use rand::Rng;

use rds_stats::dist::{exponential, standard_normal};
use rds_stats::matrix::Matrix;

use crate::proc::ProcId;

/// The probability law actual durations are drawn from.
///
/// Every law shares the same two anchors so schedulers are oblivious to
/// the choice: the support's lower end is the best case `b`, and the mean
/// is the expected duration `UL·b`. The paper uses `Uniform`
/// (`RealizationLaw::Uniform`); the others are sensitivity-analysis
/// extensions with matched means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RealizationLaw {
    /// The paper's law `U(b, (2·UL−1)·b)`.
    #[default]
    Uniform,
    /// Normal with mean `UL·b` and the uniform's standard deviation
    /// `(UL−1)·b/√3`, truncated below at `b` by resampling. The truncation
    /// point sits `√3 ≈ 1.73` standard deviations below the mean, so the
    /// truncated mean is inflated by `λ(√3)·σ ≈ 0.093·σ` (~2–4%).
    TruncatedNormal,
    /// `b + Exp(mean = (UL−1)·b)` — same mean, heavier right tail; the
    /// adversarial case for slack-based robustness.
    ShiftedExponential,
}

/// Errors from timing-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingError {
    /// `B` and `UL` shapes disagree.
    ShapeMismatch {
        /// BCET rows/cols.
        bcet: (usize, usize),
        /// UL rows/cols.
        ul: (usize, usize),
    },
    /// A BCET entry was non-positive or non-finite.
    InvalidBcet {
        /// Task row.
        task: usize,
        /// Processor column.
        proc: usize,
        /// Offending value.
        value: f64,
    },
    /// An uncertainty level was below 1 or non-finite.
    InvalidUl {
        /// Task row.
        task: usize,
        /// Processor column.
        proc: usize,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::ShapeMismatch { bcet, ul } => write!(
                f,
                "BCET is {}x{} but UL is {}x{}",
                bcet.0, bcet.1, ul.0, ul.1
            ),
            TimingError::InvalidBcet { task, proc, value } => {
                write!(f, "invalid BCET {value} for task {task} on proc {proc}")
            }
            TimingError::InvalidUl { task, proc, value } => {
                write!(f, "invalid UL {value} for task {task} on proc {proc}")
            }
        }
    }
}

impl std::error::Error for TimingError {}

/// Per-(task, processor) best-case times and uncertainty levels.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    bcet: Matrix,
    ul: Matrix,
    law: RealizationLaw,
}

impl TimingModel {
    /// Builds a timing model from a BCET matrix and an UL matrix of equal
    /// shape.
    ///
    /// # Errors
    /// Returns [`TimingError`] when shapes disagree, a BCET entry is not a
    /// positive finite number, or an UL entry is below 1/non-finite.
    pub fn new(bcet: Matrix, ul: Matrix) -> Result<Self, TimingError> {
        if bcet.rows() != ul.rows() || bcet.cols() != ul.cols() {
            return Err(TimingError::ShapeMismatch {
                bcet: (bcet.rows(), bcet.cols()),
                ul: (ul.rows(), ul.cols()),
            });
        }
        for (t, p, v) in bcet.iter() {
            if !(v.is_finite() && v > 0.0) {
                return Err(TimingError::InvalidBcet {
                    task: t,
                    proc: p,
                    value: v,
                });
            }
        }
        for (t, p, v) in ul.iter() {
            if !(v.is_finite() && v >= 1.0) {
                return Err(TimingError::InvalidUl {
                    task: t,
                    proc: p,
                    value: v,
                });
            }
        }
        Ok(Self {
            bcet,
            ul,
            law: RealizationLaw::Uniform,
        })
    }

    /// Switches the realization law (the scheduler-facing expectations are
    /// unaffected — all laws share the mean `UL·b`).
    #[must_use]
    pub fn with_law(mut self, law: RealizationLaw) -> Self {
        self.law = law;
        self
    }

    /// The realization law in effect.
    #[inline]
    pub fn law(&self) -> RealizationLaw {
        self.law
    }

    /// A deterministic model: `UL ≡ 1`, so expected = best case = realized.
    ///
    /// # Errors
    /// Returns [`TimingError`] on invalid BCET entries.
    pub fn deterministic(bcet: Matrix) -> Result<Self, TimingError> {
        let ul = Matrix::filled(bcet.rows(), bcet.cols(), 1.0);
        Self::new(bcet, ul)
    }

    /// Number of tasks (rows).
    #[inline]
    pub fn task_count(&self) -> usize {
        self.bcet.rows()
    }

    /// Number of processors (columns).
    #[inline]
    pub fn proc_count(&self) -> usize {
        self.bcet.cols()
    }

    /// Best-case execution time `b_ij`.
    #[inline]
    pub fn best_case(&self, task: usize, proc: ProcId) -> f64 {
        self.bcet[(task, proc.index())]
    }

    /// Uncertainty level `UL_ij ≥ 1`.
    #[inline]
    pub fn uncertainty(&self, task: usize, proc: ProcId) -> f64 {
        self.ul[(task, proc.index())]
    }

    /// Expected execution time `UL_ij · b_ij` — what schedulers see.
    #[inline]
    pub fn expected(&self, task: usize, proc: ProcId) -> f64 {
        self.ul[(task, proc.index())] * self.bcet[(task, proc.index())]
    }

    /// Mean *expected* execution time of `task` across processors (HEFT's
    /// `w̄_i`).
    pub fn mean_expected(&self, task: usize) -> f64 {
        let m = self.proc_count();
        (0..m)
            .map(|p| self.expected(task, ProcId(p as u32)))
            .sum::<f64>()
            / m as f64
    }

    /// Draws one realized duration from the configured law (default:
    /// `c_ij ~ U(b_ij, (2·UL_ij − 1)·b_ij)`, the paper's §5 model).
    ///
    /// `UL_ij = 1` degenerates to `b_ij` exactly under every law.
    pub fn sample<R: Rng + ?Sized>(&self, task: usize, proc: ProcId, rng: &mut R) -> f64 {
        let b = self.best_case(task, proc);
        let ul = self.uncertainty(task, proc);
        if ul <= 1.0 {
            return b;
        }
        match self.law {
            RealizationLaw::Uniform => {
                let hi = (2.0 * ul - 1.0) * b;
                rng.gen_range(b..hi)
            }
            RealizationLaw::TruncatedNormal => {
                let mean = ul * b;
                let sd = (ul - 1.0) * b / 3.0_f64.sqrt();
                // Resample below-support draws; acceptance > 95% at UL>=2.
                loop {
                    let x = mean + sd * standard_normal(rng);
                    if x >= b {
                        return x;
                    }
                }
            }
            RealizationLaw::ShiftedExponential => b + exponential((ul - 1.0) * b, rng),
        }
    }

    /// Samples a full duration vector for an assignment `task → proc`
    /// (`assignment[i]` is task `i`'s processor). One realization of the
    /// schedule's execution environment.
    pub fn sample_assigned<R: Rng + ?Sized>(&self, assignment: &[ProcId], rng: &mut R) -> Vec<f64> {
        assignment
            .iter()
            .enumerate()
            .map(|(t, &p)| self.sample(t, p, rng))
            .collect()
    }

    /// The BCET matrix.
    #[inline]
    pub fn bcet_matrix(&self) -> &Matrix {
        &self.bcet
    }

    /// The UL matrix.
    #[inline]
    pub fn ul_matrix(&self) -> &Matrix {
        &self.ul
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_stats::describe::OnlineStats;
    use rds_stats::rng::rng_from_seed;

    fn model() -> TimingModel {
        let bcet = Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]);
        let ul = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.5]]);
        TimingModel::new(bcet, ul).unwrap()
    }

    #[test]
    fn expected_is_ul_times_bcet() {
        let m = model();
        assert_eq!(m.expected(0, ProcId(0)), 2.0);
        assert_eq!(m.expected(0, ProcId(1)), 8.0);
        assert_eq!(m.expected(1, ProcId(0)), 18.0);
        assert_eq!(m.expected(1, ProcId(1)), 12.0);
        assert_eq!(m.mean_expected(0), 5.0);
        assert_eq!(m.mean_expected(1), 15.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let bcet = Matrix::zeros(2, 2).map(|_| 1.0);
        let ul = Matrix::filled(2, 3, 1.0);
        assert!(matches!(
            TimingModel::new(bcet, ul).unwrap_err(),
            TimingError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn invalid_entries_rejected() {
        let bad_b = Matrix::from_rows(&[&[0.0]]);
        assert!(matches!(
            TimingModel::new(bad_b, Matrix::filled(1, 1, 1.0)).unwrap_err(),
            TimingError::InvalidBcet { .. }
        ));
        let b = Matrix::from_rows(&[&[1.0]]);
        let bad_ul = Matrix::from_rows(&[&[0.5]]);
        assert!(matches!(
            TimingModel::new(b, bad_ul).unwrap_err(),
            TimingError::InvalidUl { .. }
        ));
    }

    #[test]
    fn deterministic_sampling_returns_bcet() {
        let bcet = Matrix::from_rows(&[&[3.0, 5.0]]);
        let m = TimingModel::deterministic(bcet).unwrap();
        let mut rng = rng_from_seed(0);
        for _ in 0..10 {
            assert_eq!(m.sample(0, ProcId(0), &mut rng), 3.0);
            assert_eq!(m.sample(0, ProcId(1), &mut rng), 5.0);
        }
    }

    #[test]
    fn sample_bounds_and_mean() {
        // UL=3, b=2: U(2, 10), mean 6 = UL*b.
        let bcet = Matrix::from_rows(&[&[2.0]]);
        let ul = Matrix::from_rows(&[&[3.0]]);
        let m = TimingModel::new(bcet, ul).unwrap();
        let mut rng = rng_from_seed(5);
        let mut st = OnlineStats::new();
        for _ in 0..100_000 {
            let c = m.sample(0, ProcId(0), &mut rng);
            assert!((2.0..10.0).contains(&c));
            st.push(c);
        }
        assert!((st.mean() - 6.0).abs() < 0.05, "mean {}", st.mean());
    }

    #[test]
    fn realized_can_be_below_expected() {
        // Crucial for the miss-rate metric: with UL>1 roughly half of the
        // mass lies below the expectation.
        let bcet = Matrix::from_rows(&[&[2.0]]);
        let ul = Matrix::from_rows(&[&[3.0]]);
        let m = TimingModel::new(bcet, ul).unwrap();
        let mut rng = rng_from_seed(6);
        let below = (0..10_000)
            .filter(|_| m.sample(0, ProcId(0), &mut rng) < m.expected(0, ProcId(0)))
            .count();
        assert!((4500..5500).contains(&below), "below {below}");
    }

    #[test]
    fn alternative_laws_share_support_floor_and_mean() {
        let bcet = Matrix::from_rows(&[&[2.0]]);
        let ul = Matrix::from_rows(&[&[3.0]]);
        for law in [
            RealizationLaw::Uniform,
            RealizationLaw::TruncatedNormal,
            RealizationLaw::ShiftedExponential,
        ] {
            let m = TimingModel::new(bcet.clone(), ul.clone())
                .unwrap()
                .with_law(law);
            assert_eq!(m.law(), law);
            // Expected duration is law-independent.
            assert_eq!(m.expected(0, ProcId(0)), 6.0);
            let mut rng = rng_from_seed(42);
            let mut st = OnlineStats::new();
            for _ in 0..60_000 {
                let c = m.sample(0, ProcId(0), &mut rng);
                assert!(c >= 2.0, "{law:?} violated the BCET floor: {c}");
                st.push(c);
            }
            // Mean UL*b = 6. The truncated normal's mean is inflated by
            // λ(√3)·σ ≈ 0.215 here; allow for it.
            assert!((st.mean() - 6.0).abs() < 0.3, "{law:?} mean {}", st.mean());
        }
    }

    #[test]
    fn exponential_law_has_the_heaviest_tail() {
        let bcet = Matrix::from_rows(&[&[2.0]]);
        let ul = Matrix::from_rows(&[&[3.0]]);
        let p99 = |law: RealizationLaw| -> f64 {
            let m = TimingModel::new(bcet.clone(), ul.clone())
                .unwrap()
                .with_law(law);
            let mut rng = rng_from_seed(7);
            let mut xs: Vec<f64> = (0..40_000)
                .map(|_| m.sample(0, ProcId(0), &mut rng))
                .collect();
            xs.sort_by(f64::total_cmp);
            xs[(xs.len() as f64 * 0.99) as usize]
        };
        let uni = p99(RealizationLaw::Uniform);
        let exp = p99(RealizationLaw::ShiftedExponential);
        assert!(exp > uni, "exp p99 {exp} should exceed uniform p99 {uni}");
    }

    #[test]
    fn ul_one_is_deterministic_under_every_law() {
        let bcet = Matrix::from_rows(&[&[5.0]]);
        for law in [
            RealizationLaw::Uniform,
            RealizationLaw::TruncatedNormal,
            RealizationLaw::ShiftedExponential,
        ] {
            let m = TimingModel::deterministic(bcet.clone())
                .unwrap()
                .with_law(law);
            let mut rng = rng_from_seed(1);
            assert_eq!(m.sample(0, ProcId(0), &mut rng), 5.0);
        }
    }

    #[test]
    fn sample_assigned_uses_assignment() {
        let m = model();
        let mut rng = rng_from_seed(1);
        let durs = m.sample_assigned(&[ProcId(0), ProcId(1)], &mut rng);
        assert_eq!(durs.len(), 2);
        // Task 0 on p0 has UL=1 -> deterministic 2.0.
        assert_eq!(durs[0], 2.0);
        // Task 1 on p1: U(8, 16).
        assert!((8.0..16.0).contains(&durs[1]));
    }
}

//! Platform generation.
//!
//! The paper's experiments use fully connected processors; it "does not
//! consider the variation in data transfer rates", so the default platform
//! has uniform unit rates. Heterogeneous-rate platforms are supported for
//! extension studies (rates drawn log-uniformly within a span).

use rand::Rng;

use rds_stats::matrix::Matrix;
use rds_stats::rng::rng_from_seed;

use crate::proc::{Platform, PlatformError};

/// Specification of a random platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Number of processors `m` ≥ 1.
    pub procs: usize,
    /// Base transfer rate (uniform value, or geometric mean when
    /// `rate_span > 1`).
    pub base_rate: f64,
    /// Heterogeneity span: each directed link rate is drawn log-uniformly in
    /// `[base/√span, base·√span]`. `1.0` (default) yields uniform rates.
    pub rate_span: f64,
    /// Make the rate matrix symmetric (`TR[a][b] == TR[b][a]`).
    pub symmetric: bool,
}

impl PlatformSpec {
    /// The paper's setup: `m` fully connected processors, uniform unit
    /// transfer rates.
    #[must_use]
    pub fn uniform(procs: usize) -> Self {
        Self {
            procs,
            base_rate: 1.0,
            rate_span: 1.0,
            symmetric: true,
        }
    }

    /// Enables heterogeneous link rates with the given span (`≥ 1`).
    #[must_use]
    pub fn heterogeneous(mut self, span: f64) -> Self {
        self.rate_span = span;
        self
    }

    /// Sets the base rate.
    #[must_use]
    pub fn base_rate(mut self, rate: f64) -> Self {
        self.base_rate = rate;
        self
    }

    /// Generates the platform deterministically from a seed.
    ///
    /// # Errors
    /// Returns [`PlatformError`] for invalid parameters.
    pub fn generate(&self, seed: u64) -> Result<Platform, PlatformError> {
        let mut rng = rng_from_seed(seed);
        self.generate_with(&mut rng)
    }

    /// Generates the platform drawing randomness from the provided RNG.
    ///
    /// # Errors
    /// Returns [`PlatformError`] for invalid parameters.
    pub fn generate_with<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Platform, PlatformError> {
        if self.rate_span <= 1.0 {
            return Platform::uniform(self.procs, self.base_rate);
        }
        let m = self.procs;
        if m == 0 {
            return Err(PlatformError::Empty);
        }
        let half_span = self.rate_span.sqrt();
        let lo = (self.base_rate / half_span).ln();
        let hi = (self.base_rate * half_span).ln();
        let mut rates = Matrix::filled(m, m, self.base_rate);
        for a in 0..m {
            for b in 0..m {
                if a == b {
                    continue;
                }
                if self.symmetric && b < a {
                    rates[(a, b)] = rates[(b, a)];
                } else {
                    rates[(a, b)] = rng.gen_range(lo..hi).exp();
                }
            }
        }
        Platform::from_rates(m, rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::ProcId;

    #[test]
    fn uniform_spec_generates_uniform_rates() {
        let p = PlatformSpec::uniform(4).generate(0).unwrap();
        assert_eq!(p.proc_count(), 4);
        for a in p.procs() {
            for b in p.procs() {
                if a != b {
                    assert_eq!(p.rate(a, b), 1.0);
                }
            }
        }
    }

    #[test]
    fn heterogeneous_rates_span_and_symmetry() {
        let spec = PlatformSpec::uniform(6).heterogeneous(4.0).base_rate(2.0);
        let p = spec.generate(9).unwrap();
        for a in p.procs() {
            for b in p.procs() {
                if a == b {
                    continue;
                }
                let r = p.rate(a, b);
                assert!((1.0..=4.0).contains(&r), "rate {r} outside span");
                assert_eq!(r, p.rate(b, a), "must be symmetric");
            }
        }
    }

    #[test]
    fn asymmetric_generation() {
        let mut spec = PlatformSpec::uniform(5).heterogeneous(8.0);
        spec.symmetric = false;
        let p = spec.generate(3).unwrap();
        // With 20 directed links, at least one pair should differ.
        let any_asym = p.procs().any(|a| {
            p.procs()
                .any(|b| a != b && (p.rate(a, b) - p.rate(b, a)).abs() > 1e-12)
        });
        assert!(any_asym);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = PlatformSpec::uniform(4).heterogeneous(3.0);
        assert_eq!(spec.generate(5).unwrap(), spec.generate(5).unwrap());
    }

    #[test]
    fn zero_procs_is_error() {
        assert!(PlatformSpec::uniform(0).generate(0).is_err());
        assert!(PlatformSpec::uniform(0)
            .heterogeneous(2.0)
            .generate(0)
            .is_err());
    }

    #[test]
    fn single_proc_platform_works() {
        let p = PlatformSpec::uniform(1).generate(0).unwrap();
        assert_eq!(p.proc_count(), 1);
        assert_eq!(p.comm_time(100.0, ProcId(0), ProcId(0)), 0.0);
    }
}

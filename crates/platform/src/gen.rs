//! Platform generation.
//!
//! The paper's experiments use fully connected processors; it "does not
//! consider the variation in data transfer rates", so the default platform
//! has uniform unit rates. Heterogeneous-rate platforms are supported for
//! extension studies (rates drawn log-uniformly within a span).

use rand::Rng;

use rds_stats::matrix::Matrix;
use rds_stats::rng::rng_from_seed;

use crate::proc::{Platform, PlatformError};

/// Specification of a random platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Number of processors `m` ≥ 1.
    pub procs: usize,
    /// Base transfer rate (uniform value, or geometric mean when
    /// `rate_span > 1`).
    pub base_rate: f64,
    /// Heterogeneity span: each directed link rate is drawn log-uniformly in
    /// `[base/√span, base·√span]`. `1.0` (default) yields uniform rates.
    pub rate_span: f64,
    /// Make the rate matrix symmetric (`TR[a][b] == TR[b][a]`).
    pub symmetric: bool,
    /// Number of distinct core types (`0` = untyped, the default and the
    /// paper's model). When `≥ 1`, processor `j` gets type `j mod
    /// type_count` — deterministic round-robin, so typing consumes no
    /// randomness and the rate matrix is identical to the untyped draw.
    pub type_count: usize,
}

impl PlatformSpec {
    /// The paper's setup: `m` fully connected processors, uniform unit
    /// transfer rates.
    #[must_use]
    pub fn uniform(procs: usize) -> Self {
        Self {
            procs,
            base_rate: 1.0,
            rate_span: 1.0,
            symmetric: true,
            type_count: 0,
        }
    }

    /// Enables heterogeneous link rates with the given span (`≥ 1`).
    #[must_use]
    pub fn heterogeneous(mut self, span: f64) -> Self {
        self.rate_span = span;
        self
    }

    /// Enables typed cores: processor `j` gets type `j mod count`
    /// (`count` must be `≤ 64`; `0` keeps the platform untyped).
    #[must_use]
    pub fn typed(mut self, count: usize) -> Self {
        self.type_count = count;
        self
    }

    /// Sets the base rate.
    #[must_use]
    pub fn base_rate(mut self, rate: f64) -> Self {
        self.base_rate = rate;
        self
    }

    /// Generates the platform deterministically from a seed.
    ///
    /// # Errors
    /// Returns [`PlatformError`] for invalid parameters.
    pub fn generate(&self, seed: u64) -> Result<Platform, PlatformError> {
        let mut rng = rng_from_seed(seed);
        self.generate_with(&mut rng)
    }

    /// Generates the platform drawing randomness from the provided RNG.
    ///
    /// # Errors
    /// Returns [`PlatformError`] for invalid parameters.
    pub fn generate_with<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Platform, PlatformError> {
        let platform = if self.rate_span <= 1.0 {
            Platform::uniform(self.procs, self.base_rate)?
        } else {
            let m = self.procs;
            if m == 0 {
                return Err(PlatformError::Empty);
            }
            let half_span = self.rate_span.sqrt();
            let lo = (self.base_rate / half_span).ln();
            let hi = (self.base_rate * half_span).ln();
            let mut rates = Matrix::filled(m, m, self.base_rate);
            for a in 0..m {
                for b in 0..m {
                    if a == b {
                        continue;
                    }
                    if self.symmetric && b < a {
                        rates[(a, b)] = rates[(b, a)];
                    } else {
                        rates[(a, b)] = rng.gen_range(lo..hi).exp();
                    }
                }
            }
            Platform::from_rates(m, rates)?
        };
        if self.type_count == 0 {
            return Ok(platform);
        }
        let types = (0..self.procs)
            .map(|j| (j % self.type_count) as u8)
            .collect();
        platform.with_core_types(types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::ProcId;

    #[test]
    fn uniform_spec_generates_uniform_rates() {
        let p = PlatformSpec::uniform(4).generate(0).unwrap();
        assert_eq!(p.proc_count(), 4);
        for a in p.procs() {
            for b in p.procs() {
                if a != b {
                    assert_eq!(p.rate(a, b), 1.0);
                }
            }
        }
    }

    #[test]
    fn heterogeneous_rates_span_and_symmetry() {
        let spec = PlatformSpec::uniform(6).heterogeneous(4.0).base_rate(2.0);
        let p = spec.generate(9).unwrap();
        for a in p.procs() {
            for b in p.procs() {
                if a == b {
                    continue;
                }
                let r = p.rate(a, b);
                assert!((1.0..=4.0).contains(&r), "rate {r} outside span");
                assert_eq!(r, p.rate(b, a), "must be symmetric");
            }
        }
    }

    #[test]
    fn asymmetric_generation() {
        let mut spec = PlatformSpec::uniform(5).heterogeneous(8.0);
        spec.symmetric = false;
        let p = spec.generate(3).unwrap();
        // With 20 directed links, at least one pair should differ.
        let any_asym = p.procs().any(|a| {
            p.procs()
                .any(|b| a != b && (p.rate(a, b) - p.rate(b, a)).abs() > 1e-12)
        });
        assert!(any_asym);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = PlatformSpec::uniform(4).heterogeneous(3.0);
        assert_eq!(spec.generate(5).unwrap(), spec.generate(5).unwrap());
    }

    #[test]
    fn zero_procs_is_error() {
        assert!(PlatformSpec::uniform(0).generate(0).is_err());
        assert!(PlatformSpec::uniform(0)
            .heterogeneous(2.0)
            .generate(0)
            .is_err());
    }

    #[test]
    fn typed_spec_round_robins_core_types() {
        let p = PlatformSpec::uniform(5).typed(2).generate(0).unwrap();
        assert_eq!(p.core_types(), Some(&[0u8, 1, 0, 1, 0][..]));
        // Typing must not perturb the rate draw: same seed, same rates.
        let spec = PlatformSpec::uniform(4).heterogeneous(3.0);
        let untyped = spec.generate(5).unwrap();
        let typed = spec.typed(2).generate(5).unwrap();
        for a in untyped.procs() {
            for b in untyped.procs() {
                assert_eq!(untyped.rate(a, b), typed.rate(a, b));
            }
        }
        // type_count > 64 is rejected by the platform layer.
        assert!(PlatformSpec::uniform(70).typed(70).generate(0).is_err());
    }

    #[test]
    fn untyped_spec_matches_pre_typed_platform() {
        let a = PlatformSpec::uniform(4).generate(0).unwrap();
        let b = Platform::uniform(4, 1.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_proc_platform_works() {
        let p = PlatformSpec::uniform(1).generate(0).unwrap();
        assert_eq!(p.proc_count(), 1);
        assert_eq!(p.comm_time(100.0, ProcId(0), ProcId(0)), 0.0);
    }
}

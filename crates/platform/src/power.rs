//! DVFS power and reliability models for energy-aware scheduling.
//!
//! Follows the standard CMOS model used by Tekawade & Banerjee (and the
//! DVFS-reliability literature descending from Zhu et al.):
//!
//! * a processor runs at a discrete *normalized frequency* `f ∈ (0, 1]`
//!   drawn from a [`FreqLadder`]; execution time scales as `base / f`
//!   (at `f = 1` the division is exact, so full-frequency schedules are
//!   bit-identical to the frequency-oblivious model);
//! * power at frequency `f` is `P_j(f) = P_static_j + κ_j · f^α` with
//!   `α ≈ 3` (dynamic power is cubic in frequency via `C·V²·f` and the
//!   near-linear V–f relation), so task energy is `P_j(f) · duration`;
//! * transient-fault rate *rises* as frequency drops (lower voltage means
//!   smaller critical charge): `λ(f) = λ₀ · 10^(d·(1−f)/(1−f_min))`, so a
//!   task of duration `t` completes fault-free with probability
//!   `exp(−λ(f)·t)` and a schedule's reliability is the product over tasks.
//!
//! The three pieces are bundled as an [`EnergyModel`], the single handle
//! the scheduling layers carry around.

use std::fmt;

use crate::proc::ProcId;

/// Errors from power/reliability model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A frequency ladder was empty.
    EmptyLadder,
    /// A frequency level was outside `(0, 1]` or not strictly increasing.
    InvalidLevel {
        /// Index of the offending level.
        index: usize,
        /// The offending value.
        level: f64,
    },
    /// A per-processor coefficient vector had the wrong length.
    CoeffShape {
        /// Expected processor count.
        procs: usize,
        /// Actual vector length.
        len: usize,
    },
    /// A power coefficient was negative or non-finite.
    InvalidCoeff {
        /// Which coefficient family ("static", "dynamic", "exponent").
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A reliability parameter was invalid.
    InvalidReliability {
        /// Which parameter ("lambda0", "sensitivity").
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::EmptyLadder => write!(f, "frequency ladder must have at least one level"),
            PowerError::InvalidLevel { index, level } => write!(
                f,
                "frequency level {level} at index {index} must lie in (0, 1] and increase strictly"
            ),
            PowerError::CoeffShape { procs, len } => {
                write!(f, "per-processor coefficients must have length {procs}, got {len}")
            }
            PowerError::InvalidCoeff { what, value } => {
                write!(f, "{what} power coefficient {value} must be finite and non-negative")
            }
            PowerError::InvalidReliability { what, value } => {
                write!(f, "reliability parameter {what} = {value} is invalid")
            }
        }
    }
}

impl std::error::Error for PowerError {}

/// A discrete DVFS ladder of normalized frequencies in `(0, 1]`, sorted
/// strictly ascending. The top level is always `1.0` (full speed), so any
/// ladder contains the frequency-oblivious operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqLadder {
    levels: Vec<f64>,
}

impl FreqLadder {
    /// A ladder from explicit levels; `1.0` is appended when missing.
    ///
    /// # Errors
    /// Returns [`PowerError`] when empty, out of `(0, 1]`, or not strictly
    /// increasing.
    pub fn new(mut levels: Vec<f64>) -> Result<Self, PowerError> {
        if levels.is_empty() {
            return Err(PowerError::EmptyLadder);
        }
        for (i, &l) in levels.iter().enumerate() {
            if !(l.is_finite() && l > 0.0 && l <= 1.0) {
                return Err(PowerError::InvalidLevel { index: i, level: l });
            }
            if i > 0 && l <= levels[i - 1] {
                return Err(PowerError::InvalidLevel { index: i, level: l });
            }
        }
        if *levels.last().expect("non-empty") < 1.0 {
            levels.push(1.0);
        }
        Ok(Self { levels })
    }

    /// The trivial ladder `[1.0]` — no DVFS; every task runs at full speed.
    #[must_use]
    pub fn full() -> Self {
        Self { levels: vec![1.0] }
    }

    /// `count` evenly spaced levels from `f_min` up to `1.0` inclusive.
    ///
    /// # Errors
    /// Returns [`PowerError`] when `count == 0` or `f_min` is outside
    /// `(0, 1]`.
    pub fn uniform(count: usize, f_min: f64) -> Result<Self, PowerError> {
        if count == 0 {
            return Err(PowerError::EmptyLadder);
        }
        if !(f_min.is_finite() && f_min > 0.0 && f_min <= 1.0) {
            return Err(PowerError::InvalidLevel {
                index: 0,
                level: f_min,
            });
        }
        if count == 1 || f_min >= 1.0 {
            return Ok(Self::full());
        }
        let step = (1.0 - f_min) / (count - 1) as f64;
        let mut levels: Vec<f64> = (0..count).map(|i| f_min + step * i as f64).collect();
        // Pin the endpoints exactly: the top level must be bit-exact 1.0 so
        // full-speed schedules divide by exactly one.
        levels[0] = f_min;
        *levels.last_mut().expect("non-empty") = 1.0;
        Self::new(levels)
    }

    /// Number of levels.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` for the trivial single-level ladder.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // constructors reject empty ladders
    }

    /// The frequency at `index` (ascending order).
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    #[inline]
    #[must_use]
    pub fn level(&self, index: usize) -> f64 {
        self.levels[index]
    }

    /// All levels, ascending.
    #[inline]
    #[must_use]
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// The lowest frequency.
    #[inline]
    #[must_use]
    pub fn min(&self) -> f64 {
        self.levels[0]
    }

    /// Index of the top (full-speed) level.
    #[inline]
    #[must_use]
    pub fn top_index(&self) -> usize {
        self.levels.len() - 1
    }
}

/// Per-processor power model: `P_j(f) = P_static_j + κ_j · f^α`.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    static_power: Vec<f64>,
    dyn_coeff: Vec<f64>,
    exponent: f64,
}

impl PowerModel {
    /// A model from per-processor static powers and dynamic coefficients.
    ///
    /// # Errors
    /// Returns [`PowerError`] on shape mismatch or invalid coefficients.
    pub fn new(
        static_power: Vec<f64>,
        dyn_coeff: Vec<f64>,
        exponent: f64,
    ) -> Result<Self, PowerError> {
        if static_power.len() != dyn_coeff.len() || static_power.is_empty() {
            return Err(PowerError::CoeffShape {
                procs: static_power.len().max(1),
                len: dyn_coeff.len(),
            });
        }
        for &v in &static_power {
            if !(v.is_finite() && v >= 0.0) {
                return Err(PowerError::InvalidCoeff { what: "static", value: v });
            }
        }
        for &v in &dyn_coeff {
            if !(v.is_finite() && v >= 0.0) {
                return Err(PowerError::InvalidCoeff { what: "dynamic", value: v });
            }
        }
        if !(exponent.is_finite() && exponent >= 1.0) {
            return Err(PowerError::InvalidCoeff {
                what: "exponent",
                value: exponent,
            });
        }
        Ok(Self {
            static_power,
            dyn_coeff,
            exponent,
        })
    }

    /// `m` identical processors with the given coefficients.
    ///
    /// # Errors
    /// Returns [`PowerError`] on invalid coefficients or `m == 0`.
    pub fn homogeneous(
        m: usize,
        static_power: f64,
        dyn_coeff: f64,
        exponent: f64,
    ) -> Result<Self, PowerError> {
        Self::new(vec![static_power; m], vec![dyn_coeff; m], exponent)
    }

    /// Number of processors covered.
    #[inline]
    #[must_use]
    pub fn proc_count(&self) -> usize {
        self.static_power.len()
    }

    /// The frequency exponent `α`.
    #[inline]
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Power draw of processor `p` running at normalized frequency `f`.
    #[inline]
    #[must_use]
    pub fn power(&self, p: ProcId, f: f64) -> f64 {
        self.static_power[p.index()] + self.dyn_coeff[p.index()] * f.powf(self.exponent)
    }

    /// Energy of a task of duration `dur` on `p` at frequency `f`.
    #[inline]
    #[must_use]
    pub fn energy(&self, p: ProcId, f: f64, dur: f64) -> f64 {
        self.power(p, f) * dur
    }
}

/// Exponential transient-fault model with frequency-dependent rate:
/// `λ(f) = λ₀ · 10^(d·(1−f)/(1−f_min))`, so the rate is `λ₀` at full speed
/// and `λ₀·10^d` at the ladder floor `f_min`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityModel {
    lambda0: f64,
    sensitivity: f64,
    f_min: f64,
}

impl ReliabilityModel {
    /// A model with base rate `λ₀` (per time unit at `f = 1`), sensitivity
    /// exponent `d ≥ 0`, and ladder floor `f_min`.
    ///
    /// # Errors
    /// Returns [`PowerError`] on non-finite / negative parameters.
    pub fn new(lambda0: f64, sensitivity: f64, f_min: f64) -> Result<Self, PowerError> {
        if !(lambda0.is_finite() && lambda0 >= 0.0) {
            return Err(PowerError::InvalidReliability {
                what: "lambda0",
                value: lambda0,
            });
        }
        if !(sensitivity.is_finite() && sensitivity >= 0.0) {
            return Err(PowerError::InvalidReliability {
                what: "sensitivity",
                value: sensitivity,
            });
        }
        if !(f_min.is_finite() && f_min > 0.0 && f_min <= 1.0) {
            return Err(PowerError::InvalidReliability {
                what: "f_min",
                value: f_min,
            });
        }
        Ok(Self {
            lambda0,
            sensitivity,
            f_min,
        })
    }

    /// Fault rate at normalized frequency `f`. Monotone non-increasing in
    /// `f`; equal to `λ₀` at `f = 1` (and everywhere when the ladder is
    /// trivial, `f_min = 1`).
    #[inline]
    #[must_use]
    pub fn rate(&self, f: f64) -> f64 {
        if self.f_min >= 1.0 {
            return self.lambda0;
        }
        let exp = self.sensitivity * (1.0 - f) / (1.0 - self.f_min);
        self.lambda0 * 10f64.powf(exp)
    }

    /// Probability a task of duration `dur` at frequency `f` completes
    /// fault-free: `exp(−λ(f)·dur)`.
    #[inline]
    #[must_use]
    pub fn task_reliability(&self, f: f64, dur: f64) -> f64 {
        (-self.rate(f) * dur).exp()
    }

    /// The base rate `λ₀`.
    #[inline]
    #[must_use]
    pub fn lambda0(&self) -> f64 {
        self.lambda0
    }
}

/// The bundle carried by energy-aware schedulers: the DVFS ladder plus the
/// power and reliability models for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// The discrete frequency ladder shared by all processors.
    pub ladder: FreqLadder,
    /// Per-processor power coefficients.
    pub power: PowerModel,
    /// Frequency-dependent transient-fault model.
    pub reliability: ReliabilityModel,
}

impl EnergyModel {
    /// Bundles the three models.
    #[must_use]
    pub fn new(ladder: FreqLadder, power: PowerModel, reliability: ReliabilityModel) -> Self {
        Self {
            ladder,
            power,
            reliability,
        }
    }

    /// Literature-typical defaults for `m` processors: a 4-level ladder
    /// down to `f_min = 0.5`, static power `0.1`, dynamic coefficient
    /// `1.0`, `α = 3`, `λ₀ = 10⁻⁴` faults per time unit, sensitivity
    /// `d = 2` (rate grows 100× from full speed to the floor).
    ///
    /// # Panics
    /// Panics when `m == 0`.
    #[must_use]
    pub fn default_for(m: usize) -> Self {
        let ladder = FreqLadder::uniform(4, 0.5).expect("valid default ladder");
        let power = PowerModel::homogeneous(m, 0.1, 1.0, 3.0).expect("valid default power");
        let reliability = ReliabilityModel::new(1e-4, 2.0, ladder.min()).expect("valid default");
        Self::new(ladder, power, reliability)
    }

    /// The frequency-oblivious bundle: trivial ladder, so every schedule
    /// runs at full speed and timing is bit-identical to the base model.
    ///
    /// # Panics
    /// Panics when `m == 0`.
    #[must_use]
    pub fn full_speed(m: usize) -> Self {
        let ladder = FreqLadder::full();
        let power = PowerModel::homogeneous(m, 0.1, 1.0, 3.0).expect("valid default power");
        let reliability = ReliabilityModel::new(1e-4, 2.0, 1.0).expect("valid default");
        Self::new(ladder, power, reliability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_construction_and_validation() {
        let l = FreqLadder::new(vec![0.5, 0.75, 1.0]).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.min(), 0.5);
        assert_eq!(l.level(l.top_index()), 1.0);
        // 1.0 appended when missing.
        let l = FreqLadder::new(vec![0.5, 0.75]).unwrap();
        assert_eq!(l.levels(), &[0.5, 0.75, 1.0]);
        assert_eq!(FreqLadder::new(vec![]).unwrap_err(), PowerError::EmptyLadder);
        assert!(FreqLadder::new(vec![0.0]).is_err());
        assert!(FreqLadder::new(vec![1.5]).is_err());
        assert!(FreqLadder::new(vec![0.8, 0.8]).is_err());
        assert!(FreqLadder::new(vec![0.8, 0.5]).is_err());
    }

    #[test]
    fn uniform_ladder_pins_endpoints() {
        let l = FreqLadder::uniform(4, 0.5).unwrap();
        assert_eq!(l.len(), 4);
        assert_eq!(l.min(), 0.5);
        assert_eq!(l.level(3), 1.0);
        assert_eq!(FreqLadder::uniform(1, 0.3).unwrap().levels(), &[1.0]);
        assert_eq!(FreqLadder::full().levels(), &[1.0]);
        assert!(FreqLadder::uniform(0, 0.5).is_err());
        assert!(FreqLadder::uniform(3, 0.0).is_err());
    }

    #[test]
    fn power_is_static_plus_cubic_dynamic() {
        let pm = PowerModel::homogeneous(2, 0.1, 1.0, 3.0).unwrap();
        assert_eq!(pm.proc_count(), 2);
        let p = ProcId(0);
        assert!((pm.power(p, 1.0) - 1.1).abs() < 1e-12);
        assert!((pm.power(p, 0.5) - (0.1 + 0.125)).abs() < 1e-12);
        assert!((pm.energy(p, 0.5, 10.0) - 2.25).abs() < 1e-12);
        // Heterogeneous coefficients are per-processor.
        let pm = PowerModel::new(vec![0.0, 1.0], vec![1.0, 2.0], 2.0).unwrap();
        assert!((pm.power(ProcId(0), 0.5) - 0.25).abs() < 1e-12);
        assert!((pm.power(ProcId(1), 0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn power_model_validation() {
        assert!(PowerModel::new(vec![0.1], vec![1.0, 2.0], 3.0).is_err());
        assert!(PowerModel::homogeneous(0, 0.1, 1.0, 3.0).is_err());
        assert!(PowerModel::homogeneous(2, -0.1, 1.0, 3.0).is_err());
        assert!(PowerModel::homogeneous(2, 0.1, f64::NAN, 3.0).is_err());
        assert!(PowerModel::homogeneous(2, 0.1, 1.0, 0.5).is_err());
    }

    #[test]
    fn reliability_rate_rises_as_frequency_drops() {
        let rm = ReliabilityModel::new(1e-4, 2.0, 0.5).unwrap();
        assert!((rm.rate(1.0) - 1e-4).abs() < 1e-16);
        assert!((rm.rate(0.5) - 1e-2).abs() < 1e-12);
        assert!(rm.rate(0.75) > rm.rate(1.0));
        assert!(rm.rate(0.5) > rm.rate(0.75));
        // Reliability of a task: in (0, 1], decreasing with duration.
        let r = rm.task_reliability(1.0, 100.0);
        assert!(r > 0.0 && r <= 1.0);
        assert!(rm.task_reliability(1.0, 200.0) < r);
        assert_eq!(rm.task_reliability(1.0, 0.0), 1.0);
    }

    #[test]
    fn trivial_ladder_keeps_base_rate() {
        let rm = ReliabilityModel::new(1e-3, 5.0, 1.0).unwrap();
        assert_eq!(rm.rate(1.0), 1e-3);
        assert_eq!(rm.rate(0.5), 1e-3);
    }

    #[test]
    fn reliability_validation() {
        assert!(ReliabilityModel::new(-1.0, 2.0, 0.5).is_err());
        assert!(ReliabilityModel::new(1e-4, -1.0, 0.5).is_err());
        assert!(ReliabilityModel::new(1e-4, 2.0, 0.0).is_err());
        assert!(ReliabilityModel::new(1e-4, 2.0, 1.5).is_err());
    }

    #[test]
    fn default_bundle_is_consistent() {
        let em = EnergyModel::default_for(3);
        assert_eq!(em.power.proc_count(), 3);
        assert_eq!(em.ladder.len(), 4);
        assert_eq!(em.ladder.level(em.ladder.top_index()), 1.0);
        let fs = EnergyModel::full_speed(3);
        assert_eq!(fs.ladder.levels(), &[1.0]);
    }
}

//! Concurrency guarantees of the scheduling service: worker-count
//! independence, backpressure, deadline fallback, and cache coherence.

use std::sync::Arc;
use std::time::Duration;

use rds_sched::{Instance, InstanceSpec};
use rds_service::{Algo, Degradation, JobError, JobSpec, Service, ServiceConfig};

fn inst(seed: u64, tasks: usize, procs: usize) -> Arc<Instance> {
    Arc::new(
        InstanceSpec::new(tasks, procs)
            .seed(seed)
            .build()
            .expect("test instance"),
    )
}

/// A mixed batch: express list-scheduler jobs and quick seeded GA jobs
/// over a few distinct instances (some shared, to exercise the cache).
fn mixed_jobs() -> Vec<JobSpec> {
    let a = inst(11, 20, 3);
    let b = inst(22, 15, 4);
    let mut jobs = vec![
        JobSpec::new("h-a", Algo::Heft, Arc::clone(&a)),
        JobSpec::new("h-b", Algo::Heft, Arc::clone(&b)),
        JobSpec::new("c-a", Algo::Cpop, Arc::clone(&a)),
        JobSpec::new("s-b", Algo::Sheft { k: 1.0 }, Arc::clone(&b)),
    ];
    for (n, seed) in [(0u32, 5u64), (1, 6), (2, 5)] {
        jobs.push(
            JobSpec::new(format!("g-{n}"), Algo::Ga, Arc::clone(&a))
                .seed(seed)
                .generations(8),
        );
    }
    jobs
}

/// The tentpole determinism claim: `run_batch` produces the same result
/// set regardless of worker count. Schedulers are deterministic per seed
/// and cache hits return bit-identical schedules, so only completion
/// *order* may differ — and `run_batch` sorts by id.
#[test]
fn run_batch_is_worker_count_invariant() {
    let (one, m1) = Service::run_batch(ServiceConfig::default().workers(1), mixed_jobs());
    let (four, m4) = Service::run_batch(ServiceConfig::default().workers(4), mixed_jobs());
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(four.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.lane, b.lane);
        let (oa, ob) = (
            a.outcome.as_ref().expect("1-worker job succeeds"),
            b.outcome.as_ref().expect("4-worker job succeeds"),
        );
        assert_eq!(oa.schedule, ob.schedule, "job {}", a.id);
        assert_eq!(
            oa.makespan.to_bits(),
            ob.makespan.to_bits(),
            "job {} makespan",
            a.id
        );
        assert_eq!(
            oa.avg_slack.to_bits(),
            ob.avg_slack.to_bits(),
            "job {} slack",
            a.id
        );
    }
    assert_eq!(m1.completed, m4.completed);
    assert_eq!(m1.failed + m4.failed, 0);
    // g-0 and g-2 share instance+seed+knobs: with one worker the second
    // is necessarily a cache hit. With four workers both may race past
    // the cache, so only the single-worker count is exact.
    assert_eq!(m1.cache_hits, 1);
}

#[test]
fn full_lane_rejects_with_reason_and_metrics() {
    let i = inst(33, 12, 3);
    let (service, rx) = Service::start(
        ServiceConfig::default()
            .workers(1)
            .queue_capacity(2)
            .paused(),
    );
    service
        .submit(JobSpec::new("a", Algo::Heft, Arc::clone(&i)))
        .expect("fits");
    service
        .submit(JobSpec::new("b", Algo::Heft, Arc::clone(&i)))
        .expect("fits");
    let err = service
        .submit(JobSpec::new("c", Algo::Heft, Arc::clone(&i)))
        .expect_err("third job overflows the express lane");
    match &err {
        JobError::Rejected(reason) => {
            assert!(reason.contains("queue full"), "got: {reason}");
            assert!(reason.contains("express"), "got: {reason}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    // The heavy lane is independently bounded: still open.
    service
        .submit(JobSpec::new("g", Algo::Ga, Arc::clone(&i)).generations(5))
        .expect("heavy lane has space");
    let snap = service.metrics();
    assert_eq!(snap.rejected_full, 1);
    assert_eq!(snap.submitted, 3);
    assert_eq!(snap.queue_depth_express, 2);
    service.resume();
    let mut done = 0;
    while done < 3 {
        let r = rx.recv().expect("workers alive");
        assert!(r.outcome.is_ok());
        done += 1;
    }
    let snap = service.metrics();
    assert_eq!(snap.completed, 3);
    assert_eq!(snap.rejected_full, 1);
    service.shutdown();
}

#[test]
fn deadline_budget_degrades_instead_of_overrunning() {
    let i = inst(44, 25, 3);
    // Duration::ZERO expires before the first generation: the watch fires
    // deterministically, so this test is not timing-sensitive.
    let job = JobSpec::new("slow-ga", Algo::Ga, Arc::clone(&i))
        .seed(3)
        .generations(4000)
        .deadline(Duration::ZERO);
    let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
    let out = results[0]
        .outcome
        .as_ref()
        .expect("degradation still yields a schedule");
    assert_ne!(out.degraded, Degradation::None);
    assert!(out.schedule.validate_against(&i.graph).is_ok());
    assert!(out.makespan > 0.0);
    assert_eq!(metrics.deadline_fallbacks, 1);
    assert_eq!(metrics.completed, 1);
}

#[test]
fn resubmission_is_served_from_cache() {
    let i = inst(55, 18, 3);
    let jobs = vec![
        JobSpec::new("first", Algo::Ga, Arc::clone(&i))
            .seed(9)
            .generations(6),
        JobSpec::new("second", Algo::Ga, Arc::clone(&i))
            .seed(9)
            .generations(6),
    ];
    let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), jobs);
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(metrics.cache_misses, 1);
    let a = results[0].outcome.as_ref().expect("first job");
    let b = results[1].outcome.as_ref().expect("second job");
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert!(a.cache_hit != b.cache_hit, "exactly one was the hit");
}

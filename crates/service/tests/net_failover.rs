//! Failover drills for the networked serving tier: two live TCP shards
//! behind a router, replicated warm cache, and seeded network chaos.
//!
//! The headline contract mirrors the crash-safety one, one level up the
//! stack: killing a shard must lose **zero accepted jobs** (the
//! journals of the survivors and the victim together account for every
//! acceptance), and a failed-over request must land on the **warm
//! replica** of its schedule, not a cold cache.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use rds_sched::io::{write_job, JobEnvelope};
use rds_sched::InstanceSpec;
use rds_service::net::{NetServer, NetServerConfig};
use rds_service::router::{Router, RouterConfig};
use rds_service::{Journal, Service, ServiceChaos, ServiceConfig};

fn envelope(id: &str, seed: u64) -> JobEnvelope {
    JobEnvelope {
        id: id.to_owned(),
        algo: "heft".to_owned(),
        epsilon: 1.3,
        seed: 0,
        generations: None,
        deadline_ms: None,
        lane: None,
        arrival: None,
        deadline: None,
        objective: None,
        rel_min: None,
        client: None,
        instance: InstanceSpec::new(24, 3).seed(seed).build().unwrap(),
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rds_netfail_{}_{name}.wal", std::process::id()))
}

fn start_shard(journal: &PathBuf, chaos: Option<ServiceChaos>) -> NetServer {
    let mut config = ServiceConfig::default().workers(2).journal(journal);
    let mut net = NetServerConfig::default();
    if let Some(chaos) = chaos {
        config = config.chaos(chaos);
        net = net.chaos(chaos);
    }
    let (service, results_rx) = Service::try_start(config).expect("shard service");
    NetServer::start(service, results_rx, net).expect("shard bind")
}

/// Waits until `cond` holds or the budget runs out; polling beats fixed
/// sleeps for an async gossip hop.
fn wait_for(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

/// Kill a shard mid-stream: every accepted job is accounted for across
/// the two journals (zero loss), the router fails the traffic over, and
/// the re-driven hot job hits the replicated warm cache on the
/// survivor.
#[test]
fn shard_kill_loses_nothing_and_failover_hits_warm_cache() {
    let j0 = tmp("kill_a");
    let j1 = tmp("kill_b");
    let _ = std::fs::remove_file(&j0);
    let _ = std::fs::remove_file(&j1);

    let shard0 = start_shard(&j0, None);
    let shard1 = start_shard(&j1, None);
    let addrs = vec![
        shard0.local_addr().to_string(),
        shard1.local_addr().to_string(),
    ];
    shard0.set_peers(addrs.clone(), 0);
    shard1.set_peers(addrs.clone(), 1);

    let router = Router::start(
        RouterConfig::default()
            .shards(addrs)
            .io_timeout(Duration::from_secs(5))
            .health_interval(Some(Duration::from_millis(100))),
    )
    .expect("router");

    // Find a job whose primary is shard 0 so the kill hits its owner.
    let (hot_id, hot_seed) = (0u32..64)
        .map(|s| (format!("hot-{s}"), u64::from(s)))
        .find(|(_, s)| envelope("probe", *s).instance.fingerprint().is_multiple_of(2))
        .expect("some seed lands on shard 0");

    // Warm the hot entry (miss + solve on shard 0, gossip to shard 1)
    // plus background traffic across both shards.
    let reply = router
        .route(&write_job(&envelope(&hot_id, hot_seed)))
        .expect("warm request");
    assert_eq!(reply.status, "ok");
    assert_eq!(reply.cache.as_deref(), Some("miss"));
    let mut accepted = vec![hot_id.clone()];
    for i in 0..6 {
        let id = format!("bg-{i}");
        let reply = router
            .route(&write_job(&envelope(&id, 100 + i)))
            .expect("background request");
        assert_eq!(reply.status, "ok", "job {id}: {:?}", reply.reason);
        accepted.push(id);
    }

    // The gossip hop is async: wait until the replica landed.
    assert!(
        wait_for(Duration::from_secs(5), || {
            shard0.net_metrics().gossip_out + shard1.net_metrics().gossip_out > 0
        }),
        "no cache entry was ever replicated"
    );

    // Kill the hot job's owner, then re-drive the same job. The router
    // must fail over to the survivor and find the replicated entry.
    let (m0, n0) = shard0.shutdown();
    assert_eq!(m0.failed, 0, "shard 0 failed jobs before the kill");
    assert!(n0.gossip_out >= 1, "shard 0 never gossiped its warm solves");

    let reply = router
        .route(&write_job(&envelope(&format!("{hot_id}-replay"), hot_seed)))
        .expect("failover request must eventually succeed");
    assert_eq!(reply.status, "ok", "failover reply: {:?}", reply.reason);
    assert_eq!(
        reply.cache.as_deref(),
        Some("hit"),
        "failed-over request missed the replicated warm cache"
    );
    accepted.push(format!("{hot_id}-replay"));

    let metrics = router.shutdown();
    assert!(metrics.failovers >= 1, "router never failed over");
    assert_eq!(metrics.errors, 0, "router lost a request: {metrics:?}");

    let (m1, _) = shard1.shutdown();
    assert_eq!(m1.failed, 0, "shard 1 failed jobs");

    // Zero-loss ledger: every accepted job has a terminal record in
    // exactly the journals, nothing is left pending.
    let mut completed = Vec::new();
    for j in [&j0, &j1] {
        let rec = Journal::recover_file(j).expect("journal scans");
        assert!(
            rec.pending.is_empty(),
            "journal {j:?} still has pending jobs: {:?}",
            rec.pending.iter().map(|e| &e.id).collect::<Vec<_>>()
        );
        completed.extend(rec.completed);
    }
    for id in &accepted {
        assert!(
            completed.iter().any(|c| c == id),
            "accepted job {id} has no completion record in any journal"
        );
    }

    let _ = std::fs::remove_file(&j0);
    let _ = std::fs::remove_file(&j1);
}

/// Seeded reply-drop chaos: the shard accepts and solves the job but
/// chaos eats the reply. The client times out, the router retries, and
/// the request still completes — the drop is visible in the shard's
/// transport counters, not in lost work.
#[test]
fn dropped_replies_are_survived_by_router_retries() {
    let j = tmp("drop");
    let _ = std::fs::remove_file(&j);
    let chaos = ServiceChaos::seeded(42).net_drop_rate(0.4);
    let shard = start_shard(&j, Some(chaos));
    let addr = shard.local_addr().to_string();

    let router = Router::start(
        RouterConfig::default()
            .shards(vec![addr])
            .max_attempts(10)
            .io_timeout(Duration::from_millis(800))
            .health_interval(None),
    )
    .expect("router");

    let mut ok = 0;
    for i in 0..8 {
        let reply = router
            .route(&write_job(&envelope(&format!("drop-{i}"), 200 + i)))
            .expect("request survives drops via retries");
        assert_eq!(reply.status, "ok");
        ok += 1;
    }
    assert_eq!(ok, 8);

    let metrics = router.shutdown();
    let (_, net) = shard.shutdown();
    assert!(
        net.replies_dropped >= 1,
        "chaos at rate 0.4 never dropped a reply: {net:?}"
    );
    assert!(
        metrics.retries >= 1,
        "drops happened but the router never retried: {metrics:?}"
    );

    let rec = Journal::recover_file(&j).expect("journal scans");
    assert!(
        rec.pending.is_empty(),
        "dropped replies must not strand accepted jobs"
    );
    let _ = std::fs::remove_file(&j);
}

/// The router's front-tier token bucket: an over-rate client is
/// rejected locally with a `retry-after` hint and the surplus request
/// never reaches a shard, while the in-budget requests route normally.
#[test]
fn router_rate_limit_rejects_before_forwarding() {
    let j = tmp("ratelimit");
    let _ = std::fs::remove_file(&j);
    let shard = start_shard(&j, None);
    let router = Router::start(
        RouterConfig::default()
            .shards(vec![shard.local_addr().to_string()])
            .health_interval(None)
            .rate_limit(rds_service::RateLimitConfig {
                rate_per_sec: 1e-6, // glacial refill: the burst is the budget
                burst: 2.0,
            }),
    )
    .expect("router starts");
    let job = |i: usize| {
        let mut env = envelope(&format!("rl-{i}"), 7);
        env.client = Some("tenant-a".to_owned());
        write_job(&env)
    };
    for i in 0..2 {
        let reply = router.route(&job(i)).expect("in-budget request routes");
        assert_eq!(reply.status, "ok", "{reply:?}");
    }
    let reply = router
        .route(&job(2))
        .expect("a local rate rejection is still a reply");
    assert_eq!(reply.status, "rejected");
    assert!(
        reply
            .reason
            .as_deref()
            .unwrap_or_default()
            .contains("request rate"),
        "{reply:?}"
    );
    assert!(reply.retry_after_ms.unwrap_or(0) >= 1);
    let metrics = router.shutdown();
    assert_eq!(metrics.rate_limited, 1);
    // Only the two admitted requests generated shard traffic.
    let (service_metrics, _net) = shard.shutdown();
    assert_eq!(service_metrics.submitted, 2);
    let _ = std::fs::remove_file(&j);
}

//! Property-based verification of the TCP frame scanner.
//!
//! The scanner sits between `TcpStream::read` and the envelope parsers,
//! so it must uphold its contract for *every* way the kernel can split
//! a byte stream:
//!
//! * **reassembly is split-invariant** — any partition of a valid frame
//!   sequence into read chunks yields exactly the same frames in order;
//! * **trailing garbage is rejected, not absorbed** — a non-header line
//!   after the last complete frame is a typed `Garbage` error;
//! * **a torn frame is detectable at EOF** — bytes of an unterminated
//!   frame stay buffered, never silently dropped;
//! * **the size cap is enforced** — a frame that exceeds `max_frame`
//!   without terminating errors out instead of growing the buffer.

use proptest::prelude::*;

use rds_sched::io::{read_job, write_job, JobEnvelope};
use rds_sched::InstanceSpec;
use rds_service::net::{Frame, FrameError, FrameScanner, DEFAULT_MAX_FRAME, PROBE_HEADER};

fn job_text(id: &str, seed: u64, tasks: usize) -> String {
    write_job(&JobEnvelope {
        id: id.to_owned(),
        algo: "heft".to_owned(),
        epsilon: 1.3,
        seed,
        generations: None,
        deadline_ms: None,
        lane: None,
        arrival: None,
        deadline: None,
        objective: None,
        rel_min: None,
        client: None,
        instance: InstanceSpec::new(tasks, 3).seed(seed).build().unwrap(),
    })
}

/// Builds a frame sequence from a small recipe: each entry is either a
/// job envelope (with varying size) or a probe line.
fn build_stream(recipe: &[u8]) -> (String, usize) {
    let mut out = String::new();
    for (i, &kind) in recipe.iter().enumerate() {
        if kind % 3 == 0 {
            out.push_str(&format!("{PROBE_HEADER}\n"));
        } else {
            let tasks = 6 + usize::from(kind % 7) * 3;
            out.push_str(&job_text(&format!("j{i}"), u64::from(kind), tasks));
        }
    }
    (out, recipe.len())
}

/// Feeds `bytes` to a scanner in chunks cut at the given fractions.
fn scan_in_chunks(bytes: &[u8], cuts: &[f64], max_frame: usize) -> Result<Vec<Frame>, FrameError> {
    let mut offsets: Vec<usize> = cuts
        .iter()
        .map(|f| {
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let o = ((bytes.len() as f64) * f) as usize;
            o.min(bytes.len())
        })
        .collect();
    offsets.push(0);
    offsets.push(bytes.len());
    offsets.sort_unstable();
    offsets.dedup();
    let mut scanner = FrameScanner::new(max_frame);
    let mut frames = Vec::new();
    for pair in offsets.windows(2) {
        frames.extend(scanner.push(&bytes[pair[0]..pair[1]])?);
    }
    assert_eq!(scanner.buffered(), 0, "complete stream left bytes buffered");
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any chunking of a valid frame sequence reassembles to the same
    /// frames, in order, with ids intact.
    #[test]
    fn reassembly_is_split_invariant(
        recipe in proptest::collection::vec(0u8..12, 1..5),
        cuts in proptest::collection::vec(0.0f64..=1.0, 0..12),
    ) {
        let (stream, n) = build_stream(&recipe);
        let frames = scan_in_chunks(stream.as_bytes(), &cuts, DEFAULT_MAX_FRAME)
            .expect("valid stream must scan");
        prop_assert_eq!(frames.len(), n);
        for (i, (frame, &kind)) in frames.iter().zip(&recipe).enumerate() {
            match frame {
                Frame::Probe => prop_assert!(kind % 3 == 0, "frame {i} kind mismatch"),
                Frame::Job(text) => {
                    prop_assert!(kind % 3 != 0, "frame {i} kind mismatch");
                    let env = read_job(text).expect("reassembled job must parse");
                    prop_assert_eq!(env.id, format!("j{}", i));
                }
                other => prop_assert!(false, "unexpected frame {other:?}"),
            }
        }
    }

    /// Garbage after the last complete frame is a typed error no matter
    /// how the stream was chunked before it.
    #[test]
    fn trailing_garbage_is_rejected(
        recipe in proptest::collection::vec(0u8..12, 0..3),
        cuts in proptest::collection::vec(0.0f64..=1.0, 0..6),
        garbage_seed in proptest::collection::vec(0u8..27, 1..24),
    ) {
        // Lowercase words — no dash, so never a valid `rds-*` header.
        let garbage: String = garbage_seed
            .iter()
            .map(|&b| if b == 26 { ' ' } else { char::from(b'a' + b) })
            .collect();
        prop_assume!(!garbage.trim().is_empty());
        prop_assume!(!garbage.starts_with("rds-"));
        let (mut stream, _) = build_stream(&recipe);
        stream.push_str(&format!("{garbage}\n"));
        let err = scan_in_chunks(stream.as_bytes(), &cuts, DEFAULT_MAX_FRAME)
            .expect_err("garbage header must error");
        prop_assert!(matches!(err, FrameError::Garbage(_)), "got {err}");
    }

    /// Cutting a frame sequence mid-frame leaves the tail buffered —
    /// the server reads that as a torn frame at EOF, never as success.
    #[test]
    fn torn_tail_stays_buffered(
        recipe in proptest::collection::vec(1u8..12, 1..4),
        tear_frac in 0.05f64..0.95,
    ) {
        let (stream, _) = build_stream(&recipe);
        let bytes = stream.as_bytes();
        // Tear inside the *last* frame: find the later of the last job
        // and last probe start, then cut strictly after it.
        let last_start = stream
            .rfind("rds-job v1\n")
            .into_iter()
            .chain(stream.rfind(&format!("{PROBE_HEADER}\n")))
            .max()
            .unwrap_or(0);
        let span = bytes.len() - last_start;
        prop_assume!(span > 2);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = last_start + 1 + ((span - 2) as f64 * tear_frac) as usize;
        let mut scanner = FrameScanner::new(DEFAULT_MAX_FRAME);
        let _ = scanner.push(&bytes[..cut]).expect("prefix of valid stream");
        prop_assert!(scanner.buffered() > 0, "torn frame left nothing buffered");
    }
}

/// A frame that outgrows the cap errors out with the configured limit,
/// whether it arrives in one read or many.
#[test]
fn oversized_frame_hits_the_cap() {
    let text = job_text("big", 1, 40);
    let cap = text.len() / 2;
    for chunk in [1usize, 7, 64, usize::MAX] {
        let mut scanner = FrameScanner::new(cap);
        let bytes = text.as_bytes();
        let mut err = None;
        let mut i = 0;
        while i < bytes.len() {
            let end = i.saturating_add(chunk).min(bytes.len());
            match scanner.push(&bytes[i..end]) {
                Ok(_) => i = end,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            Some(FrameError::TooLarge { limit }) => assert_eq!(limit, cap),
            other => panic!("chunk {chunk}: expected TooLarge, got {other:?}"),
        }
    }
}

/// Blank lines and comments between frames are protocol-legal filler.
#[test]
fn blank_and_comment_lines_between_frames_are_skipped() {
    let stream = format!(
        "\n# warm-up comment\n{}\n\n# between frames\n{PROBE_HEADER}\n",
        job_text("j0", 3, 8).trim_end()
    );
    let mut scanner = FrameScanner::new(DEFAULT_MAX_FRAME);
    let frames = scanner.push(stream.as_bytes()).unwrap();
    assert_eq!(frames.len(), 2);
    assert!(matches!(frames[0], Frame::Job(_)));
    assert!(matches!(frames[1], Frame::Probe));
    assert_eq!(scanner.buffered(), 0);
}

//! Property-based verification of the durable journal's crash contract.
//!
//! A crash is modeled as truncating the journal file at an *arbitrary*
//! byte — mid-record, mid-payload, or on a record boundary. Whatever the
//! cut point, recovery must uphold three promises:
//!
//! * **no accepted job is lost** — every job whose fsync'd `accepted`
//!   record fully reached disk, and whose terminal record did not, is in
//!   the replay set;
//! * **no completed job is duplicated** — a job whose terminal record
//!   survived the cut is never replayed, and `completed` lists it at
//!   most once per completion record;
//! * **recovery is idempotent** — scanning the same file twice (or
//!   re-scanning after an open-repair pass) yields the same obligation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use rds_sched::io::JobEnvelope;
use rds_sched::InstanceSpec;
use rds_service::{Journal, JournalRecovery};

/// Terminal fate of one journaled job in the generated history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// Accepted only — always pending.
    Accepted,
    /// Accepted and started — still pending (start is not terminal).
    Started,
    Completed,
    Rejected,
    Failed,
}

impl Fate {
    fn from_index(i: u8) -> Self {
        match i % 5 {
            0 => Fate::Accepted,
            1 => Fate::Started,
            2 => Fate::Completed,
            3 => Fate::Rejected,
            _ => Fate::Failed,
        }
    }
}

/// Byte offsets bounding each job's records in the journal file.
#[derive(Debug, Clone, Copy)]
struct Offsets {
    /// File length once the `accepted` record is fully on disk.
    accepted_end: u64,
    /// File length once the terminal record is fully on disk (terminal
    /// fates only).
    terminal_end: Option<u64>,
}

fn unique_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "rds_recovery_{}_{}_{tag}.wal",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn envelope(id: &str) -> JobEnvelope {
    JobEnvelope {
        id: id.into(),
        algo: "heft".into(),
        epsilon: 1.3,
        seed: 0,
        generations: None,
        deadline_ms: None,
        lane: None,
        arrival: None,
        deadline: None,
        objective: None,
        rel_min: None,
        client: None,
        instance: InstanceSpec::new(6, 2)
            .seed(1)
            .build()
            .expect("tiny instance"),
    }
}

/// Writes a journal replaying `fates` through the real writer and
/// returns the file bytes plus per-job record offsets.
fn write_history(fates: &[Fate]) -> (Vec<u8>, Vec<Offsets>) {
    let path = unique_path("hist");
    let _ = std::fs::remove_file(&path);
    let journal = Journal::open(&path, None).expect("fresh journal");
    let file_len = || std::fs::metadata(&path).expect("journal exists").len();
    let mut offsets = Vec::with_capacity(fates.len());
    for (i, &fate) in fates.iter().enumerate() {
        let id = format!("job-{i}");
        journal.accepted(&envelope(&id)).expect("accept journals");
        let accepted_end = file_len();
        if !matches!(fate, Fate::Accepted) {
            journal.started(&id, 0);
        }
        let terminal_end = match fate {
            Fate::Completed => {
                journal.completed(&id);
                Some(file_len())
            }
            Fate::Rejected => {
                journal.rejected(&id, "overflow");
                Some(file_len())
            }
            Fate::Failed => {
                journal.failed(&id, "poison");
                Some(file_len())
            }
            Fate::Accepted | Fate::Started => None,
        };
        offsets.push(Offsets {
            accepted_end,
            terminal_end,
        });
    }
    drop(journal);
    let bytes = std::fs::read(&path).expect("journal readable");
    std::fs::remove_file(&path).ok();
    (bytes, offsets)
}

fn recover_bytes(bytes: &[u8], tag: &str) -> JournalRecovery {
    let path = unique_path(tag);
    std::fs::write(&path, bytes).expect("write cut journal");
    let rec = Journal::recover_file(&path).expect("recovery never errors on a cut");
    std::fs::remove_file(&path).ok();
    rec
}

fn pending_ids(rec: &JournalRecovery) -> Vec<String> {
    rec.pending.iter().map(|e| e.id.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline crash property, checked against ground truth
    /// computed from record byte offsets: for every cut point, exactly
    /// the accepted-and-unfinished jobs (as of the surviving prefix) are
    /// pending — none lost, none resurrected.
    #[test]
    fn truncation_at_any_byte_loses_no_accepted_job(
        fate_seed in proptest::collection::vec(0u8..5, 1..5),
        cut_frac in 0.0f64..=1.0,
    ) {
        let fates: Vec<Fate> = fate_seed.iter().map(|&i| Fate::from_index(i)).collect();
        let (bytes, offsets) = write_history(&fates);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let rec = recover_bytes(&bytes[..cut], "cut");

        let cut = cut as u64;
        for (i, (fate, off)) in fates.iter().zip(&offsets).enumerate() {
            let id = format!("job-{i}");
            let accepted_survived = cut >= off.accepted_end;
            let terminal_survived = off.terminal_end.is_some_and(|end| cut >= end);
            let is_pending = pending_ids(&rec).contains(&id);
            if accepted_survived && !terminal_survived {
                prop_assert!(is_pending, "job {id} was accepted (fsync'd) and unfinished at the cut, but is not replayed");
            } else {
                prop_assert!(!is_pending, "job {id} must not be replayed (accepted survived: {accepted_survived}, terminal survived: {terminal_survived})");
            }
            if terminal_survived && *fate == Fate::Completed {
                prop_assert_eq!(
                    rec.completed.iter().filter(|c| **c == id).count(), 1,
                    "completed job {} must be listed exactly once", id
                );
            }
        }
        // An uncut file is never reported torn.
        if cut == bytes.len() as u64 {
            prop_assert!(!rec.torn, "full journal misreported as torn");
        }
    }

    /// Recovery is a pure function of the file: scanning the same cut
    /// twice yields the same pending and completed sets, and pending and
    /// completed never overlap or contain duplicates.
    #[test]
    fn recovery_is_idempotent_and_duplicate_free(
        fate_seed in proptest::collection::vec(0u8..5, 1..5),
        cut_frac in 0.0f64..=1.0,
    ) {
        let fates: Vec<Fate> = fate_seed.iter().map(|&i| Fate::from_index(i)).collect();
        let (bytes, _) = write_history(&fates);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac) as usize;

        let first = recover_bytes(&bytes[..cut], "idem-a");
        let second = recover_bytes(&bytes[..cut], "idem-b");
        prop_assert_eq!(pending_ids(&first), pending_ids(&second));
        prop_assert_eq!(&first.completed, &second.completed);
        prop_assert_eq!(first.records, second.records);

        let pending = pending_ids(&first);
        let mut unique = pending.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(unique.len(), pending.len(), "pending has duplicates: {:?}", pending);
        for done in &first.completed {
            prop_assert!(!pending.contains(done), "{} is both pending and completed", done);
        }
    }

    /// Open-repair then re-scan agrees with direct recovery: truncating
    /// the valid prefix (what `Journal::open` does on restart) must not
    /// change the obligation, no matter where the crash cut the file.
    #[test]
    fn open_repair_preserves_the_recovery_obligation(
        fate_seed in proptest::collection::vec(0u8..5, 1..4),
        cut_frac in 0.0f64..=1.0,
    ) {
        let fates: Vec<Fate> = fate_seed.iter().map(|&i| Fate::from_index(i)).collect();
        let (bytes, _) = write_history(&fates);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac) as usize;

        let direct = recover_bytes(&bytes[..cut], "repair-direct");

        let path = unique_path("repair-open");
        std::fs::write(&path, &bytes[..cut]).expect("write cut journal");
        match Journal::open(&path, None) {
            Ok(journal) => drop(journal),
            // A cut inside the header leaves a non-journal fragment;
            // open refuses it, and recovery of the fragment is empty.
            Err(_) => prop_assert!(direct.pending.is_empty() && direct.completed.is_empty()),
        }
        let repaired = Journal::recover_file(&path).expect("repaired journal scans");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(pending_ids(&direct), pending_ids(&repaired));
        prop_assert_eq!(direct.completed, repaired.completed);
        prop_assert!(!repaired.torn, "open() must have repaired the tear");
    }
}

//! Supervision under injected chaos: a worker panic mid-job must end in
//! a retried success or a typed `failed` result — never a lost job or a
//! permanently dead worker slot — and the quiet path (chaos off, no
//! journal) must stay bit-identical to the plain service.

use std::sync::Arc;
use std::time::Duration;

use rds_sched::{Instance, InstanceSpec};
use rds_service::{
    Algo, JobError, JobSpec, Service, ServiceChaos, ServiceConfig, SupervisorConfig,
};

fn inst(seed: u64, tasks: usize, procs: usize) -> Arc<Instance> {
    Arc::new(
        InstanceSpec::new(tasks, procs)
            .seed(seed)
            .build()
            .expect("test instance"),
    )
}

fn jobs(n: usize) -> Vec<JobSpec> {
    let shared = inst(77, 16, 3);
    (0..n)
        .map(|i| JobSpec::new(format!("job-{i:02}"), Algo::Heft, Arc::clone(&shared)))
        .collect()
}

/// Every submitted job comes back exactly once with a terminal outcome,
/// even when chaos kills worker threads mid-job: a panicked attempt is
/// retried on a fresh worker, and a poison job (panicking every attempt)
/// surfaces as a typed `failed` — never a hang or a missing result.
#[test]
fn worker_panics_never_lose_jobs() {
    for &panic_rate in &[0.3, 1.0] {
        let n = 12;
        let config = ServiceConfig::default()
            .workers(3)
            .supervisor(
                SupervisorConfig::default()
                    .max_attempts(3)
                    .backoff_base(Duration::from_millis(1))
                    .backoff_cap(Duration::from_millis(5)),
            )
            .chaos(ServiceChaos::seeded(42).panic_rate(panic_rate));
        let (results, metrics) = Service::run_batch(config, jobs(n));

        assert_eq!(
            results.len(),
            n,
            "panic rate {panic_rate}: a job went missing"
        );
        let mut ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        ids.dedup();
        assert_eq!(ids.len(), n, "panic rate {panic_rate}: duplicated result");
        for r in &results {
            match &r.outcome {
                Ok(out) => assert!(out.makespan > 0.0),
                Err(JobError::Failed(reason)) => {
                    assert!(
                        reason.contains("gave up"),
                        "panic rate {panic_rate}: unexpected failure: {reason}"
                    );
                }
                Err(other) => panic!("panic rate {panic_rate}: unexpected error {other}"),
            }
        }
        // Chaos fired and the supervisor answered: every panic produced
        // either a retry or (at the attempt cap) a typed failure.
        assert!(
            metrics.worker_panics > 0,
            "panic rate {panic_rate}: chaos never fired"
        );
        assert_eq!(
            metrics.completed + metrics.failed,
            n as u64,
            "panic rate {panic_rate}: terminal accounting is off"
        );
        if panic_rate < 1.0 {
            assert!(
                metrics.completed > 0,
                "some jobs must survive at rate {panic_rate}"
            );
        }
    }
}

/// After chaos kills workers, the supervisor restarts them into the same
/// slots: a follow-up chaos-free batch on the same service still
/// completes, proving no slot died permanently.
#[test]
fn dead_worker_slots_are_restarted() {
    let config = ServiceConfig::default()
        .workers(2)
        .supervisor(
            SupervisorConfig::default()
                .max_attempts(4)
                .backoff_base(Duration::from_millis(1))
                .backoff_cap(Duration::from_millis(5)),
        )
        .chaos(ServiceChaos::seeded(7).panic_rate(0.8));
    let (service, rx) = Service::start(config);
    for spec in jobs(8) {
        service.submit_blocking(spec).expect("accepted");
    }
    let mut terminal = 0;
    while terminal < 8 {
        let r = rx.recv().expect("service alive");
        assert!(matches!(&r.outcome, Ok(_) | Err(JobError::Failed(_))));
        terminal += 1;
    }
    let metrics = service.metrics();
    assert!(metrics.worker_panics > 0, "chaos never fired");
    assert!(
        metrics.worker_restarts >= 1,
        "a dead worker must have been restarted into its slot"
    );
    service.shutdown();
}

/// A stalled attempt trips the per-job wall-clock timeout, is cancelled
/// cooperatively, and the job is retried — ending terminal, not hung.
#[test]
fn stalled_jobs_time_out_and_finish() {
    let config = ServiceConfig::default()
        .workers(2)
        .supervisor(
            SupervisorConfig::default()
                .max_attempts(2)
                .job_timeout(Duration::from_millis(30))
                .poll_interval(Duration::from_millis(2))
                .backoff_base(Duration::from_millis(1))
                .backoff_cap(Duration::from_millis(2)),
        )
        .chaos(
            ServiceChaos::seeded(9)
                .stall_rate(1.0)
                .stall(Duration::from_secs(60)),
        );
    let (results, metrics) = Service::run_batch(config, jobs(3));
    assert_eq!(results.len(), 3);
    for r in &results {
        let Err(JobError::Failed(reason)) = &r.outcome else {
            panic!("an always-stalling job cannot succeed: {:?}", r.id);
        };
        assert!(reason.contains("gave up"), "got: {reason}");
    }
    assert!(
        metrics.job_timeouts >= 3,
        "timeouts: {}",
        metrics.job_timeouts
    );
}

/// The quiet path promise: with chaos off and no journal configured, the
/// crash-safety machinery is inert — results are bit-identical to the
/// seed service's output for the same batch.
#[test]
fn quiet_path_is_bit_identical_to_plain_service() {
    let mk_jobs = || {
        let a = inst(11, 20, 3);
        let b = inst(22, 15, 4);
        vec![
            JobSpec::new("h-a", Algo::Heft, Arc::clone(&a)),
            JobSpec::new("c-b", Algo::Cpop, Arc::clone(&b)),
            JobSpec::new("g-a", Algo::Ga, Arc::clone(&a))
                .seed(5)
                .generations(8),
            JobSpec::new("s-b", Algo::Sheft { k: 1.0 }, Arc::clone(&b)),
        ]
    };
    let plain = ServiceConfig::default().workers(1);
    let hardened = ServiceConfig::default().workers(1).supervisor(
        SupervisorConfig::default()
            .max_attempts(5)
            .backoff_base(Duration::from_millis(1))
            .backoff_cap(Duration::from_millis(8)),
    );
    let (a, ma) = Service::run_batch(plain, mk_jobs());
    let (b, mb) = Service::run_batch(hardened, mk_jobs());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.id, y.id);
        let (ox, oy) = (
            x.outcome.as_ref().expect("quiet job succeeds"),
            y.outcome.as_ref().expect("quiet job succeeds"),
        );
        assert_eq!(ox.schedule, oy.schedule, "job {}", x.id);
        assert_eq!(ox.makespan.to_bits(), oy.makespan.to_bits(), "job {}", x.id);
        assert_eq!(
            ox.avg_slack.to_bits(),
            oy.avg_slack.to_bits(),
            "job {}",
            x.id
        );
        assert_eq!(ox.degraded, oy.degraded, "job {}", x.id);
    }
    assert_eq!(ma.completed, mb.completed);
    assert_eq!(ma.worker_panics + mb.worker_panics, 0);
    assert_eq!(ma.retries + mb.retries, 0);
    assert_eq!(mb.journal_records, 0, "no journal configured, none written");
}

//! A bounded, multi-lane MPMC job queue with admission control.
//!
//! Express jobs (cheap list schedulers) are always served before online
//! jobs (deadline-carrying arrivals), which are served before heavy jobs
//! (GA/SA) — so a burst of expensive search jobs cannot starve
//! latency-sensitive requests, and deadline work never waits behind a
//! long GA run. Each lane is independently bounded;
//! [`LaneQueue::try_push`] rejects instead of blocking when a lane is
//! full — that rejection *is* the service's backpressure signal (online
//! jobs face a second, probability-based admission gate upstream).
//!
//! Implemented with a `Mutex` + two `Condvar`s rather than channels: lane
//! priority needs one consumer wait-point over several buffers, which a
//! channel-per-lane cannot express without busy polling.
//!
//! Lock poisoning is deliberately recovered ([`std::sync::PoisonError::into_inner`]):
//! the guarded state is three `VecDeque`s and two flags, each mutated by
//! a single non-panicking statement, so a poisoned mutex can only mean a
//! panic elsewhere in a worker — abandoning the serving loop over it
//! would turn one bad job into a full outage.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::job::Lane;

/// Why a push was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The lane's buffer is at capacity (backpressure; retry later).
    Full {
        /// The lane that was full.
        lane: Lane,
        /// Its configured capacity.
        capacity: usize,
    },
    /// The queue was closed; no further work is accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { lane, capacity } => {
                write!(
                    f,
                    "queue full: {} lane at capacity {}",
                    lane.name(),
                    capacity
                )
            }
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct Inner<T> {
    express: VecDeque<T>,
    online: VecDeque<T>,
    heavy: VecDeque<T>,
    closed: bool,
    /// While paused, consumers wait even if work is queued (deterministic
    /// tests and `--hold` mode fill the queue before any draining starts).
    paused: bool,
}

/// The queue. `T` is the queued work item.
pub struct LaneQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signals consumers: work available, unpaused, or closed.
    consumer: Condvar,
    /// Signals blocked producers: space freed in some lane.
    producer: Condvar,
    capacity: usize,
}

impl<T> LaneQueue<T> {
    /// Creates a queue with the given per-lane capacity (≥ 1).
    ///
    /// # Panics
    /// Panics when `capacity` is zero — a zero-capacity admission queue
    /// can never accept work.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                express: VecDeque::new(),
                online: VecDeque::new(),
                heavy: VecDeque::new(),
                closed: false,
                paused: false,
            }),
            consumer: Condvar::new(),
            producer: Condvar::new(),
            capacity,
        }
    }

    /// Per-lane capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the state, recovering from poisoning (see module docs).
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lane_mut(inner: &mut Inner<T>, lane: Lane) -> &mut VecDeque<T> {
        match lane {
            Lane::Express => &mut inner.express,
            Lane::Online => &mut inner.online,
            Lane::Heavy => &mut inner.heavy,
        }
    }

    /// Non-blocking push: the admission-control path. A refused item is
    /// handed back with the error, so a caller holding a job it must not
    /// lose (the supervisor rescuing work from a dead worker) can turn
    /// the refusal into a typed result instead of silently dropping it.
    ///
    /// # Errors
    /// [`PushError::Full`] when the lane is at capacity, [`PushError::Closed`]
    /// after [`LaneQueue::close`] — both returning the item.
    pub fn try_push(&self, lane: Lane, item: T) -> Result<(), (PushError, T)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        let cap = self.capacity;
        let buf = Self::lane_mut(&mut inner, lane);
        if buf.len() >= cap {
            return Err((
                PushError::Full {
                    lane,
                    capacity: cap,
                },
                item,
            ));
        }
        buf.push_back(item);
        drop(inner);
        self.consumer.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space instead of rejecting. Used by the
    /// deterministic in-process harness, where backpressure should slow
    /// the producer down rather than drop work.
    ///
    /// # Errors
    /// [`PushError::Closed`] (with the item) when the queue closes while
    /// waiting.
    pub fn push_blocking(&self, lane: Lane, item: T) -> Result<(), (PushError, T)> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err((PushError::Closed, item));
            }
            let cap = self.capacity;
            let buf = Self::lane_mut(&mut inner, lane);
            if buf.len() < cap {
                buf.push_back(item);
                drop(inner);
                self.consumer.notify_one();
                return Ok(());
            }
            inner = self
                .producer
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocking pop honoring lane priority: express, then online, then
    /// heavy. Returns `None` once the queue is closed *and* drained — the
    /// worker shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if !inner.paused {
                if let Some(item) = inner
                    .express
                    .pop_front()
                    .or_else(|| inner.online.pop_front())
                    .or_else(|| inner.heavy.pop_front())
                {
                    drop(inner);
                    self.producer.notify_one();
                    return Some(item);
                }
                if inner.closed {
                    return None;
                }
            }
            inner = self
                .consumer
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops consumers from draining (queued work accumulates).
    pub fn pause(&self) {
        self.lock().paused = true;
    }

    /// Resumes draining after [`LaneQueue::pause`].
    pub fn resume(&self) {
        self.lock().paused = false;
        self.consumer.notify_all();
    }

    /// Closes the queue: pending work is still drained, new pushes fail,
    /// and blocked consumers wake with `None` once empty.
    pub fn close(&self) {
        self.lock().closed = true;
        self.consumer.notify_all();
        self.producer.notify_all();
    }

    /// Current queue depths `(express, online, heavy)`.
    #[must_use]
    pub fn depths(&self) -> (usize, usize, usize) {
        let inner = self.lock();
        (inner.express.len(), inner.online.len(), inner.heavy.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_reports_lane() {
        let q = LaneQueue::new(2);
        q.try_push(Lane::Heavy, 1).unwrap();
        q.try_push(Lane::Heavy, 2).unwrap();
        let (err, item) = q.try_push(Lane::Heavy, 3).unwrap_err();
        assert_eq!(
            err,
            PushError::Full {
                lane: Lane::Heavy,
                capacity: 2
            }
        );
        // The refused item comes back instead of being dropped.
        assert_eq!(item, 3);
        assert!(err.to_string().contains("heavy lane at capacity 2"));
        // Lanes are independently bounded.
        q.try_push(Lane::Express, 4).unwrap();
        q.try_push(Lane::Online, 5).unwrap();
        assert_eq!(q.depths(), (1, 1, 2));
    }

    #[test]
    fn pop_prefers_express_then_online() {
        let q = LaneQueue::new(8);
        q.try_push(Lane::Heavy, 1).unwrap();
        q.try_push(Lane::Online, 20).unwrap();
        q.try_push(Lane::Heavy, 2).unwrap();
        q.try_push(Lane::Express, 10).unwrap();
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(1));
        q.try_push(Lane::Express, 11).unwrap();
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_signals_none() {
        let q = LaneQueue::new(4);
        q.try_push(Lane::Express, 1).unwrap();
        q.close();
        assert_eq!(q.try_push(Lane::Express, 2), Err((PushError::Closed, 2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pause_holds_work_until_resume() {
        let q = Arc::new(LaneQueue::new(4));
        q.pause();
        q.try_push(Lane::Express, 7).unwrap();
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // The consumer must not pick the item up while paused.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(q.depths(), (1, 0, 0));
        q.resume();
        assert_eq!(handle.join().unwrap(), Some(7));
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(LaneQueue::new(1));
        q.try_push(Lane::Heavy, 1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(Lane::Heavy, 2))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn survives_a_poisoned_lock() {
        let q = Arc::new(LaneQueue::new(4));
        q.try_push(Lane::Express, 1).unwrap();
        // Poison the mutex by panicking while holding it.
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.inner.lock().unwrap();
                panic!("deliberate poison");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(q.inner.is_poisoned());
        // The queue keeps serving: state was consistent at poison time.
        q.try_push(Lane::Heavy, 2).unwrap();
        assert_eq!(q.depths(), (1, 0, 1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LaneQueue::<u32>::new(0);
    }
}

//! Durable job journal: an append-only write-ahead log of job
//! lifecycles.
//!
//! Every envelope the service accepts is journaled **before** the
//! submitter learns it was accepted, and the `accepted` record is
//! fsync'd — so an accepted job survives a process kill. Workers append
//! `started` / `completed` / `rejected` / `failed` records as the job
//! moves through its life; on restart, [`Journal::recover_file`] scans
//! the log (tolerating a torn tail or garbage suffix, see
//! [`rds_sched::io::scan_journal`]) and returns the accepted-but-
//! unfinished jobs so [`crate::Service::recover`] can replay them.
//!
//! Opening an existing journal repairs it: the file is truncated to its
//! valid prefix before new records are appended, so one crash never
//! poisons the next run's log.
//!
//! Chaos injection ([`ServiceChaos`]) can make any record write fail
//! with a typed error or cut the file at byte N exactly as a mid-write
//! crash would — the recovery proptests drive both.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use rds_sched::io::{
    scan_journal, write_journal_record, JobEnvelope, JournalKind, JournalRecord, JOURNAL_HEADER,
};

use crate::chaos::ServiceChaos;

/// Why a journal operation failed. Typed — journal trouble must degrade
/// the service, never panic it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying file operation failed (includes chaos-injected
    /// write errors).
    Io(String),
    /// The file exists but is not a journal (bad header).
    NotAJournal(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::NotAJournal(e) => write!(f, "not a journal: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

struct JournalInner {
    file: File,
    /// Next record sequence number.
    seq: u64,
    /// Bytes persisted so far (header included), for the kill-at cut.
    bytes: u64,
    /// Once the chaos kill boundary is crossed, nothing more is
    /// persisted — the in-process service keeps running, but the file
    /// looks exactly as if the process had died at that byte.
    killed: bool,
    records: u64,
    write_errors: u64,
    compactions: u64,
    /// Terminal records appended since the last compaction, for the
    /// `compact_every` auto-trigger.
    terminal_since_compact: u64,
}

/// The append-only journal writer.
pub struct Journal {
    inner: Mutex<JournalInner>,
    path: PathBuf,
    chaos: Option<ServiceChaos>,
    /// Auto-compact after this many terminal records; `None` disables.
    compact_every: Option<u64>,
}

/// Counters for the metrics snapshot:
/// `(records written, write errors, compactions)`.
pub type JournalStats = (u64, u64, u64);

/// Outcome of one WAL compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Accepted-but-unfinished records kept (rewritten as fresh
    /// `accepted` records).
    pub kept: usize,
    /// Records dropped (terminal lifecycles and their attempt markers).
    pub dropped: usize,
    /// File size before compaction, bytes.
    pub bytes_before: u64,
    /// File size after compaction, bytes.
    pub bytes_after: u64,
}

/// What a journal scan owes the restarting service.
#[derive(Debug, Clone)]
pub struct JournalRecovery {
    /// Accepted jobs with no terminal record, in acceptance order: the
    /// work a restarted service must replay.
    pub pending: Vec<JobEnvelope>,
    /// Ids with a `completed` record — must not be replayed.
    pub completed: Vec<String>,
    /// Intact records scanned.
    pub records: usize,
    /// `true` when a torn tail or garbage suffix was cut off.
    pub torn: bool,
    /// Accepted records whose embedded envelope no longer parses (they
    /// are reported, not replayed — a half-written payload would have
    /// failed the checksum, so this means an incompatible format).
    pub unparsable: u64,
}

impl Journal {
    /// Opens (or creates) a journal for appending. An existing file is
    /// scanned and truncated to its valid prefix first, so a torn tail
    /// from a previous crash is repaired before new records follow it.
    ///
    /// # Errors
    /// [`JournalError::Io`] on file-system failure,
    /// [`JournalError::NotAJournal`] when the file exists but carries a
    /// foreign header (refusing to truncate someone else's data).
    pub fn open(path: &Path, chaos: Option<ServiceChaos>) -> Result<Self, JournalError> {
        let io_err = |e: std::io::Error| JournalError::Io(format!("{}: {e}", path.display()));
        let existing = match std::fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err(e)),
        };
        let (valid_len, next_seq, fresh) = match &existing {
            None => (0u64, 0u64, true),
            Some(bytes) if bytes.is_empty() => (0, 0, true),
            Some(bytes) => {
                let scan = scan_journal(bytes);
                if scan.records.is_empty() && scan.corrupt.as_ref().is_some_and(|c| c.0 == 0) {
                    return Err(JournalError::NotAJournal(format!(
                        "{}: {}",
                        path.display(),
                        scan.corrupt.map(|c| c.1).unwrap_or_default()
                    )));
                }
                let next = scan.records.last().map_or(0, |r| r.seq + 1);
                (scan.valid_len as u64, next, scan.valid_len == 0)
            }
        };
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        file.set_len(valid_len).map_err(io_err)?;
        let mut inner = JournalInner {
            file,
            seq: next_seq,
            bytes: valid_len,
            killed: false,
            records: 0,
            write_errors: 0,
            compactions: 0,
            terminal_since_compact: 0,
        };
        use std::io::Seek as _;
        inner.file.seek(std::io::SeekFrom::End(0)).map_err(io_err)?;
        let journal = Self {
            inner: Mutex::new(inner),
            path: path.to_path_buf(),
            chaos,
            compact_every: None,
        };
        if fresh {
            journal.write_raw(format!("{JOURNAL_HEADER}\n"), true)?;
        }
        Ok(journal)
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Auto-compacts the WAL after every `n` terminal records (`None` or
    /// `Some(0)` disables). Set once at service start, before the journal
    /// is shared.
    pub fn set_compact_every(&mut self, n: Option<u64>) {
        self.compact_every = n.filter(|&n| n > 0);
    }

    /// Rewrites the WAL keeping only accepted-but-unfinished records, so
    /// sustained traffic cannot grow the file without bound. The new log
    /// is written to a sibling temp file, fsync'd, and atomically renamed
    /// over the live one — a crash mid-compaction leaves either the old
    /// or the new file, never a mix. Pending jobs are re-sequenced from
    /// zero; terminal lifecycles (and their attempt markers) vanish,
    /// which is exactly equivalent to their jobs never having been
    /// journaled.
    ///
    /// # Errors
    /// [`JournalError::Io`] on any file-system failure, or when the chaos
    /// kill boundary has frozen the file (compacting would resurrect a
    /// "dead" journal).
    pub fn compact(&self) -> Result<CompactionStats, JournalError> {
        let io_err = |e: std::io::Error| JournalError::Io(format!("{}: {e}", self.path.display()));
        let mut inner = self.lock();
        if inner.killed {
            return Err(JournalError::Io(format!(
                "{}: journal frozen by chaos kill boundary",
                self.path.display()
            )));
        }
        let bytes = std::fs::read(&self.path).map_err(io_err)?;
        let scan = scan_journal(&bytes);
        let recovery = Self::recovery_from_records(&scan.records, scan.corrupt.is_some());
        let mut text = format!("{JOURNAL_HEADER}\n");
        let mut seq = 0u64;
        for env in &recovery.pending {
            let rec = JournalRecord {
                seq,
                kind: JournalKind::Accepted,
                id: env.id.clone(),
                payload: rds_sched::io::write_job(env),
            };
            text.push_str(&write_journal_record(&rec));
            seq += 1;
        }
        let tmp = {
            let mut s = self.path.as_os_str().to_owned();
            s.push(".compact.tmp");
            PathBuf::from(s)
        };
        {
            let mut f = File::create(&tmp).map_err(io_err)?;
            f.write_all(text.as_bytes()).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(io_err)?;
        // Best effort: persist the rename itself (the directory entry).
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let mut file = OpenOptions::new()
            .write(true)
            .truncate(false)
            .open(&self.path)
            .map_err(io_err)?;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::End(0)).map_err(io_err)?;
        let stats = CompactionStats {
            kept: recovery.pending.len(),
            dropped: scan.records.len().saturating_sub(recovery.pending.len()),
            bytes_before: bytes.len() as u64,
            bytes_after: text.len() as u64,
        };
        inner.file = file;
        inner.seq = seq;
        inner.bytes = text.len() as u64;
        inner.compactions += 1;
        inner.terminal_since_compact = 0;
        Ok(stats)
    }

    /// The `compact_every` auto-trigger, consulted after every terminal
    /// record. Compaction trouble is swallowed: the append-only log is
    /// still correct, just longer than it needs to be.
    fn maybe_compact(&self) {
        let Some(every) = self.compact_every else {
            return;
        };
        let due = {
            let mut inner = self.lock();
            inner.terminal_since_compact += 1;
            inner.terminal_since_compact >= every
        };
        if due {
            let _ = self.compact();
        }
    }

    /// Locks the writer, recovering from poisoning: every mutation below
    /// leaves the state consistent (the file itself is the source of
    /// truth), and a panicked worker must not take durability down.
    fn lock(&self) -> MutexGuard<'_, JournalInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes raw bytes honoring the chaos kill boundary; `sync` forces
    /// the bytes to disk before returning.
    fn write_raw(&self, text: String, sync: bool) -> Result<(), JournalError> {
        let mut inner = self.lock();
        if inner.killed {
            return Ok(());
        }
        let mut bytes = text.into_bytes();
        if let Some(kill_at) = self.chaos.and_then(|c| c.journal_kill_at) {
            let room = kill_at.saturating_sub(inner.bytes);
            if (bytes.len() as u64) > room {
                bytes.truncate(usize::try_from(room).unwrap_or(usize::MAX));
                inner.killed = true;
            }
        }
        let len = bytes.len() as u64;
        let res = inner.file.write_all(&bytes).and_then(|()| {
            if sync {
                inner.file.sync_data()
            } else {
                Ok(())
            }
        });
        match res {
            Ok(()) => {
                inner.bytes += len;
                Ok(())
            }
            Err(e) => {
                inner.write_errors += 1;
                Err(JournalError::Io(format!("{}: {e}", self.path.display())))
            }
        }
    }

    /// Appends one record. `sync` controls whether the record is fsync'd
    /// before the call returns (the durability point for `accepted`).
    fn append(
        &self,
        kind: JournalKind,
        id: &str,
        payload: String,
        sync: bool,
    ) -> Result<(), JournalError> {
        let (seq, injected) = {
            let mut inner = self.lock();
            let seq = inner.seq;
            inner.seq += 1;
            let injected = self
                .chaos
                .as_ref()
                .is_some_and(|c| c.journal_write_fails(seq));
            if injected {
                inner.write_errors += 1;
            } else {
                inner.records += 1;
            }
            (seq, injected)
        };
        if injected {
            return Err(JournalError::Io(format!(
                "{}: injected journal write error (record {seq})",
                self.path.display()
            )));
        }
        let rec = JournalRecord {
            seq,
            kind,
            id: id.to_owned(),
            payload,
        };
        self.write_raw(write_journal_record(&rec), sync)
    }

    /// Journals an accepted job (the full envelope, fsync'd): once this
    /// returns `Ok`, the job survives a process kill.
    ///
    /// # Errors
    /// [`JournalError`] when the record could not be persisted — the
    /// caller must then reject the job, because durability was promised.
    pub fn accepted(&self, env: &JobEnvelope) -> Result<(), JournalError> {
        self.append(
            JournalKind::Accepted,
            &env.id,
            rds_sched::io::write_job(env),
            true,
        )
    }

    /// Journals the start of attempt `attempt` (buffered; loss on crash
    /// only widens the replay set, never loses work).
    pub fn started(&self, id: &str, attempt: u32) {
        let _ = self.append(
            JournalKind::Started,
            id,
            format!("attempt {attempt}\n"),
            false,
        );
    }

    /// Journals a delivered result (fsync'd, so a completed job is not
    /// replayed by the next recovery).
    pub fn completed(&self, id: &str) {
        let _ = self.append(JournalKind::Completed, id, String::new(), true);
        self.maybe_compact();
    }

    /// Journals a post-acceptance rejection (terminal).
    pub fn rejected(&self, id: &str, reason: &str) {
        let _ = self.append(
            JournalKind::Rejected,
            id,
            format!("{}\n", reason.replace(['\n', '\r'], " ")),
            true,
        );
        self.maybe_compact();
    }

    /// Journals a terminal failure (attempt cap exceeded or scheduler
    /// error).
    pub fn failed(&self, id: &str, reason: &str) {
        let _ = self.append(
            JournalKind::Failed,
            id,
            format!("{}\n", reason.replace(['\n', '\r'], " ")),
            true,
        );
        self.maybe_compact();
    }

    /// `(records written, write errors, compactions)` so far, for
    /// metrics.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        let inner = self.lock();
        (inner.records, inner.write_errors, inner.compactions)
    }

    /// `true` once the chaos kill boundary has been crossed.
    #[must_use]
    pub fn killed(&self) -> bool {
        self.lock().killed
    }

    /// Scans a journal file and derives the recovery obligation: jobs
    /// accepted but not yet completed/rejected/failed. A missing file is
    /// an empty journal (nothing to replay).
    ///
    /// # Errors
    /// [`JournalError::Io`] when the file exists but cannot be read.
    pub fn recover_file(path: &Path) -> Result<JournalRecovery, JournalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(JournalError::Io(format!("{}: {e}", path.display()))),
        };
        let scan = scan_journal(&bytes);
        Ok(Self::recovery_from_records(
            &scan.records,
            scan.corrupt.is_some(),
        ))
    }

    /// Derives the recovery obligation from scanned records (exposed for
    /// the property tests, which scan byte slices directly).
    #[must_use]
    pub fn recovery_from_records(records: &[JournalRecord], torn: bool) -> JournalRecovery {
        // Last-writer-wins state machine per id, preserving acceptance
        // order for the replay queue.
        let mut order: Vec<String> = Vec::new();
        let mut state: HashMap<String, (JournalKind, Option<JobEnvelope>)> = HashMap::new();
        let mut completed = Vec::new();
        let mut unparsable = 0u64;
        for rec in records {
            match rec.kind {
                JournalKind::Accepted => match rds_sched::io::read_job(&rec.payload) {
                    Ok(env) => {
                        if !state.contains_key(&rec.id) {
                            order.push(rec.id.clone());
                        }
                        state.insert(rec.id.clone(), (JournalKind::Accepted, Some(env)));
                    }
                    Err(_) => unparsable += 1,
                },
                JournalKind::Started => {
                    if let Some(entry) = state.get_mut(&rec.id) {
                        entry.0 = JournalKind::Started;
                    }
                }
                JournalKind::Completed | JournalKind::Rejected | JournalKind::Failed => {
                    if rec.kind == JournalKind::Completed {
                        completed.push(rec.id.clone());
                    }
                    if let Some(entry) = state.get_mut(&rec.id) {
                        entry.0 = rec.kind;
                        entry.1 = None;
                    }
                }
            }
        }
        let pending = order
            .into_iter()
            .filter_map(|id| {
                state
                    .get_mut(&id)
                    .filter(|(kind, _)| !kind.is_terminal())
                    .and_then(|(_, env)| env.take())
            })
            .collect();
        JournalRecovery {
            pending,
            completed,
            records: records.len(),
            torn,
            unparsable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::InstanceSpec;

    fn env(id: &str) -> JobEnvelope {
        JobEnvelope {
            id: id.into(),
            algo: "heft".into(),
            epsilon: 1.3,
            seed: 0,
            generations: None,
            deadline_ms: None,
            lane: None,
            arrival: None,
            deadline: None,
            objective: None,
            rel_min: None,
            client: None,
            instance: InstanceSpec::new(6, 2).seed(1).build().unwrap(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rds_journal_{}_{name}.wal", std::process::id()))
    }

    #[test]
    fn accept_complete_lifecycle_recovers_nothing() {
        let path = tmp("lifecycle");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path, None).unwrap();
            j.accepted(&env("a")).unwrap();
            j.started("a", 0);
            j.completed("a");
            j.accepted(&env("b")).unwrap();
            assert_eq!(j.stats().0, 4);
        }
        let rec = Journal::recover_file(&path).unwrap();
        assert_eq!(rec.completed, vec!["a".to_owned()]);
        assert_eq!(rec.pending.len(), 1);
        assert_eq!(rec.pending[0].id, "b");
        assert!(!rec.torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_repairs_torn_tail_and_appends() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path, None).unwrap();
            j.accepted(&env("a")).unwrap();
            j.completed("a");
        }
        // Tear the tail: chop 7 bytes off the completed record.
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.truncate(full - 7);
        std::fs::write(&path, &bytes).unwrap();
        {
            let j = Journal::open(&path, None).unwrap();
            // The torn `completed` is gone, so "a" is pending again; a
            // fresh record appends cleanly after the repaired prefix.
            j.started("a", 1);
            j.completed("a");
        }
        let rec = Journal::recover_file(&path).unwrap();
        assert!(rec.pending.is_empty());
        assert_eq!(rec.completed, vec!["a".to_owned()]);
        assert!(!rec.torn, "reopen repaired the tail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_kill_at_byte_tears_exactly_once() {
        let path = tmp("killat");
        let _ = std::fs::remove_file(&path);
        let chaos = ServiceChaos::seeded(1).journal_kill_at(400);
        let j = Journal::open(&path, Some(chaos)).unwrap();
        for n in 0..6 {
            let _ = j.accepted(&env(&format!("j{n}")));
        }
        assert!(j.killed());
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 400, "cut exactly at the boundary");
        // Recovery still yields every record that fully made it to disk.
        let rec = Journal::recover_file(&path).unwrap();
        assert!(rec.torn);
        assert!(rec.pending.len() < 6);
        for (i, p) in rec.pending.iter().enumerate() {
            assert_eq!(p.id, format!("j{i}"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_write_error_is_typed_and_counted() {
        let path = tmp("werr");
        let _ = std::fs::remove_file(&path);
        let chaos = ServiceChaos::seeded(2).journal_error_rate(1.0);
        let j = Journal::open(&path, Some(chaos)).unwrap();
        let err = j.accepted(&env("a")).unwrap_err();
        assert!(matches!(err, JournalError::Io(_)));
        assert_eq!(j.stats(), (0, 1, 0));
        // The failed record never reached the file.
        let rec = Journal::recover_file(&path).unwrap();
        assert!(rec.pending.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = tmp("foreign");
        std::fs::write(&path, "precious user data\n").unwrap();
        let Err(err) = Journal::open(&path, None) else {
            panic!("foreign file must be refused");
        };
        assert!(matches!(err, JournalError::NotAJournal(_)));
        // The file was not touched.
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "precious user data\n"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_recovers_empty() {
        let rec = Journal::recover_file(Path::new("/nonexistent/rds.wal")).unwrap();
        assert!(rec.pending.is_empty() && rec.completed.is_empty());
    }

    #[test]
    fn compaction_keeps_only_pending_and_is_atomic() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path, None).unwrap();
        for n in 0..6 {
            j.accepted(&env(&format!("j{n}"))).unwrap();
        }
        for n in 0..5 {
            j.started(&format!("j{n}"), 0);
            j.completed(&format!("j{n}"));
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let stats = j.compact().unwrap();
        assert_eq!(stats.kept, 1, "only j5 is still pending");
        assert!(stats.dropped >= 15, "terminal lifecycles dropped");
        assert_eq!(stats.bytes_before, before);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            stats.bytes_after,
            "live file swapped atomically"
        );
        // The live handle keeps appending to the compacted file.
        j.accepted(&env("late")).unwrap();
        j.completed("j5");
        assert_eq!(j.stats().2, 1);
        drop(j);
        let rec = Journal::recover_file(&path).unwrap();
        assert_eq!(rec.pending.len(), 1);
        assert_eq!(rec.pending[0].id, "late");
        assert!(rec.completed.contains(&"j5".to_owned()));
        assert!(!rec.torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_compaction_triggers_every_n_terminals() {
        let path = tmp("autocompact");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, None).unwrap();
        j.set_compact_every(Some(4));
        for n in 0..8 {
            let id = format!("j{n}");
            j.accepted(&env(&id)).unwrap();
            j.completed(&id);
        }
        assert!(j.stats().2 >= 2, "compacted at least twice in 8 terminals");
        drop(j);
        let rec = Journal::recover_file(&path).unwrap();
        assert!(rec.pending.is_empty());
        std::fs::remove_file(&path).ok();
    }
}

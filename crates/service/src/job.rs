//! Job specifications, outcomes, and wire-envelope conversions.

use std::sync::Arc;
use std::time::Duration;

use rds_ga::GaRunStats;
use rds_sched::io::{JobEnvelope, ResultEnvelope};
use rds_sched::{Instance, Schedule};

/// Scheduler choice of a job. Cheap one-shot list schedulers ride the
/// express lane; search-based schedulers default to the heavy lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// Plain HEFT.
    Heft,
    /// CPOP.
    Cpop,
    /// Lookahead HEFT.
    LookaheadHeft,
    /// Stochastic HEFT with a mean + k·σ duration surrogate.
    Sheft {
        /// The σ multiplier.
        k: f64,
    },
    /// The paper's ε-constraint GA (slack-robust).
    Ga,
    /// Simulated annealing under the same ε-constraint objective.
    Sa,
}

impl Algo {
    /// Parses a scheduler name as it appears in a job envelope.
    ///
    /// # Errors
    /// Returns the unknown name.
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "heft" => Algo::Heft,
            "cpop" => Algo::Cpop,
            "laheft" => Algo::LookaheadHeft,
            "sheft" => Algo::Sheft { k: 1.0 },
            "ga" => Algo::Ga,
            "sa" => Algo::Sa,
            other => {
                return Err(format!(
                    "unknown algo '{other}' (heft|cpop|laheft|sheft|ga|sa)"
                ))
            }
        })
    }

    /// Canonical envelope name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algo::Heft => "heft",
            Algo::Cpop => "cpop",
            Algo::LookaheadHeft => "laheft",
            Algo::Sheft { .. } => "sheft",
            Algo::Ga => "ga",
            Algo::Sa => "sa",
        }
    }

    /// The lane this scheduler runs on unless the job overrides it.
    #[must_use]
    pub fn default_lane(self) -> Lane {
        match self {
            Algo::Heft | Algo::Cpop | Algo::LookaheadHeft | Algo::Sheft { .. } => Lane::Express,
            Algo::Ga | Algo::Sa => Lane::Heavy,
        }
    }
}

/// Priority lane of the job queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Cheap list schedulers: served first, low latency.
    Express,
    /// Deadline-carrying online jobs: admitted by completion probability,
    /// served ahead of heavy search but behind express.
    Online,
    /// Search-based schedulers (GA/SA): served when no express work waits.
    Heavy,
}

impl Lane {
    /// Lane name as it appears in envelopes and metrics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lane::Express => "express",
            Lane::Online => "online",
            Lane::Heavy => "heavy",
        }
    }
}

/// Objective mode of a search job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectiveMode {
    /// The paper's ε-constraint scalarization (default).
    Epsilon,
    /// Tri-objective NSGA-II over (makespan, slack, energy) under a
    /// schedule-reliability constraint.
    Tri {
        /// Minimum acceptable schedule reliability, in `(0, 1]`.
        rel_min: f64,
    },
}

/// Default reliability threshold when a `tri` job does not set `rel-min`.
pub const DEFAULT_REL_MIN: f64 = 0.9;

impl ObjectiveMode {
    /// Envelope tag (`epsilon` or `tri`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveMode::Epsilon => "epsilon",
            ObjectiveMode::Tri { .. } => "tri",
        }
    }
}

/// Arrival/deadline pair of an online-lane job, in simulated scheduling
/// time units (the instance's own clock, not wall time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineJobParams {
    /// Simulated arrival time (≥ 0).
    pub arrival: f64,
    /// Absolute completion deadline (> arrival).
    pub deadline: f64,
}

impl OnlineJobParams {
    /// Deadline headroom relative to arrival.
    #[must_use]
    pub fn relative_deadline(self) -> f64 {
        self.deadline - self.arrival
    }
}

/// A fully validated job, ready to enqueue.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Client-chosen identifier, echoed in the result.
    pub id: String,
    /// Scheduler choice.
    pub algo: Algo,
    /// ε of the ε-constraint objective (GA/SA); must be ≥ 1.
    pub epsilon: f64,
    /// Seed for seeded schedulers.
    pub seed: u64,
    /// GA generation budget override.
    pub generations: Option<usize>,
    /// Wall-clock deadline budget. Overrunning GA jobs are cancelled
    /// cooperatively and degrade (best-so-far, then HEFT).
    pub deadline: Option<Duration>,
    /// Lane override; defaults to [`Algo::default_lane`], or
    /// [`Lane::Online`] when `online` parameters are present.
    pub lane: Option<Lane>,
    /// Arrival/deadline of an online-lane job; `None` for classic jobs.
    pub online: Option<OnlineJobParams>,
    /// Objective mode ([`ObjectiveMode::Epsilon`] unless the job opts
    /// into `tri`).
    pub objective: ObjectiveMode,
    /// Client principal for per-client rate limiting; anonymous jobs
    /// share one bucket.
    pub client: Option<String>,
    /// The instance, shared without copying across queue and cache.
    pub instance: Arc<Instance>,
}

impl JobSpec {
    /// A job with defaults (ε = 1.3, seed 0, no deadline, default lane).
    #[must_use]
    pub fn new(id: impl Into<String>, algo: Algo, instance: Arc<Instance>) -> Self {
        Self {
            id: id.into(),
            algo,
            epsilon: 1.3,
            seed: 0,
            generations: None,
            deadline: None,
            lane: None,
            online: None,
            objective: ObjectiveMode::Epsilon,
            client: None,
            instance,
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets ε.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the GA generation budget.
    #[must_use]
    pub fn generations(mut self, g: usize) -> Self {
        self.generations = Some(g);
        self
    }

    /// Sets the deadline budget.
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Marks the job as an online arrival with the given simulated
    /// arrival time and absolute deadline.
    #[must_use]
    pub fn online(mut self, arrival: f64, deadline: f64) -> Self {
        self.online = Some(OnlineJobParams { arrival, deadline });
        self
    }

    /// Switches the job to the tri-objective mode with the given
    /// reliability threshold.
    #[must_use]
    pub fn tri(mut self, rel_min: f64) -> Self {
        self.objective = ObjectiveMode::Tri { rel_min };
        self
    }

    /// Sets the rate-limiting client principal.
    #[must_use]
    pub fn client(mut self, client: impl Into<String>) -> Self {
        self.client = Some(client.into());
        self
    }

    /// The lane the job will be queued on: an explicit override wins,
    /// online parameters imply [`Lane::Online`], otherwise the
    /// scheduler's default.
    #[must_use]
    pub fn lane(&self) -> Lane {
        if let Some(lane) = self.lane {
            return lane;
        }
        if self.online.is_some() {
            return Lane::Online;
        }
        self.algo.default_lane()
    }

    /// Validates and converts a parsed wire envelope.
    ///
    /// # Errors
    /// Returns a message describing the first invalid field — envelope
    /// content is untrusted, so nothing here may panic.
    pub fn from_envelope(env: JobEnvelope) -> Result<Self, String> {
        let algo = Algo::parse(&env.algo)?;
        let lane = match env.lane.as_deref() {
            None => None,
            Some("express") => Some(Lane::Express),
            Some("heavy") => Some(Lane::Heavy),
            Some("online") => Some(Lane::Online),
            Some(other) => return Err(format!("unknown lane '{other}'")),
        };
        let online = match (env.arrival, env.deadline) {
            (None, None) => None,
            (Some(arrival), Some(deadline)) => Some(OnlineJobParams { arrival, deadline }),
            _ => return Err("arrival and deadline must be provided together".into()),
        };
        let objective = match env.objective.as_deref() {
            None | Some("epsilon") => {
                if env.rel_min.is_some() {
                    return Err("rel-min requires objective tri".into());
                }
                ObjectiveMode::Epsilon
            }
            Some("tri") => ObjectiveMode::Tri {
                rel_min: env.rel_min.unwrap_or(DEFAULT_REL_MIN),
            },
            Some(other) => return Err(format!("unknown objective '{other}'")),
        };
        let spec = Self {
            id: env.id,
            algo,
            epsilon: env.epsilon,
            seed: env.seed,
            generations: env.generations,
            deadline: env.deadline_ms.map(Duration::from_millis),
            lane,
            online,
            objective,
            client: env.client,
            instance: Arc::new(env.instance),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec back into a wire envelope — the payload of the
    /// durable journal's `accepted` record, so recovery can rebuild the
    /// job exactly as it was admitted.
    #[must_use]
    pub fn to_envelope(&self) -> JobEnvelope {
        JobEnvelope {
            id: self.id.clone(),
            algo: self.algo.name().to_owned(),
            epsilon: self.epsilon,
            seed: self.seed,
            generations: self.generations,
            deadline_ms: self
                .deadline
                .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
            lane: self.lane.map(|l| l.name().to_owned()),
            arrival: self.online.map(|o| o.arrival),
            deadline: self.online.map(|o| o.deadline),
            objective: match self.objective {
                ObjectiveMode::Epsilon => None,
                ObjectiveMode::Tri { .. } => Some("tri".to_owned()),
            },
            rel_min: match self.objective {
                ObjectiveMode::Epsilon => None,
                ObjectiveMode::Tri { rel_min } => Some(rel_min),
            },
            client: self.client.clone(),
            instance: self.instance.as_ref().clone(),
        }
    }

    /// Admission-side validation shared by every entry point.
    ///
    /// # Errors
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.id.is_empty() || self.id.split_whitespace().count() != 1 {
            return Err("job id must be a single non-empty token".into());
        }
        if self.instance.task_count() == 0 {
            return Err("instance has no tasks".into());
        }
        if self.instance.proc_count() == 0 {
            return Err("instance has no processors".into());
        }
        if !self.epsilon.is_finite() || self.epsilon < 1.0 {
            return Err(format!(
                "epsilon must be a finite value >= 1.0 (got {})",
                self.epsilon
            ));
        }
        if self.generations == Some(0) {
            return Err("generations must be positive".into());
        }
        if let ObjectiveMode::Tri { rel_min } = self.objective {
            if !(rel_min > 0.0 && rel_min <= 1.0) || !rel_min.is_finite() {
                return Err(format!("rel-min must be in (0, 1], got {rel_min}"));
            }
            if self.algo != Algo::Ga {
                return Err("objective tri requires algo ga".into());
            }
        }
        if let Some(client) = &self.client {
            if client.is_empty() || client.split_whitespace().count() != 1 {
                return Err("client must be a single non-empty token".into());
            }
        }
        if let Some(online) = self.online {
            if !online.arrival.is_finite() || online.arrival < 0.0 {
                return Err(format!(
                    "online arrival must be finite and >= 0 (got {})",
                    online.arrival
                ));
            }
            if !online.deadline.is_finite() || online.deadline <= online.arrival {
                return Err(format!(
                    "online deadline must be finite and after arrival (got {})",
                    online.deadline
                ));
            }
        } else if self.lane == Some(Lane::Online) {
            return Err("online lane requires arrival and deadline".into());
        }
        Ok(())
    }
}

/// How a completed job was degraded to meet its deadline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Ran to completion within budget.
    None,
    /// The GA was cancelled mid-run; the best feasible solution found so
    /// far was returned.
    BestSoFar,
    /// The GA was cancelled before finding a feasible solution; the plain
    /// HEFT schedule was returned instead.
    HeftFallback,
    /// An online job whose optional tasks were deferred by the drop
    /// ladder: the deadline verdict covers the required subgraph only.
    DroppedOptional,
    /// A search job (GA/SA) forced down to plain HEFT by the overload
    /// brownout ladder — the service traded schedule quality for
    /// survival, not because this job's own deadline demanded it.
    Brownout,
}

impl Degradation {
    /// Envelope tag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Degradation::None => "none",
            Degradation::BestSoFar => "deadline-best-so-far",
            Degradation::HeftFallback => "deadline-heft",
            Degradation::DroppedOptional => "degraded-by-drop",
            Degradation::Brownout => "brownout-heft",
        }
    }
}

/// A successfully produced schedule with its accounting.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The schedule.
    pub schedule: Schedule,
    /// Expected makespan `M₀`.
    pub makespan: f64,
    /// Average slack `σ̄`.
    pub avg_slack: f64,
    /// Total energy of the schedule (tri-objective jobs only).
    pub energy: Option<f64>,
    /// Schedule reliability (tri-objective jobs only).
    pub reliability: Option<f64>,
    /// Whether the schedule came from the cache.
    pub cache_hit: bool,
    /// Deadline degradation applied, if any.
    pub degraded: Degradation,
    /// Evaluation-kernel and memo counters of the GA run that produced
    /// the schedule; `None` for non-GA schedulers and cache hits. Not part
    /// of the wire envelope — it feeds the service metrics.
    pub ga_stats: Option<GaRunStats>,
    /// Online-lane accounting (admission probability and realized
    /// deadline verdict); `None` for classic jobs.
    pub online: Option<OnlineOutcome>,
}

/// Online-lane accounting attached to a completed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineOutcome {
    /// Completion probability estimated at admission.
    pub probability: f64,
    /// Realized makespan of the deadline-counted (required) tasks under
    /// the job's truth durations.
    pub realized_makespan: f64,
    /// Whether the job finished its counted tasks by its deadline.
    pub hit: bool,
}

/// Why a job produced no schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Rejected at admission (validation or backpressure); never entered
    /// the queue.
    Rejected(String),
    /// Accepted but the scheduler failed.
    Failed(String),
    /// Fast-rejected by the overload circuit breaker; the client should
    /// wait `retry_after_ms` before retrying.
    Overloaded {
        /// Which brownout rung rejected the job.
        reason: String,
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// Fast-rejected by the per-client rate limiter: this client's token
    /// bucket is empty.
    RateLimited {
        /// The client principal whose bucket ran dry (`anonymous` when
        /// the job carried no `client` field).
        client: String,
        /// Milliseconds until the bucket refills one token.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Rejected(r) => write!(f, "rejected: {r}"),
            JobError::Failed(r) => write!(f, "failed: {r}"),
            JobError::Overloaded {
                reason,
                retry_after_ms,
            } => write!(f, "overloaded: {reason} (retry after {retry_after_ms} ms)"),
            JobError::RateLimited {
                client,
                retry_after_ms,
            } => write!(
                f,
                "rate limited: client {client} exceeded its request rate (retry after {retry_after_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Terminal outcome of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Echoed job id.
    pub id: String,
    /// The schedule or the typed failure.
    pub outcome: Result<JobOutput, JobError>,
    /// Lane the job was (or would have been) served on.
    pub lane: Lane,
}

impl JobResult {
    /// Renders the result as a wire envelope.
    #[must_use]
    pub fn to_envelope(&self) -> ResultEnvelope {
        match &self.outcome {
            Ok(out) => ResultEnvelope {
                id: self.id.clone(),
                status: "ok".into(),
                cache: Some(if out.cache_hit { "hit" } else { "miss" }.into()),
                degraded: Some(out.degraded.name().into()),
                makespan: Some(out.makespan),
                avg_slack: Some(out.avg_slack),
                energy: out.energy,
                reliability: out.reliability,
                verdict: out
                    .online
                    .map(|o| if o.hit { "hit" } else { "miss" }.into()),
                probability: out.online.map(|o| o.probability),
                reason: None,
                retry_after_ms: None,
                schedule: Some(out.schedule.clone()),
            },
            Err(e) => ResultEnvelope {
                id: self.id.clone(),
                status: match e {
                    JobError::Rejected(_)
                    | JobError::Overloaded { .. }
                    | JobError::RateLimited { .. } => "rejected",
                    JobError::Failed(_) => "error",
                }
                .into(),
                cache: None,
                degraded: None,
                makespan: None,
                avg_slack: None,
                energy: None,
                reliability: None,
                verdict: None,
                probability: None,
                reason: Some(match e {
                    JobError::Rejected(r) | JobError::Failed(r) => r.clone(),
                    JobError::Overloaded { reason, .. } => reason.clone(),
                    JobError::RateLimited { client, .. } => {
                        format!("client {client} exceeded its request rate")
                    }
                }),
                retry_after_ms: match e {
                    JobError::Overloaded { retry_after_ms, .. }
                    | JobError::RateLimited { retry_after_ms, .. } => Some(*retry_after_ms),
                    _ => None,
                },
                schedule: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::InstanceSpec;

    fn inst() -> Arc<Instance> {
        Arc::new(InstanceSpec::new(10, 2).seed(1).build().unwrap())
    }

    #[test]
    fn algo_parse_roundtrips_names() {
        for name in ["heft", "cpop", "laheft", "sheft", "ga", "sa"] {
            assert_eq!(Algo::parse(name).unwrap().name(), name);
        }
        assert!(Algo::parse("quantum").is_err());
    }

    #[test]
    fn lanes_default_by_cost() {
        assert_eq!(Algo::Heft.default_lane(), Lane::Express);
        assert_eq!(Algo::Sheft { k: 1.0 }.default_lane(), Lane::Express);
        assert_eq!(Algo::Ga.default_lane(), Lane::Heavy);
        assert_eq!(Algo::Sa.default_lane(), Lane::Heavy);
        let mut spec = JobSpec::new("j", Algo::Ga, inst());
        assert_eq!(spec.lane(), Lane::Heavy);
        spec.lane = Some(Lane::Express);
        assert_eq!(spec.lane(), Lane::Express);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let ok = JobSpec::new("j", Algo::Heft, inst());
        assert!(ok.validate().is_ok());
        assert!(JobSpec::new("", Algo::Heft, inst()).validate().is_err());
        assert!(JobSpec::new("two words", Algo::Heft, inst())
            .validate()
            .is_err());
        assert!(JobSpec::new("j", Algo::Ga, inst())
            .epsilon(0.9)
            .validate()
            .is_err());
        assert!(JobSpec::new("j", Algo::Ga, inst())
            .epsilon(f64::NAN)
            .validate()
            .is_err());
        let mut zero_gen = JobSpec::new("j", Algo::Ga, inst());
        zero_gen.generations = Some(0);
        assert!(zero_gen.validate().is_err());
    }

    #[test]
    fn online_params_imply_lane_and_validate() {
        let spec = JobSpec::new("j", Algo::Heft, inst()).online(0.0, 50.0);
        assert_eq!(spec.lane(), Lane::Online);
        assert!(spec.validate().is_ok());
        // Deadline must come after arrival.
        assert!(JobSpec::new("j", Algo::Heft, inst())
            .online(10.0, 10.0)
            .validate()
            .is_err());
        assert!(JobSpec::new("j", Algo::Heft, inst())
            .online(-1.0, 5.0)
            .validate()
            .is_err());
        assert!(JobSpec::new("j", Algo::Heft, inst())
            .online(0.0, f64::INFINITY)
            .validate()
            .is_err());
        // Online lane without arrival/deadline is malformed.
        let mut lane_only = JobSpec::new("j", Algo::Heft, inst());
        lane_only.lane = Some(Lane::Online);
        assert!(lane_only.validate().is_err());
    }

    #[test]
    fn tri_objective_and_client_roundtrip_and_validate() {
        let spec = JobSpec::new("j", Algo::Ga, inst()).tri(0.95).client("tenant-a");
        assert!(spec.validate().is_ok());
        let env = spec.to_envelope();
        assert_eq!(env.objective.as_deref(), Some("tri"));
        assert_eq!(env.rel_min, Some(0.95));
        assert_eq!(env.client.as_deref(), Some("tenant-a"));
        let back = JobSpec::from_envelope(env).unwrap();
        assert_eq!(back.objective, ObjectiveMode::Tri { rel_min: 0.95 });
        assert_eq!(back.client.as_deref(), Some("tenant-a"));

        // Tri requires the GA and a sane threshold.
        assert!(JobSpec::new("j", Algo::Heft, inst()).tri(0.9).validate().is_err());
        assert!(JobSpec::new("j", Algo::Ga, inst()).tri(0.0).validate().is_err());
        assert!(JobSpec::new("j", Algo::Ga, inst()).tri(1.5).validate().is_err());
        assert!(JobSpec::new("j", Algo::Ga, inst())
            .client("two tokens")
            .validate()
            .is_err());

        // rel-min without objective tri is rejected at envelope level.
        let mut env = JobSpec::new("j", Algo::Ga, inst()).to_envelope();
        env.rel_min = Some(0.9);
        assert!(JobSpec::from_envelope(env).is_err());

        // tri without rel-min defaults.
        let mut env = JobSpec::new("j", Algo::Ga, inst()).to_envelope();
        env.objective = Some("tri".into());
        let spec = JobSpec::from_envelope(env).unwrap();
        assert_eq!(spec.objective, ObjectiveMode::Tri { rel_min: DEFAULT_REL_MIN });
    }

    #[test]
    fn rate_limited_maps_to_rejected_with_retry_after() {
        let res = JobResult {
            id: "a".into(),
            outcome: Err(JobError::RateLimited {
                client: "tenant-a".into(),
                retry_after_ms: 125,
            }),
            lane: Lane::Heavy,
        };
        let env = res.to_envelope();
        assert_eq!(env.status, "rejected");
        assert_eq!(env.retry_after_ms, Some(125));
        assert!(env.reason.unwrap().contains("tenant-a"));
    }

    #[test]
    fn result_envelope_reflects_outcome() {
        let res = JobResult {
            id: "a".into(),
            outcome: Err(JobError::Rejected("queue full".into())),
            lane: Lane::Heavy,
        };
        let env = res.to_envelope();
        assert_eq!(env.status, "rejected");
        assert_eq!(env.reason.as_deref(), Some("queue full"));
        assert!(env.schedule.is_none());
    }
}

//! Failover routing across networked shards.
//!
//! The router owns a fixed list of shard addresses and forwards each
//! job envelope to the shard that owns its instance fingerprint
//! (`fingerprint % N`), falling back along the rendezvous preference
//! order of [`crate::net::shard_preference`] when the owner is down —
//! the same order the shards use for cache replication, so a failed-over
//! request lands exactly where its warm cache entry was gossiped.
//!
//! Failure handling:
//!
//! - a failed attempt marks the shard suspect and backs it off with
//!   **capped exponential backoff plus seeded jitter**, then retries the
//!   next shard in preference order;
//! - a brownout fast-rejection carrying `retry-after-ms` is honored:
//!   the router sleeps the advertised interval before the next attempt
//!   instead of hammering the breaker;
//! - a **health thread** probes every shard on a fixed cadence and
//!   flips routability without waiting for a request to fail;
//! - requests that outlive a **p95 latency EWMA** fire one hedged
//!   duplicate at the next-preferred shard; the first finisher wins and
//!   the duplicate is accounted, not double-counted.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rds_sched::io::{read_job, write_job, ResultEnvelope};
use rds_stats::rng::SeedStream;

use crate::net::{probe, request, shard_preference, NetClientConfig, NetError, DEFAULT_MAX_FRAME};
use crate::service::{RateLimitConfig, TokenBucket};

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Routing, retry, and hedging knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard addresses, indexed by shard number.
    pub shards: Vec<String>,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// End-to-end reply budget per attempt.
    pub io_timeout: Duration,
    /// Health-probe reply budget.
    pub probe_timeout: Duration,
    /// Cadence of the background health prober; `None` disables it.
    pub health_interval: Option<Duration>,
    /// Attempt cap per request; 0 means `shards.len() + 2`.
    pub max_attempts: usize,
    /// First backoff step after a shard failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Hedge fires when an attempt exceeds `p95 EWMA × hedge_factor`.
    pub hedge_factor: f64,
    /// Floor for the hedge delay.
    pub hedge_min: Duration,
    /// Latency samples required before EWMA-based hedging arms.
    pub min_hedge_samples: u64,
    /// Fixed hedge delay override (bypasses the EWMA).
    pub hedge_fixed: Option<Duration>,
    /// Reply frame-size cap.
    pub max_frame: usize,
    /// Seed for backoff jitter.
    pub seed: u64,
    /// Per-client token-bucket rate limiting at the routing front
    /// tier, keyed on the envelope's `client` field; `None` forwards
    /// every request.
    pub rate_limit: Option<RateLimitConfig>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: Vec::new(),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(30),
            probe_timeout: Duration::from_millis(500),
            health_interval: Some(Duration::from_millis(500)),
            max_attempts: 0,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            hedge_factor: 1.5,
            hedge_min: Duration::from_millis(50),
            min_hedge_samples: 16,
            hedge_fixed: None,
            max_frame: DEFAULT_MAX_FRAME,
            seed: 0,
            rate_limit: None,
        }
    }
}

impl RouterConfig {
    /// Sets the shard address list.
    #[must_use]
    pub fn shards(mut self, shards: Vec<String>) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the attempt cap per request.
    #[must_use]
    pub fn max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n;
        self
    }

    /// Sets a fixed hedge delay (bypassing the latency EWMA).
    #[must_use]
    pub fn hedge_fixed(mut self, d: Duration) -> Self {
        self.hedge_fixed = Some(d);
        self
    }

    /// Sets the health-probe cadence (`None` disables probing).
    #[must_use]
    pub fn health_interval(mut self, d: Option<Duration>) -> Self {
        self.health_interval = d;
        self
    }

    /// Sets the per-attempt reply budget.
    #[must_use]
    pub fn io_timeout(mut self, d: Duration) -> Self {
        self.io_timeout = d;
        self
    }

    /// Sets the backoff jitter seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-client token-bucket rate limiting at the router.
    #[must_use]
    pub fn rate_limit(mut self, cfg: RateLimitConfig) -> Self {
        self.rate_limit = Some(cfg);
        self
    }

    fn attempts(&self) -> usize {
        if self.max_attempts > 0 {
            self.max_attempts
        } else {
            self.shards.len() + 2
        }
    }

    fn client(&self) -> NetClientConfig {
        NetClientConfig {
            connect_timeout: self.connect_timeout,
            io_timeout: self.io_timeout,
            max_frame: self.max_frame,
        }
    }
}

/// Mutable per-shard routing state.
#[derive(Debug, Clone)]
struct ShardInfo {
    /// Last health-probe or attempt verdict.
    healthy: bool,
    /// Do not route here before this instant (backoff or retry-after).
    not_before: Option<Instant>,
    /// Consecutive failures, drives the backoff exponent.
    failures: u32,
}

#[derive(Default)]
struct RouterMetricsInner {
    requests: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    retry_after_waits: AtomicU64,
    probe_cycles: AtomicU64,
    rate_limited: AtomicU64,
}

/// Point-in-time router counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterMetrics {
    /// Requests routed.
    pub requests: u64,
    /// Requests that came back `ok`.
    pub completed: u64,
    /// Requests that ended `rejected` after all attempts.
    pub rejected: u64,
    /// Requests that ended in a transport error after all attempts.
    pub errors: u64,
    /// Extra attempts beyond each request's first.
    pub retries: u64,
    /// Attempts routed away from the fingerprint-primary shard
    /// (because of a prior failure, a backoff window, or a health
    /// probe verdict).
    pub failovers: u64,
    /// Hedged duplicates fired.
    pub hedges: u64,
    /// Hedged duplicates that finished first.
    pub hedge_wins: u64,
    /// Sleeps honoring a brownout `retry-after-ms` hint.
    pub retry_after_waits: u64,
    /// Completed health-probe sweeps.
    pub probe_cycles: u64,
    /// Requests refused at the front tier by the per-client token
    /// bucket (never forwarded to a shard).
    pub rate_limited: u64,
}

impl RouterMetricsInner {
    fn snapshot(&self) -> RouterMetrics {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        RouterMetrics {
            requests: g(&self.requests),
            completed: g(&self.completed),
            rejected: g(&self.rejected),
            errors: g(&self.errors),
            retries: g(&self.retries),
            failovers: g(&self.failovers),
            hedges: g(&self.hedges),
            hedge_wins: g(&self.hedge_wins),
            retry_after_waits: g(&self.retry_after_waits),
            probe_cycles: g(&self.probe_cycles),
            rate_limited: g(&self.rate_limited),
        }
    }
}

/// Asymmetric-step EWMA tracking the 95th latency percentile: samples
/// above the estimate pull it up 19× harder than samples below pull it
/// down, so it settles near the quantile where 5% of samples exceed it.
struct LatencyTracker {
    p95_ms: f64,
    samples: u64,
}

impl LatencyTracker {
    fn observe(&mut self, latency: Duration) {
        let x = latency.as_secs_f64() * 1e3;
        if self.samples == 0 {
            self.p95_ms = x;
        } else if x > self.p95_ms {
            self.p95_ms += 0.19 * (x - self.p95_ms);
        } else {
            self.p95_ms += 0.01 * (x - self.p95_ms);
        }
        self.samples += 1;
    }
}

struct RouterShared {
    config: RouterConfig,
    shards: Mutex<Vec<ShardInfo>>,
    latency: Mutex<LatencyTracker>,
    metrics: RouterMetricsInner,
    /// client key → token bucket; unused without a rate-limit config.
    rate: Mutex<HashMap<String, TokenBucket>>,
    stop: AtomicBool,
}

/// The failover front tier: routes envelopes to shards, retries around
/// failures, and hedges stragglers.
pub struct Router {
    shared: Arc<RouterShared>,
    health: Option<JoinHandle<()>>,
}

/// Capped exponential backoff with a seeded jitter draw, mirroring the
/// worker supervisor's retry ladder.
fn backoff_step(base: Duration, cap: Duration, failures: u32, seed: u64, shard: usize) -> Duration {
    let exp = failures.saturating_sub(1).min(16);
    let step = base.saturating_mul(1 << exp).min(cap);
    let draw = SeedStream::new(seed)
        .branch("router-backoff")
        .nth_seed(shard as u64 ^ (u64::from(failures) << 32));
    let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
    step.mul_f64(0.5 + unit).min(cap)
}

impl Router {
    /// Builds a router over `config.shards` and starts the health
    /// prober when an interval is configured.
    ///
    /// # Errors
    /// [`NetError::Protocol`] when the shard list is empty.
    pub fn start(config: RouterConfig) -> Result<Self, NetError> {
        if config.shards.is_empty() {
            return Err(NetError::Protocol("router needs at least one shard".into()));
        }
        let shards = config
            .shards
            .iter()
            .map(|_| ShardInfo {
                healthy: true,
                not_before: None,
                failures: 0,
            })
            .collect();
        let shared = Arc::new(RouterShared {
            config,
            shards: Mutex::new(shards),
            latency: Mutex::new(LatencyTracker {
                p95_ms: 0.0,
                samples: 0,
            }),
            metrics: RouterMetricsInner::default(),
            rate: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
        });
        let health = shared.config.health_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || health_loop(&shared, interval))
        });
        Ok(Self { shared, health })
    }

    /// Routes one job envelope (text form) and returns the shard's
    /// reply envelope.
    ///
    /// # Errors
    /// [`NetError::Protocol`] when the text is not a job envelope;
    /// the last attempt's transport error when every attempt fails.
    pub fn route(&self, job_text: &str) -> Result<ResultEnvelope, NetError> {
        let env =
            read_job(job_text).map_err(|e| NetError::Protocol(format!("bad job envelope: {e}")))?;
        if let Some(rejection) = self.rate_gate(env.client.as_deref(), &env.id) {
            return Ok(rejection);
        }
        let fingerprint = env.instance.fingerprint();
        // Re-serialize so a routed envelope is byte-identical to a
        // locally written one regardless of client formatting.
        let text = write_job(&env);
        self.route_raw(&text, fingerprint, &env.id)
    }

    /// The front-tier per-client token bucket: a rate-limited request
    /// is rejected here and never forwarded to a shard (mirroring the
    /// in-process gate in `Service::submit`). Jobs without a `client`
    /// field share the `"anonymous"` bucket. Returns the rejection
    /// envelope to hand back, or `None` to proceed.
    fn rate_gate(&self, client: Option<&str>, id: &str) -> Option<ResultEnvelope> {
        let cfg = self.shared.config.rate_limit?;
        let key = client.unwrap_or("anonymous");
        let retry_after_ms = {
            let mut buckets = unpoison(self.shared.rate.lock());
            let now = Instant::now();
            let bucket = buckets
                .entry(key.to_owned())
                .or_insert_with(|| TokenBucket::full(&cfg, now));
            match cfg.take(bucket, now) {
                Ok(()) => return None,
                Err(ms) => ms,
            }
        };
        let m = &self.shared.metrics;
        m.requests.fetch_add(1, Ordering::Relaxed);
        m.rate_limited.fetch_add(1, Ordering::Relaxed);
        m.rejected.fetch_add(1, Ordering::Relaxed);
        Some(ResultEnvelope {
            id: id.to_owned(),
            status: "rejected".to_owned(),
            cache: None,
            degraded: None,
            makespan: None,
            avg_slack: None,
            verdict: None,
            probability: None,
            reason: Some(format!("client {key} exceeded its request rate")),
            retry_after_ms: Some(retry_after_ms),
            energy: None,
            reliability: None,
            schedule: None,
        })
    }

    /// Routes an already-validated envelope by fingerprint.
    ///
    /// # Errors
    /// The last attempt's [`NetError`] when every attempt fails.
    #[allow(clippy::too_many_lines)]
    pub fn route_raw(
        &self,
        job_text: &str,
        fingerprint: u64,
        id: &str,
    ) -> Result<ResultEnvelope, NetError> {
        let shared = &self.shared;
        let m = &shared.metrics;
        m.requests.fetch_add(1, Ordering::Relaxed);
        let n = shared.config.shards.len();
        let prefs = shard_preference(fingerprint, n);
        let max_attempts = shared.config.attempts();
        let mut tried = vec![0u32; n];
        let mut last_err = NetError::Connect("no shard attempted".into());
        for attempt in 0..max_attempts {
            if attempt > 0 {
                m.retries.fetch_add(1, Ordering::Relaxed);
            }
            let shard = self.pick_shard(&prefs, &tried);
            tried[shard] += 1;
            if shard != prefs[0] {
                m.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let started = Instant::now();
            match self.attempt_with_hedge(job_text, &prefs, shard, id) {
                Ok(reply) => {
                    if reply.status == "rejected" {
                        if let Some(wait_ms) = reply.retry_after_ms {
                            // Brownout breaker: honor the advertised
                            // interval before the next attempt.
                            let wait = Duration::from_millis(wait_ms.min(5_000));
                            {
                                let mut shards = unpoison(shared.shards.lock());
                                shards[shard].not_before = Some(Instant::now() + wait);
                            }
                            if attempt + 1 < max_attempts {
                                m.retry_after_waits.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(wait);
                                continue;
                            }
                        }
                        m.rejected.fetch_add(1, Ordering::Relaxed);
                        return Ok(reply);
                    }
                    {
                        let mut shards = unpoison(shared.shards.lock());
                        shards[shard].healthy = true;
                        shards[shard].failures = 0;
                        shards[shard].not_before = None;
                    }
                    unpoison(shared.latency.lock()).observe(started.elapsed());
                    if reply.status == "ok" {
                        m.completed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        m.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(reply);
                }
                Err(err) => {
                    let mut shards = unpoison(shared.shards.lock());
                    let info = &mut shards[shard];
                    info.healthy = false;
                    info.failures += 1;
                    let step = backoff_step(
                        shared.config.backoff_base,
                        shared.config.backoff_cap,
                        info.failures,
                        shared.config.seed,
                        shard,
                    );
                    info.not_before = Some(Instant::now() + step);
                    drop(shards);
                    last_err = err;
                }
            }
        }
        m.errors.fetch_add(1, Ordering::Relaxed);
        Err(last_err)
    }

    /// Picks the next shard: fewest attempts this request first, then
    /// preference order; shards inside a backoff window are passed over
    /// unless every shard is backing off, in which case the earliest
    /// deadline is awaited.
    fn pick_shard(&self, prefs: &[usize], tried: &[u32]) -> usize {
        let shared = &self.shared;
        loop {
            let now = Instant::now();
            let shards = unpoison(shared.shards.lock());
            let mut best: Option<(u32, usize, usize)> = None;
            let mut earliest: Option<Instant> = None;
            for (rank, &shard) in prefs.iter().enumerate() {
                let info = &shards[shard];
                if let Some(nb) = info.not_before {
                    if nb > now {
                        earliest = Some(earliest.map_or(nb, |e| e.min(nb)));
                        continue;
                    }
                }
                let rank_adj = if info.healthy {
                    rank
                } else {
                    rank + prefs.len()
                };
                let key = (tried[shard], rank_adj, shard);
                if best.is_none_or(|b| (b.0, b.1) > (key.0, key.1)) {
                    best = Some(key);
                }
            }
            drop(shards);
            if let Some((_, _, shard)) = best {
                return shard;
            }
            // Every shard is backing off: wait out the earliest window.
            let wait = earliest
                .map_or(Duration::from_millis(10), |e| {
                    e.saturating_duration_since(Instant::now())
                })
                .min(Duration::from_millis(250));
            self.shared
                .metrics
                .retry_after_waits
                .fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(wait.max(Duration::from_millis(1)));
        }
    }

    /// One delivery attempt with an optional hedged duplicate: if the
    /// primary attempt outlives the hedge delay, a duplicate fires at
    /// the next-preferred shard and the first finisher wins.
    fn attempt_with_hedge(
        &self,
        job_text: &str,
        prefs: &[usize],
        shard: usize,
        _id: &str,
    ) -> Result<ResultEnvelope, NetError> {
        let shared = &self.shared;
        let cfg = shared.config.client();
        let hedge_delay = self.hedge_delay();
        let hedge_target = prefs.iter().copied().find(|&s| s != shard);
        let (hedge_delay, hedge_target) = match (hedge_delay, hedge_target) {
            (Some(d), Some(t)) => (d, t),
            // No hedging armed (or nowhere to hedge): plain attempt.
            _ => return request(&shared.config.shards[shard], job_text, &cfg),
        };

        let (tx, rx) = mpsc::channel::<(bool, Result<ResultEnvelope, NetError>)>();
        let spawn_attempt = |target: usize, hedged: bool| {
            let addr = shared.config.shards[target].clone();
            let text = job_text.to_owned();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send((hedged, request(&addr, &text, &cfg)));
            })
        };
        let primary = spawn_attempt(shard, false);
        let first = match rx.recv_timeout(hedge_delay) {
            Ok(msg) => Some(msg),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = primary.join();
                return Err(NetError::Io("attempt thread died".into()));
            }
        };
        let (hedged, outcome) = match first {
            Some(msg) => msg,
            None => {
                shared.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                let _hedge = spawn_attempt(hedge_target, true);
                match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => return Err(NetError::Io("attempt threads died".into())),
                }
            }
        };
        // Prefer a success: if the first finisher failed, the slower
        // twin may still deliver within the remaining budget.
        let (hedged, outcome) = if outcome.is_err() {
            match rx.recv_timeout(cfg.io_timeout) {
                Ok(second) if second.1.is_ok() => second,
                _ => (hedged, outcome),
            }
        } else {
            (hedged, outcome)
        };
        if hedged && outcome.is_ok() {
            shared.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// The armed hedge delay, or `None` while the EWMA is cold.
    fn hedge_delay(&self) -> Option<Duration> {
        let cfg = &self.shared.config;
        if cfg.shards.len() < 2 {
            return None;
        }
        if let Some(fixed) = cfg.hedge_fixed {
            return Some(fixed);
        }
        let latency = unpoison(self.shared.latency.lock());
        if latency.samples < cfg.min_hedge_samples {
            return None;
        }
        let delay = Duration::from_secs_f64((latency.p95_ms * cfg.hedge_factor).max(0.1) / 1e3);
        Some(delay.max(cfg.hedge_min))
    }

    /// The tracked p95 latency estimate in milliseconds, with its
    /// sample count.
    #[must_use]
    pub fn p95_latency_ms(&self) -> (f64, u64) {
        let latency = unpoison(self.shared.latency.lock());
        (latency.p95_ms, latency.samples)
    }

    /// Snapshot of the routing counters.
    #[must_use]
    pub fn metrics(&self) -> RouterMetrics {
        self.shared.metrics.snapshot()
    }

    /// Current health verdict per shard (index-aligned with the
    /// configured address list).
    #[must_use]
    pub fn shard_health(&self) -> Vec<bool> {
        unpoison(self.shared.shards.lock())
            .iter()
            .map(|s| s.healthy)
            .collect()
    }

    /// Stops the health prober and releases the router.
    #[must_use]
    pub fn shutdown(mut self) -> RouterMetrics {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        self.shared.metrics.snapshot()
    }
}

/// Background health sweep: probes every shard each interval and flips
/// routability immediately.
fn health_loop(shared: &Arc<RouterShared>, interval: Duration) {
    let cfg = NetClientConfig {
        connect_timeout: shared.config.probe_timeout,
        io_timeout: shared.config.probe_timeout,
        max_frame: shared.config.max_frame,
    };
    while !shared.stop.load(Ordering::Relaxed) {
        for (i, addr) in shared.config.shards.iter().enumerate() {
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            let verdict = probe(addr, &cfg).is_ok();
            let mut shards = unpoison(shared.shards.lock());
            let info = &mut shards[i];
            if verdict {
                info.healthy = true;
                info.failures = 0;
                info.not_before = None;
            } else {
                info.healthy = false;
            }
        }
        shared.metrics.probe_cycles.fetch_add(1, Ordering::Relaxed);
        // Sleep in slices so shutdown stays prompt.
        let mut remaining = interval;
        while remaining > Duration::ZERO && !shared.stop.load(Ordering::Relaxed) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// TCP front for the router: accepts client connections speaking the
/// same line-framed envelope protocol as the shards, and forwards each
/// job through [`Router::route`].
pub struct RouterServer {
    router: Arc<Router>,
    shared: Arc<RouterServerShared>,
    accept: Option<JoinHandle<()>>,
    local_addr: std::net::SocketAddr,
}

struct RouterServerShared {
    stop: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
    max_frame: usize,
}

impl RouterServer {
    /// Binds `listen` and starts accepting client connections.
    ///
    /// # Errors
    /// [`NetError::Io`] when the bind fails.
    pub fn start(router: Router, listen: &str) -> Result<Self, NetError> {
        let listener = std::net::TcpListener::bind(listen)
            .map_err(|e| NetError::Io(format!("bind {listen}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(format!("nonblocking: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::Io(format!("local addr: {e}")))?;
        let max_frame = router.shared.config.max_frame;
        let router = Arc::new(router);
        let shared = Arc::new(RouterServerShared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            max_frame,
        });
        let a_router = Arc::clone(&router);
        let a_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            router_accept_loop(&a_shared, &a_router, &listener);
        });
        Ok(Self {
            router,
            shared,
            accept: Some(accept),
            local_addr,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Snapshot of the wrapped router's counters.
    #[must_use]
    pub fn metrics(&self) -> RouterMetrics {
        self.router.metrics()
    }

    /// Stops accepting, joins connections, and shuts the router down.
    #[must_use]
    pub fn shutdown(mut self) -> RouterMetrics {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in unpoison(self.shared.conns.lock()).drain(..) {
            let _ = h.join();
        }
        match Arc::try_unwrap(self.router) {
            Ok(router) => router.shutdown(),
            Err(router) => router.metrics(),
        }
    }
}

fn router_accept_loop(
    shared: &Arc<RouterServerShared>,
    router: &Arc<Router>,
    listener: &std::net::TcpListener,
) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let c_shared = Arc::clone(shared);
                let c_router = Arc::clone(router);
                let handle = std::thread::spawn(move || {
                    router_conn_loop(&c_shared, &c_router, stream);
                });
                unpoison(shared.conns.lock()).push(handle);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Per-connection loop: jobs route to shards, probes answer locally.
fn router_conn_loop(
    shared: &Arc<RouterServerShared>,
    router: &Arc<Router>,
    mut stream: std::net::TcpStream,
) {
    use std::io::{Read as _, Write as _};

    use rds_sched::io::write_result;

    use crate::net::{Frame, FrameScanner};

    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scanner = FrameScanner::new(shared.max_frame);
    let mut buf = [0u8; 8192];
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let frames = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => match scanner.push(&buf[..n]) {
                Ok(frames) => frames,
                Err(_) => break,
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        for frame in frames {
            match frame {
                Frame::Job(text) => {
                    let reply = match router.route(&text) {
                        Ok(env) => write_result(&env),
                        Err(err) => {
                            let id = read_job(&text).map_or_else(|_| "unknown".into(), |e| e.id);
                            write_result(&ResultEnvelope {
                                id,
                                status: "error".into(),
                                cache: None,
                                degraded: None,
                                makespan: None,
                                avg_slack: None,
                                verdict: None,
                                probability: None,
                                reason: Some(err.to_string()),
                                retry_after_ms: None,
                                energy: None,
                                reliability: None,
                                schedule: None,
                            })
                        }
                    };
                    if stream.write_all(reply.as_bytes()).is_err() || stream.flush().is_err() {
                        return;
                    }
                }
                Frame::Probe => {
                    let line = "rds-probe-ok level=router\n";
                    if stream.write_all(line.as_bytes()).is_err() {
                        return;
                    }
                }
                _ => return,
            }
        }
    }
}

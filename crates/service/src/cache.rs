//! Content-addressed schedule cache.
//!
//! Keyed by the stable [`Instance::fingerprint`] *plus* every knob that
//! changes the produced schedule (algorithm, ε, seed, generation budget):
//! two requests with the same key are guaranteed — schedulers being
//! deterministic per seed — to produce bit-identical schedules, so a hit
//! can skip the GA entirely and return the archived result.
//!
//! Degraded results are never inserted — the cache enforces this at its
//! own boundary ([`ScheduleCache::insert`] takes the job's
//! [`Degradation`] and refuses anything but [`Degradation::None`]):
//! deadline-degraded schedules depend on wall-clock load and
//! degraded-by-drop schedules on the stream's live backlog, neither of
//! which the key captures.
//!
//! Lock poisoning is recovered ([`std::sync::PoisonError::into_inner`]):
//! the guarded maps are only mutated by single non-panicking statements,
//! so the state is consistent even if a worker panicked while holding the
//! lock, and a cache must never take the serving loop down.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, MutexGuard, PoisonError};

use rds_sched::{Instance, Schedule};

use crate::job::{Algo, Degradation, JobSpec};

/// Cache key: instance content hash + schedule-determining knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    fingerprint: u64,
    algo: &'static str,
    /// `Sheft`'s k (bit pattern); zero for the others.
    algo_param: u64,
    epsilon: u64,
    seed: u64,
    generations: u64,
}

impl CacheKey {
    /// Builds the key for a job.
    #[must_use]
    pub fn for_job(spec: &JobSpec) -> Self {
        Self::new(
            &spec.instance,
            spec.algo,
            spec.epsilon,
            spec.seed,
            spec.generations,
        )
    }

    /// Builds a key from parts (benches warm the cache this way).
    #[must_use]
    pub fn new(
        instance: &Instance,
        algo: Algo,
        epsilon: f64,
        seed: u64,
        generations: Option<usize>,
    ) -> Self {
        Self {
            fingerprint: instance.fingerprint(),
            algo: algo.name(),
            algo_param: match algo {
                Algo::Sheft { k } => k.to_bits(),
                _ => 0,
            },
            epsilon: epsilon.to_bits(),
            seed,
            generations: generations.map_or(u64::MAX, |g| g as u64),
        }
    }

    /// The instance fingerprint component of the key — shard routing and
    /// cache-replication target selection key off it.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Decomposes the key into its wire fields for cache replication:
    /// `(fingerprint, algo, algo-param bits, epsilon bits, seed,
    /// generations)` — exactly what [`CacheKey::from_wire`] rebuilds.
    #[must_use]
    pub fn to_wire(&self) -> (u64, &'static str, u64, u64, u64, u64) {
        (
            self.fingerprint,
            self.algo,
            self.algo_param,
            self.epsilon,
            self.seed,
            self.generations,
        )
    }

    /// Rebuilds a key from wire fields received from a peer shard. The
    /// algo name is routed through [`Algo::parse`] so a gossiped key is
    /// pointer-identical to a locally built one.
    ///
    /// # Errors
    /// Returns the unknown algo name.
    pub fn from_wire(
        fingerprint: u64,
        algo: &str,
        algo_param: u64,
        epsilon: u64,
        seed: u64,
        generations: u64,
    ) -> Result<Self, String> {
        let algo = Algo::parse(algo)?;
        Ok(Self {
            fingerprint,
            algo: algo.name(),
            algo_param,
            epsilon,
            seed,
            generations,
        })
    }
}

/// A cached schedule with its expected-time accounting.
#[derive(Debug, Clone)]
pub struct CachedSchedule {
    /// The schedule.
    pub schedule: Schedule,
    /// Expected makespan `M₀`.
    pub makespan: f64,
    /// Average slack `σ̄`.
    pub avg_slack: f64,
}

struct CacheInner {
    map: HashMap<CacheKey, CachedSchedule>,
    /// Insertion order for FIFO eviction (schedules are immutable and
    /// recomputable; recency tracking buys little for a bounded archive).
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
}

/// The bounded, thread-safe schedule cache.
pub struct ScheduleCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ScheduleCache {
    /// Creates a cache holding at most `capacity` schedules. Capacity 0
    /// disables caching (every lookup is a miss, nothing is stored).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Locks the state, recovering from poisoning (see module docs).
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a key, counting the hit or miss.
    #[must_use]
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedSchedule> {
        let mut inner = self.lock();
        match inner.map.get(key).cloned() {
            Some(entry) => {
                inner.hits += 1;
                Some(entry)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting the oldest entry when at capacity.
    /// Re-inserting an existing key refreshes the value without growing
    /// the cache. Degraded results (`degraded != Degradation::None`) are
    /// silently refused: a deadline- or drop-degraded schedule reflects
    /// transient load, not the key, and replaying it to a later identical
    /// request would be wrong.
    pub fn insert(&self, key: CacheKey, value: CachedSchedule, degraded: Degradation) {
        if self.capacity == 0 || degraded != Degradation::None {
            return;
        }
        let mut inner = self.lock();
        if inner.map.insert(key, value).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.map.remove(&oldest);
                } else {
                    break;
                }
            }
        }
    }

    /// `(hits, misses)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Number of cached schedules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::InstanceSpec;
    use std::sync::Arc;

    fn spec(seed: u64, algo: Algo) -> JobSpec {
        let inst = Arc::new(InstanceSpec::new(10, 2).seed(seed).build().unwrap());
        JobSpec::new(format!("j{seed}"), algo, inst).seed(seed)
    }

    fn entry(inst: &Instance) -> CachedSchedule {
        // Any valid schedule works for cache plumbing tests.
        let heft = rds_heft::heft_schedule(inst);
        CachedSchedule {
            schedule: heft.schedule,
            makespan: heft.makespan,
            avg_slack: 0.0,
        }
    }

    #[test]
    fn key_separates_every_knob() {
        let a = spec(1, Algo::Ga);
        let base = CacheKey::for_job(&a);
        assert_eq!(CacheKey::for_job(&a.clone()), base);
        // Different id, same content: same key (content-addressed).
        let mut renamed = a.clone();
        renamed.id = "other".into();
        assert_eq!(CacheKey::for_job(&renamed), base);
        assert_ne!(CacheKey::for_job(&spec(2, Algo::Ga)), base, "instance");
        assert_ne!(CacheKey::for_job(&a.clone().seed(9)), base, "seed");
        assert_ne!(CacheKey::for_job(&a.clone().epsilon(1.5)), base, "epsilon");
        assert_ne!(CacheKey::for_job(&a.clone().generations(7)), base, "gens");
        let mut sheft = a.clone();
        sheft.algo = Algo::Sheft { k: 1.0 };
        let k1 = CacheKey::for_job(&sheft);
        assert_ne!(k1, base, "algo");
        sheft.algo = Algo::Sheft { k: 2.0 };
        assert_ne!(CacheKey::for_job(&sheft), k1, "algo param");
    }

    #[test]
    fn key_roundtrips_through_wire_fields() {
        for algo in [Algo::Heft, Algo::Ga, Algo::Sheft { k: 1.5 }] {
            let mut s = spec(4, algo);
            s.generations = Some(40);
            let key = CacheKey::for_job(&s);
            let (fp, name, param, eps, seed, gens) = key.to_wire();
            assert_eq!(fp, key.fingerprint());
            let back = CacheKey::from_wire(fp, name, param, eps, seed, gens).unwrap();
            assert_eq!(back, key);
        }
        assert!(CacheKey::from_wire(1, "quantum", 0, 0, 0, u64::MAX).is_err());
    }

    #[test]
    fn lookup_counts_and_returns() {
        let cache = ScheduleCache::new(4);
        let s = spec(3, Algo::Heft);
        let key = CacheKey::for_job(&s);
        assert!(cache.lookup(&key).is_none());
        cache.insert(key, entry(&s.instance), Degradation::None);
        let hit = cache.lookup(&key).expect("hit after insert");
        assert!(hit.makespan > 0.0);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let cache = ScheduleCache::new(2);
        let specs: Vec<_> = (0..4).map(|i| spec(i, Algo::Heft)).collect();
        for s in &specs {
            cache.insert(CacheKey::for_job(s), entry(&s.instance), Degradation::None);
        }
        assert_eq!(cache.len(), 2);
        // Oldest two evicted, newest two retained.
        assert!(cache.lookup(&CacheKey::for_job(&specs[0])).is_none());
        assert!(cache.lookup(&CacheKey::for_job(&specs[3])).is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ScheduleCache::new(0);
        let s = spec(5, Algo::Heft);
        cache.insert(CacheKey::for_job(&s), entry(&s.instance), Degradation::None);
        assert!(cache.is_empty());
        assert!(cache.lookup(&CacheKey::for_job(&s)).is_none());
    }

    #[test]
    fn degraded_results_are_never_cached() {
        let cache = ScheduleCache::new(4);
        let s = spec(7, Algo::Heft);
        let key = CacheKey::for_job(&s);
        // Regression: a "degraded-by-drop" online result must not be
        // replayed to a later identical request, nor may any deadline
        // degradation leak into the archive.
        for degraded in [
            Degradation::DroppedOptional,
            Degradation::BestSoFar,
            Degradation::HeftFallback,
        ] {
            cache.insert(key, entry(&s.instance), degraded);
            assert!(cache.is_empty(), "{degraded:?} was cached");
            assert!(cache.lookup(&key).is_none());
        }
        cache.insert(key, entry(&s.instance), Degradation::None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn survives_a_poisoned_lock() {
        let cache = Arc::new(ScheduleCache::new(4));
        let s = spec(8, Algo::Heft);
        let key = CacheKey::for_job(&s);
        cache.insert(key, entry(&s.instance), Degradation::None);
        let poisoner = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _guard = cache.inner.lock().unwrap();
                panic!("deliberate poison");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(cache.inner.is_poisoned());
        // Lookups and inserts keep working on the recovered state.
        assert!(cache.lookup(&key).is_some());
        let other = spec(9, Algo::Heft);
        cache.insert(
            CacheKey::for_job(&other),
            entry(&other.instance),
            Degradation::None,
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let cache = ScheduleCache::new(2);
        let s = spec(6, Algo::Heft);
        let key = CacheKey::for_job(&s);
        cache.insert(key, entry(&s.instance), Degradation::None);
        cache.insert(key, entry(&s.instance), Degradation::None);
        assert_eq!(cache.len(), 1);
    }
}

//! Networked serving: the stdin/stdout envelope protocol lifted onto
//! TCP.
//!
//! The wire format *is* the existing line-framed envelope set
//! (`rds-job v1` / `rds-result v1` from [`rds_sched::io`]) plus three
//! small frames this module adds: a single-line health probe
//! (`rds-probe v1` → `rds-probe-ok level=<brownout-rung>`), a cache-
//! replication frame (`rds-cache v1` … `end rds-cache`, acked with
//! `rds-cache-ok`), and nothing else — no length prefixes, no binary
//! framing, so `nc` against a shard still works.
//!
//! [`FrameScanner`] turns an arbitrary byte stream into complete
//! frames: TCP is free to split or merge writes anywhere, so the
//! scanner only ever acts on complete lines, buffers torn tails, and
//! rejects unknown headers and over-limit frames with typed errors.
//!
//! [`NetServer`] wraps a [`Service`] behind a listener: one reader and
//! one writer thread per connection, a dispatcher thread that demuxes
//! the service's single result stream back to the requesting
//! connection by job id, and a gossip thread that replicates warm
//! cache entries to the fingerprint-successor shard
//! ([`shard_preference`]) so a failover target already holds the dead
//! shard's hot schedules.
//!
//! Chaos ([`crate::chaos::ServiceChaos`]) injects connection refusal,
//! reply drops, mid-frame cuts, and socket stalls — keyed per delivery
//! attempt, so a retried request draws fresh rather than being
//! dropped forever.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs as _};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rds_sched::io::{
    read_job, read_result, read_schedule, write_result, write_schedule, ResultEnvelope, JOB_END,
    JOB_HEADER, RESULT_END, RESULT_HEADER,
};

use crate::cache::{CacheKey, CachedSchedule};
use crate::chaos::ServiceChaos;
use crate::job::{Degradation, JobResult, JobSpec};
use crate::metrics::ServiceMetrics;
use crate::service::{RecoveryReport, Service, ServiceError};

/// Header line of the single-line health-probe frame.
pub const PROBE_HEADER: &str = "rds-probe v1";
/// Prefix of the single-line probe acknowledgement
/// (`rds-probe-ok level=<brownout-rung>`).
pub const PROBE_OK: &str = "rds-probe-ok";
/// Header line of a cache-replication frame.
pub const CACHE_HEADER: &str = "rds-cache v1";
/// Terminator line of a cache-replication frame.
pub const CACHE_END: &str = "end rds-cache";
/// Single-line acknowledgement of an applied cache frame.
pub const CACHE_OK: &str = "rds-cache-ok";

/// A complete frame lifted off the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A job request (full `rds-job v1` … `end rds-job` text).
    Job(String),
    /// A job result (full `rds-result v1` … `end rds-result` text).
    Result(String),
    /// A cache-replication entry (full `rds-cache v1` … text).
    Cache(String),
    /// A health probe.
    Probe,
    /// A probe acknowledgement (the full line, e.g.
    /// `rds-probe-ok level=normal`).
    ProbeOk(String),
    /// A cache-frame acknowledgement.
    CacheOk,
}

/// Why the scanner rejected the stream. Both are fatal to the
/// connection: framing has been lost and resynchronization on a
/// line-oriented protocol is not worth the ambiguity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first line of a frame is not a known header (or not UTF-8).
    Garbage(String),
    /// A single frame exceeded the size limit without terminating.
    TooLarge {
        /// The configured limit, bytes.
        limit: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Garbage(l) => write!(f, "unrecognized frame header: '{l}'"),
            FrameError::TooLarge { limit } => {
                write!(
                    f,
                    "frame exceeds the {limit}-byte limit without terminating"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame scanner: feed it raw socket reads, get back every
/// frame completed so far. Partial lines and partial frames stay
/// buffered; blank and `#`-comment lines between frames are skipped,
/// exactly as the envelope parsers themselves do.
pub struct FrameScanner {
    buf: Vec<u8>,
    max_frame: usize,
}

fn trim_bytes(mut b: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = b {
        if first.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = b {
        if last.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

fn find_newline(b: &[u8], from: usize) -> Option<usize> {
    b[from..].iter().position(|&c| c == b'\n').map(|p| from + p)
}

impl FrameScanner {
    /// A scanner refusing frames larger than `max_frame` bytes.
    #[must_use]
    pub fn new(max_frame: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Bytes currently buffered (a non-zero value at EOF means the peer
    /// died mid-frame — a torn frame).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends `bytes` and returns every frame completed by them, in
    /// stream order.
    ///
    /// # Errors
    /// [`FrameError`] when framing is lost; the scanner is then
    /// poisoned and the connection should be dropped.
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
        self.buf.extend_from_slice(bytes);
        let mut frames = Vec::new();
        while let Some(frame) = self.scan_one()? {
            frames.push(frame);
        }
        Ok(frames)
    }

    /// Lifts the next complete frame off the buffer, or `None` when the
    /// buffered bytes do not yet complete one.
    fn scan_one(&mut self) -> Result<Option<Frame>, FrameError> {
        // Skip complete blank / comment lines before the header.
        loop {
            let Some(nl) = find_newline(&self.buf, 0) else {
                return self.check_size();
            };
            let line = trim_bytes(&self.buf[..nl]);
            if line.is_empty() || line.starts_with(b"#") {
                self.buf.drain(..=nl);
            } else {
                break;
            }
        }
        let header_nl = find_newline(&self.buf, 0).expect("checked above");
        let Ok(header) = std::str::from_utf8(trim_bytes(&self.buf[..header_nl])) else {
            return Err(FrameError::Garbage("<non-utf8 line>".into()));
        };
        // Single-line frames first.
        if header == PROBE_HEADER {
            self.buf.drain(..=header_nl);
            return Ok(Some(Frame::Probe));
        }
        if header == CACHE_OK {
            self.buf.drain(..=header_nl);
            return Ok(Some(Frame::CacheOk));
        }
        if header.starts_with(PROBE_OK) {
            let line = header.to_owned();
            self.buf.drain(..=header_nl);
            return Ok(Some(Frame::ProbeOk(line)));
        }
        let (end, wrap): (&str, fn(String) -> Frame) = match header {
            JOB_HEADER => (JOB_END, Frame::Job),
            RESULT_HEADER => (RESULT_END, Frame::Result),
            CACHE_HEADER => (CACHE_END, Frame::Cache),
            other => {
                let mut shown: String = other.chars().take(80).collect();
                if shown.len() < other.len() {
                    shown.push('…');
                }
                return Err(FrameError::Garbage(shown));
            }
        };
        // Walk subsequent complete lines looking for the terminator.
        let mut pos = header_nl + 1;
        while let Some(nl) = find_newline(&self.buf, pos) {
            if trim_bytes(&self.buf[pos..nl]) == end.as_bytes() {
                if nl + 1 > self.max_frame {
                    return Err(FrameError::TooLarge {
                        limit: self.max_frame,
                    });
                }
                let Ok(text) = String::from_utf8(self.buf[..=nl].to_vec()) else {
                    return Err(FrameError::Garbage("<non-utf8 frame body>".into()));
                };
                self.buf.drain(..=nl);
                return Ok(Some(wrap(text)));
            }
            pos = nl + 1;
        }
        self.check_size()
    }

    fn check_size(&self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() > self.max_frame {
            Err(FrameError::TooLarge {
                limit: self.max_frame,
            })
        } else {
            Ok(None)
        }
    }
}

/// Highest-random-weight (rendezvous) score of `shard` for an instance
/// fingerprint — FNV-1a over the fingerprint and shard index. Router
/// failover and cache replication share this function, so the shard a
/// request fails over to is exactly the shard its warm cache entry was
/// gossiped to.
#[must_use]
pub fn rendezvous_weight(fingerprint: u64, shard: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in fingerprint
        .to_le_bytes()
        .into_iter()
        .chain((shard as u64).to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Shard preference order for a fingerprint over `n` shards: the
/// primary is `fingerprint % n` (cheap, uniform), the fallbacks follow
/// by descending rendezvous weight — a stable, per-fingerprint
/// permutation of the remaining shards.
#[must_use]
pub fn shard_preference(fingerprint: u64, n: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let primary = usize::try_from(fingerprint % n as u64).unwrap_or(0);
    let mut rest: Vec<usize> = (0..n).filter(|&s| s != primary).collect();
    rest.sort_by_key(|&s| std::cmp::Reverse(rendezvous_weight(fingerprint, s)));
    let mut order = Vec::with_capacity(n);
    order.push(primary);
    order.extend(rest);
    order
}

/// Serializes a warm cache entry for replication to a peer shard. The
/// schedule rides in the existing `rds-schedule v1` format; the key is
/// shipped as its wire fields ([`CacheKey::to_wire`]) — the instance
/// itself never crosses the wire, only its fingerprint.
#[must_use]
pub fn write_cache_entry(key: &CacheKey, entry: &CachedSchedule) -> String {
    use std::fmt::Write as _;
    let (fp, algo, param, eps, seed, gens) = key.to_wire();
    let mut out = String::new();
    let _ = writeln!(out, "{CACHE_HEADER}");
    let _ = writeln!(out, "fingerprint {fp}");
    let _ = writeln!(out, "algo {algo}");
    let _ = writeln!(out, "algo-param {param}");
    let _ = writeln!(out, "epsilon-bits {eps}");
    let _ = writeln!(out, "seed {seed}");
    let _ = writeln!(out, "generations {gens}");
    let _ = writeln!(out, "makespan {:?}", entry.makespan);
    let _ = writeln!(out, "avg-slack {:?}", entry.avg_slack);
    let _ = writeln!(out, "schedule");
    out.push_str(&write_schedule(&entry.schedule));
    let _ = writeln!(out, "{CACHE_END}");
    out
}

/// Parses a replication frame back into a cache key and entry.
///
/// # Errors
/// Returns a message on any malformation — gossip input is as
/// untrusted as job input.
pub fn read_cache_entry(text: &str) -> Result<(CacheKey, CachedSchedule), String> {
    let mut lines = text.lines().map(str::trim);
    let header = lines
        .by_ref()
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or_else(|| "empty cache frame".to_owned())?;
    if header != CACHE_HEADER {
        return Err(format!("expected '{CACHE_HEADER}', got '{header}'"));
    }
    let mut fingerprint = None;
    let mut algo = None;
    let mut param = 0u64;
    let mut eps = None;
    let mut seed = 0u64;
    let mut gens = u64::MAX;
    let mut makespan = None;
    let mut avg_slack = None;
    let mut schedule_text = String::new();
    let mut in_schedule = false;
    for line in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == CACHE_END {
            break;
        }
        if in_schedule {
            schedule_text.push_str(line);
            schedule_text.push('\n');
            continue;
        }
        let (k, v) = match line.split_once(char::is_whitespace) {
            Some((k, v)) => (k, v.trim()),
            None => (line, ""),
        };
        let int = |v: &str| {
            v.parse::<u64>()
                .map_err(|e| format!("bad integer '{v}': {e}"))
        };
        let flt = |v: &str| {
            v.parse::<f64>()
                .map_err(|e| format!("bad float '{v}': {e}"))
        };
        match k {
            "fingerprint" => fingerprint = Some(int(v)?),
            "algo" => algo = Some(v.to_owned()),
            "algo-param" => param = int(v)?,
            "epsilon-bits" => eps = Some(int(v)?),
            "seed" => seed = int(v)?,
            "generations" => gens = int(v)?,
            "makespan" => makespan = Some(flt(v)?),
            "avg-slack" => avg_slack = Some(flt(v)?),
            "schedule" => in_schedule = true,
            other => return Err(format!("unknown cache-frame key '{other}'")),
        }
    }
    let fingerprint = fingerprint.ok_or("cache frame missing fingerprint")?;
    let algo = algo.ok_or("cache frame missing algo")?;
    let eps = eps.ok_or("cache frame missing epsilon-bits")?;
    let makespan = makespan.ok_or("cache frame missing makespan")?;
    let avg_slack = avg_slack.ok_or("cache frame missing avg-slack")?;
    if schedule_text.is_empty() {
        return Err("cache frame missing schedule".into());
    }
    let key = CacheKey::from_wire(fingerprint, &algo, param, eps, seed, gens)?;
    let schedule = read_schedule(&schedule_text).map_err(|e| format!("bad schedule: {e}"))?;
    Ok((
        key,
        CachedSchedule {
            schedule,
            makespan,
            avg_slack,
        },
    ))
}

/// Why a network operation failed, typed so callers (the router's
/// failover ladder, `rds submit --connect`) can distinguish retryable
/// transport trouble from protocol violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Could not establish a connection (refused, unreachable, bad
    /// address).
    Connect(String),
    /// The peer accepted the connection but did not reply in time.
    Timeout(String),
    /// The connection died mid-exchange.
    Io(String),
    /// The peer replied with something that is not a valid frame (torn
    /// frame, garbage, wrong frame kind).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Connect(e) => write!(f, "connect failed: {e}"),
            NetError::Timeout(e) => write!(f, "timed out: {e}"),
            NetError::Io(e) => write!(f, "connection error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Client-side limits for one request against a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// End-to-end budget for the reply (covers queueing and solve time
    /// on the shard).
    pub io_timeout: Duration,
    /// Reply frames over this size are refused.
    pub max_frame: usize,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Default frame-size cap (4 MiB — a dense 1000-task instance is well
/// under 1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// The read-poll slice: sockets time out at this granularity so loops
/// can check deadlines and stop flags between reads.
const POLL_SLICE: Duration = Duration::from_millis(50);

fn connect(addr: &str, cfg: &NetClientConfig) -> Result<TcpStream, NetError> {
    let addrs: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| NetError::Connect(format!("{addr}: {e}")))?
        .collect();
    let mut last: Option<std::io::Error> = None;
    for a in addrs {
        match TcpStream::connect_timeout(&a, cfg.connect_timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL_SLICE));
                let _ = stream.set_write_timeout(Some(cfg.io_timeout));
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(NetError::Connect(format!(
        "{addr}: {}",
        last.map_or_else(|| "no addresses resolved".to_owned(), |e| e.to_string())
    )))
}

/// Reads until one complete frame arrives, the deadline passes, or the
/// peer hangs up.
fn next_frame(
    stream: &mut TcpStream,
    deadline: Instant,
    max_frame: usize,
) -> Result<Frame, NetError> {
    let mut scanner = FrameScanner::new(max_frame);
    let mut buf = [0u8; 8192];
    loop {
        if Instant::now() >= deadline {
            return Err(NetError::Timeout("no reply before the deadline".into()));
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(NetError::Protocol(if scanner.buffered() > 0 {
                    "peer closed mid-frame (torn frame)".into()
                } else {
                    "peer closed without replying".into()
                }));
            }
            Ok(n) => {
                let mut frames = scanner
                    .push(&buf[..n])
                    .map_err(|e| NetError::Protocol(e.to_string()))?;
                if !frames.is_empty() {
                    return Ok(frames.swap_remove(0));
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(NetError::Io(e.to_string())),
        }
    }
}

/// Sends one job envelope (already serialized) to a shard and waits
/// for its result envelope.
///
/// # Errors
/// [`NetError`] on connect failure, timeout, transport error, or a
/// malformed reply.
pub fn request(
    addr: &str,
    job_text: &str,
    cfg: &NetClientConfig,
) -> Result<ResultEnvelope, NetError> {
    let mut stream = connect(addr, cfg)?;
    stream
        .write_all(job_text.as_bytes())
        .map_err(|e| NetError::Io(format!("send failed: {e}")))?;
    let deadline = Instant::now() + cfg.io_timeout;
    match next_frame(&mut stream, deadline, cfg.max_frame)? {
        Frame::Result(text) => {
            read_result(&text).map_err(|e| NetError::Protocol(format!("bad result: {e}")))
        }
        other => Err(NetError::Protocol(format!(
            "expected a result frame, got {other:?}"
        ))),
    }
}

/// Health-probes a shard, returning its brownout rung name.
///
/// # Errors
/// [`NetError`] when the shard is unreachable or replies with anything
/// but a probe acknowledgement.
pub fn probe(addr: &str, cfg: &NetClientConfig) -> Result<String, NetError> {
    let mut stream = connect(addr, cfg)?;
    stream
        .write_all(format!("{PROBE_HEADER}\n").as_bytes())
        .map_err(|e| NetError::Io(format!("send failed: {e}")))?;
    let deadline = Instant::now() + cfg.io_timeout;
    match next_frame(&mut stream, deadline, cfg.max_frame)? {
        Frame::ProbeOk(line) => Ok(parse_probe_level(&line).unwrap_or("unknown").to_owned()),
        other => Err(NetError::Protocol(format!(
            "expected a probe ack, got {other:?}"
        ))),
    }
}

/// Extracts the brownout level from a probe-ack line.
#[must_use]
pub fn parse_probe_level(line: &str) -> Option<&str> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("level="))
}

/// Ships one serialized cache frame to a peer shard and waits for the
/// acknowledgement.
///
/// # Errors
/// [`NetError`] when the peer is unreachable or does not ack.
pub fn gossip_entry(addr: &str, cache_text: &str, cfg: &NetClientConfig) -> Result<(), NetError> {
    let mut stream = connect(addr, cfg)?;
    stream
        .write_all(cache_text.as_bytes())
        .map_err(|e| NetError::Io(format!("send failed: {e}")))?;
    let deadline = Instant::now() + cfg.io_timeout;
    match next_frame(&mut stream, deadline, cfg.max_frame)? {
        Frame::CacheOk => Ok(()),
        other => Err(NetError::Protocol(format!(
            "expected a cache ack, got {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Shard server
// ---------------------------------------------------------------------------

/// Configuration for one networked shard.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub listen: String,
    /// Peer shard addresses (including this shard's own published
    /// address) used for cache replication.
    pub peers: Vec<String>,
    /// This shard's index within `peers`.
    pub shard_index: usize,
    /// Drop idle connections with no inflight jobs after this long.
    pub idle_timeout: Option<Duration>,
    /// Inbound frames over this size abort the connection.
    pub max_frame: usize,
    /// Per-connection cap on jobs awaiting results.
    pub max_inflight: usize,
    /// Seeded network fault injection (reply drops, frame cuts,
    /// stalls, connection refusals).
    pub chaos: Option<ServiceChaos>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_owned(),
            peers: Vec::new(),
            shard_index: 0,
            idle_timeout: None,
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 64,
            chaos: None,
        }
    }
}

impl NetServerConfig {
    /// Sets the bind address.
    #[must_use]
    pub fn listen(mut self, addr: &str) -> Self {
        self.listen = addr.to_owned();
        self
    }

    /// Sets the replication peer set and this shard's index in it.
    #[must_use]
    pub fn peers(mut self, peers: Vec<String>, index: usize) -> Self {
        self.peers = peers;
        self.shard_index = index;
        self
    }

    /// Sets the idle-connection timeout.
    #[must_use]
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.idle_timeout = Some(d);
        self
    }

    /// Sets the inbound frame-size cap.
    #[must_use]
    pub fn max_frame(mut self, bytes: usize) -> Self {
        self.max_frame = bytes;
        self
    }

    /// Sets the per-connection inflight cap.
    #[must_use]
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Enables seeded network chaos.
    #[must_use]
    pub fn chaos(mut self, chaos: ServiceChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// One reply queued for a connection's writer thread.
struct ConnReply {
    /// `Some(job_id)` for job results (chaos applies); `None` for
    /// protocol-level acks and rejections (always delivered intact).
    id: Option<String>,
    text: String,
}

/// Registry entry for a job whose result has not come back yet.
struct PendingEntry {
    tx: mpsc::Sender<ConnReply>,
    /// The owning connection's inflight count.
    pending: Arc<AtomicUsize>,
    /// Cache key to replicate on a warm miss-then-solve, when the job
    /// is cacheable.
    gossip: Option<CacheKey>,
}

/// Counters for the networked front of a shard.
#[derive(Default)]
struct NetMetricsInner {
    connections: AtomicU64,
    refused: AtomicU64,
    frames_in: AtomicU64,
    jobs_in: AtomicU64,
    probes: AtomicU64,
    results_out: AtomicU64,
    protocol_errors: AtomicU64,
    busy_rejections: AtomicU64,
    duplicate_ids: AtomicU64,
    gossip_in: AtomicU64,
    gossip_out: AtomicU64,
    gossip_fails: AtomicU64,
    replies_dropped: AtomicU64,
    frames_cut: AtomicU64,
    replies_stalled: AtomicU64,
}

/// Point-in-time snapshot of a shard's transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetServerMetrics {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused by chaos injection.
    pub refused: u64,
    /// Complete frames parsed off sockets.
    pub frames_in: u64,
    /// Job envelopes admitted to the service queue.
    pub jobs_in: u64,
    /// Health probes answered.
    pub probes: u64,
    /// Result envelopes handed to writers.
    pub results_out: u64,
    /// Connections aborted for malformed traffic.
    pub protocol_errors: u64,
    /// Jobs bounced at the per-connection inflight cap.
    pub busy_rejections: u64,
    /// Jobs bounced for reusing an inflight id.
    pub duplicate_ids: u64,
    /// Replicated cache entries accepted from peers.
    pub gossip_in: u64,
    /// Cache entries shipped to the successor shard.
    pub gossip_out: u64,
    /// Replication attempts that failed (peer down).
    pub gossip_fails: u64,
    /// Job replies suppressed by chaos.
    pub replies_dropped: u64,
    /// Job replies cut mid-frame by chaos.
    pub frames_cut: u64,
    /// Job replies delayed by a chaos stall.
    pub replies_stalled: u64,
}

impl NetMetricsInner {
    fn snapshot(&self) -> NetServerMetrics {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        NetServerMetrics {
            connections: g(&self.connections),
            refused: g(&self.refused),
            frames_in: g(&self.frames_in),
            jobs_in: g(&self.jobs_in),
            probes: g(&self.probes),
            results_out: g(&self.results_out),
            protocol_errors: g(&self.protocol_errors),
            busy_rejections: g(&self.busy_rejections),
            duplicate_ids: g(&self.duplicate_ids),
            gossip_in: g(&self.gossip_in),
            gossip_out: g(&self.gossip_out),
            gossip_fails: g(&self.gossip_fails),
            replies_dropped: g(&self.replies_dropped),
            frames_cut: g(&self.frames_cut),
            replies_stalled: g(&self.replies_stalled),
        }
    }
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// State shared between the accept loop, per-connection threads, the
/// dispatcher, and the gossip worker.
struct NetShared {
    stop: AtomicBool,
    /// job id -> where its result should be delivered.
    registry: Mutex<HashMap<String, PendingEntry>>,
    /// (peer addresses, own index) — swappable at runtime.
    peers: Mutex<(Vec<String>, usize)>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
    /// job id -> delivery attempts, so chaos draws fresh per retry.
    delivery_attempts: Mutex<HashMap<String, u32>>,
    metrics: NetMetricsInner,
    config: NetServerConfig,
}

/// Renders a minimal result envelope for transport-level rejections
/// and errors (bad parse, inflight cap, duplicate id).
fn error_envelope(id: &str, status: &str, reason: String, retry_after_ms: Option<u64>) -> String {
    write_result(&ResultEnvelope {
        id: id.to_owned(),
        status: status.to_owned(),
        cache: None,
        degraded: None,
        makespan: None,
        avg_slack: None,
        verdict: None,
        probability: None,
        reason: Some(reason),
        retry_after_ms,
        energy: None,
        reliability: None,
        schedule: None,
    })
}

/// Per-connection reader: scans frames off the socket and dispatches
/// jobs, probes, and gossiped cache entries.
#[allow(clippy::too_many_lines)]
fn reader_loop(
    shared: &Arc<NetShared>,
    service: &Arc<Service>,
    mut stream: TcpStream,
    reply_tx: &mpsc::Sender<ConnReply>,
) {
    let _ = stream.set_read_timeout(Some(POLL_SLICE));
    let mut scanner = FrameScanner::new(shared.config.max_frame);
    let pending = Arc::new(AtomicUsize::new(0));
    let mut idle_since = Instant::now();
    let mut buf = [0u8; 8192];
    let m = &shared.metrics;
    'conn: loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(idle) = shared.config.idle_timeout {
            if pending.load(Ordering::Relaxed) == 0 && idle_since.elapsed() >= idle {
                break;
            }
        }
        let frames = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                idle_since = Instant::now();
                match scanner.push(&buf[..n]) {
                    Ok(frames) => frames,
                    Err(_) => {
                        m.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        for frame in frames {
            m.frames_in.fetch_add(1, Ordering::Relaxed);
            match frame {
                Frame::Job(text) => {
                    let env = match read_job(&text) {
                        Ok(env) => env,
                        Err(e) => {
                            m.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = reply_tx.send(ConnReply {
                                id: None,
                                text: error_envelope(
                                    "unknown",
                                    "error",
                                    format!("bad job envelope: {e}"),
                                    None,
                                ),
                            });
                            continue;
                        }
                    };
                    if pending.load(Ordering::Relaxed) >= shared.config.max_inflight {
                        m.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        let _ = reply_tx.send(ConnReply {
                            id: None,
                            text: error_envelope(
                                &env.id,
                                "rejected",
                                format!(
                                    "connection inflight cap reached ({})",
                                    shared.config.max_inflight
                                ),
                                Some(100),
                            ),
                        });
                        continue;
                    }
                    let env_id = env.id.clone();
                    let spec = match JobSpec::from_envelope(env) {
                        Ok(spec) => spec,
                        Err(reason) => {
                            let _ = reply_tx.send(ConnReply {
                                id: None,
                                text: error_envelope(&env_id, "rejected", reason, None),
                            });
                            continue;
                        }
                    };
                    let gossip_key = spec.online.is_none().then(|| CacheKey::for_job(&spec));
                    {
                        let mut reg = unpoison(shared.registry.lock());
                        if reg.contains_key(&spec.id) {
                            drop(reg);
                            m.duplicate_ids.fetch_add(1, Ordering::Relaxed);
                            let _ = reply_tx.send(ConnReply {
                                id: None,
                                text: error_envelope(
                                    &spec.id,
                                    "rejected",
                                    "job id already inflight".to_owned(),
                                    None,
                                ),
                            });
                            continue;
                        }
                        reg.insert(
                            spec.id.clone(),
                            PendingEntry {
                                tx: reply_tx.clone(),
                                pending: Arc::clone(&pending),
                                gossip: gossip_key,
                            },
                        );
                    }
                    pending.fetch_add(1, Ordering::Relaxed);
                    let id = spec.id.clone();
                    let lane = spec.lane();
                    if let Err(err) = service.submit(spec) {
                        unpoison(shared.registry.lock()).remove(&id);
                        pending.fetch_sub(1, Ordering::Relaxed);
                        let result = JobResult {
                            id,
                            outcome: Err(err),
                            lane,
                        };
                        let _ = reply_tx.send(ConnReply {
                            id: None,
                            text: write_result(&result.to_envelope()),
                        });
                        continue;
                    }
                    m.jobs_in.fetch_add(1, Ordering::Relaxed);
                }
                Frame::Probe => {
                    m.probes.fetch_add(1, Ordering::Relaxed);
                    let _ = reply_tx.send(ConnReply {
                        id: None,
                        text: format!("{PROBE_OK} level={}\n", service.brownout_level_name()),
                    });
                }
                Frame::Cache(text) => match read_cache_entry(&text) {
                    Ok((key, entry)) => {
                        m.gossip_in.fetch_add(1, Ordering::Relaxed);
                        service.cache_insert(key, entry);
                        let _ = reply_tx.send(ConnReply {
                            id: None,
                            text: format!("{CACHE_OK}\n"),
                        });
                    }
                    Err(_) => {
                        m.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        break 'conn;
                    }
                },
                Frame::Result(_) | Frame::ProbeOk(_) | Frame::CacheOk => {
                    m.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    break 'conn;
                }
            }
        }
    }
    // Abandon replies for jobs still inflight on this connection: keep
    // the registry entries so the dispatcher can count them down, but
    // results will hit a disconnected channel and be dropped.
}

/// Per-connection writer: drains queued replies onto the socket,
/// applying chaos faults to job results only.
fn writer_loop(
    shared: &Arc<NetShared>,
    mut stream: TcpStream,
    reply_rx: &mpsc::Receiver<ConnReply>,
) {
    let m = &shared.metrics;
    while let Ok(reply) = reply_rx.recv() {
        let chaos_target = reply
            .id
            .as_deref()
            .and_then(|id| shared.config.chaos.map(|c| (c, id.to_owned())));
        if let Some((chaos, id)) = chaos_target {
            let attempt = {
                let mut attempts = unpoison(shared.delivery_attempts.lock());
                let slot = attempts.entry(id.clone()).or_insert(0);
                *slot += 1;
                *slot
            };
            if chaos.stalls_socket(&id, attempt) {
                m.replies_stalled.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(chaos.net_stall);
            }
            if chaos.drops_reply(&id, attempt) {
                m.replies_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if chaos.cuts_frame(&id, attempt) {
                m.frames_cut.fetch_add(1, Ordering::Relaxed);
                let half = reply.text.len() / 2;
                let _ = stream.write_all(&reply.text.as_bytes()[..half]);
                let _ = stream.flush();
                let _ = stream.shutdown(std::net::Shutdown::Both);
                break;
            }
        }
        if stream.write_all(reply.text.as_bytes()).is_err() || stream.flush().is_err() {
            break;
        }
    }
}

/// Routes finished jobs from the service back to the connection that
/// submitted them, and feeds warm solves to the gossip worker.
fn dispatcher_loop(
    shared: &Arc<NetShared>,
    results_rx: &mpsc::Receiver<JobResult>,
    gossip_tx: &mpsc::Sender<(CacheKey, CachedSchedule)>,
) {
    let m = &shared.metrics;
    while let Ok(result) = results_rx.recv() {
        let entry = unpoison(shared.registry.lock()).remove(&result.id);
        let Some(entry) = entry else {
            // A replayed recovery job with no live connection.
            continue;
        };
        entry.pending.fetch_sub(1, Ordering::Relaxed);
        if let (Some(key), Ok(out)) = (&entry.gossip, &result.outcome) {
            if !out.cache_hit && out.degraded == Degradation::None && out.online.is_none() {
                let _ = gossip_tx.send((
                    *key,
                    CachedSchedule {
                        schedule: out.schedule.clone(),
                        makespan: out.makespan,
                        avg_slack: out.avg_slack,
                    },
                ));
            }
        }
        let text = write_result(&result.to_envelope());
        m.results_out.fetch_add(1, Ordering::Relaxed);
        let _ = entry.tx.send(ConnReply {
            id: Some(result.id),
            text,
        });
    }
}

/// Ships each warm cache entry to its fingerprint-successor shard so a
/// failover lands on a warm cache.
fn gossip_loop(shared: &Arc<NetShared>, gossip_rx: &mpsc::Receiver<(CacheKey, CachedSchedule)>) {
    let cfg = NetClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(2),
        max_frame: shared.config.max_frame,
    };
    let m = &shared.metrics;
    while let Ok((key, entry)) = gossip_rx.recv() {
        let (peers, me) = unpoison(shared.peers.lock()).clone();
        if peers.len() < 2 {
            continue;
        }
        let target = shard_preference(key.fingerprint(), peers.len())
            .into_iter()
            .find(|&s| s != me);
        let Some(target) = target else { continue };
        let text = write_cache_entry(&key, &entry);
        match gossip_entry(&peers[target], &text, &cfg) {
            Ok(()) => {
                m.gossip_out.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                m.gossip_fails.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Accept loop: hands each connection a reader and a writer thread.
fn accept_loop(shared: &Arc<NetShared>, service: &Arc<Service>, listener: &TcpListener) {
    let mut conn_no: u64 = 0;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        conn_no += 1;
        if let Some(chaos) = &shared.config.chaos {
            if chaos.refuses_connect(conn_no) {
                shared.metrics.refused.fetch_add(1, Ordering::Relaxed);
                drop(stream);
                continue;
            }
        }
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let (reply_tx, reply_rx) = mpsc::channel::<ConnReply>();
        let r_shared = Arc::clone(shared);
        let r_service = Arc::clone(service);
        let reader = std::thread::spawn(move || {
            reader_loop(&r_shared, &r_service, stream, &reply_tx);
        });
        let w_shared = Arc::clone(shared);
        let writer = std::thread::spawn(move || {
            writer_loop(&w_shared, write_half, &reply_rx);
        });
        unpoison(shared.readers.lock()).push(reader);
        unpoison(shared.writers.lock()).push(writer);
    }
}

/// A shard's networked front: a TCP listener speaking the envelope
/// protocol over line frames, backed by an owned [`Service`].
pub struct NetServer {
    shared: Arc<NetShared>,
    service: Arc<Service>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    gossip: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds the listener and starts the accept, dispatcher, and
    /// gossip threads around `service`. `results_rx` must be the
    /// receiver paired with the service's result channel.
    ///
    /// # Errors
    /// [`NetError::Io`] when the bind fails.
    pub fn start(
        service: Service,
        results_rx: mpsc::Receiver<JobResult>,
        config: NetServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| NetError::Io(format!("bind {}: {e}", config.listen)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(format!("nonblocking: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::Io(format!("local addr: {e}")))?;
        let peers = (config.peers.clone(), config.shard_index);
        let shared = Arc::new(NetShared {
            stop: AtomicBool::new(false),
            registry: Mutex::new(HashMap::new()),
            peers: Mutex::new(peers),
            readers: Mutex::new(Vec::new()),
            writers: Mutex::new(Vec::new()),
            delivery_attempts: Mutex::new(HashMap::new()),
            metrics: NetMetricsInner::default(),
            config,
        });
        let service = Arc::new(service);
        let (gossip_tx, gossip_rx) = mpsc::channel::<(CacheKey, CachedSchedule)>();

        let a_shared = Arc::clone(&shared);
        let a_service = Arc::clone(&service);
        let accept = std::thread::spawn(move || {
            accept_loop(&a_shared, &a_service, &listener);
        });

        let d_shared = Arc::clone(&shared);
        let dispatcher = std::thread::spawn(move || {
            dispatcher_loop(&d_shared, &results_rx, &gossip_tx);
        });

        let g_shared = Arc::clone(&shared);
        let gossip = std::thread::spawn(move || {
            gossip_loop(&g_shared, &gossip_rx);
        });

        Ok(Self {
            shared,
            service,
            local_addr,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            gossip: Some(gossip),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Swaps the replication peer set once real (ephemeral) addresses
    /// are known.
    pub fn set_peers(&self, peers: Vec<String>, index: usize) {
        *unpoison(self.shared.peers.lock()) = (peers, index);
    }

    /// Replays the journal through the owned service.
    ///
    /// # Errors
    /// Propagates [`ServiceError`] from the underlying recovery.
    pub fn recover(&self) -> Result<RecoveryReport, ServiceError> {
        self.service.recover()
    }

    /// Snapshot of the transport counters.
    #[must_use]
    pub fn net_metrics(&self) -> NetServerMetrics {
        self.shared.metrics.snapshot()
    }

    /// Stops accepting, drains the service, and joins every thread.
    /// Returns the service metrics and the transport counters.
    #[must_use]
    pub fn shutdown(mut self) -> (ServiceMetrics, NetServerMetrics) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in unpoison(self.shared.readers.lock()).drain(..) {
            let _ = h.join();
        }
        let service = Arc::try_unwrap(self.service)
            .unwrap_or_else(|_| panic!("service still shared at shutdown"));
        let metrics = service.shutdown();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.gossip.take() {
            let _ = h.join();
        }
        for h in unpoison(self.shared.writers.lock()).drain(..) {
            let _ = h.join();
        }
        let net = self.shared.metrics.snapshot();
        (metrics, net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use rds_sched::io::{write_job, JobEnvelope};
    use rds_sched::InstanceSpec;

    fn envelope(id: &str, seed: u64) -> JobEnvelope {
        JobEnvelope {
            id: id.into(),
            algo: "heft".into(),
            epsilon: 1.3,
            seed: 0,
            generations: None,
            deadline_ms: None,
            lane: None,
            arrival: None,
            deadline: None,
            objective: None,
            rel_min: None,
            client: None,
            instance: InstanceSpec::new(20, 3).seed(seed).build().unwrap(),
        }
    }

    fn job_text(id: &str, seed: u64) -> String {
        write_job(&envelope(id, seed))
    }

    #[test]
    fn scanner_reassembles_frames_fed_one_byte_at_a_time() {
        let job = job_text("j1", 7);
        let stream = format!("{job}{PROBE_HEADER}\n");
        let mut scanner = FrameScanner::new(DEFAULT_MAX_FRAME);
        let mut frames = Vec::new();
        for b in stream.as_bytes() {
            frames.extend(scanner.push(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(frames.len(), 2);
        assert!(matches!(&frames[0], Frame::Job(t) if read_job(t).unwrap().id == "j1"));
        assert!(matches!(frames[1], Frame::Probe));
        assert_eq!(scanner.buffered(), 0);
    }

    #[test]
    fn scanner_rejects_garbage_and_oversized_frames() {
        let mut scanner = FrameScanner::new(DEFAULT_MAX_FRAME);
        let err = scanner.push(b"not-a-header v9\n").unwrap_err();
        assert!(matches!(err, FrameError::Garbage(_)));

        let mut small = FrameScanner::new(64);
        let body = format!("{JOB_HEADER}\n{}\n", "x".repeat(200));
        let err = small.push(body.as_bytes()).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { limit: 64 }));
    }

    #[test]
    fn rendezvous_preference_is_a_deterministic_permutation() {
        for fp in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let prefs = shard_preference(fp, 5);
            assert_eq!(prefs[0], usize::try_from(fp % 5).unwrap());
            let mut sorted = prefs.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            assert_eq!(prefs, shard_preference(fp, 5));
        }
        assert_eq!(shard_preference(9, 1), vec![0]);
    }

    #[test]
    fn cache_entry_roundtrips_through_the_wire() {
        let spec = JobSpec::from_envelope(envelope("k", 5)).unwrap();
        let key = CacheKey::for_job(&spec);
        let heft = rds_heft::heft_schedule(&spec.instance);
        let entry = CachedSchedule {
            schedule: heft.schedule,
            makespan: heft.makespan,
            avg_slack: 1.25,
        };
        let text = write_cache_entry(&key, &entry);
        let (key2, entry2) = read_cache_entry(&text).unwrap();
        assert_eq!(key2.fingerprint(), key.fingerprint());
        assert_eq!(key2.to_wire(), key.to_wire());
        assert_eq!(entry2.schedule.assignment(), entry.schedule.assignment());
        assert!((entry2.makespan - entry.makespan).abs() < 1e-9);
        assert!((entry2.avg_slack - entry.avg_slack).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_request_probe_and_gossip_against_a_live_shard() {
        let (service, results_rx) =
            Service::try_start(ServiceConfig::default().workers(2)).unwrap();
        let server = NetServer::start(
            service,
            results_rx,
            NetServerConfig::default().max_inflight(8),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let cfg = NetClientConfig::default();

        let level = probe(&addr, &cfg).unwrap();
        // Brownout is disabled by default, so the rung reads "off".
        assert!(level == "off" || level == "normal", "level = {level}");

        let reply = request(&addr, &job_text("net-1", 7), &cfg).unwrap();
        assert_eq!(reply.id, "net-1");
        assert_eq!(reply.status, "ok");
        assert_eq!(reply.cache.as_deref(), Some("miss"));
        assert!(reply.schedule.is_some());

        // Gossip a solved entry in under a fresh key, then ask for that
        // job: it must be a warm hit.
        let spec = JobSpec::from_envelope(envelope("warm", 11)).unwrap();
        let key = CacheKey::for_job(&spec);
        let heft = rds_heft::heft_schedule(&spec.instance);
        let entry = CachedSchedule {
            schedule: heft.schedule,
            makespan: heft.makespan,
            avg_slack: 0.5,
        };
        gossip_entry(&addr, &write_cache_entry(&key, &entry), &cfg).unwrap();
        let reply = request(&addr, &job_text("warm", 11), &cfg).unwrap();
        assert_eq!(reply.status, "ok");
        assert_eq!(reply.cache.as_deref(), Some("hit"));

        let (metrics, net) = server.shutdown();
        assert_eq!(net.jobs_in, 2);
        assert_eq!(net.gossip_in, 1);
        assert!(net.results_out >= 2);
        assert!(metrics.completed >= 2);
    }

    #[test]
    fn client_reports_typed_connect_failure() {
        let cfg = NetClientConfig {
            connect_timeout: Duration::from_millis(200),
            ..NetClientConfig::default()
        };
        let err = request("127.0.0.1:1", &job_text("x", 1), &cfg).unwrap_err();
        assert!(matches!(err, NetError::Connect(_)), "got {err}");
    }
}

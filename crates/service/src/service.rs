//! The service proper: worker pool, admission control, execution,
//! deadline degradation, durability, supervision, and overload
//! brownout.
//!
//! Crash-safety layers (each optional, all off by default):
//!
//! - **journal** ([`crate::journal`]): accepted jobs are WAL-logged and
//!   fsync'd before the submitter learns of acceptance;
//!   [`Service::recover`] replays accepted-but-unfinished jobs after a
//!   restart.
//! - **supervision** ([`crate::supervisor`]): every attempt runs behind
//!   `catch_unwind`; panics and wall-clock timeouts retry with capped
//!   backoff up to an attempt cap, a dead worker thread is respawned and
//!   its in-flight job rescued, and a poison job becomes a typed
//!   `failed` result.
//! - **brownout** ([`BrownoutConfig`]): a queue-depth EWMA drives a
//!   load-shedding ladder — degrade search jobs to HEFT, shed the heavy
//!   lane, then open a circuit breaker that fast-rejects with a
//!   `retry_after` hint and closes again through half-open probes.
//! - **chaos** ([`crate::chaos`]): seeded fault injection on all of the
//!   above, for the recovery and supervision test harnesses.
//!
//! With none of these configured the service behaves bit-identically to
//! the pre-durability implementation.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rds_ga::{
    evaluate_all_tri, nsga2_tri, Chromosome, GaEngine, GaParams, GaRunStats, Objective,
    TriChromosome,
};
use rds_heft::{cpop_schedule, heft_schedule, lookahead_heft_schedule, sheft_schedule, HeftResult};
use rds_platform::EnergyModel;
use rds_sched::slack;
use rds_sched::{
    completion_probability, plan_isolated, plan_with_deferred_optional, rank_order,
    realized_completion, Instance, OnlineScratch, Schedule,
};
use rds_stats::rng::SeedStream;

use crate::cache::{CacheKey, CachedSchedule, ScheduleCache};
use crate::chaos::ServiceChaos;
use crate::job::{
    Algo, Degradation, JobError, JobOutput, JobResult, JobSpec, Lane, ObjectiveMode, OnlineOutcome,
};
use crate::journal::{Journal, JournalError};
use crate::metrics::{MetricsInner, ServiceMetrics};
use crate::queue::{LaneQueue, PushError};
use crate::supervisor::{InFlight, SupervisorConfig, WorkerTable};

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Per-lane queue capacity; a full lane rejects (backpressure).
    pub queue_capacity: usize,
    /// Schedule-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Start with draining paused: jobs accumulate in the queue until
    /// [`Service::resume`]. Deterministic backpressure tests and the
    /// `rds serve --hold` mode rely on this.
    pub start_paused: bool,
    /// Minimum completion probability for an online arrival to be
    /// admitted (in `[0, 1]`). A job below the floor gets a second probe
    /// with its optional tasks shed before it is rejected.
    pub online_floor: f64,
    /// Monte-Carlo samples per admission probe (≥ 1).
    pub online_samples: usize,
    /// Durable job journal path; `None` keeps jobs in memory only.
    pub journal: Option<PathBuf>,
    /// Auto-compact the journal after this many terminal records
    /// (`None` disables): bounds WAL growth under sustained traffic.
    pub journal_compact_every: Option<u64>,
    /// Supervision policy (attempt cap, backoff, timeout).
    pub supervisor: SupervisorConfig,
    /// Overload brownout ladder; `None` leaves only queue-full
    /// backpressure.
    pub brownout: Option<BrownoutConfig>,
    /// Per-client token-bucket rate limiting; `None` admits every
    /// client at any rate.
    pub rate_limit: Option<RateLimitConfig>,
    /// Chaos injection; `None` (or an unarmed config) is the quiet path.
    pub chaos: Option<ServiceChaos>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            start_paused: false,
            online_floor: 0.5,
            online_samples: 64,
            journal: None,
            journal_compact_every: None,
            supervisor: SupervisorConfig::default(),
            brownout: None,
            rate_limit: None,
            chaos: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the per-lane queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the cache capacity.
    #[must_use]
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Starts the service paused.
    #[must_use]
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Sets the online admission floor.
    #[must_use]
    pub fn online_floor(mut self, floor: f64) -> Self {
        self.online_floor = floor;
        self
    }

    /// Sets the Monte-Carlo sample count per admission probe.
    #[must_use]
    pub fn online_samples(mut self, samples: usize) -> Self {
        self.online_samples = samples;
        self
    }

    /// Enables the durable job journal at `path`.
    #[must_use]
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Auto-compacts the journal after every `n` terminal records.
    #[must_use]
    pub fn journal_compact_every(mut self, n: u64) -> Self {
        self.journal_compact_every = Some(n);
        self
    }

    /// Sets the supervision policy.
    #[must_use]
    pub fn supervisor(mut self, cfg: SupervisorConfig) -> Self {
        self.supervisor = cfg;
        self
    }

    /// Enables the overload brownout ladder.
    #[must_use]
    pub fn brownout(mut self, cfg: BrownoutConfig) -> Self {
        self.brownout = Some(cfg);
        self
    }

    /// Enables per-client token-bucket rate limiting.
    #[must_use]
    pub fn rate_limit(mut self, cfg: RateLimitConfig) -> Self {
        self.rate_limit = Some(cfg);
        self
    }

    /// Enables chaos injection.
    #[must_use]
    pub fn chaos(mut self, chaos: ServiceChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Configuration validation shared by [`Service::try_start`].
    ///
    /// # Errors
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("service needs at least one worker".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.online_floor) {
            return Err("online admission floor must be in [0, 1]".into());
        }
        if self.online_samples == 0 {
            return Err("online admission needs at least one sample".into());
        }
        if self.supervisor.max_attempts == 0 {
            return Err("supervisor attempt cap must be at least 1".into());
        }
        if let Some(b) = self.brownout {
            if !(b.alpha > 0.0 && b.alpha <= 1.0) {
                return Err("brownout EWMA alpha must be in (0, 1]".into());
            }
            if !(b.degrade_depth <= b.shed_depth && b.shed_depth <= b.open_depth) {
                return Err("brownout thresholds must satisfy degrade <= shed <= open".into());
            }
        }
        if let Some(r) = self.rate_limit {
            if !(r.rate_per_sec.is_finite() && r.rate_per_sec > 0.0) {
                return Err("rate limit refill rate must be positive and finite".into());
            }
            if !(r.burst.is_finite() && r.burst >= 1.0) {
                return Err("rate limit burst must be at least 1".into());
            }
        }
        Ok(())
    }
}

/// Per-client token-bucket rate limit: each client key (the job's
/// `client` field, `"anonymous"` when absent) owns a bucket holding up
/// to `burst` tokens, refilled continuously at `rate_per_sec`. Every
/// submission spends one token; an empty bucket rejects with
/// [`JobError::RateLimited`] and a `retry_after` hint sized to the
/// refill deficit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Sustained admissions per second per client (> 0).
    pub rate_per_sec: f64,
    /// Bucket capacity: the burst a quiet client may spend at once
    /// (≥ 1).
    pub burst: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 50.0,
            burst: 100.0,
        }
    }
}

impl RateLimitConfig {
    /// Sets the sustained per-client rate.
    #[must_use]
    pub fn rate_per_sec(mut self, r: f64) -> Self {
        self.rate_per_sec = r;
        self
    }

    /// Sets the bucket capacity.
    #[must_use]
    pub fn burst(mut self, b: f64) -> Self {
        self.burst = b;
        self
    }

    /// Refills `bucket` for the time elapsed since its last visit and
    /// spends one token. `Err(retry_after_ms)` when the bucket is
    /// empty: the hint covers the refill deficit and is never 0, so
    /// clients always back off at least a tick.
    pub(crate) fn take(&self, bucket: &mut TokenBucket, now: Instant) -> Result<(), u64> {
        let elapsed = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate_per_sec).min(self.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - bucket.tokens;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Err(((deficit / self.rate_per_sec * 1000.0).ceil() as u64).max(1))
    }
}

/// One client's token bucket (lazily refilled on access).
pub(crate) struct TokenBucket {
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// A bucket starting at full burst capacity.
    pub(crate) fn full(cfg: &RateLimitConfig, now: Instant) -> Self {
        Self {
            tokens: cfg.burst,
            refilled: now,
        }
    }
}

/// Overload brownout: thresholds on the queue-depth EWMA and circuit-
/// breaker timing. The ladder is `normal` → `degrade` (GA/SA forced to
/// HEFT) → `shed` (heavy lane rejected) → `open` (everything
/// fast-rejected with `retry_after`), closing again through half-open
/// probes once the cooldown elapses and the backlog drains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// EWMA depth at which search jobs are degraded to HEFT.
    pub degrade_depth: f64,
    /// EWMA depth at which heavy-lane jobs are shed.
    pub shed_depth: f64,
    /// EWMA depth at which the circuit breaker opens.
    pub open_depth: f64,
    /// EWMA smoothing factor in `(0, 1]` (1 = raw depth).
    pub alpha: f64,
    /// Minimum time the breaker stays open before probing half-open.
    pub cooldown: Duration,
    /// Jobs admitted (degraded) per half-open episode before the breaker
    /// re-opens if the backlog has not drained.
    pub half_open_probes: u32,
    /// `retry_after` hint attached to fast rejections, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            degrade_depth: 8.0,
            shed_depth: 16.0,
            open_depth: 32.0,
            alpha: 0.3,
            cooldown: Duration::from_millis(250),
            half_open_probes: 2,
            retry_after_ms: 250,
        }
    }
}

impl BrownoutConfig {
    /// Sets the three ladder thresholds at once.
    #[must_use]
    pub fn depths(mut self, degrade: f64, shed: f64, open: f64) -> Self {
        self.degrade_depth = degrade;
        self.shed_depth = shed;
        self.open_depth = open;
        self
    }

    /// Sets the EWMA smoothing factor.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the breaker cooldown.
    #[must_use]
    pub fn cooldown(mut self, d: Duration) -> Self {
        self.cooldown = d;
        self
    }

    /// Sets the half-open probe budget.
    #[must_use]
    pub fn half_open_probes(mut self, n: u32) -> Self {
        self.half_open_probes = n;
        self
    }

    /// Sets the `retry_after` hint.
    #[must_use]
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = ms;
        self
    }
}

/// Where the brownout ladder currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutLevel {
    /// Full service.
    Normal,
    /// Search jobs (GA/SA) forced down to HEFT.
    Degrade,
    /// Heavy-lane jobs rejected; everything else degraded.
    Shed,
    /// Circuit open: all jobs fast-rejected with `retry_after`.
    Open,
    /// Probing recovery: a bounded number of degraded admissions.
    HalfOpen,
}

impl BrownoutLevel {
    /// Metrics tag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::Degrade => "degrade",
            BrownoutLevel::Shed => "shed",
            BrownoutLevel::Open => "open",
            BrownoutLevel::HalfOpen => "half-open",
        }
    }
}

struct BrownoutState {
    ewma: f64,
    level: BrownoutLevel,
    opened_at: Option<Instant>,
    probes_left: u32,
}

/// Why the service could not start or recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Invalid configuration (see [`ServiceConfig::validate`]).
    Config(String),
    /// The durable journal failed to open or scan.
    Journal(JournalError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "invalid service config: {e}"),
            ServiceError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// What [`Service::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Accepted-but-unfinished jobs replayed into the queue.
    pub replayed: usize,
    /// Pending journal entries skipped because a job with that id is
    /// already live in this service (repeated recovery is idempotent).
    pub skipped_live: usize,
    /// Jobs the journal shows as completed (not replayed).
    pub already_completed: usize,
    /// Pending entries that could not be replayed (failed re-validation
    /// or re-admission); each got a terminal record and a typed result.
    pub failed: usize,
    /// Whether the journal had a torn tail or garbage suffix.
    pub torn: bool,
}

/// The admission gate's verdict on an online arrival, carried with the
/// job through the queue so the worker judges the same plan shape the
/// gate admitted.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AdmittedOnline {
    /// Completion probability estimated at admission.
    probability: f64,
    /// Whether the gate had to shed optional tasks to admit the job.
    shed: bool,
}

/// One queued unit of work, including its retry and brownout state.
#[derive(Clone)]
pub(crate) struct QueuedJob {
    pub(crate) spec: JobSpec,
    pub(crate) enqueued: Instant,
    pub(crate) online: Option<AdmittedOnline>,
    /// Attempts already spent (0 on first execution).
    pub(crate) attempt: u32,
    /// Admitted under brownout: search schedulers are forced to HEFT.
    pub(crate) brownout: bool,
}

struct Shared {
    queue: LaneQueue<QueuedJob>,
    cache: ScheduleCache,
    metrics: MetricsInner,
    config: ServiceConfig,
    journal: Option<Journal>,
    brownout: Option<Mutex<BrownoutState>>,
    /// client key → token bucket; unused (and empty) without a
    /// [`RateLimitConfig`].
    rate: Mutex<HashMap<String, TokenBucket>>,
    /// Ids accepted and not yet terminal — [`Service::recover`] skips
    /// these so repeated recovery never double-enqueues a job.
    live: Mutex<HashSet<String>>,
    table: WorkerTable,
}

impl Shared {
    fn lock_live(&self) -> std::sync::MutexGuard<'_, HashSet<String>> {
        self.live.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The per-client token-bucket gate, consulted once per admission
    /// (before any journaling, so a rate-limited job leaves no trace).
    /// Jobs without a `client` field share the `"anonymous"` bucket.
    fn rate_gate(&self, client: Option<&str>) -> Result<(), JobError> {
        let Some(cfg) = self.config.rate_limit else {
            return Ok(());
        };
        let key = client.unwrap_or("anonymous");
        let mut buckets = self.rate.lock().unwrap_or_else(PoisonError::into_inner);
        let now = Instant::now();
        let bucket = buckets
            .entry(key.to_owned())
            .or_insert_with(|| TokenBucket::full(&cfg, now));
        match cfg.take(bucket, now) {
            Ok(()) => Ok(()),
            Err(retry_after_ms) => {
                self.metrics.rate_limited();
                Err(JobError::RateLimited {
                    client: key.to_owned(),
                    retry_after_ms,
                })
            }
        }
    }

    fn brownout_level_name(&self) -> &'static str {
        match &self.brownout {
            None => "off",
            Some(state) => state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .level
                .name(),
        }
    }

    /// The brownout ladder, consulted once per admission. Returns
    /// whether the job must be degraded (search → HEFT), or the typed
    /// overload rejection.
    fn brownout_gate(&self, lane: Lane) -> Result<bool, JobError> {
        let Some(cfg) = self.config.brownout else {
            return Ok(false);
        };
        let Some(state) = &self.brownout else {
            return Ok(false);
        };
        let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
        let (e, o, h) = self.queue.depths();
        st.ewma = cfg.alpha * ((e + o + h) as f64) + (1.0 - cfg.alpha) * st.ewma;
        let overloaded = |reason: &str| JobError::Overloaded {
            reason: reason.to_owned(),
            retry_after_ms: cfg.retry_after_ms,
        };
        if st.level == BrownoutLevel::Open {
            let cooled = st.opened_at.is_none_or(|t| t.elapsed() >= cfg.cooldown);
            if cooled {
                st.level = BrownoutLevel::HalfOpen;
                st.probes_left = cfg.half_open_probes;
            } else {
                self.metrics.breaker_fast_rejected();
                return Err(overloaded("circuit open: service overloaded"));
            }
        }
        if st.level == BrownoutLevel::HalfOpen {
            if st.ewma < cfg.degrade_depth {
                // Backlog drained during the open window: close fully and
                // fall through to the ladder below.
                st.level = BrownoutLevel::Normal;
            } else if st.probes_left > 0 {
                st.probes_left -= 1;
                return Ok(true);
            } else {
                st.level = BrownoutLevel::Open;
                st.opened_at = Some(Instant::now());
                self.metrics.breaker_opened();
                self.metrics.breaker_fast_rejected();
                return Err(overloaded("circuit re-opened: overload persists"));
            }
        }
        let next = if st.ewma >= cfg.open_depth {
            BrownoutLevel::Open
        } else if st.ewma >= cfg.shed_depth {
            BrownoutLevel::Shed
        } else if st.ewma >= cfg.degrade_depth {
            BrownoutLevel::Degrade
        } else {
            BrownoutLevel::Normal
        };
        if next == BrownoutLevel::Open {
            st.opened_at = Some(Instant::now());
            self.metrics.breaker_opened();
        }
        st.level = next;
        match next {
            BrownoutLevel::Open => {
                self.metrics.breaker_fast_rejected();
                Err(overloaded("circuit opened: queue backlog over limit"))
            }
            BrownoutLevel::Shed if lane == Lane::Heavy => {
                self.metrics.brownout_shed();
                Err(overloaded("brownout: shedding heavy-lane work"))
            }
            BrownoutLevel::Shed | BrownoutLevel::Degrade => Ok(true),
            BrownoutLevel::Normal | BrownoutLevel::HalfOpen => Ok(false),
        }
    }
}

/// A running scheduling service. Dropping it without
/// [`Service::shutdown`] closes the queue and detaches the workers.
pub struct Service {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
    results_tx: mpsc::Sender<JobResult>,
}

impl Service {
    /// Starts the worker pool. Returns the service handle and the stream
    /// of job results (in completion order).
    ///
    /// # Panics
    /// Panics on an invalid configuration or an unusable journal path;
    /// use [`Service::try_start`] for typed errors.
    #[must_use]
    pub fn start(config: ServiceConfig) -> (Self, mpsc::Receiver<JobResult>) {
        match Self::try_start(config) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Starts the worker pool, returning typed errors instead of
    /// panicking.
    ///
    /// # Errors
    /// [`ServiceError::Config`] on invalid configuration,
    /// [`ServiceError::Journal`] when the journal cannot be opened.
    pub fn try_start(
        config: ServiceConfig,
    ) -> Result<(Self, mpsc::Receiver<JobResult>), ServiceError> {
        config.validate().map_err(ServiceError::Config)?;
        let journal = match &config.journal {
            Some(path) => {
                let mut j = Journal::open(path, config.chaos).map_err(ServiceError::Journal)?;
                j.set_compact_every(config.journal_compact_every);
                Some(j)
            }
            None => None,
        };
        let brownout = config.brownout.map(|_| {
            Mutex::new(BrownoutState {
                ewma: 0.0,
                level: BrownoutLevel::Normal,
                opened_at: None,
                probes_left: 0,
            })
        });
        let workers = config.workers;
        let start_paused = config.start_paused;
        let shared = Arc::new(Shared {
            queue: LaneQueue::new(config.queue_capacity),
            cache: ScheduleCache::new(config.cache_capacity),
            metrics: MetricsInner::default(),
            config,
            journal,
            brownout,
            rate: Mutex::new(HashMap::new()),
            live: Mutex::new(HashSet::new()),
            table: WorkerTable::new(workers),
        });
        if start_paused {
            shared.queue.pause();
        }
        let (results_tx, results_rx) = mpsc::channel();
        for slot in 0..workers {
            let handle = spawn_worker(Arc::clone(&shared), results_tx.clone(), slot);
            shared.table.set_handle(slot, handle);
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            let tx = results_tx.clone();
            Some(std::thread::spawn(move || supervise(&shared, &tx)))
        };
        Ok((
            Self {
                shared,
                supervisor,
                results_tx,
            },
            results_rx,
        ))
    }

    /// Admission control: validate, then enqueue without blocking.
    ///
    /// # Errors
    /// [`JobError::Rejected`] when validation fails or the lane is full,
    /// [`JobError::Overloaded`] when the brownout breaker fast-rejects;
    /// the job never entered the queue and no result will be emitted.
    pub fn submit(&self, spec: JobSpec) -> Result<(), JobError> {
        self.admit(spec, false, true)
    }

    /// Like [`Service::submit`] but waits for queue space instead of
    /// rejecting (backpressure slows the producer; used by `run_batch`).
    ///
    /// # Errors
    /// [`JobError::Rejected`] when validation fails or the queue closed.
    pub fn submit_blocking(&self, spec: JobSpec) -> Result<(), JobError> {
        self.admit(spec, true, true)
    }

    fn admit(&self, spec: JobSpec, blocking: bool, journal_accept: bool) -> Result<(), JobError> {
        if let Err(reason) = spec.validate() {
            self.shared.metrics.rejected_invalid();
            return Err(JobError::Rejected(reason));
        }
        self.shared.rate_gate(spec.client.as_deref())?;
        let lane = spec.lane();
        let force_heft = self.shared.brownout_gate(lane)?;
        let online = match self.probe_online(&spec) {
            Ok(verdict) => verdict,
            Err(e) => {
                self.shared.metrics.online_rejected();
                return Err(e);
            }
        };
        // Durability point: the job is journaled (and fsync'd) before the
        // submitter can observe acceptance. A journal that cannot record
        // the job must reject it — acceptance promises crash-safety.
        if journal_accept {
            if let Some(j) = &self.shared.journal {
                if let Err(e) = j.accepted(&spec.to_envelope()) {
                    return Err(JobError::Rejected(format!("journal unavailable: {e}")));
                }
            }
        }
        let shed_tasks = match online {
            Some(AdmittedOnline { shed: true, .. }) => spec.instance.graph.optional_tasks().len(),
            _ => 0,
        };
        let is_online = online.is_some();
        let id = spec.id.clone();
        self.shared.lock_live().insert(id.clone());
        let job = QueuedJob {
            spec,
            enqueued: Instant::now(),
            online,
            attempt: 0,
            brownout: force_heft,
        };
        let pushed = if blocking {
            self.shared.queue.push_blocking(lane, job)
        } else {
            self.shared.queue.try_push(lane, job)
        };
        match pushed {
            Ok(()) => {
                self.shared.metrics.submitted();
                if is_online {
                    self.shared.metrics.online_admitted();
                    if shed_tasks > 0 {
                        self.shared.metrics.online_shed(shed_tasks as u64);
                    }
                }
                Ok(())
            }
            Err((e, _job)) => {
                // The journal promised this job; close it out so recovery
                // never replays a job the client saw rejected.
                if let Some(j) = &self.shared.journal {
                    j.rejected(&id, &e.to_string());
                }
                self.shared.lock_live().remove(&id);
                if matches!(e, PushError::Full { .. }) {
                    self.shared.metrics.rejected_full();
                }
                Err(JobError::Rejected(e.to_string()))
            }
        }
    }

    /// The completion-probability gate for online arrivals. Returns
    /// `Ok(None)` for classic jobs, `Ok(Some(_))` when admitted (possibly
    /// only after shedding optional tasks), and `Err` when even the
    /// required subgraph is unlikely to make the deadline.
    fn probe_online(&self, spec: &JobSpec) -> Result<Option<AdmittedOnline>, JobError> {
        let Some(params) = spec.online else {
            return Ok(None);
        };
        let inst = spec.instance.as_ref();
        let cfg = &self.shared.config;
        let rel_deadline = params.relative_deadline();
        let order = rank_order(inst);
        let floors = vec![0.0; inst.proc_count()];
        let mut scratch = OnlineScratch::new();
        let estimate_seed = online_estimate_seed(spec.seed);
        let full = plan_isolated(inst, false)
            .map_err(|e| JobError::Rejected(format!("online probe failed to plan: {e}")))?;
        let p_full = completion_probability(
            inst,
            &order,
            &full,
            &floors,
            rel_deadline,
            cfg.online_samples,
            estimate_seed,
            &mut scratch,
        );
        if p_full >= cfg.online_floor {
            return Ok(Some(AdmittedOnline {
                probability: p_full,
                shed: false,
            }));
        }
        // Second chance: shed the optional tasks and probe the required
        // subgraph alone — the drop ladder applied at the door.
        if !inst.graph.optional_tasks().is_empty() {
            let required = plan_isolated(inst, true)
                .map_err(|e| JobError::Rejected(format!("online probe failed to plan: {e}")))?;
            let p_required = completion_probability(
                inst,
                &order,
                &required,
                &floors,
                rel_deadline,
                cfg.online_samples,
                estimate_seed,
                &mut scratch,
            );
            if p_required >= cfg.online_floor {
                return Ok(Some(AdmittedOnline {
                    probability: p_required,
                    shed: true,
                }));
            }
        }
        Err(JobError::Rejected(format!(
            "completion probability {:.3} below admission floor {:.2}",
            p_full, cfg.online_floor
        )))
    }

    /// Replays accepted-but-unfinished jobs from the configured journal
    /// into the queue. Safe to call repeatedly: jobs already live in this
    /// service (queued, running, or re-accepted) are skipped, and jobs
    /// with a terminal record are never replayed.
    ///
    /// # Errors
    /// [`ServiceError::Config`] when no journal is configured,
    /// [`ServiceError::Journal`] when the journal cannot be read.
    pub fn recover(&self) -> Result<RecoveryReport, ServiceError> {
        let Some(path) = self.shared.config.journal.clone() else {
            return Err(ServiceError::Config(
                "recovery requires a configured journal".into(),
            ));
        };
        let scan = Journal::recover_file(&path).map_err(ServiceError::Journal)?;
        let mut report = RecoveryReport {
            replayed: 0,
            skipped_live: 0,
            already_completed: scan.completed.len(),
            failed: 0,
            torn: scan.torn,
        };
        for env in scan.pending {
            let id = env.id.clone();
            if self.shared.lock_live().contains(&id) {
                report.skipped_live += 1;
                continue;
            }
            let (lane, admitted) = match JobSpec::from_envelope(env) {
                Ok(spec) => {
                    let lane = spec.lane();
                    // Replays use blocking pushes (recovery must not drop
                    // work to backpressure) and skip the `accepted`
                    // record — the journal already holds it.
                    (lane, self.admit(spec, true, false))
                }
                Err(reason) => (Lane::Express, Err(JobError::Rejected(reason))),
            };
            match admitted {
                Ok(()) => {
                    self.shared.metrics.recovered();
                    report.replayed += 1;
                }
                Err(e) => {
                    report.failed += 1;
                    if let Some(j) = &self.shared.journal {
                        j.rejected(&id, &e.to_string());
                    }
                    let _ = self.results_tx.send(JobResult {
                        id,
                        outcome: Err(e),
                        lane,
                    });
                }
            }
        }
        Ok(report)
    }

    /// A clone of the result sender, so an embedding frontend (the `rds
    /// serve` loop) can inject synthesized results — e.g. rejection
    /// envelopes — into the same ordered stream the workers feed.
    #[must_use]
    pub fn result_sender(&self) -> mpsc::Sender<JobResult> {
        self.results_tx.clone()
    }

    /// Inserts a warm schedule directly into the cache — the cache-
    /// replication receive path: a peer shard gossips its fresh entries
    /// here so failover keeps the hit rate. The cache's own boundary
    /// still applies (degraded results are never accepted, capacity
    /// evicts as usual).
    pub fn cache_insert(&self, key: CacheKey, entry: CachedSchedule) {
        self.shared.cache.insert(key, entry, Degradation::None);
    }

    /// The current brownout rung name (`off` when no brownout ladder is
    /// configured) — served to network health probes.
    #[must_use]
    pub fn brownout_level_name(&self) -> &'static str {
        self.shared.brownout_level_name()
    }

    /// Pauses draining (jobs accumulate).
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Resumes draining.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Current metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        snapshot_metrics(&self.shared)
    }

    /// Closes the queue (drains pending work, rejects new work), joins
    /// every worker, and returns the final metrics snapshot. The result
    /// receiver disconnects once the last sender (including this
    /// service's own) is gone. Dead workers are respawned until the
    /// queue drains, so pending work is never stranded by a crash during
    /// shutdown.
    pub fn shutdown(self) -> ServiceMetrics {
        self.shared.queue.resume();
        self.shared.queue.close();
        while !self.shared.table.all_clean() {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shared.table.request_stop();
        if let Some(h) = self.supervisor {
            let _ = h.join();
        }
        self.shared.table.join_all();
        snapshot_metrics(&self.shared)
    }

    /// Deterministic in-process harness: starts a service, feeds `jobs`
    /// with blocking backpressure, waits for every accepted job, shuts
    /// down, and returns `(results, metrics)` with results sorted by job
    /// id. With unique ids and seeded jobs the result set is identical
    /// for any worker count — the concurrency layer adds throughput, not
    /// nondeterminism.
    #[must_use]
    pub fn run_batch(
        config: ServiceConfig,
        jobs: Vec<JobSpec>,
    ) -> (Vec<JobResult>, ServiceMetrics) {
        let mut config = config;
        config.start_paused = false; // paused workers would deadlock the feeder
        let (service, results_rx) = Self::start(config);
        let mut results: Vec<JobResult> = Vec::with_capacity(jobs.len());
        let mut accepted = 0usize;
        for spec in jobs {
            let id = spec.id.clone();
            let lane = spec.lane();
            match service.submit_blocking(spec) {
                Ok(()) => accepted += 1,
                Err(e) => results.push(JobResult {
                    id,
                    outcome: Err(e),
                    lane,
                }),
            }
        }
        for _ in 0..accepted {
            match results_rx.recv() {
                Ok(r) => results.push(r),
                Err(_) => break,
            }
        }
        let metrics = service.shutdown();
        results.sort_by(|a, b| a.id.cmp(&b.id));
        (results, metrics)
    }
}

fn snapshot_metrics(shared: &Shared) -> ServiceMetrics {
    let journal_stats = shared.journal.as_ref().map_or((0, 0, 0), Journal::stats);
    shared.metrics.snapshot(
        shared.queue.depths(),
        shared.cache.stats(),
        journal_stats,
        shared.brownout_level_name(),
    )
}

/// Seed of the admission estimator's CRN substreams for a job seed.
fn online_estimate_seed(seed: u64) -> u64 {
    SeedStream::new(seed).branch("online-estimate").nth_seed(0)
}

/// Seed of the truth durations that decide a job's deadline verdict —
/// disjoint from the estimator's stream, so the gate never "peeks".
fn online_truth_seed(seed: u64) -> u64 {
    SeedStream::new(seed).branch("online-truth").nth_seed(0)
}

fn spawn_worker(shared: Arc<Shared>, tx: mpsc::Sender<JobResult>, slot: usize) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Some(job) = shared.queue.pop() {
            run_one(&shared, &tx, slot, job);
        }
        shared.table.mark_clean(slot);
    })
}

/// The supervisor: raises cancel flags on overdue attempts, rescues jobs
/// from dead worker threads, and respawns the workers — until shutdown
/// asks it to stop.
fn supervise(shared: &Arc<Shared>, tx: &mpsc::Sender<JobResult>) {
    let poll = shared
        .config
        .supervisor
        .poll_interval
        .max(Duration::from_millis(1));
    while !shared.table.stopped() {
        for slot in 0..shared.table.workers() {
            if let Some(timeout) = shared.config.supervisor.job_timeout {
                if shared.table.cancel_overdue(slot, timeout) {
                    shared.metrics.job_timeout();
                }
            }
            if let Some(handle) = shared.table.take_dead(slot) {
                let _ = handle.join();
                shared.metrics.worker_panic();
                shared.metrics.worker_restart();
                if let Some(inflight) = shared.table.take(slot) {
                    rescue(shared, tx, inflight.job);
                }
                shared
                    .table
                    .set_handle(slot, spawn_worker(Arc::clone(shared), tx.clone(), slot));
            }
        }
        std::thread::sleep(poll);
    }
}

/// Puts a job rescued from a dead worker back through the retry ladder.
fn rescue(shared: &Arc<Shared>, tx: &mpsc::Sender<JobResult>, mut job: QueuedJob) {
    let max_attempts = shared.config.supervisor.max_attempts.max(1);
    job.attempt += 1;
    if job.attempt >= max_attempts {
        finish_job(
            shared,
            tx,
            &job,
            Err(JobError::Failed(format!(
                "gave up after {max_attempts} attempts (worker died)"
            ))),
        );
        return;
    }
    shared.metrics.retry();
    let lane = job.spec.lane();
    match shared.queue.try_push(lane, job) {
        Ok(()) => shared.metrics.job_abandoned(),
        Err((e, job)) => finish_job(
            shared,
            tx,
            &job,
            Err(JobError::Failed(format!(
                "worker died and re-enqueue failed: {e}"
            ))),
        ),
    }
}

/// How one attempt at a job ended.
enum AttemptEnd {
    /// The job reached a terminal outcome (success or typed error).
    Done(Result<JobOutput, JobError>),
    /// The attempt was cancelled by the wall-clock timeout while wedged.
    TimedOut,
}

/// Runs one job to a terminal result: attempts behind panic isolation,
/// retries with backoff on panic or timeout, a typed failure once the
/// attempt cap is spent.
fn run_one(shared: &Arc<Shared>, tx: &mpsc::Sender<JobResult>, slot: usize, mut job: QueuedJob) {
    shared.metrics.job_started();
    let max_attempts = shared.config.supervisor.max_attempts.max(1);
    loop {
        if let Some(j) = &shared.journal {
            j.started(&job.spec.id, job.attempt);
        }
        let cancel = Arc::new(AtomicBool::new(false));
        shared.table.register(
            slot,
            InFlight {
                job: job.clone(),
                started: Instant::now(),
                cancel: Arc::clone(&cancel),
            },
        );
        // The chaos worker panic fires *outside* the panic isolation
        // below: it kills the thread, exercising the supervisor's
        // dead-worker rescue path rather than in-place retry.
        if let Some(c) = &shared.config.chaos {
            if c.panics(&job.spec.id, job.attempt) {
                panic!("chaos: injected worker panic");
            }
        }
        let end = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            attempt_job(shared, &job, &cancel)
        }));
        let _ = shared.table.take(slot);
        match end {
            Ok(AttemptEnd::Done(outcome)) => {
                finish_job(shared, tx, &job, outcome);
                return;
            }
            Ok(AttemptEnd::TimedOut) => {}
            Err(_) => shared.metrics.worker_panic(),
        }
        job.attempt += 1;
        if job.attempt >= max_attempts {
            finish_job(
                shared,
                tx,
                &job,
                Err(JobError::Failed(format!(
                    "gave up after {max_attempts} attempts (panic or timeout)"
                ))),
            );
            return;
        }
        shared.metrics.retry();
        std::thread::sleep(shared.config.supervisor.backoff(&job.spec.id, job.attempt));
    }
}

/// One attempt: optional injected stall (cooperatively cancellable),
/// then the execute path.
fn attempt_job(shared: &Shared, job: &QueuedJob, cancel: &AtomicBool) -> AttemptEnd {
    if let Some(c) = &shared.config.chaos {
        if c.stalls(&job.spec.id, job.attempt) && c.sleep_stall(cancel) {
            return AttemptEnd::TimedOut;
        }
    }
    if cancel.load(Ordering::Relaxed) {
        return AttemptEnd::TimedOut;
    }
    AttemptEnd::Done(execute(
        &job.spec,
        &shared.cache,
        job.online,
        job.brownout,
        cancel,
    ))
}

/// Terminal bookkeeping for one job: metrics, journal record, live-set
/// removal, and the result send — shared by workers and the supervisor.
fn finish_job(
    shared: &Shared,
    tx: &mpsc::Sender<JobResult>,
    job: &QueuedJob,
    outcome: Result<JobOutput, JobError>,
) {
    let lane = job.spec.lane();
    let id = job.spec.id.clone();
    let latency = job.enqueued.elapsed().as_secs_f64();
    let failed = outcome.is_err();
    let fallback = matches!(
        &outcome,
        Ok(out) if matches!(
            out.degraded,
            Degradation::BestSoFar | Degradation::HeftFallback | Degradation::DroppedOptional
        )
    );
    if let Ok(out) = &outcome {
        if out.degraded == Degradation::Brownout {
            shared.metrics.brownout_degraded();
        }
        if let Some(gs) = &out.ga_stats {
            shared.metrics.ga_run(gs);
        }
        if let Some(oo) = &out.online {
            // Goodput credits the deadline-counted work: the whole
            // graph, minus the optional tasks when they were shed.
            let total = job.spec.instance.task_count();
            let weight = if out.degraded == Degradation::DroppedOptional {
                (total - job.spec.instance.graph.optional_tasks().len()) as f64
            } else {
                total as f64
            };
            shared.metrics.online_verdict(oo.hit, weight);
        }
    }
    shared.metrics.job_finished(lane, latency, failed, fallback);
    if let Some(j) = &shared.journal {
        match &outcome {
            Ok(_) => j.completed(&id),
            Err(JobError::Rejected(r)) => j.rejected(&id, r),
            Err(JobError::Failed(r)) => j.failed(&id, r),
            Err(JobError::Overloaded { reason, .. }) => j.failed(&id, reason),
            // Unreachable in practice: rate limiting happens at admission,
            // before the job is journaled — close the record anyway.
            Err(JobError::RateLimited { client, .. }) => {
                j.rejected(&id, &format!("rate limited: {client}"));
            }
        }
    }
    shared.lock_live().remove(&id);
    // A disconnected receiver means the frontend is gone; keep draining
    // so shutdown still completes.
    let _ = tx.send(JobResult { id, outcome, lane });
}

/// Runs one job: cache lookup → scheduler (with cooperative deadline
/// cancellation for the GA) → assessment → cache fill. Online jobs take
/// their own path (see [`execute_online`]).
fn execute(
    spec: &JobSpec,
    cache: &ScheduleCache,
    online: Option<AdmittedOnline>,
    brownout: bool,
    cancel: &AtomicBool,
) -> Result<JobOutput, JobError> {
    if let Some(adm) = online {
        return execute_online(spec, adm);
    }
    // Tri-objective jobs bypass the cache both ways: the cache key does
    // not capture the objective mode or the reliability threshold, so a
    // hit could hand a tri client an ε-constraint result (or vice
    // versa).
    if let ObjectiveMode::Tri { rel_min } = spec.objective {
        return execute_tri(spec, rel_min, brownout, cancel);
    }
    let key = CacheKey::for_job(spec);
    if let Some(hit) = cache.lookup(&key) {
        return Ok(JobOutput {
            schedule: hit.schedule,
            makespan: hit.makespan,
            avg_slack: hit.avg_slack,
            cache_hit: true,
            degraded: Degradation::None,
            ga_stats: None,
            online: None,
            energy: None,
            reliability: None,
        });
    }
    let deadline = spec.deadline.map(|budget| Instant::now() + budget);
    let (schedule, degraded, ga_stats) = produce_schedule(spec, deadline, brownout, cancel)?;
    let (makespan, avg_slack) = assess(&spec.instance, &schedule)?;
    // The cache enforces its own boundary: degraded results are refused.
    cache.insert(
        key,
        CachedSchedule {
            schedule: schedule.clone(),
            makespan,
            avg_slack,
        },
        degraded,
    );
    Ok(JobOutput {
        schedule,
        makespan,
        avg_slack,
        cache_hit: false,
        degraded,
        ga_stats,
        online: None,
        energy: None,
        reliability: None,
    })
}

/// Runs a tri-objective (makespan × robustness × energy) job: NSGA-II
/// over assignment, order, and per-task DVFS level under the job's
/// reliability floor, reporting the minimum-energy member of the
/// feasible front. Under brownout the search degrades to full-speed
/// HEFT, scored through the same energy model so the client still sees
/// energy and reliability. The returned wire schedule carries the
/// assignment and order; the reported makespan/slack/energy are the
/// DVFS-scaled figures of the chosen front member.
fn execute_tri(
    spec: &JobSpec,
    rel_min: f64,
    brownout: bool,
    cancel: &AtomicBool,
) -> Result<JobOutput, JobError> {
    let inst = spec.instance.as_ref();
    let model = EnergyModel::default_for(inst.proc_count());
    if brownout || cancel.load(Ordering::Relaxed) {
        let heft = heft_schedule(inst);
        let chrom =
            TriChromosome::full_speed(Chromosome::from_schedule(&inst.graph, &heft.schedule), &model);
        let eval = evaluate_all_tri(inst, &model, std::slice::from_ref(&chrom))[0];
        let degraded = if brownout {
            Degradation::Brownout
        } else {
            Degradation::HeftFallback
        };
        return Ok(JobOutput {
            schedule: heft.schedule,
            makespan: eval.makespan,
            avg_slack: eval.avg_slack,
            cache_hit: false,
            degraded,
            ga_stats: None,
            online: None,
            energy: Some(eval.energy),
            reliability: Some(eval.reliability),
        });
    }
    let mut params = GaParams::paper().seed(spec.seed);
    if let Some(g) = spec.generations {
        params = params.max_generations(g).stall_generations((g / 5).max(10));
    }
    params
        .validate()
        .map_err(|e| JobError::Failed(format!("invalid GA parameters: {e}")))?;
    let started = Instant::now();
    let result = nsga2_tri(inst, &model, rel_min, params);
    if !result.feasible {
        return Err(JobError::Failed(format!(
            "no schedule meets reliability threshold {rel_min}"
        )));
    }
    let best = result
        .front
        .iter()
        .min_by(|a, b| a.eval.energy.total_cmp(&b.eval.energy))
        .ok_or_else(|| JobError::Failed("tri-objective search produced an empty front".into()))?;
    let schedule = best.chromosome.chrom.decode(inst.proc_count());
    #[allow(clippy::cast_possible_truncation)]
    let stats = GaRunStats {
        kernel_evals: result.evaluations as u64,
        memo_hits: 0,
        memo_collisions: 0,
        eval_nanos: started.elapsed().as_nanos() as u64,
        ..GaRunStats::default()
    };
    Ok(JobOutput {
        schedule,
        makespan: best.eval.makespan,
        avg_slack: best.eval.avg_slack,
        cache_hit: false,
        degraded: Degradation::None,
        ga_stats: Some(stats),
        online: None,
        energy: Some(best.eval.energy),
        reliability: Some(best.eval.reliability),
    })
}

/// Runs an admitted online job: plan with the shared replanner (the
/// shape the admission gate probed — the `algo` knob is ignored on the
/// online lane), realize it once under the job's truth durations, and
/// judge the deadline on the counted tasks. Online results bypass the
/// cache entirely: the key does not capture arrival/deadline/backlog, so
/// a cached entry could leak one stream state into another.
fn execute_online(spec: &JobSpec, adm: AdmittedOnline) -> Result<JobOutput, JobError> {
    let inst = spec.instance.as_ref();
    let params = spec
        .online
        .ok_or_else(|| JobError::Failed("online job lost its parameters".into()))?;
    let order = rank_order(inst);
    let floors = vec![0.0; inst.proc_count()];
    let mut scratch = OnlineScratch::new();
    let (schedule, verdict_plan, degraded) = if adm.shed {
        let deferred = plan_with_deferred_optional(inst).map_err(JobError::Failed)?;
        let required = plan_isolated(inst, true).map_err(|e| JobError::Failed(e.to_string()))?;
        let degraded = if deferred.deferred.is_empty() {
            Degradation::None
        } else {
            Degradation::DroppedOptional
        };
        (deferred.schedule, required, degraded)
    } else {
        let plan = plan_isolated(inst, false).map_err(|e| JobError::Failed(e.to_string()))?;
        let schedule = Schedule::from_proc_lists(inst.task_count(), plan.proc_tasks.clone())
            .map_err(|e| JobError::Failed(e.to_string()))?;
        (schedule, plan, Degradation::None)
    };
    let realized = realized_completion(
        inst,
        &order,
        &verdict_plan,
        &floors,
        online_truth_seed(spec.seed),
        &mut scratch,
    );
    let hit = realized <= params.relative_deadline();
    let (makespan, avg_slack) = assess(inst, &schedule)?;
    Ok(JobOutput {
        schedule,
        makespan,
        avg_slack,
        cache_hit: false,
        degraded,
        ga_stats: None,
        online: Some(OnlineOutcome {
            probability: adm.probability,
            realized_makespan: realized,
            hit,
        }),
        energy: None,
        reliability: None,
    })
}

/// Expected-time makespan and average slack of a schedule, as a value
/// (a malformed schedule must not panic the daemon).
fn assess(inst: &Instance, schedule: &Schedule) -> Result<(f64, f64), JobError> {
    let analysis = slack::analyze_expected(inst, schedule)
        .map_err(|e| JobError::Failed(format!("produced schedule is invalid: {e}")))?;
    Ok((analysis.makespan, analysis.average_slack))
}

fn produce_schedule(
    spec: &JobSpec,
    deadline: Option<Instant>,
    brownout: bool,
    cancel: &AtomicBool,
) -> Result<(Schedule, Degradation, Option<GaRunStats>), JobError> {
    let inst = spec.instance.as_ref();
    let express = |r: HeftResult| Ok((r.schedule, Degradation::None, None));
    // Brownout: the service is overloaded, so search jobs get the cheap
    // list schedule instead — tagged, and never cached.
    if brownout && matches!(spec.algo, Algo::Ga | Algo::Sa) {
        let heft = heft_schedule(inst);
        return Ok((heft.schedule, Degradation::Brownout, None));
    }
    match spec.algo {
        Algo::Heft => express(heft_schedule(inst)),
        Algo::Cpop => express(cpop_schedule(inst)),
        Algo::LookaheadHeft => express(lookahead_heft_schedule(inst)),
        Algo::Sheft { k } => express(sheft_schedule(inst, k)),
        Algo::Ga => run_ga(spec, deadline, cancel),
        Algo::Sa => {
            let heft = heft_schedule(inst);
            let objective = Objective::EpsilonConstraint {
                epsilon: spec.epsilon,
                reference_makespan: heft.makespan,
            };
            let params = rds_anneal::SaParams::default().seed(spec.seed);
            let sa = rds_anneal::try_anneal(inst, params, objective)
                .map_err(|e| JobError::Failed(format!("invalid SA parameters: {e}")))?;
            Ok((sa.best.decode(inst.proc_count()), Degradation::None, None))
        }
    }
}

/// The ε-constraint GA with a cooperative deadline watch. On
/// cancellation (deadline budget or the supervisor's wall-clock
/// timeout) the escalation ladder mirrors the sentinel executor's: best
/// feasible solution so far, then plain HEFT. `run_with_watch` with a
/// never-firing watch is bit-identical to `run`, so the quiet path is
/// unaffected.
fn run_ga(
    spec: &JobSpec,
    deadline: Option<Instant>,
    cancel: &AtomicBool,
) -> Result<(Schedule, Degradation, Option<GaRunStats>), JobError> {
    let inst = spec.instance.as_ref();
    let heft = heft_schedule(inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: spec.epsilon,
        reference_makespan: heft.makespan,
    };
    let mut params = GaParams::paper().seed(spec.seed);
    if let Some(g) = spec.generations {
        params = params.max_generations(g).stall_generations((g / 5).max(10));
    }
    let engine = GaEngine::try_new(inst, params, objective)
        .map_err(|e| JobError::Failed(format!("invalid GA parameters: {e}")))?;
    let ga = engine.run_with_watch(&mut |_| {
        cancel.load(Ordering::Relaxed) || deadline.is_some_and(|d| Instant::now() >= d)
    });
    let stats = Some(ga.stats);
    if ga.interrupted {
        if ga.best_feasible {
            Ok((ga.best_schedule(inst), Degradation::BestSoFar, stats))
        } else {
            Ok((heft.schedule, Degradation::HeftFallback, stats))
        }
    } else {
        Ok((ga.best_schedule(inst), Degradation::None, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::InstanceSpec;

    fn inst(seed: u64) -> Arc<Instance> {
        Arc::new(
            InstanceSpec::new(15, 3)
                .seed(seed)
                .build()
                .expect("test instance"),
        )
    }

    #[test]
    fn express_job_runs_and_matches_direct_heft() {
        let i = inst(1);
        let jobs = vec![JobSpec::new("a", Algo::Heft, Arc::clone(&i))];
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), jobs);
        assert_eq!(results.len(), 1);
        let out = results[0].outcome.as_ref().expect("heft succeeds");
        assert_eq!(out.schedule, heft_schedule(&i).schedule);
        assert!(!out.cache_hit);
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.cache_misses, 1);
        // The quiet path runs nothing from the robustness layers.
        assert_eq!(metrics.worker_panics, 0);
        assert_eq!(metrics.retries, 0);
        assert_eq!(metrics.journal_records, 0);
        assert_eq!(metrics.brownout_level, "off");
    }

    #[test]
    fn repeated_instance_hits_cache_and_agrees() {
        let i = inst(2);
        let jobs = vec![
            JobSpec::new("a", Algo::Heft, Arc::clone(&i)),
            JobSpec::new("b", Algo::Heft, Arc::clone(&i)),
        ];
        // One worker: the second lookup happens strictly after the first
        // insert, so exactly one miss and one hit.
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), jobs);
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cache_misses, 1);
        assert!((metrics.cache_hit_rate - 0.5).abs() < 1e-12);
        let a = results[0].outcome.as_ref().unwrap();
        let b = results[1].outcome.as_ref().unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert!(a.cache_hit != b.cache_hit, "exactly one served from cache");
    }

    #[test]
    fn invalid_job_is_rejected_synchronously() {
        let (service, _rx) = Service::start(ServiceConfig::default().workers(1));
        let bad = JobSpec::new("", Algo::Heft, inst(3));
        let err = service.submit(bad).unwrap_err();
        assert!(matches!(err, JobError::Rejected(_)));
        let snap = service.metrics();
        assert_eq!(snap.rejected_invalid, 1);
        assert_eq!(snap.submitted, 0);
        service.shutdown();
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        fn start_err(config: ServiceConfig) -> ServiceError {
            match Service::try_start(config) {
                Ok(_) => panic!("config must be refused"),
                Err(e) => e,
            }
        }
        let err = start_err(ServiceConfig::default().workers(0));
        assert!(matches!(err, ServiceError::Config(_)));
        let err = start_err(ServiceConfig::default().online_floor(1.5));
        assert!(err.to_string().contains("admission floor"));
        // A journal path that cannot be created is typed, not a panic.
        let err = start_err(ServiceConfig::default().journal("/nonexistent-dir/rds.wal"));
        assert!(matches!(err, ServiceError::Journal(_)));
    }

    #[test]
    fn deadline_zero_degrades_deterministically() {
        let i = inst(4);
        let job = JobSpec::new("g", Algo::Ga, Arc::clone(&i))
            .seed(7)
            .deadline(Duration::ZERO);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        let out = results[0].outcome.as_ref().expect("degraded, not failed");
        assert_ne!(out.degraded, Degradation::None);
        assert!(out.schedule.validate_against(&i.graph).is_ok());
        assert_eq!(metrics.deadline_fallbacks, 1);
        // Degraded results must not poison the cache.
        let job2 = JobSpec::new("g2", Algo::Ga, Arc::clone(&i)).seed(7);
        let (_, m2) = Service::run_batch(ServiceConfig::default().workers(1), vec![job2]);
        assert_eq!(m2.cache_hits, 0);
    }

    #[test]
    fn express_lane_overtakes_queued_heavy_work() {
        // Paused service, heavy jobs queued first, then an express job:
        // on resume with one worker the express job must finish first.
        let i = inst(5);
        let (service, rx) = Service::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(8)
                .paused(),
        );
        for n in 0..2 {
            service
                .submit(
                    JobSpec::new(format!("heavy-{n}"), Algo::Ga, Arc::clone(&i))
                        .seed(n)
                        .generations(5),
                )
                .unwrap();
        }
        service
            .submit(JobSpec::new("fast", Algo::Heft, Arc::clone(&i)))
            .unwrap();
        service.resume();
        let first = rx.recv().unwrap();
        assert_eq!(first.id, "fast");
        service.shutdown();
    }

    #[test]
    fn online_job_admitted_and_judged() {
        let i = inst(6);
        // A deadline far beyond the expected makespan: the gate admits
        // and the truth realization cannot miss.
        let plan = plan_isolated(&i, false).unwrap();
        let job = JobSpec::new("o", Algo::Heft, Arc::clone(&i))
            .seed(3)
            .online(0.0, plan.est_makespan * 10.0);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        let out = results[0].outcome.as_ref().expect("admitted online job");
        let oo = out.online.expect("online outcome attached");
        assert!(oo.probability >= 0.5);
        assert!(oo.hit);
        assert!(oo.realized_makespan > 0.0);
        assert_eq!(out.degraded, Degradation::None);
        assert!(out.schedule.validate_against(&i.graph).is_ok());
        assert_eq!(metrics.online_admitted, 1);
        assert_eq!(metrics.online_rejected, 0);
        assert_eq!(metrics.online_hits, 1);
        assert!((metrics.deadline_hit_rate - 1.0).abs() < 1e-12);
        assert!(metrics.goodput > 0.0);
        // Online results bypass the cache entirely.
        assert_eq!(metrics.cache_hits + metrics.cache_misses, 0);
    }

    #[test]
    fn hopeless_online_job_is_rejected_at_the_door() {
        let i = inst(7);
        let job = JobSpec::new("o", Algo::Heft, Arc::clone(&i)).online(5.0, 5.0 + 1e-9);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        assert!(matches!(
            &results[0].outcome,
            Err(JobError::Rejected(r)) if r.contains("admission floor")
        ));
        assert_eq!(metrics.online_rejected, 1);
        assert_eq!(metrics.online_admitted, 0);
        assert_eq!(metrics.submitted, 0);
        assert_eq!(metrics.deadline_hit_rate, 0.0);
    }

    #[test]
    fn admission_gate_sheds_optional_tasks_before_rejecting() {
        // Mark the rear three-quarters of the graph optional — from the
        // exits inward, as `mark_optional`'s successor-closure invariant
        // requires — leaving a small required subgraph that finishes far
        // earlier than the whole job.
        let mut raw = InstanceSpec::new(20, 3).seed(8).build().unwrap();
        let topo = rds_graph::topo::topological_order(&raw.graph).expect("instance DAG is acyclic");
        for &t in topo[5..].iter().rev() {
            assert!(raw.graph.mark_optional(t), "rear task must be markable");
        }
        let i = Arc::new(raw);
        // Find a deadline the full plan is unlikely to make but the
        // required subgraph is likely to — probing exactly as the gate
        // does, with the same estimator seed.
        let order = rank_order(&i);
        let full = plan_isolated(&i, false).unwrap();
        let required = plan_isolated(&i, true).unwrap();
        let est_seed = online_estimate_seed(11);
        let floors = vec![0.0; i.proc_count()];
        let samples = ServiceConfig::default().online_samples;
        let mut scratch = OnlineScratch::new();
        let lo = required.est_makespan * 0.5;
        let hi = full.est_makespan * 1.5;
        let mut chosen = None;
        for k in 0..400 {
            let rel = lo + (hi - lo) * (k as f64) / 400.0;
            let pf = completion_probability(
                &i,
                &order,
                &full,
                &floors,
                rel,
                samples,
                est_seed,
                &mut scratch,
            );
            if pf >= 0.5 {
                continue;
            }
            let pr = completion_probability(
                &i,
                &order,
                &required,
                &floors,
                rel,
                samples,
                est_seed,
                &mut scratch,
            );
            if pr >= 0.5 {
                chosen = Some(rel);
                break;
            }
        }
        let rel = chosen.expect("a deadline band where only the shed plan passes");
        let job = JobSpec::new("shed", Algo::Heft, Arc::clone(&i))
            .seed(11)
            .online(0.0, rel);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        let out = results[0]
            .outcome
            .as_ref()
            .expect("admitted after shedding");
        assert_eq!(out.degraded, Degradation::DroppedOptional);
        let oo = out.online.expect("online outcome attached");
        assert!(oo.probability >= 0.5);
        assert_eq!(metrics.online_admitted, 1);
        assert!(metrics.online_shed_tasks > 0);
        assert_eq!(metrics.deadline_fallbacks, 1);
        // Shedding defers tasks, it does not remove them: the combined
        // schedule still covers the whole graph.
        assert!(out.schedule.validate_against(&i.graph).is_ok());
    }

    #[test]
    fn brownout_ladder_degrades_sheds_and_opens() {
        // A paused single-worker service with raw-depth tracking
        // (alpha 1) walks the full ladder deterministically as the
        // queue fills.
        let i = inst(9);
        let brown = BrownoutConfig::default()
            .depths(2.0, 4.0, 6.0)
            .alpha(1.0)
            .cooldown(Duration::from_secs(3600));
        let (service, rx) = Service::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(32)
                .brownout(brown)
                .paused(),
        );
        // Depth 0, 1: normal admissions.
        for n in 0..2 {
            service
                .submit(JobSpec::new(format!("n{n}"), Algo::Heft, Arc::clone(&i)))
                .unwrap();
        }
        // Depth 2, 3: degrade — GA jobs are admitted but will come back
        // as brownout-HEFT. Identical specs (same cache key): if the
        // degraded result were cached, the second would surface as a hit.
        for n in 0..2 {
            service
                .submit(
                    JobSpec::new(format!("d{n}"), Algo::Ga, Arc::clone(&i))
                        .seed(7)
                        .generations(5),
                )
                .unwrap();
        }
        assert_eq!(service.metrics().brownout_level, "degrade");
        // Depth 4: heavy-lane work is shed with a retry hint.
        let err = service
            .submit(JobSpec::new("shed-me", Algo::Ga, Arc::clone(&i)))
            .unwrap_err();
        assert!(
            matches!(err, JobError::Overloaded { retry_after_ms, .. } if retry_after_ms == 250)
        );
        // Express jobs still pass while shedding (depth 4, 5).
        for n in 0..2 {
            service
                .submit(JobSpec::new(format!("e{n}"), Algo::Heft, Arc::clone(&i)))
                .unwrap();
        }
        // Depth 6: the breaker opens; even express is fast-rejected.
        let err = service
            .submit(JobSpec::new("fast", Algo::Heft, Arc::clone(&i)))
            .unwrap_err();
        assert!(matches!(err, JobError::Overloaded { .. }));
        let snap = service.metrics();
        assert_eq!(snap.brownout_level, "open");
        assert_eq!(snap.brownout_shed, 1);
        assert_eq!(snap.breaker_opens, 1);
        assert!(snap.breaker_fast_rejections >= 1);
        // Drain; the degraded GA jobs surface as brownout-HEFT, tagged
        // and uncached.
        service.resume();
        let mut brownout_outputs = 0;
        for _ in 0..6 {
            let r = rx.recv().unwrap();
            if let Ok(out) = &r.outcome {
                if out.degraded == Degradation::Brownout {
                    brownout_outputs += 1;
                    assert!(!out.cache_hit, "brownout results must not be cached");
                    assert_eq!(out.schedule, heft_schedule(&i).schedule);
                }
            }
        }
        let metrics = service.shutdown();
        // Both identical GA jobs came back freshly degraded — the first
        // one's brownout result was refused by the cache, so the second
        // could not hit it. The three repeated HEFT jobs are the only
        // cache hits.
        assert_eq!(brownout_outputs, 2);
        assert_eq!(metrics.brownout_degraded, 2);
        assert_eq!(metrics.cache_hits, 3);
        assert_eq!(metrics.cache_misses, 3);
    }

    #[test]
    fn breaker_closes_through_half_open_probes() {
        let i = inst(10);
        let brown = BrownoutConfig::default()
            .depths(2.0, 4.0, 6.0)
            .alpha(1.0)
            .cooldown(Duration::ZERO)
            .half_open_probes(2);
        let (service, rx) = Service::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(32)
                .brownout(brown)
                .paused(),
        );
        for n in 0..7 {
            let _ = service.submit(JobSpec::new(format!("j{n}"), Algo::Heft, Arc::clone(&i)));
        }
        assert_eq!(service.metrics().brownout_level, "open");
        // Drain everything, then submit again: cooldown is zero, so the
        // breaker goes half-open, sees an empty queue, and closes.
        service.resume();
        let accepted = service.metrics().submitted;
        for _ in 0..accepted {
            let _ = rx.recv();
        }
        service
            .submit(JobSpec::new("after", Algo::Heft, Arc::clone(&i)))
            .unwrap();
        let level = service.metrics().brownout_level;
        assert!(
            level == "normal" || level == "half-open",
            "breaker should be closing, got {level}"
        );
        service.shutdown();
    }

    #[test]
    fn recover_requires_a_journal() {
        let (service, _rx) = Service::start(ServiceConfig::default().workers(1));
        let err = service.recover().unwrap_err();
        assert!(matches!(err, ServiceError::Config(_)));
        service.shutdown();
    }

    #[test]
    fn rate_limiter_spends_burst_and_isolates_clients() {
        let i = inst(11);
        // A glacial refill: the burst is all a client gets within the test.
        let limit = RateLimitConfig {
            rate_per_sec: 1e-6,
            burst: 2.0,
        };
        let (service, rx) = Service::start(
            ServiceConfig::default()
                .workers(1)
                .rate_limit(limit)
                .paused(),
        );
        let job = |id: &str, client: &str| {
            JobSpec::new(id, Algo::Heft, Arc::clone(&i)).client(client)
        };
        service.submit(job("a1", "tenant-a")).unwrap();
        service.submit(job("a2", "tenant-a")).unwrap();
        let err = service.submit(job("a3", "tenant-a")).unwrap_err();
        match err {
            JobError::RateLimited {
                client,
                retry_after_ms,
            } => {
                assert_eq!(client, "tenant-a");
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // Another client has its own bucket, as does the anonymous pool.
        service.submit(job("b1", "tenant-b")).unwrap();
        service
            .submit(JobSpec::new("anon1", Algo::Heft, Arc::clone(&i)))
            .unwrap();
        service
            .submit(JobSpec::new("anon2", Algo::Heft, Arc::clone(&i)))
            .unwrap();
        let err = service
            .submit(JobSpec::new("anon3", Algo::Heft, Arc::clone(&i)))
            .unwrap_err();
        assert!(matches!(err, JobError::RateLimited { client, .. } if client == "anonymous"));
        service.resume();
        for _ in 0..5 {
            let _ = rx.recv();
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.rate_limited, 2);
        assert_eq!(metrics.submitted, 5);
        // A rate rejection is its own bucket, not a validation failure.
        assert_eq!(metrics.rejected_invalid, 0);
    }

    #[test]
    fn tri_job_reports_energy_and_reliability_and_bypasses_cache() {
        let i = inst(12);
        let spec = |id: &str| {
            JobSpec::new(id, Algo::Ga, Arc::clone(&i))
                .tri(0.5)
                .generations(8)
                .seed(3)
        };
        let jobs = vec![spec("t1"), spec("t2")];
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), jobs);
        assert_eq!(results.len(), 2);
        let a = results[0].outcome.as_ref().expect("tri job succeeds");
        let b = results[1].outcome.as_ref().expect("tri job succeeds");
        let energy = a.energy.expect("tri output carries energy");
        let reliability = a.reliability.expect("tri output carries reliability");
        assert!(energy > 0.0);
        assert!(reliability > 0.0 && reliability <= 1.0);
        // The chosen front member satisfies the job's reliability floor.
        assert!(reliability >= 0.5);
        assert!(a.makespan > 0.0);
        let stats = a.ga_stats.as_ref().expect("tri search reports stats");
        assert!(stats.kernel_evals > 0);
        // Identical seeded jobs agree bitwise (the search is deterministic)
        // without ever touching the cache: its key cannot tell objective
        // modes apart.
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.reliability, b.reliability);
        assert!(!a.cache_hit && !b.cache_hit);
        assert_eq!(metrics.cache_hits, 0);
        assert_eq!(metrics.cache_misses, 0);
        assert_eq!(metrics.completed, 2);
    }

    #[test]
    fn epsilon_jobs_do_not_carry_energy_fields() {
        let i = inst(13);
        let (results, _) = Service::run_batch(
            ServiceConfig::default().workers(1),
            vec![JobSpec::new("e", Algo::Heft, Arc::clone(&i))],
        );
        let out = results[0].outcome.as_ref().expect("heft succeeds");
        assert_eq!(out.energy, None);
        assert_eq!(out.reliability, None);
    }

    #[test]
    fn rate_limit_config_is_validated() {
        let bad_rate = ServiceConfig::default().rate_limit(RateLimitConfig {
            rate_per_sec: 0.0,
            burst: 2.0,
        });
        assert!(bad_rate.validate().unwrap_err().contains("refill rate"));
        let bad_burst = ServiceConfig::default().rate_limit(RateLimitConfig {
            rate_per_sec: 1.0,
            burst: 0.5,
        });
        assert!(bad_burst.validate().unwrap_err().contains("burst"));
    }
}

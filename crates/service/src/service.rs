//! The service proper: worker pool, admission control, execution,
//! deadline degradation.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use rds_ga::{GaEngine, GaParams, GaRunStats, Objective};
use rds_heft::{cpop_schedule, heft_schedule, lookahead_heft_schedule, sheft_schedule, HeftResult};
use rds_sched::slack;
use rds_sched::{Instance, Schedule};

use crate::cache::{CacheKey, CachedSchedule, ScheduleCache};
use crate::job::{Algo, Degradation, JobError, JobOutput, JobResult, JobSpec};
use crate::metrics::{MetricsInner, ServiceMetrics};
use crate::queue::{PushError, TwoLaneQueue};

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Per-lane queue capacity; a full lane rejects (backpressure).
    pub queue_capacity: usize,
    /// Schedule-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Start with draining paused: jobs accumulate in the queue until
    /// [`Service::resume`]. Deterministic backpressure tests and the
    /// `rds serve --hold` mode rely on this.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            start_paused: false,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the per-lane queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the cache capacity.
    #[must_use]
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Starts the service paused.
    #[must_use]
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
}

struct QueuedJob {
    spec: JobSpec,
    enqueued: Instant,
}

struct Shared {
    queue: TwoLaneQueue<QueuedJob>,
    cache: ScheduleCache,
    metrics: MetricsInner,
}

/// A running scheduling service. Dropping it without
/// [`Service::shutdown`] closes the queue and detaches the workers.
pub struct Service {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    results_tx: mpsc::Sender<JobResult>,
}

impl Service {
    /// Starts the worker pool. Returns the service handle and the stream
    /// of job results (in completion order).
    ///
    /// # Panics
    /// Panics when `config.workers` is zero or `config.queue_capacity` is
    /// zero — a service that can neither run nor queue work is a
    /// configuration bug, caught before any job is accepted.
    #[must_use]
    pub fn start(config: ServiceConfig) -> (Self, mpsc::Receiver<JobResult>) {
        assert!(config.workers > 0, "service needs at least one worker");
        let shared = Arc::new(Shared {
            queue: TwoLaneQueue::new(config.queue_capacity),
            cache: ScheduleCache::new(config.cache_capacity),
            metrics: MetricsInner::default(),
        });
        if config.start_paused {
            shared.queue.pause();
        }
        let (results_tx, results_rx) = mpsc::channel();
        let handles = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let tx = results_tx.clone();
                std::thread::spawn(move || worker_loop(&shared, &tx))
            })
            .collect();
        (
            Self {
                shared,
                handles,
                results_tx,
            },
            results_rx,
        )
    }

    /// Admission control: validate, then enqueue without blocking.
    ///
    /// # Errors
    /// [`JobError::Rejected`] when validation fails or the lane is full;
    /// the job never entered the queue and no result will be emitted.
    pub fn submit(&self, spec: JobSpec) -> Result<(), JobError> {
        self.admit(spec, false)
    }

    /// Like [`Service::submit`] but waits for queue space instead of
    /// rejecting (backpressure slows the producer; used by `run_batch`).
    ///
    /// # Errors
    /// [`JobError::Rejected`] when validation fails or the queue closed.
    pub fn submit_blocking(&self, spec: JobSpec) -> Result<(), JobError> {
        self.admit(spec, true)
    }

    fn admit(&self, spec: JobSpec, blocking: bool) -> Result<(), JobError> {
        if let Err(reason) = spec.validate() {
            self.shared.metrics.rejected_invalid();
            return Err(JobError::Rejected(reason));
        }
        let lane = spec.lane();
        let job = QueuedJob {
            spec,
            enqueued: Instant::now(),
        };
        let pushed = if blocking {
            self.shared.queue.push_blocking(lane, job)
        } else {
            self.shared.queue.try_push(lane, job)
        };
        match pushed {
            Ok(()) => {
                self.shared.metrics.submitted();
                Ok(())
            }
            Err(e @ PushError::Full { .. }) => {
                self.shared.metrics.rejected_full();
                Err(JobError::Rejected(e.to_string()))
            }
            Err(e @ PushError::Closed) => Err(JobError::Rejected(e.to_string())),
        }
    }

    /// A clone of the result sender, so an embedding frontend (the `rds
    /// serve` loop) can inject synthesized results — e.g. rejection
    /// envelopes — into the same ordered stream the workers feed.
    #[must_use]
    pub fn result_sender(&self) -> mpsc::Sender<JobResult> {
        self.results_tx.clone()
    }

    /// Pauses draining (jobs accumulate).
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Resumes draining.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Current metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared
            .metrics
            .snapshot(self.shared.queue.depths(), self.shared.cache.stats())
    }

    /// Closes the queue (drains pending work, rejects new work), joins
    /// every worker, and returns the final metrics snapshot. The result
    /// receiver disconnects once the last sender (including this
    /// service's own) is gone.
    pub fn shutdown(self) -> ServiceMetrics {
        self.shared.queue.resume();
        self.shared.queue.close();
        for h in self.handles {
            let _ = h.join();
        }
        self.shared
            .metrics
            .snapshot(self.shared.queue.depths(), self.shared.cache.stats())
    }

    /// Deterministic in-process harness: starts a service, feeds `jobs`
    /// with blocking backpressure, waits for every accepted job, shuts
    /// down, and returns `(results, metrics)` with results sorted by job
    /// id. With unique ids and seeded jobs the result set is identical
    /// for any worker count — the concurrency layer adds throughput, not
    /// nondeterminism.
    #[must_use]
    pub fn run_batch(
        config: ServiceConfig,
        jobs: Vec<JobSpec>,
    ) -> (Vec<JobResult>, ServiceMetrics) {
        let mut config = config;
        config.start_paused = false; // paused workers would deadlock the feeder
        let (service, results_rx) = Self::start(config);
        let mut results: Vec<JobResult> = Vec::with_capacity(jobs.len());
        let mut accepted = 0usize;
        for spec in jobs {
            let id = spec.id.clone();
            let lane = spec.lane();
            match service.submit_blocking(spec) {
                Ok(()) => accepted += 1,
                Err(e) => results.push(JobResult {
                    id,
                    outcome: Err(e),
                    lane,
                }),
            }
        }
        for _ in 0..accepted {
            match results_rx.recv() {
                Ok(r) => results.push(r),
                Err(_) => break,
            }
        }
        let metrics = service.shutdown();
        results.sort_by(|a, b| a.id.cmp(&b.id));
        (results, metrics)
    }
}

fn worker_loop(shared: &Shared, results_tx: &mpsc::Sender<JobResult>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.job_started();
        let lane = job.spec.lane();
        let id = job.spec.id.clone();
        let outcome = execute(&job.spec, &shared.cache);
        let latency = job.enqueued.elapsed().as_secs_f64();
        let failed = outcome.is_err();
        let fallback = matches!(
            &outcome,
            Ok(out) if out.degraded != Degradation::None
        );
        if let Ok(out) = &outcome {
            if let Some(gs) = &out.ga_stats {
                shared.metrics.ga_run(gs);
            }
        }
        shared.metrics.job_finished(lane, latency, failed, fallback);
        // A disconnected receiver means the frontend is gone; keep
        // draining so shutdown still completes.
        let _ = results_tx.send(JobResult { id, outcome, lane });
    }
}

/// Runs one job: cache lookup → scheduler (with cooperative deadline
/// cancellation for the GA) → assessment → cache fill.
fn execute(spec: &JobSpec, cache: &ScheduleCache) -> Result<JobOutput, JobError> {
    let key = CacheKey::for_job(spec);
    if let Some(hit) = cache.lookup(&key) {
        return Ok(JobOutput {
            schedule: hit.schedule,
            makespan: hit.makespan,
            avg_slack: hit.avg_slack,
            cache_hit: true,
            degraded: Degradation::None,
            ga_stats: None,
        });
    }
    let deadline = spec.deadline.map(|budget| Instant::now() + budget);
    let (schedule, degraded, ga_stats) = produce_schedule(spec, deadline)?;
    let (makespan, avg_slack) = assess(&spec.instance, &schedule)?;
    if degraded == Degradation::None {
        cache.insert(
            key,
            CachedSchedule {
                schedule: schedule.clone(),
                makespan,
                avg_slack,
            },
        );
    }
    Ok(JobOutput {
        schedule,
        makespan,
        avg_slack,
        cache_hit: false,
        degraded,
        ga_stats,
    })
}

/// Expected-time makespan and average slack of a schedule, as a value
/// (a malformed schedule must not panic the daemon).
fn assess(inst: &Instance, schedule: &Schedule) -> Result<(f64, f64), JobError> {
    let analysis = slack::analyze_expected(inst, schedule)
        .map_err(|e| JobError::Failed(format!("produced schedule is invalid: {e}")))?;
    Ok((analysis.makespan, analysis.average_slack))
}

fn produce_schedule(
    spec: &JobSpec,
    deadline: Option<Instant>,
) -> Result<(Schedule, Degradation, Option<GaRunStats>), JobError> {
    let inst = spec.instance.as_ref();
    let express = |r: HeftResult| Ok((r.schedule, Degradation::None, None));
    match spec.algo {
        Algo::Heft => express(heft_schedule(inst)),
        Algo::Cpop => express(cpop_schedule(inst)),
        Algo::LookaheadHeft => express(lookahead_heft_schedule(inst)),
        Algo::Sheft { k } => express(sheft_schedule(inst, k)),
        Algo::Ga => run_ga(spec, deadline),
        Algo::Sa => {
            let heft = heft_schedule(inst);
            let objective = Objective::EpsilonConstraint {
                epsilon: spec.epsilon,
                reference_makespan: heft.makespan,
            };
            let params = rds_anneal::SaParams::default().seed(spec.seed);
            let sa = rds_anneal::try_anneal(inst, params, objective)
                .map_err(|e| JobError::Failed(format!("invalid SA parameters: {e}")))?;
            Ok((sa.best.decode(inst.proc_count()), Degradation::None, None))
        }
    }
}

/// The ε-constraint GA with a cooperative deadline watch. On
/// cancellation the escalation ladder mirrors the sentinel executor's:
/// best feasible solution so far, then plain HEFT.
fn run_ga(
    spec: &JobSpec,
    deadline: Option<Instant>,
) -> Result<(Schedule, Degradation, Option<GaRunStats>), JobError> {
    let inst = spec.instance.as_ref();
    let heft = heft_schedule(inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: spec.epsilon,
        reference_makespan: heft.makespan,
    };
    let mut params = GaParams::paper().seed(spec.seed);
    if let Some(g) = spec.generations {
        params = params.max_generations(g).stall_generations((g / 5).max(10));
    }
    let engine = GaEngine::try_new(inst, params, objective)
        .map_err(|e| JobError::Failed(format!("invalid GA parameters: {e}")))?;
    let ga = match deadline {
        Some(deadline) => engine.run_with_watch(&mut |_| Instant::now() >= deadline),
        None => engine.run(),
    };
    let stats = Some(ga.stats);
    if ga.interrupted {
        if ga.best_feasible {
            Ok((ga.best_schedule(inst), Degradation::BestSoFar, stats))
        } else {
            Ok((heft.schedule, Degradation::HeftFallback, stats))
        }
    } else {
        Ok((ga.best_schedule(inst), Degradation::None, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::InstanceSpec;
    use std::time::Duration;

    fn inst(seed: u64) -> Arc<Instance> {
        Arc::new(
            InstanceSpec::new(15, 3)
                .seed(seed)
                .build()
                .expect("test instance"),
        )
    }

    #[test]
    fn express_job_runs_and_matches_direct_heft() {
        let i = inst(1);
        let jobs = vec![JobSpec::new("a", Algo::Heft, Arc::clone(&i))];
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), jobs);
        assert_eq!(results.len(), 1);
        let out = results[0].outcome.as_ref().expect("heft succeeds");
        assert_eq!(out.schedule, heft_schedule(&i).schedule);
        assert!(!out.cache_hit);
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.cache_misses, 1);
    }

    #[test]
    fn repeated_instance_hits_cache_and_agrees() {
        let i = inst(2);
        let jobs = vec![
            JobSpec::new("a", Algo::Heft, Arc::clone(&i)),
            JobSpec::new("b", Algo::Heft, Arc::clone(&i)),
        ];
        // One worker: the second lookup happens strictly after the first
        // insert, so exactly one miss and one hit.
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), jobs);
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cache_misses, 1);
        assert!((metrics.cache_hit_rate - 0.5).abs() < 1e-12);
        let a = results[0].outcome.as_ref().unwrap();
        let b = results[1].outcome.as_ref().unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert!(a.cache_hit != b.cache_hit, "exactly one served from cache");
    }

    #[test]
    fn invalid_job_is_rejected_synchronously() {
        let (service, _rx) = Service::start(ServiceConfig::default().workers(1));
        let bad = JobSpec::new("", Algo::Heft, inst(3));
        let err = service.submit(bad).unwrap_err();
        assert!(matches!(err, JobError::Rejected(_)));
        let snap = service.metrics();
        assert_eq!(snap.rejected_invalid, 1);
        assert_eq!(snap.submitted, 0);
        service.shutdown();
    }

    #[test]
    fn deadline_zero_degrades_deterministically() {
        let i = inst(4);
        let job = JobSpec::new("g", Algo::Ga, Arc::clone(&i))
            .seed(7)
            .deadline(Duration::ZERO);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        let out = results[0].outcome.as_ref().expect("degraded, not failed");
        assert_ne!(out.degraded, Degradation::None);
        assert!(out.schedule.validate_against(&i.graph).is_ok());
        assert_eq!(metrics.deadline_fallbacks, 1);
        // Degraded results must not poison the cache.
        let job2 = JobSpec::new("g2", Algo::Ga, Arc::clone(&i)).seed(7);
        let (_, m2) = Service::run_batch(ServiceConfig::default().workers(1), vec![job2]);
        assert_eq!(m2.cache_hits, 0);
    }

    #[test]
    fn express_lane_overtakes_queued_heavy_work() {
        // Paused service, heavy jobs queued first, then an express job:
        // on resume with one worker the express job must finish first.
        let i = inst(5);
        let (service, rx) = Service::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(8)
                .paused(),
        );
        for n in 0..2 {
            service
                .submit(
                    JobSpec::new(format!("heavy-{n}"), Algo::Ga, Arc::clone(&i))
                        .seed(n)
                        .generations(5),
                )
                .unwrap();
        }
        service
            .submit(JobSpec::new("fast", Algo::Heft, Arc::clone(&i)))
            .unwrap();
        service.resume();
        let first = rx.recv().unwrap();
        assert_eq!(first.id, "fast");
        service.shutdown();
    }
}

//! The service proper: worker pool, admission control, execution,
//! deadline degradation.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use rds_ga::{GaEngine, GaParams, GaRunStats, Objective};
use rds_heft::{cpop_schedule, heft_schedule, lookahead_heft_schedule, sheft_schedule, HeftResult};
use rds_sched::slack;
use rds_sched::{
    completion_probability, plan_isolated, plan_with_deferred_optional, rank_order,
    realized_completion, Instance, OnlineScratch, Schedule,
};
use rds_stats::rng::SeedStream;

use crate::cache::{CacheKey, CachedSchedule, ScheduleCache};
use crate::job::{Algo, Degradation, JobError, JobOutput, JobResult, JobSpec, OnlineOutcome};
use crate::metrics::{MetricsInner, ServiceMetrics};
use crate::queue::{LaneQueue, PushError};

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Per-lane queue capacity; a full lane rejects (backpressure).
    pub queue_capacity: usize,
    /// Schedule-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Start with draining paused: jobs accumulate in the queue until
    /// [`Service::resume`]. Deterministic backpressure tests and the
    /// `rds serve --hold` mode rely on this.
    pub start_paused: bool,
    /// Minimum completion probability for an online arrival to be
    /// admitted (in `[0, 1]`). A job below the floor gets a second probe
    /// with its optional tasks shed before it is rejected.
    pub online_floor: f64,
    /// Monte-Carlo samples per admission probe (≥ 1).
    pub online_samples: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            start_paused: false,
            online_floor: 0.5,
            online_samples: 64,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the per-lane queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the cache capacity.
    #[must_use]
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Starts the service paused.
    #[must_use]
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Sets the online admission floor.
    #[must_use]
    pub fn online_floor(mut self, floor: f64) -> Self {
        self.online_floor = floor;
        self
    }

    /// Sets the Monte-Carlo sample count per admission probe.
    #[must_use]
    pub fn online_samples(mut self, samples: usize) -> Self {
        self.online_samples = samples;
        self
    }
}

/// The admission gate's verdict on an online arrival, carried with the
/// job through the queue so the worker judges the same plan shape the
/// gate admitted.
#[derive(Debug, Clone, Copy)]
struct AdmittedOnline {
    /// Completion probability estimated at admission.
    probability: f64,
    /// Whether the gate had to shed optional tasks to admit the job.
    shed: bool,
}

struct QueuedJob {
    spec: JobSpec,
    enqueued: Instant,
    online: Option<AdmittedOnline>,
}

struct Shared {
    queue: LaneQueue<QueuedJob>,
    cache: ScheduleCache,
    metrics: MetricsInner,
    config: ServiceConfig,
}

/// A running scheduling service. Dropping it without
/// [`Service::shutdown`] closes the queue and detaches the workers.
pub struct Service {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    results_tx: mpsc::Sender<JobResult>,
}

impl Service {
    /// Starts the worker pool. Returns the service handle and the stream
    /// of job results (in completion order).
    ///
    /// # Panics
    /// Panics when `config.workers` is zero or `config.queue_capacity` is
    /// zero — a service that can neither run nor queue work is a
    /// configuration bug, caught before any job is accepted.
    #[must_use]
    pub fn start(config: ServiceConfig) -> (Self, mpsc::Receiver<JobResult>) {
        assert!(config.workers > 0, "service needs at least one worker");
        assert!(
            config.online_floor >= 0.0 && config.online_floor <= 1.0,
            "online admission floor must be in [0, 1]"
        );
        assert!(
            config.online_samples > 0,
            "online admission needs at least one sample"
        );
        let shared = Arc::new(Shared {
            queue: LaneQueue::new(config.queue_capacity),
            cache: ScheduleCache::new(config.cache_capacity),
            metrics: MetricsInner::default(),
            config,
        });
        if config.start_paused {
            shared.queue.pause();
        }
        let (results_tx, results_rx) = mpsc::channel();
        let handles = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let tx = results_tx.clone();
                std::thread::spawn(move || worker_loop(&shared, &tx))
            })
            .collect();
        (
            Self {
                shared,
                handles,
                results_tx,
            },
            results_rx,
        )
    }

    /// Admission control: validate, then enqueue without blocking.
    ///
    /// # Errors
    /// [`JobError::Rejected`] when validation fails or the lane is full;
    /// the job never entered the queue and no result will be emitted.
    pub fn submit(&self, spec: JobSpec) -> Result<(), JobError> {
        self.admit(spec, false)
    }

    /// Like [`Service::submit`] but waits for queue space instead of
    /// rejecting (backpressure slows the producer; used by `run_batch`).
    ///
    /// # Errors
    /// [`JobError::Rejected`] when validation fails or the queue closed.
    pub fn submit_blocking(&self, spec: JobSpec) -> Result<(), JobError> {
        self.admit(spec, true)
    }

    fn admit(&self, spec: JobSpec, blocking: bool) -> Result<(), JobError> {
        if let Err(reason) = spec.validate() {
            self.shared.metrics.rejected_invalid();
            return Err(JobError::Rejected(reason));
        }
        let online = match self.probe_online(&spec) {
            Ok(verdict) => verdict,
            Err(e) => {
                self.shared.metrics.online_rejected();
                return Err(e);
            }
        };
        let lane = spec.lane();
        let shed_tasks = match online {
            Some(AdmittedOnline { shed: true, .. }) => spec.instance.graph.optional_tasks().len(),
            _ => 0,
        };
        let is_online = online.is_some();
        let job = QueuedJob {
            spec,
            enqueued: Instant::now(),
            online,
        };
        let pushed = if blocking {
            self.shared.queue.push_blocking(lane, job)
        } else {
            self.shared.queue.try_push(lane, job)
        };
        match pushed {
            Ok(()) => {
                self.shared.metrics.submitted();
                if is_online {
                    self.shared.metrics.online_admitted();
                    if shed_tasks > 0 {
                        self.shared.metrics.online_shed(shed_tasks as u64);
                    }
                }
                Ok(())
            }
            Err(e @ PushError::Full { .. }) => {
                self.shared.metrics.rejected_full();
                Err(JobError::Rejected(e.to_string()))
            }
            Err(e @ PushError::Closed) => Err(JobError::Rejected(e.to_string())),
        }
    }

    /// The completion-probability gate for online arrivals. Returns
    /// `Ok(None)` for classic jobs, `Ok(Some(_))` when admitted (possibly
    /// only after shedding optional tasks), and `Err` when even the
    /// required subgraph is unlikely to make the deadline.
    fn probe_online(&self, spec: &JobSpec) -> Result<Option<AdmittedOnline>, JobError> {
        let Some(params) = spec.online else {
            return Ok(None);
        };
        let inst = spec.instance.as_ref();
        let cfg = &self.shared.config;
        let rel_deadline = params.relative_deadline();
        let order = rank_order(inst);
        let floors = vec![0.0; inst.proc_count()];
        let mut scratch = OnlineScratch::new();
        let estimate_seed = online_estimate_seed(spec.seed);
        let full = plan_isolated(inst, false)
            .map_err(|e| JobError::Rejected(format!("online probe failed to plan: {e}")))?;
        let p_full = completion_probability(
            inst,
            &order,
            &full,
            &floors,
            rel_deadline,
            cfg.online_samples,
            estimate_seed,
            &mut scratch,
        );
        if p_full >= cfg.online_floor {
            return Ok(Some(AdmittedOnline {
                probability: p_full,
                shed: false,
            }));
        }
        // Second chance: shed the optional tasks and probe the required
        // subgraph alone — the drop ladder applied at the door.
        if !inst.graph.optional_tasks().is_empty() {
            let required = plan_isolated(inst, true)
                .map_err(|e| JobError::Rejected(format!("online probe failed to plan: {e}")))?;
            let p_required = completion_probability(
                inst,
                &order,
                &required,
                &floors,
                rel_deadline,
                cfg.online_samples,
                estimate_seed,
                &mut scratch,
            );
            if p_required >= cfg.online_floor {
                return Ok(Some(AdmittedOnline {
                    probability: p_required,
                    shed: true,
                }));
            }
        }
        Err(JobError::Rejected(format!(
            "completion probability {:.3} below admission floor {:.2}",
            p_full, cfg.online_floor
        )))
    }

    /// A clone of the result sender, so an embedding frontend (the `rds
    /// serve` loop) can inject synthesized results — e.g. rejection
    /// envelopes — into the same ordered stream the workers feed.
    #[must_use]
    pub fn result_sender(&self) -> mpsc::Sender<JobResult> {
        self.results_tx.clone()
    }

    /// Pauses draining (jobs accumulate).
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Resumes draining.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Current metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared
            .metrics
            .snapshot(self.shared.queue.depths(), self.shared.cache.stats())
    }

    /// Closes the queue (drains pending work, rejects new work), joins
    /// every worker, and returns the final metrics snapshot. The result
    /// receiver disconnects once the last sender (including this
    /// service's own) is gone.
    pub fn shutdown(self) -> ServiceMetrics {
        self.shared.queue.resume();
        self.shared.queue.close();
        for h in self.handles {
            let _ = h.join();
        }
        self.shared
            .metrics
            .snapshot(self.shared.queue.depths(), self.shared.cache.stats())
    }

    /// Deterministic in-process harness: starts a service, feeds `jobs`
    /// with blocking backpressure, waits for every accepted job, shuts
    /// down, and returns `(results, metrics)` with results sorted by job
    /// id. With unique ids and seeded jobs the result set is identical
    /// for any worker count — the concurrency layer adds throughput, not
    /// nondeterminism.
    #[must_use]
    pub fn run_batch(
        config: ServiceConfig,
        jobs: Vec<JobSpec>,
    ) -> (Vec<JobResult>, ServiceMetrics) {
        let mut config = config;
        config.start_paused = false; // paused workers would deadlock the feeder
        let (service, results_rx) = Self::start(config);
        let mut results: Vec<JobResult> = Vec::with_capacity(jobs.len());
        let mut accepted = 0usize;
        for spec in jobs {
            let id = spec.id.clone();
            let lane = spec.lane();
            match service.submit_blocking(spec) {
                Ok(()) => accepted += 1,
                Err(e) => results.push(JobResult {
                    id,
                    outcome: Err(e),
                    lane,
                }),
            }
        }
        for _ in 0..accepted {
            match results_rx.recv() {
                Ok(r) => results.push(r),
                Err(_) => break,
            }
        }
        let metrics = service.shutdown();
        results.sort_by(|a, b| a.id.cmp(&b.id));
        (results, metrics)
    }
}

/// Seed of the admission estimator's CRN substreams for a job seed.
fn online_estimate_seed(seed: u64) -> u64 {
    SeedStream::new(seed).branch("online-estimate").nth_seed(0)
}

/// Seed of the truth durations that decide a job's deadline verdict —
/// disjoint from the estimator's stream, so the gate never "peeks".
fn online_truth_seed(seed: u64) -> u64 {
    SeedStream::new(seed).branch("online-truth").nth_seed(0)
}

fn worker_loop(shared: &Shared, results_tx: &mpsc::Sender<JobResult>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.job_started();
        let lane = job.spec.lane();
        let id = job.spec.id.clone();
        let outcome = execute(&job.spec, &shared.cache, job.online);
        let latency = job.enqueued.elapsed().as_secs_f64();
        let failed = outcome.is_err();
        let fallback = matches!(
            &outcome,
            Ok(out) if out.degraded != Degradation::None
        );
        if let Ok(out) = &outcome {
            if let Some(gs) = &out.ga_stats {
                shared.metrics.ga_run(gs);
            }
            if let Some(oo) = &out.online {
                // Goodput credits the deadline-counted work: the whole
                // graph, minus the optional tasks when they were shed.
                let total = job.spec.instance.task_count();
                let weight = if out.degraded == Degradation::DroppedOptional {
                    (total - job.spec.instance.graph.optional_tasks().len()) as f64
                } else {
                    total as f64
                };
                shared.metrics.online_verdict(oo.hit, weight);
            }
        }
        shared.metrics.job_finished(lane, latency, failed, fallback);
        // A disconnected receiver means the frontend is gone; keep
        // draining so shutdown still completes.
        let _ = results_tx.send(JobResult { id, outcome, lane });
    }
}

/// Runs one job: cache lookup → scheduler (with cooperative deadline
/// cancellation for the GA) → assessment → cache fill. Online jobs take
/// their own path (see [`execute_online`]).
fn execute(
    spec: &JobSpec,
    cache: &ScheduleCache,
    online: Option<AdmittedOnline>,
) -> Result<JobOutput, JobError> {
    if let Some(adm) = online {
        return execute_online(spec, adm);
    }
    let key = CacheKey::for_job(spec);
    if let Some(hit) = cache.lookup(&key) {
        return Ok(JobOutput {
            schedule: hit.schedule,
            makespan: hit.makespan,
            avg_slack: hit.avg_slack,
            cache_hit: true,
            degraded: Degradation::None,
            ga_stats: None,
            online: None,
        });
    }
    let deadline = spec.deadline.map(|budget| Instant::now() + budget);
    let (schedule, degraded, ga_stats) = produce_schedule(spec, deadline)?;
    let (makespan, avg_slack) = assess(&spec.instance, &schedule)?;
    // The cache enforces its own boundary: degraded results are refused.
    cache.insert(
        key,
        CachedSchedule {
            schedule: schedule.clone(),
            makespan,
            avg_slack,
        },
        degraded,
    );
    Ok(JobOutput {
        schedule,
        makespan,
        avg_slack,
        cache_hit: false,
        degraded,
        ga_stats,
        online: None,
    })
}

/// Runs an admitted online job: plan with the shared replanner (the
/// shape the admission gate probed — the `algo` knob is ignored on the
/// online lane), realize it once under the job's truth durations, and
/// judge the deadline on the counted tasks. Online results bypass the
/// cache entirely: the key does not capture arrival/deadline/backlog, so
/// a cached entry could leak one stream state into another.
fn execute_online(spec: &JobSpec, adm: AdmittedOnline) -> Result<JobOutput, JobError> {
    let inst = spec.instance.as_ref();
    let params = spec
        .online
        .ok_or_else(|| JobError::Failed("online job lost its parameters".into()))?;
    let order = rank_order(inst);
    let floors = vec![0.0; inst.proc_count()];
    let mut scratch = OnlineScratch::new();
    let (schedule, verdict_plan, degraded) = if adm.shed {
        let deferred = plan_with_deferred_optional(inst).map_err(JobError::Failed)?;
        let required = plan_isolated(inst, true).map_err(|e| JobError::Failed(e.to_string()))?;
        let degraded = if deferred.deferred.is_empty() {
            Degradation::None
        } else {
            Degradation::DroppedOptional
        };
        (deferred.schedule, required, degraded)
    } else {
        let plan = plan_isolated(inst, false).map_err(|e| JobError::Failed(e.to_string()))?;
        let schedule = Schedule::from_proc_lists(inst.task_count(), plan.proc_tasks.clone())
            .map_err(|e| JobError::Failed(e.to_string()))?;
        (schedule, plan, Degradation::None)
    };
    let realized = realized_completion(
        inst,
        &order,
        &verdict_plan,
        &floors,
        online_truth_seed(spec.seed),
        &mut scratch,
    );
    let hit = realized <= params.relative_deadline();
    let (makespan, avg_slack) = assess(inst, &schedule)?;
    Ok(JobOutput {
        schedule,
        makespan,
        avg_slack,
        cache_hit: false,
        degraded,
        ga_stats: None,
        online: Some(OnlineOutcome {
            probability: adm.probability,
            realized_makespan: realized,
            hit,
        }),
    })
}

/// Expected-time makespan and average slack of a schedule, as a value
/// (a malformed schedule must not panic the daemon).
fn assess(inst: &Instance, schedule: &Schedule) -> Result<(f64, f64), JobError> {
    let analysis = slack::analyze_expected(inst, schedule)
        .map_err(|e| JobError::Failed(format!("produced schedule is invalid: {e}")))?;
    Ok((analysis.makespan, analysis.average_slack))
}

fn produce_schedule(
    spec: &JobSpec,
    deadline: Option<Instant>,
) -> Result<(Schedule, Degradation, Option<GaRunStats>), JobError> {
    let inst = spec.instance.as_ref();
    let express = |r: HeftResult| Ok((r.schedule, Degradation::None, None));
    match spec.algo {
        Algo::Heft => express(heft_schedule(inst)),
        Algo::Cpop => express(cpop_schedule(inst)),
        Algo::LookaheadHeft => express(lookahead_heft_schedule(inst)),
        Algo::Sheft { k } => express(sheft_schedule(inst, k)),
        Algo::Ga => run_ga(spec, deadline),
        Algo::Sa => {
            let heft = heft_schedule(inst);
            let objective = Objective::EpsilonConstraint {
                epsilon: spec.epsilon,
                reference_makespan: heft.makespan,
            };
            let params = rds_anneal::SaParams::default().seed(spec.seed);
            let sa = rds_anneal::try_anneal(inst, params, objective)
                .map_err(|e| JobError::Failed(format!("invalid SA parameters: {e}")))?;
            Ok((sa.best.decode(inst.proc_count()), Degradation::None, None))
        }
    }
}

/// The ε-constraint GA with a cooperative deadline watch. On
/// cancellation the escalation ladder mirrors the sentinel executor's:
/// best feasible solution so far, then plain HEFT.
fn run_ga(
    spec: &JobSpec,
    deadline: Option<Instant>,
) -> Result<(Schedule, Degradation, Option<GaRunStats>), JobError> {
    let inst = spec.instance.as_ref();
    let heft = heft_schedule(inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: spec.epsilon,
        reference_makespan: heft.makespan,
    };
    let mut params = GaParams::paper().seed(spec.seed);
    if let Some(g) = spec.generations {
        params = params.max_generations(g).stall_generations((g / 5).max(10));
    }
    let engine = GaEngine::try_new(inst, params, objective)
        .map_err(|e| JobError::Failed(format!("invalid GA parameters: {e}")))?;
    let ga = match deadline {
        Some(deadline) => engine.run_with_watch(&mut |_| Instant::now() >= deadline),
        None => engine.run(),
    };
    let stats = Some(ga.stats);
    if ga.interrupted {
        if ga.best_feasible {
            Ok((ga.best_schedule(inst), Degradation::BestSoFar, stats))
        } else {
            Ok((heft.schedule, Degradation::HeftFallback, stats))
        }
    } else {
        Ok((ga.best_schedule(inst), Degradation::None, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::InstanceSpec;
    use std::time::Duration;

    fn inst(seed: u64) -> Arc<Instance> {
        Arc::new(
            InstanceSpec::new(15, 3)
                .seed(seed)
                .build()
                .expect("test instance"),
        )
    }

    #[test]
    fn express_job_runs_and_matches_direct_heft() {
        let i = inst(1);
        let jobs = vec![JobSpec::new("a", Algo::Heft, Arc::clone(&i))];
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), jobs);
        assert_eq!(results.len(), 1);
        let out = results[0].outcome.as_ref().expect("heft succeeds");
        assert_eq!(out.schedule, heft_schedule(&i).schedule);
        assert!(!out.cache_hit);
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.cache_misses, 1);
    }

    #[test]
    fn repeated_instance_hits_cache_and_agrees() {
        let i = inst(2);
        let jobs = vec![
            JobSpec::new("a", Algo::Heft, Arc::clone(&i)),
            JobSpec::new("b", Algo::Heft, Arc::clone(&i)),
        ];
        // One worker: the second lookup happens strictly after the first
        // insert, so exactly one miss and one hit.
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), jobs);
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cache_misses, 1);
        assert!((metrics.cache_hit_rate - 0.5).abs() < 1e-12);
        let a = results[0].outcome.as_ref().unwrap();
        let b = results[1].outcome.as_ref().unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert!(a.cache_hit != b.cache_hit, "exactly one served from cache");
    }

    #[test]
    fn invalid_job_is_rejected_synchronously() {
        let (service, _rx) = Service::start(ServiceConfig::default().workers(1));
        let bad = JobSpec::new("", Algo::Heft, inst(3));
        let err = service.submit(bad).unwrap_err();
        assert!(matches!(err, JobError::Rejected(_)));
        let snap = service.metrics();
        assert_eq!(snap.rejected_invalid, 1);
        assert_eq!(snap.submitted, 0);
        service.shutdown();
    }

    #[test]
    fn deadline_zero_degrades_deterministically() {
        let i = inst(4);
        let job = JobSpec::new("g", Algo::Ga, Arc::clone(&i))
            .seed(7)
            .deadline(Duration::ZERO);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        let out = results[0].outcome.as_ref().expect("degraded, not failed");
        assert_ne!(out.degraded, Degradation::None);
        assert!(out.schedule.validate_against(&i.graph).is_ok());
        assert_eq!(metrics.deadline_fallbacks, 1);
        // Degraded results must not poison the cache.
        let job2 = JobSpec::new("g2", Algo::Ga, Arc::clone(&i)).seed(7);
        let (_, m2) = Service::run_batch(ServiceConfig::default().workers(1), vec![job2]);
        assert_eq!(m2.cache_hits, 0);
    }

    #[test]
    fn express_lane_overtakes_queued_heavy_work() {
        // Paused service, heavy jobs queued first, then an express job:
        // on resume with one worker the express job must finish first.
        let i = inst(5);
        let (service, rx) = Service::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(8)
                .paused(),
        );
        for n in 0..2 {
            service
                .submit(
                    JobSpec::new(format!("heavy-{n}"), Algo::Ga, Arc::clone(&i))
                        .seed(n)
                        .generations(5),
                )
                .unwrap();
        }
        service
            .submit(JobSpec::new("fast", Algo::Heft, Arc::clone(&i)))
            .unwrap();
        service.resume();
        let first = rx.recv().unwrap();
        assert_eq!(first.id, "fast");
        service.shutdown();
    }

    #[test]
    fn online_job_admitted_and_judged() {
        let i = inst(6);
        // A deadline far beyond the expected makespan: the gate admits
        // and the truth realization cannot miss.
        let plan = plan_isolated(&i, false).unwrap();
        let job = JobSpec::new("o", Algo::Heft, Arc::clone(&i))
            .seed(3)
            .online(0.0, plan.est_makespan * 10.0);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        let out = results[0].outcome.as_ref().expect("admitted online job");
        let oo = out.online.expect("online outcome attached");
        assert!(oo.probability >= 0.5);
        assert!(oo.hit);
        assert!(oo.realized_makespan > 0.0);
        assert_eq!(out.degraded, Degradation::None);
        assert!(out.schedule.validate_against(&i.graph).is_ok());
        assert_eq!(metrics.online_admitted, 1);
        assert_eq!(metrics.online_rejected, 0);
        assert_eq!(metrics.online_hits, 1);
        assert!((metrics.deadline_hit_rate - 1.0).abs() < 1e-12);
        assert!(metrics.goodput > 0.0);
        // Online results bypass the cache entirely.
        assert_eq!(metrics.cache_hits + metrics.cache_misses, 0);
    }

    #[test]
    fn hopeless_online_job_is_rejected_at_the_door() {
        let i = inst(7);
        let job = JobSpec::new("o", Algo::Heft, Arc::clone(&i)).online(5.0, 5.0 + 1e-9);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        assert!(matches!(
            &results[0].outcome,
            Err(JobError::Rejected(r)) if r.contains("admission floor")
        ));
        assert_eq!(metrics.online_rejected, 1);
        assert_eq!(metrics.online_admitted, 0);
        assert_eq!(metrics.submitted, 0);
        assert_eq!(metrics.deadline_hit_rate, 0.0);
    }

    #[test]
    fn admission_gate_sheds_optional_tasks_before_rejecting() {
        // Mark the rear three-quarters of the graph optional — from the
        // exits inward, as `mark_optional`'s successor-closure invariant
        // requires — leaving a small required subgraph that finishes far
        // earlier than the whole job.
        let mut raw = InstanceSpec::new(20, 3).seed(8).build().unwrap();
        let topo = rds_graph::topo::topological_order(&raw.graph).expect("instance DAG is acyclic");
        for &t in topo[5..].iter().rev() {
            assert!(raw.graph.mark_optional(t), "rear task must be markable");
        }
        let i = Arc::new(raw);
        // Find a deadline the full plan is unlikely to make but the
        // required subgraph is likely to — probing exactly as the gate
        // does, with the same estimator seed.
        let order = rank_order(&i);
        let full = plan_isolated(&i, false).unwrap();
        let required = plan_isolated(&i, true).unwrap();
        let est_seed = online_estimate_seed(11);
        let floors = vec![0.0; i.proc_count()];
        let samples = ServiceConfig::default().online_samples;
        let mut scratch = OnlineScratch::new();
        let lo = required.est_makespan * 0.5;
        let hi = full.est_makespan * 1.5;
        let mut chosen = None;
        for k in 0..400 {
            let rel = lo + (hi - lo) * (k as f64) / 400.0;
            let pf = completion_probability(
                &i,
                &order,
                &full,
                &floors,
                rel,
                samples,
                est_seed,
                &mut scratch,
            );
            if pf >= 0.5 {
                continue;
            }
            let pr = completion_probability(
                &i,
                &order,
                &required,
                &floors,
                rel,
                samples,
                est_seed,
                &mut scratch,
            );
            if pr >= 0.5 {
                chosen = Some(rel);
                break;
            }
        }
        let rel = chosen.expect("a deadline band where only the shed plan passes");
        let job = JobSpec::new("shed", Algo::Heft, Arc::clone(&i))
            .seed(11)
            .online(0.0, rel);
        let (results, metrics) = Service::run_batch(ServiceConfig::default().workers(1), vec![job]);
        let out = results[0]
            .outcome
            .as_ref()
            .expect("admitted after shedding");
        assert_eq!(out.degraded, Degradation::DroppedOptional);
        let oo = out.online.expect("online outcome attached");
        assert!(oo.probability >= 0.5);
        assert_eq!(metrics.online_admitted, 1);
        assert!(metrics.online_shed_tasks > 0);
        assert_eq!(metrics.deadline_fallbacks, 1);
        // Shedding defers tasks, it does not remove them: the combined
        // schedule still covers the whole graph.
        assert!(out.schedule.validate_against(&i.graph).is_ok());
    }
}

//! `rds-service`: a long-running scheduling service.
//!
//! Accepts jobs — an [`Instance`](rds_sched::Instance), a scheduler
//! choice, and the ε / robustness knobs — and runs them on a fixed-size
//! worker pool with:
//!
//! - a **bounded multi-lane job queue** with admission control and
//!   backpressure ([`queue`]): cheap list-scheduler jobs ride the express
//!   lane past expensive GA/SA searches, deadline-carrying online
//!   arrivals get their own middle-priority lane, and a full lane
//!   rejects with a reason instead of blocking;
//! - a **completion-probability admission gate** for online jobs
//!   ([`service`]): arrivals unlikely to meet their deadline are shed
//!   down to their required subgraph or rejected outright, and admitted
//!   jobs are judged against an independent truth realization;
//! - a **content-addressed schedule cache** ([`cache`]) keyed by the
//!   stable instance fingerprint plus every schedule-determining knob,
//!   with hit/miss accounting;
//! - **per-job deadline budgets** that cancel overrunning GA runs
//!   cooperatively and degrade to the best feasible solution so far, or
//!   to plain HEFT ([`job::Degradation`]);
//! - a [`metrics::ServiceMetrics`] snapshot: queue depth, in-flight,
//!   completed/rejected/fallback counts, cache hit rate, per-lane
//!   latency percentiles, online admission counts, deadline hit rate,
//!   and goodput.
//!
//! Crash-safety layers, each optional and off by default:
//!
//! - a **durable job journal** ([`journal`]): an append-only WAL that
//!   records every accepted job before the submitter learns of
//!   acceptance, tolerates torn tails, and drives
//!   [`Service::recover`]'s replay of unfinished work after a restart;
//! - **worker supervision** ([`supervisor`]): panic isolation per
//!   attempt, capped-backoff retries, per-job wall-clock timeouts,
//!   dead-worker restart with in-flight job rescue, and typed `failed`
//!   results for poison jobs;
//! - an **overload brownout ladder** ([`service::BrownoutConfig`]):
//!   queue-depth EWMAs degrade search jobs to HEFT, shed the heavy
//!   lane, and open a circuit breaker that fast-rejects with a
//!   `retry_after` hint, closing again through half-open probes;
//! - a **seeded chaos harness** ([`chaos`]): deterministic injection of
//!   worker panics, solve stalls, journal write errors, and
//!   kill-at-byte-N crashes, for the recovery test suites.
//!
//! [`Service::run_batch`] is the deterministic in-process harness: with
//! unique job ids and seeded schedulers its result set is identical for
//! any worker count. The `rds serve` / `rds submit` CLI wraps the same
//! service behind the line-oriented envelopes of `rds_sched::io`.
//!
//! Networked serving lifts the same envelopes onto TCP:
//!
//! - a **line-framed TCP shard** ([`net::NetServer`]): the stdin
//!   envelope protocol over sockets, with frame-size and per-connection
//!   inflight caps, health probes answering the brownout rung, and
//!   **warm-cache replication** — every fresh solve is gossiped to the
//!   fingerprint-successor shard so a failover lands on a warm cache;
//! - a **failover router** ([`router`]): fingerprint-primary routing
//!   with a rendezvous fallback order, active health probes, capped
//!   seeded-jitter backoff, brownout `retry-after` honoring, and a
//!   latency-hedged duplicate for straggling requests;
//! - **network chaos** ([`chaos`]): seeded connection refusals,
//!   mid-frame cuts, dropped replies, and socket stalls, drawn
//!   independently per delivery attempt.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod job;
pub mod journal;
pub mod metrics;
pub mod net;
pub mod queue;
pub mod router;
pub mod service;
pub mod supervisor;

pub use cache::{CacheKey, CachedSchedule, ScheduleCache};
pub use chaos::ServiceChaos;
pub use job::{
    Algo, Degradation, JobError, JobOutput, JobResult, JobSpec, Lane, ObjectiveMode,
    OnlineJobParams, OnlineOutcome, DEFAULT_REL_MIN,
};
pub use journal::{Journal, JournalError, JournalRecovery};
pub use metrics::{LaneLatency, ServiceMetrics};
pub use net::{NetClientConfig, NetError, NetServer, NetServerConfig, NetServerMetrics};
pub use queue::{LaneQueue, PushError};
pub use router::{Router, RouterConfig, RouterMetrics, RouterServer};
pub use service::{
    BrownoutConfig, BrownoutLevel, RateLimitConfig, RecoveryReport, Service, ServiceConfig,
    ServiceError,
};
pub use supervisor::SupervisorConfig;

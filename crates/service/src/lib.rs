//! `rds-service`: a long-running scheduling service.
//!
//! Accepts jobs — an [`Instance`](rds_sched::Instance), a scheduler
//! choice, and the ε / robustness knobs — and runs them on a fixed-size
//! worker pool with:
//!
//! - a **bounded multi-lane job queue** with admission control and
//!   backpressure ([`queue`]): cheap list-scheduler jobs ride the express
//!   lane past expensive GA/SA searches, deadline-carrying online
//!   arrivals get their own middle-priority lane, and a full lane
//!   rejects with a reason instead of blocking;
//! - a **completion-probability admission gate** for online jobs
//!   ([`service`]): arrivals unlikely to meet their deadline are shed
//!   down to their required subgraph or rejected outright, and admitted
//!   jobs are judged against an independent truth realization;
//! - a **content-addressed schedule cache** ([`cache`]) keyed by the
//!   stable instance fingerprint plus every schedule-determining knob,
//!   with hit/miss accounting;
//! - **per-job deadline budgets** that cancel overrunning GA runs
//!   cooperatively and degrade to the best feasible solution so far, or
//!   to plain HEFT ([`job::Degradation`]);
//! - a [`metrics::ServiceMetrics`] snapshot: queue depth, in-flight,
//!   completed/rejected/fallback counts, cache hit rate, per-lane
//!   latency percentiles, online admission counts, deadline hit rate,
//!   and goodput.
//!
//! [`Service::run_batch`] is the deterministic in-process harness: with
//! unique job ids and seeded schedulers its result set is identical for
//! any worker count. The `rds serve` / `rds submit` CLI wraps the same
//! service behind the line-oriented envelopes of `rds_sched::io`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod service;

pub use cache::{CacheKey, CachedSchedule, ScheduleCache};
pub use job::{
    Algo, Degradation, JobError, JobOutput, JobResult, JobSpec, Lane, OnlineJobParams,
    OnlineOutcome,
};
pub use metrics::{LaneLatency, ServiceMetrics};
pub use queue::{LaneQueue, PushError};
pub use service::{Service, ServiceConfig};

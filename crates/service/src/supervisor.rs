//! Worker supervision: panic isolation, retry with capped backoff,
//! wall-clock timeouts, and dead-worker restart bookkeeping.
//!
//! Each worker runs every job attempt behind `catch_unwind`, so a
//! panicking scheduler costs one attempt, not the worker. A worker that
//! dies anyway (the chaos harness injects exactly that) leaves its job
//! registered in the [`WorkerTable`]'s in-flight slot; the supervisor
//! thread notices the dead handle, rescues the job through the same
//! retry ladder, and respawns the worker into the same slot — a job is
//! never lost to a dead thread, and a slot never stays dead.
//!
//! Retries back off exponentially with deterministic jitter
//! ([`SupervisorConfig::backoff`]), capped, and a job that exhausts its
//! attempt cap becomes a typed `failed` result instead of a crash loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rds_stats::rng::SeedStream;

use crate::service::QueuedJob;

/// Supervision policy: attempt cap, backoff shape, per-job wall-clock
/// timeout, and the supervisor's polling cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Attempts per job before it is declared poison and failed (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Wall-clock budget per attempt, enforced by the supervisor on top
    /// of the cooperative deadline; `None` disables it.
    pub job_timeout: Option<Duration>,
    /// How often the supervisor checks for overdue attempts and dead
    /// workers.
    pub poll_interval: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            job_timeout: None,
            poll_interval: Duration::from_millis(5),
        }
    }
}

impl SupervisorConfig {
    /// Sets the attempt cap.
    #[must_use]
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n;
        self
    }

    /// Sets the backoff base.
    #[must_use]
    pub fn backoff_base(mut self, d: Duration) -> Self {
        self.backoff_base = d;
        self
    }

    /// Sets the backoff cap.
    #[must_use]
    pub fn backoff_cap(mut self, d: Duration) -> Self {
        self.backoff_cap = d;
        self
    }

    /// Sets the per-attempt wall-clock timeout.
    #[must_use]
    pub fn job_timeout(mut self, d: Duration) -> Self {
        self.job_timeout = Some(d);
        self
    }

    /// Sets the supervisor polling cadence.
    #[must_use]
    pub fn poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = d;
        self
    }

    /// The delay before retry number `attempt` (1-based): capped
    /// exponential with deterministic jitter in `[50%, 150%]` of the
    /// exponential step, so retrying jobs de-synchronize without making
    /// test runs flaky.
    #[must_use]
    pub fn backoff(&self, id: &str, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let step = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap);
        let draw = SeedStream::new(0xB0FF)
            .branch("backoff")
            .branch(id)
            .nth_seed(u64::from(attempt));
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        step.mul_f64(0.5 + unit).min(self.backoff_cap)
    }
}

/// One job attempt currently running on a worker, registered so the
/// supervisor can time it out or rescue it from a dead thread.
pub(crate) struct InFlight {
    /// The job (with its current attempt count) — a rescue re-enqueues
    /// exactly this.
    pub(crate) job: QueuedJob,
    /// When this attempt started (timeout baseline).
    pub(crate) started: Instant,
    /// Raised by the supervisor to cancel the attempt cooperatively.
    pub(crate) cancel: Arc<AtomicBool>,
}

/// Per-slot worker state shared between the pool, the supervisor, and
/// shutdown: in-flight registration, thread handles, and clean-exit
/// flags that distinguish drained workers from dead ones.
pub(crate) struct WorkerTable {
    slots: Vec<Mutex<Option<InFlight>>>,
    handles: Vec<Mutex<Option<JoinHandle<()>>>>,
    clean: Vec<AtomicBool>,
    stop: AtomicBool,
}

fn relock<'a, T>(
    guard: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // Every critical section here is a single assignment or take; a
    // poisoned lock means a worker died elsewhere, which is exactly the
    // situation the table exists to survive.
    guard.unwrap_or_else(PoisonError::into_inner)
}

impl WorkerTable {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            handles: (0..workers).map(|_| Mutex::new(None)).collect(),
            clean: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            stop: AtomicBool::new(false),
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Registers the attempt now running on `slot`.
    pub(crate) fn register(&self, slot: usize, inflight: InFlight) {
        *relock(self.slots[slot].lock()) = Some(inflight);
    }

    /// Clears and returns `slot`'s in-flight attempt (worker finished it,
    /// or the supervisor is rescuing it from a dead worker).
    pub(crate) fn take(&self, slot: usize) -> Option<InFlight> {
        relock(self.slots[slot].lock()).take()
    }

    /// Raises the cancel flag of an attempt that has overrun `timeout`.
    /// Returns `true` when a cancellation was newly issued.
    pub(crate) fn cancel_overdue(&self, slot: usize, timeout: Duration) -> bool {
        let guard = relock(self.slots[slot].lock());
        if let Some(inf) = guard.as_ref() {
            if inf.started.elapsed() > timeout && !inf.cancel.swap(true, Ordering::Relaxed) {
                return true;
            }
        }
        false
    }

    /// Installs a (re)spawned worker's handle, resetting its clean flag.
    pub(crate) fn set_handle(&self, slot: usize, handle: JoinHandle<()>) {
        self.clean[slot].store(false, Ordering::Release);
        *relock(self.handles[slot].lock()) = Some(handle);
    }

    /// Marks a worker's normal (drained-queue) exit; called as the last
    /// statement of the worker loop.
    pub(crate) fn mark_clean(&self, slot: usize) {
        self.clean[slot].store(true, Ordering::Release);
    }

    /// Takes the handle of a worker that died without a clean exit, if
    /// any — the supervisor's death-detection probe.
    pub(crate) fn take_dead(&self, slot: usize) -> Option<JoinHandle<()>> {
        if self.clean[slot].load(Ordering::Acquire) {
            return None;
        }
        let mut guard = relock(self.handles[slot].lock());
        if guard.as_ref().is_some_and(JoinHandle::is_finished) {
            return guard.take();
        }
        None
    }

    /// Whether every slot's worker has exited cleanly — the shutdown
    /// drain condition (dead workers are respawned by the supervisor
    /// until their replacement drains and exits clean).
    pub(crate) fn all_clean(&self) -> bool {
        self.clean.iter().all(|c| c.load(Ordering::Acquire))
    }

    /// Tells the supervisor to stop.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Joins every remaining worker handle (shutdown's final step, after
    /// the supervisor has stopped).
    pub(crate) fn join_all(&self) {
        for h in &self.handles {
            if let Some(handle) = relock(h.lock()).take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let cfg = SupervisorConfig::default();
        assert_eq!(cfg.backoff("j", 1), cfg.backoff("j", 1));
        // Jitter keeps every delay within [base/2, cap].
        for attempt in 1..10 {
            let d = cfg.backoff("j", attempt);
            assert!(d >= cfg.backoff_base / 2, "attempt {attempt}: {d:?}");
            assert!(d <= cfg.backoff_cap, "attempt {attempt}: {d:?}");
        }
        // The cap binds for late attempts even with max jitter.
        assert!(cfg.backoff("j", 30) <= cfg.backoff_cap);
        // Different ids jitter differently somewhere in the ladder.
        let a: Vec<Duration> = (1..8).map(|n| cfg.backoff("a", n)).collect();
        let b: Vec<Duration> = (1..8).map(|n| cfg.backoff("b", n)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn table_tracks_clean_and_dead_workers() {
        let table = WorkerTable::new(2);
        assert!(!table.all_clean());
        // Slot 0 exits cleanly; slot 1 dies by panic.
        let t0 = std::thread::spawn(|| {});
        table.set_handle(0, t0);
        table.mark_clean(0);
        let t1 = std::thread::spawn(|| panic!("deliberate test panic"));
        table.set_handle(1, t1);
        // Wait for the panicking thread to actually finish.
        let deadline = Instant::now() + Duration::from_secs(5);
        let dead = loop {
            if let Some(h) = table.take_dead(1) {
                break h;
            }
            assert!(Instant::now() < deadline, "dead worker never detected");
            std::thread::sleep(Duration::from_millis(2));
        };
        assert!(dead.join().is_err());
        // A clean slot is never reported dead.
        assert!(table.take_dead(0).is_none());
        assert!(!table.all_clean());
        table.mark_clean(1);
        assert!(table.all_clean());
        table.join_all();
    }
}

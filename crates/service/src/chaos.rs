//! Chaos injection for the service itself.
//!
//! The repo already fault-injects the *schedules* it produces
//! (`rds_sched::faults`); this module turns the same discipline on the
//! *serving layer*: seeded, deterministic injection of worker panics,
//! solve stalls, journal write errors, and a kill-at-byte-N cut that
//! simulates the process dying mid-write. Every decision derives from
//! `(seed, site, job id, attempt)` through [`SeedStream::branch`], so a
//! chaos run reproduces bit-for-bit regardless of worker count or
//! scheduling order, and enabling one injection site does not shift the
//! draws of another.
//!
//! With all rates at zero (the default) the service must behave
//! bit-identically to a build without chaos — the quiet-path contract
//! the supervision tests pin.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rds_stats::rng::SeedStream;

/// Chaos configuration. All rates are probabilities in `[0, 1]` applied
/// independently per (job, attempt) or per journal record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceChaos {
    /// Master seed of every injection decision.
    pub seed: u64,
    /// Probability that a worker panics mid-solve on a given attempt.
    pub panic_rate: f64,
    /// Probability that a solve stalls (cooperatively interruptible
    /// sleep) before producing its result.
    pub stall_rate: f64,
    /// Injected stall length.
    pub stall: Duration,
    /// Probability that a journal write returns an I/O error.
    pub journal_error_rate: f64,
    /// Stop persisting journal bytes after this many have been written —
    /// the tail of the final record is torn exactly at the boundary, as
    /// if the process had been killed mid-`write(2)`.
    pub journal_kill_at: Option<u64>,
    /// Probability that a freshly accepted TCP connection is dropped
    /// before any frame is read (a refused/reset connection).
    pub net_refuse_rate: f64,
    /// Probability that a result frame is cut mid-write and the socket
    /// closed — the client sees a torn frame, exactly as a shard dying
    /// mid-`write(2)` would produce.
    pub net_cut_rate: f64,
    /// Probability that a reply is silently dropped (written nowhere),
    /// leaving the client to its read timeout.
    pub net_drop_rate: f64,
    /// Probability that a reply stalls for [`ServiceChaos::net_stall`]
    /// before being written (a slow peer / congested link).
    pub net_stall_rate: f64,
    /// Injected socket stall length.
    pub net_stall: Duration,
}

impl Default for ServiceChaos {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(50),
            journal_error_rate: 0.0,
            journal_kill_at: None,
            net_refuse_rate: 0.0,
            net_cut_rate: 0.0,
            net_drop_rate: 0.0,
            net_stall_rate: 0.0,
            net_stall: Duration::from_millis(50),
        }
    }
}

impl ServiceChaos {
    /// A disabled config rooted at `seed` (turn sites on with the
    /// builder methods).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets the worker-panic rate.
    #[must_use]
    pub fn panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the solve-stall rate.
    #[must_use]
    pub fn stall_rate(mut self, rate: f64) -> Self {
        self.stall_rate = rate;
        self
    }

    /// Sets the injected stall length.
    #[must_use]
    pub fn stall(mut self, d: Duration) -> Self {
        self.stall = d;
        self
    }

    /// Sets the journal write-error rate.
    #[must_use]
    pub fn journal_error_rate(mut self, rate: f64) -> Self {
        self.journal_error_rate = rate;
        self
    }

    /// Cuts the journal after `bytes` persisted bytes.
    #[must_use]
    pub fn journal_kill_at(mut self, bytes: u64) -> Self {
        self.journal_kill_at = Some(bytes);
        self
    }

    /// Sets the connection-refusal rate.
    #[must_use]
    pub fn net_refuse_rate(mut self, rate: f64) -> Self {
        self.net_refuse_rate = rate;
        self
    }

    /// Sets the mid-frame cut rate.
    #[must_use]
    pub fn net_cut_rate(mut self, rate: f64) -> Self {
        self.net_cut_rate = rate;
        self
    }

    /// Sets the reply-drop rate.
    #[must_use]
    pub fn net_drop_rate(mut self, rate: f64) -> Self {
        self.net_drop_rate = rate;
        self
    }

    /// Sets the socket-stall rate.
    #[must_use]
    pub fn net_stall_rate(mut self, rate: f64) -> Self {
        self.net_stall_rate = rate;
        self
    }

    /// Sets the injected socket stall length.
    #[must_use]
    pub fn net_stall(mut self, d: Duration) -> Self {
        self.net_stall = d;
        self
    }

    /// `true` when any injection site is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.panic_rate > 0.0
            || self.stall_rate > 0.0
            || self.journal_error_rate > 0.0
            || self.journal_kill_at.is_some()
            || self.net_refuse_rate > 0.0
            || self.net_cut_rate > 0.0
            || self.net_drop_rate > 0.0
            || self.net_stall_rate > 0.0
    }

    /// The deterministic injection decision for `site` on `(id, attempt)`:
    /// fires with probability `rate`, independently per site label.
    #[must_use]
    pub fn fires(&self, site: &str, id: &str, attempt: u32, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let draw = SeedStream::new(self.seed)
            .branch(site)
            .branch(id)
            .nth_seed(u64::from(attempt));
        // 53-bit uniform in [0, 1), the standard f64 ladder.
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }

    /// Whether this `(id, attempt)` panics in the worker.
    #[must_use]
    pub fn panics(&self, id: &str, attempt: u32) -> bool {
        self.fires("chaos-panic", id, attempt, self.panic_rate)
    }

    /// Whether this `(id, attempt)` stalls in the worker.
    #[must_use]
    pub fn stalls(&self, id: &str, attempt: u32) -> bool {
        self.fires("chaos-stall", id, attempt, self.stall_rate)
    }

    /// Whether journal record number `record` has its write fail.
    #[must_use]
    pub fn journal_write_fails(&self, record: u64) -> bool {
        // Record index doubles as the "attempt": one decision per record.
        let idx = u32::try_from(record % u64::from(u32::MAX)).unwrap_or(u32::MAX);
        self.fires("chaos-journal", "wal", idx, self.journal_error_rate)
    }

    /// Whether connection number `conn` is dropped at accept.
    #[must_use]
    pub fn refuses_connect(&self, conn: u64) -> bool {
        let idx = u32::try_from(conn % u64::from(u32::MAX)).unwrap_or(u32::MAX);
        self.fires("chaos-net-refuse", "conn", idx, self.net_refuse_rate)
    }

    /// Whether delivery `attempt` of job `id`'s reply is cut mid-frame.
    /// Keyed per delivery attempt (not per job), so a router retry of the
    /// same id draws fresh — deterministic but not sticky.
    #[must_use]
    pub fn cuts_frame(&self, id: &str, attempt: u32) -> bool {
        self.fires("chaos-net-cut", id, attempt, self.net_cut_rate)
    }

    /// Whether delivery `attempt` of job `id`'s reply is dropped.
    #[must_use]
    pub fn drops_reply(&self, id: &str, attempt: u32) -> bool {
        self.fires("chaos-net-drop", id, attempt, self.net_drop_rate)
    }

    /// Whether delivery `attempt` of job `id`'s reply stalls first.
    #[must_use]
    pub fn stalls_socket(&self, id: &str, attempt: u32) -> bool {
        self.fires("chaos-net-stall", id, attempt, self.net_stall_rate)
    }

    /// Sleeps for the configured stall in small slices, returning early
    /// (with `true`) when `cancel` is raised — this is how the
    /// supervisor's wall-clock timeout converts an injected stall into a
    /// retryable failure instead of a wedged worker.
    pub fn sleep_stall(&self, cancel: &AtomicBool) -> bool {
        let slice = Duration::from_millis(2);
        let mut remaining = self.stall;
        while remaining > Duration::ZERO {
            if cancel.load(Ordering::Relaxed) {
                return true;
            }
            let step = remaining.min(slice);
            std::thread::sleep(step);
            remaining = remaining.saturating_sub(step);
        }
        cancel.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_site_independent() {
        let chaos = ServiceChaos::seeded(7).panic_rate(0.5).stall_rate(0.5);
        for attempt in 0..8 {
            assert_eq!(
                chaos.panics("job-a", attempt),
                chaos.panics("job-a", attempt)
            );
        }
        // Different sites draw from independent streams: the full joint
        // pattern over many jobs must differ between sites.
        let panic_pattern: Vec<bool> = (0..64).map(|i| chaos.panics(&format!("j{i}"), 0)).collect();
        let stall_pattern: Vec<bool> = (0..64).map(|i| chaos.stalls(&format!("j{i}"), 0)).collect();
        assert_ne!(panic_pattern, stall_pattern);
    }

    #[test]
    fn rates_gate_sanely() {
        let off = ServiceChaos::seeded(1);
        assert!(!off.is_armed());
        assert!(!off.panics("j", 0));
        assert!(!off.journal_write_fails(3));
        let always = ServiceChaos::seeded(1).panic_rate(1.0);
        assert!(always.is_armed());
        assert!(always.panics("j", 0) && always.panics("k", 9));
        // A 50% rate fires sometimes, not always, across attempts.
        let half = ServiceChaos::seeded(3).panic_rate(0.5);
        let fired: usize = (0..200).filter(|&a| half.panics("j", a)).count();
        assert!(fired > 50 && fired < 150, "fired {fired}/200");
    }

    #[test]
    fn net_sites_draw_independently_and_per_attempt() {
        let chaos = ServiceChaos::seeded(9).net_cut_rate(0.5).net_drop_rate(0.5);
        assert_eq!(chaos.cuts_frame("j", 0), chaos.cuts_frame("j", 0));
        // A redelivery draws fresh: the same ids at attempt 1 must not
        // reproduce the attempt-0 pattern (else a dropped reply would be
        // dropped on every retry, forever).
        let a0: Vec<bool> = (0..64)
            .map(|i| chaos.drops_reply(&format!("j{i}"), 0))
            .collect();
        let a1: Vec<bool> = (0..64)
            .map(|i| chaos.drops_reply(&format!("j{i}"), 1))
            .collect();
        assert_ne!(a0, a1);
        let cut: Vec<bool> = (0..64)
            .map(|i| chaos.cuts_frame(&format!("j{i}"), 0))
            .collect();
        assert_ne!(cut, a0, "cut and drop draw from independent streams");
        assert!(ServiceChaos::seeded(1).net_refuse_rate(0.1).is_armed());
        assert!(!ServiceChaos::seeded(1).refuses_connect(5));
    }

    #[test]
    fn stall_cancel_returns_early() {
        let chaos = ServiceChaos::seeded(1)
            .stall_rate(1.0)
            .stall(Duration::from_secs(30));
        let cancel = AtomicBool::new(true);
        let t0 = std::time::Instant::now();
        assert!(chaos.sleep_stall(&cancel));
        assert!(t0.elapsed() < Duration::from_secs(1));
        // Uncancelled short stall runs to completion and reports false.
        let short = ServiceChaos::seeded(1).stall(Duration::from_millis(5));
        assert!(!short.sleep_stall(&AtomicBool::new(false)));
    }
}

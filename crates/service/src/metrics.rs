//! Service observability: counters and per-lane latency percentiles.

use std::fmt::Write as _;
use std::sync::Mutex;

use rds_ga::GaRunStats;
use rds_stats::describe::Summary;

use crate::job::Lane;

/// Shared mutable counters, updated by admission control and workers.
#[derive(Default)]
pub(crate) struct MetricsInner {
    state: Mutex<MetricsState>,
}

#[derive(Default)]
struct MetricsState {
    submitted: u64,
    completed: u64,
    rejected_full: u64,
    rejected_invalid: u64,
    rate_limited: u64,
    failed: u64,
    deadline_fallbacks: u64,
    in_flight: u64,
    online_admitted: u64,
    online_rejected: u64,
    online_shed_tasks: u64,
    online_hits: u64,
    online_misses: u64,
    goodput: f64,
    worker_panics: u64,
    worker_restarts: u64,
    retries: u64,
    job_timeouts: u64,
    recovered: u64,
    brownout_degraded: u64,
    brownout_shed: u64,
    breaker_opens: u64,
    breaker_fast_rejections: u64,
    express_latencies: Vec<f64>,
    online_latencies: Vec<f64>,
    heavy_latencies: Vec<f64>,
    ga: GaRunStats,
}

impl MetricsInner {
    /// Locks the state, recovering from poisoning: every update below is
    /// a single non-panicking statement, so the counters stay consistent
    /// and a panicked worker must not take observability down with it.
    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn submitted(&self) {
        self.lock().submitted += 1;
    }

    pub(crate) fn rejected_full(&self) {
        self.lock().rejected_full += 1;
    }

    pub(crate) fn rejected_invalid(&self) {
        self.lock().rejected_invalid += 1;
    }

    /// Records a submission refused by the per-client token bucket.
    pub(crate) fn rate_limited(&self) {
        self.lock().rate_limited += 1;
    }

    pub(crate) fn job_started(&self) {
        self.lock().in_flight += 1;
    }

    /// Un-counts an in-flight job whose worker died; the rescue re-push
    /// will count it again when a fresh worker picks it up.
    pub(crate) fn job_abandoned(&self) {
        let mut s = self.lock();
        s.in_flight = s.in_flight.saturating_sub(1);
    }

    /// Records a worker panic (caught in place or fatal to the thread).
    pub(crate) fn worker_panic(&self) {
        self.lock().worker_panics += 1;
    }

    /// Records a dead worker respawned by the supervisor.
    pub(crate) fn worker_restart(&self) {
        self.lock().worker_restarts += 1;
    }

    /// Records a job attempt retried after a panic or timeout.
    pub(crate) fn retry(&self) {
        self.lock().retries += 1;
    }

    /// Records an attempt cancelled by the wall-clock timeout.
    pub(crate) fn job_timeout(&self) {
        self.lock().job_timeouts += 1;
    }

    /// Records a job replayed from the journal at recovery.
    pub(crate) fn recovered(&self) {
        self.lock().recovered += 1;
    }

    /// Records a search job forced down to HEFT by the brownout ladder.
    pub(crate) fn brownout_degraded(&self) {
        self.lock().brownout_degraded += 1;
    }

    /// Records a heavy-lane job shed by the brownout ladder.
    pub(crate) fn brownout_shed(&self) {
        self.lock().brownout_shed += 1;
    }

    /// Records the overload circuit breaker opening.
    pub(crate) fn breaker_opened(&self) {
        self.lock().breaker_opens += 1;
    }

    /// Records a job fast-rejected by the open circuit breaker.
    pub(crate) fn breaker_fast_rejected(&self) {
        self.lock().breaker_fast_rejections += 1;
    }

    /// Accumulates one GA run's evaluation-kernel and memo counters.
    pub(crate) fn ga_run(&self, stats: &GaRunStats) {
        self.lock().ga.absorb(stats);
    }

    /// Records an online arrival admitted by the probability gate.
    pub(crate) fn online_admitted(&self) {
        self.lock().online_admitted += 1;
    }

    /// Records an online arrival rejected by the probability gate.
    pub(crate) fn online_rejected(&self) {
        self.lock().online_rejected += 1;
    }

    /// Records `tasks` optional tasks shed by the drop ladder.
    pub(crate) fn online_shed(&self, tasks: u64) {
        self.lock().online_shed_tasks += tasks;
    }

    /// Records an admitted online job's deadline verdict; `weight` is the
    /// expected work (task count) credited to goodput on a hit.
    pub(crate) fn online_verdict(&self, hit: bool, weight: f64) {
        let mut s = self.lock();
        if hit {
            s.online_hits += 1;
            s.goodput += weight;
        } else {
            s.online_misses += 1;
        }
    }

    /// Records a finished job: its lane latency (seconds, enqueue to
    /// completion), whether it failed, and whether it degraded to meet a
    /// deadline.
    pub(crate) fn job_finished(
        &self,
        lane: Lane,
        latency_secs: f64,
        failed: bool,
        deadline_fallback: bool,
    ) {
        let mut s = self.lock();
        s.in_flight = s.in_flight.saturating_sub(1);
        if failed {
            s.failed += 1;
        } else {
            s.completed += 1;
        }
        if deadline_fallback {
            s.deadline_fallbacks += 1;
        }
        match lane {
            Lane::Express => s.express_latencies.push(latency_secs),
            Lane::Online => s.online_latencies.push(latency_secs),
            Lane::Heavy => s.heavy_latencies.push(latency_secs),
        }
    }

    pub(crate) fn snapshot(
        &self,
        queue_depths: (usize, usize, usize),
        cache_stats: (u64, u64),
        journal_stats: (u64, u64, u64),
        brownout_level: &str,
    ) -> ServiceMetrics {
        let s = self.lock();
        let (cache_hits, cache_misses) = cache_stats;
        let (journal_records, journal_errors, journal_compactions) = journal_stats;
        let looked_up = cache_hits + cache_misses;
        let online_arrived = s.online_admitted + s.online_rejected;
        ServiceMetrics {
            submitted: s.submitted,
            completed: s.completed,
            rejected_full: s.rejected_full,
            rejected_invalid: s.rejected_invalid,
            rate_limited: s.rate_limited,
            failed: s.failed,
            deadline_fallbacks: s.deadline_fallbacks,
            in_flight: s.in_flight,
            online_admitted: s.online_admitted,
            online_rejected: s.online_rejected,
            online_shed_tasks: s.online_shed_tasks,
            online_hits: s.online_hits,
            online_misses: s.online_misses,
            deadline_hit_rate: if online_arrived == 0 {
                0.0
            } else {
                s.online_hits as f64 / online_arrived as f64
            },
            goodput: s.goodput,
            worker_panics: s.worker_panics,
            worker_restarts: s.worker_restarts,
            retries: s.retries,
            job_timeouts: s.job_timeouts,
            recovered: s.recovered,
            brownout_degraded: s.brownout_degraded,
            brownout_shed: s.brownout_shed,
            breaker_opens: s.breaker_opens,
            breaker_fast_rejections: s.breaker_fast_rejections,
            journal_records,
            journal_errors,
            journal_compactions,
            brownout_level: brownout_level.to_owned(),
            queue_depth_express: queue_depths.0,
            queue_depth_online: queue_depths.1,
            queue_depth_heavy: queue_depths.2,
            cache_hits,
            cache_misses,
            cache_hit_rate: if looked_up == 0 {
                0.0
            } else {
                cache_hits as f64 / looked_up as f64
            },
            ga_kernel_evals: s.ga.kernel_evals,
            ga_memo_hits: s.ga.memo_hits,
            ga_memo_hit_rate: s.ga.memo_hit_rate(),
            ga_evals_per_sec: s.ga.evals_per_sec(),
            ga_mc_lane_evals: s.ga.mc_lane_evals,
            ga_delta_evals: s.ga.delta_evals,
            ga_delta_hit_rate: s.ga.delta_hit_rate(),
            ga_suffix_fraction: s.ga.suffix_fraction(),
            express: LaneLatency::from_samples(&s.express_latencies),
            online: LaneLatency::from_samples(&s.online_latencies),
            heavy: LaneLatency::from_samples(&s.heavy_latencies),
        }
    }
}

/// Latency distribution of one lane (seconds, enqueue → completion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneLatency {
    /// Number of jobs finished on this lane.
    pub count: usize,
    /// Median latency.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
}

impl LaneLatency {
    fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let summary = Summary::from_samples(samples.to_vec());
        Self {
            count: summary.len(),
            p50: summary.quantile(0.50),
            p95: summary.quantile(0.95),
            p99: summary.quantile(0.99),
            max: summary.max(),
        }
    }
}

/// A point-in-time snapshot of the service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs finished successfully (including degraded and cache hits).
    pub completed: u64,
    /// Jobs refused by backpressure (a lane at capacity).
    pub rejected_full: u64,
    /// Jobs refused by validation.
    pub rejected_invalid: u64,
    /// Submissions refused by the per-client token bucket.
    pub rate_limited: u64,
    /// Jobs accepted but failed in the scheduler.
    pub failed: u64,
    /// Jobs that degraded (best-so-far or HEFT fallback) to meet a
    /// deadline budget.
    pub deadline_fallbacks: u64,
    /// Jobs currently executing on workers.
    pub in_flight: u64,
    /// Online arrivals admitted by the completion-probability gate.
    pub online_admitted: u64,
    /// Online arrivals rejected by the completion-probability gate.
    pub online_rejected: u64,
    /// Optional tasks shed by the drop ladder across all online jobs.
    pub online_shed_tasks: u64,
    /// Admitted online jobs that met their deadline.
    pub online_hits: u64,
    /// Admitted online jobs that missed their deadline.
    pub online_misses: u64,
    /// `hits / (admitted + rejected)` — rejections count against the
    /// service, exactly as in the offline online-study metric. 0 when no
    /// online job arrived.
    pub deadline_hit_rate: f64,
    /// Expected work (task count) of online jobs that hit their deadline.
    pub goodput: f64,
    /// Worker panics observed (caught in place or fatal to the thread).
    pub worker_panics: u64,
    /// Dead workers respawned by the supervisor.
    pub worker_restarts: u64,
    /// Job attempts retried after a panic or timeout.
    pub retries: u64,
    /// Attempts cancelled by the per-job wall-clock timeout.
    pub job_timeouts: u64,
    /// Jobs replayed from the journal at recovery.
    pub recovered: u64,
    /// Search jobs forced down to HEFT by the brownout ladder.
    pub brownout_degraded: u64,
    /// Heavy-lane jobs shed by the brownout ladder.
    pub brownout_shed: u64,
    /// Times the overload circuit breaker opened.
    pub breaker_opens: u64,
    /// Jobs fast-rejected while the circuit breaker was open.
    pub breaker_fast_rejections: u64,
    /// Journal records persisted.
    pub journal_records: u64,
    /// Journal writes that failed (I/O or injected).
    pub journal_errors: u64,
    /// WAL compactions performed (manual or `--journal-compact-every`).
    pub journal_compactions: u64,
    /// Current brownout rung (`off` when no brownout is configured).
    pub brownout_level: String,
    /// Express-lane queue depth at snapshot time.
    pub queue_depth_express: usize,
    /// Online-lane queue depth at snapshot time.
    pub queue_depth_online: usize,
    /// Heavy-lane queue depth at snapshot time.
    pub queue_depth_heavy: usize,
    /// Schedule-cache hits.
    pub cache_hits: u64,
    /// Schedule-cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when no lookups.
    pub cache_hit_rate: f64,
    /// Full GA evaluation-kernel runs across all completed GA jobs.
    pub ga_kernel_evals: u64,
    /// GA evaluations answered by the fingerprint memo.
    pub ga_memo_hits: u64,
    /// `memo_hits / (memo_hits + kernel_evals)`, 0 when no GA ran.
    pub ga_memo_hit_rate: f64,
    /// Aggregate GA kernel throughput (evaluations per second of
    /// evaluation wall-clock), 0 when no GA ran.
    pub ga_evals_per_sec: f64,
    /// Monte-Carlo realizations evaluated through the batched SoA lanes
    /// (one per realization per robust-GA kernel eval).
    pub ga_mc_lane_evals: u64,
    /// Kernel evaluations served by the delta (suffix) path.
    pub ga_delta_evals: u64,
    /// `delta_evals / kernel_evals`, 0 when no GA ran.
    pub ga_delta_hit_rate: f64,
    /// Mean fraction of the scheduling string re-walked per delta eval
    /// (`suffix_tasks / total_tasks`), 0 when the delta path never fired.
    pub ga_suffix_fraction: f64,
    /// Express-lane latency distribution.
    pub express: LaneLatency,
    /// Online-lane latency distribution.
    pub online: LaneLatency,
    /// Heavy-lane latency distribution.
    pub heavy: LaneLatency,
}

impl ServiceMetrics {
    /// Multi-line human-readable rendering (the `rds serve` shutdown
    /// report).
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "jobs submitted      : {}", self.submitted);
        let _ = writeln!(out, "jobs completed      : {}", self.completed);
        let _ = writeln!(out, "jobs failed         : {}", self.failed);
        let _ = writeln!(out, "rejected (full)     : {}", self.rejected_full);
        let _ = writeln!(out, "rejected (invalid)  : {}", self.rejected_invalid);
        let _ = writeln!(out, "rejected (rate)     : {}", self.rate_limited);
        let _ = writeln!(out, "deadline fallbacks  : {}", self.deadline_fallbacks);
        let _ = writeln!(out, "in flight           : {}", self.in_flight);
        let _ = writeln!(
            out,
            "online admission    : {} admitted / {} rejected / {} tasks shed",
            self.online_admitted, self.online_rejected, self.online_shed_tasks
        );
        let _ = writeln!(
            out,
            "deadline hit rate   : {:.2} ({} hit / {} miss, goodput {:.1})",
            self.deadline_hit_rate, self.online_hits, self.online_misses, self.goodput
        );
        let _ = writeln!(
            out,
            "queue depth         : express {} / online {} / heavy {}",
            self.queue_depth_express, self.queue_depth_online, self.queue_depth_heavy
        );
        let _ = writeln!(
            out,
            "supervision         : {} panics / {} restarts / {} retries / {} timeouts",
            self.worker_panics, self.worker_restarts, self.retries, self.job_timeouts
        );
        let _ = writeln!(
            out,
            "journal             : {} records / {} errors / {} recovered / {} compactions",
            self.journal_records, self.journal_errors, self.recovered, self.journal_compactions
        );
        let _ = writeln!(
            out,
            "brownout            : level {} / {} degraded / {} shed / {} opens / {} fast-rejected",
            self.brownout_level,
            self.brownout_degraded,
            self.brownout_shed,
            self.breaker_opens,
            self.breaker_fast_rejections
        );
        let _ = writeln!(
            out,
            "cache               : {} hits / {} misses (hit rate {:.2})",
            self.cache_hits, self.cache_misses, self.cache_hit_rate
        );
        let _ = writeln!(
            out,
            "ga kernel           : {} evals / {} memo hits (hit rate {:.2}, {:.0} evals/s)",
            self.ga_kernel_evals, self.ga_memo_hits, self.ga_memo_hit_rate, self.ga_evals_per_sec
        );
        let _ = writeln!(
            out,
            "ga batched/delta    : {} mc lanes / {} delta evals (hit rate {:.2}, suffix {:.2})",
            self.ga_mc_lane_evals,
            self.ga_delta_evals,
            self.ga_delta_hit_rate,
            self.ga_suffix_fraction
        );
        for (name, lane) in [
            ("express", &self.express),
            ("online", &self.online),
            ("heavy", &self.heavy),
        ] {
            let _ = writeln!(
                out,
                "{name:<7} latency     : n={} p50={:.4}s p95={:.4}s p99={:.4}s max={:.4}s",
                lane.count, lane.p50, lane.p95, lane.p99, lane.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = MetricsInner::default();
        m.submitted();
        m.submitted();
        m.rejected_full();
        m.rejected_invalid();
        m.rate_limited();
        m.rate_limited();
        m.job_started();
        m.job_finished(Lane::Express, 0.5, false, false);
        m.job_started();
        m.job_finished(Lane::Heavy, 2.0, false, true);
        m.ga_run(&GaRunStats {
            kernel_evals: 75,
            memo_hits: 20,
            memo_collisions: 0,
            eval_nanos: 500,
            delta_evals: 30,
            delta_suffix_tasks: 60,
            delta_total_tasks: 300,
            mc_lane_evals: 1200,
        });
        m.ga_run(&GaRunStats {
            kernel_evals: 25,
            memo_hits: 5,
            memo_collisions: 1,
            eval_nanos: 500,
            delta_evals: 10,
            delta_suffix_tasks: 40,
            delta_total_tasks: 100,
            mc_lane_evals: 400,
        });
        m.online_admitted();
        m.online_admitted();
        m.online_admitted();
        m.online_rejected();
        m.online_shed(4);
        m.online_verdict(true, 30.0);
        m.online_verdict(true, 10.0);
        m.online_verdict(false, 25.0);
        m.worker_panic();
        m.retry();
        m.worker_restart();
        m.job_timeout();
        m.recovered();
        m.brownout_degraded();
        m.brownout_shed();
        m.breaker_opened();
        m.breaker_fast_rejected();
        let snap = m.snapshot((1, 3, 2), (3, 1), (12, 2, 1), "normal");
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.job_timeouts, 1);
        assert_eq!(snap.recovered, 1);
        assert_eq!(snap.brownout_degraded, 1);
        assert_eq!(snap.brownout_shed, 1);
        assert_eq!(snap.breaker_opens, 1);
        assert_eq!(snap.breaker_fast_rejections, 1);
        assert_eq!(snap.journal_records, 12);
        assert_eq!(snap.journal_errors, 2);
        assert_eq!(snap.journal_compactions, 1);
        assert_eq!(snap.brownout_level, "normal");
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected_full, 1);
        assert_eq!(snap.rejected_invalid, 1);
        assert_eq!(snap.rate_limited, 2);
        assert_eq!(snap.deadline_fallbacks, 1);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.online_admitted, 3);
        assert_eq!(snap.online_rejected, 1);
        assert_eq!(snap.online_shed_tasks, 4);
        assert_eq!(snap.online_hits, 2);
        assert_eq!(snap.online_misses, 1);
        // 2 hits over 4 arrivals: the rejection counts against the rate.
        assert!((snap.deadline_hit_rate - 0.5).abs() < 1e-12);
        // Goodput credits hits only.
        assert!((snap.goodput - 40.0).abs() < 1e-12);
        assert_eq!(snap.queue_depth_express, 1);
        assert_eq!(snap.queue_depth_online, 3);
        assert_eq!(snap.queue_depth_heavy, 2);
        assert_eq!(snap.cache_hits, 3);
        assert!((snap.cache_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(snap.express.count, 1);
        assert_eq!(snap.express.p50, 0.5);
        assert_eq!(snap.heavy.max, 2.0);
        assert_eq!(snap.ga_kernel_evals, 100);
        assert_eq!(snap.ga_memo_hits, 25);
        assert!((snap.ga_memo_hit_rate - 0.2).abs() < 1e-12);
        // 100 evals in 1000 ns = 1e8 evals/s.
        assert!((snap.ga_evals_per_sec - 1e8).abs() < 1e-3);
        assert_eq!(snap.ga_mc_lane_evals, 1600);
        assert_eq!(snap.ga_delta_evals, 40);
        // 40 of 100 kernel evals went through the delta path.
        assert!((snap.ga_delta_hit_rate - 0.4).abs() < 1e-12);
        // 100 of 400 prefix+suffix tasks re-walked.
        assert!((snap.ga_suffix_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn failures_count_separately() {
        let m = MetricsInner::default();
        m.job_started();
        m.job_finished(Lane::Express, 0.1, true, false);
        let snap = m.snapshot((0, 0, 0), (0, 0), (0, 0, 0), "off");
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.cache_hit_rate, 0.0);
        assert_eq!(snap.deadline_hit_rate, 0.0);
        assert_eq!(snap.heavy.count, 0);
        assert_eq!(snap.online.count, 0);
    }

    #[test]
    fn pretty_string_mentions_key_lines() {
        let m = MetricsInner::default();
        let s = m
            .snapshot((0, 0, 0), (0, 0), (0, 0, 0), "off")
            .to_pretty_string();
        assert!(s.contains("cache"));
        assert!(s.contains("supervision"));
        assert!(s.contains("journal"));
        assert!(s.contains("brownout"));
        assert!(s.contains("ga kernel"));
        assert!(s.contains("ga batched/delta"));
        assert!(s.contains("express latency"));
        assert!(s.contains("online  latency"));
        assert!(s.contains("rejected (full)"));
        assert!(s.contains("rejected (rate)"));
        assert!(s.contains("online admission"));
        assert!(s.contains("deadline hit rate"));
    }
}

//! Correlation coefficients.
//!
//! The paper's first experimental question is whether *slack is an
//! effective metric to control robustness* (§5, question 1). The
//! experiment harness answers it quantitatively by correlating the average
//! slack of schedules with their measured robustness across random
//! schedules — Pearson for linear association, Spearman for monotone
//! association (robust to the nonlinear `1/E[δ]` shape of `R1`).

/// Pearson product-moment correlation of two equally long samples.
///
/// Returns `NaN` when either sample has zero variance or fewer than two
/// points.
///
/// # Panics
/// Panics when the slices have different lengths.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must pair up");
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Spearman rank correlation: Pearson over fractional ranks (ties get the
/// average rank).
///
/// # Panics
/// Panics when the slices have different lengths.
#[must_use]
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must pair up");
    pearson(&ranks(xs), &ranks(ys))
}

/// Fractional ranks (1-based; ties averaged).
///
/// # Panics
/// Panics when a value is `NaN` (ranks are undefined).
#[must_use]
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    assert!(xs.iter().all(|x| !x.is_nan()), "ranks need non-NaN values");
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < n && xs[idx[j]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank of the group (1-based).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            out[k] = avg;
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_is_small() {
        // Deterministic pseudo-random pairing.
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let ys: Vec<f64> = (0..500).map(|i| ((i * 53) % 97) as f64).collect();
        assert!(pearson(&xs, &ys).abs() < 0.15);
    }

    #[test]
    fn pearson_edge_cases() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan()); // zero variance
        assert!(pearson(&[], &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect(); // nonlinear, monotone
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        // Pearson is below 1 for the same data.
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_of_sorted_input() {
        let r = ranks(&[5.0, 6.0, 7.0]);
        assert_eq!(r, vec![1.0, 2.0, 3.0]);
        let r = ranks(&[7.0, 6.0, 5.0]);
        assert_eq!(r, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn spearman_reversed_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [9.0, 7.0, 5.0, 1.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }
}

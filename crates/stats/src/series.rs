//! Helpers for the log-ratio series plotted in the paper's figures.
//!
//! Figures 2 and 3 plot the *log ratio of the change relative to step 0* of
//! makespan, slack and robustness along GA evolution; Figure 4 plots the
//! *log ratio of relative improvement over HEFT*. These are thin numeric
//! helpers, centralized so every experiment uses the same convention
//! (natural logarithm — at `UL = 2` the paper reports a 13% `R1`
//! improvement plotted near 0.12, i.e. `ln 1.13 ≈ 0.1222`).

/// Natural-log ratio `ln(value / reference)`.
///
/// Returns `NaN` when either operand is non-positive or non-finite — the
/// figures only ever take ratios of strictly positive metrics (makespans,
/// slacks, robustnesses), so anything else indicates an upstream bug and is
/// surfaced as `NaN` rather than ±inf noise.
#[must_use]
pub fn log_ratio(value: f64, reference: f64) -> f64 {
    if value > 0.0 && reference > 0.0 && value.is_finite() && reference.is_finite() {
        (value / reference).ln()
    } else {
        f64::NAN
    }
}

/// Relative improvement `(value - reference) / reference`.
#[must_use]
pub fn relative_improvement(value: f64, reference: f64) -> f64 {
    if reference != 0.0 && value.is_finite() && reference.is_finite() {
        (value - reference) / reference
    } else {
        f64::NAN
    }
}

/// A labelled series of `(x, y)` points, the common currency of the figure
/// generators (one series per uncertainty level / metric).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label, e.g. `"UL=2.0,Makespan"`.
    pub label: String,
    /// The `(x, y)` points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Last y value, if any.
    #[must_use]
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// `true` when consecutive y values never decrease by more than `tol`
    /// (used by tests asserting "shape" properties such as monotone
    /// improvement with ε).
    #[must_use]
    pub fn is_non_decreasing_within(&self, tol: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - tol)
    }

    /// Renders the series as CSV rows `label,x,y`. Non-finite values
    /// (R1/R2 are +∞ when no realization misses the bound; means over an
    /// empty set are NaN) are written as the sentinel [`NA`] so the CSV
    /// stays loadable by spreadsheet tools and round-trips through
    /// parsers that reject `inf`/`NaN` literals.
    pub fn to_csv_rows(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.points.len() * 32);
        for &(x, y) in &self.points {
            let _ = write!(out, "{},", self.label);
            match (x.is_finite(), y.is_finite()) {
                (true, true) => {
                    let _ = writeln!(out, "{x},{y}");
                }
                (true, false) => {
                    let _ = writeln!(out, "{x},{NA}");
                }
                (false, true) => {
                    let _ = writeln!(out, "{NA},{y}");
                }
                (false, false) => {
                    let _ = writeln!(out, "{NA},{NA}");
                }
            }
        }
        out
    }
}

/// CSV sentinel for non-finite values (infinite robustness, empty means).
/// Readers map it back to `NaN`; the direction of an infinity is not
/// preserved, which is fine — every figure treats "no data" uniformly.
pub const NA: &str = "NA";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_ratio_basic() {
        assert!((log_ratio(std::f64::consts::E, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(log_ratio(2.0, 2.0), 0.0);
        assert!(log_ratio(2.0, 1.0) > 0.0);
        assert!(log_ratio(1.0, 2.0) < 0.0);
    }

    #[test]
    fn log_ratio_guards_invalid_inputs() {
        assert!(log_ratio(0.0, 1.0).is_nan());
        assert!(log_ratio(1.0, 0.0).is_nan());
        assert!(log_ratio(-1.0, 1.0).is_nan());
        assert!(log_ratio(f64::INFINITY, 1.0).is_nan());
        assert!(log_ratio(1.0, f64::NAN).is_nan());
    }

    #[test]
    fn relative_improvement_basic() {
        assert!((relative_improvement(1.13, 1.0) - 0.13).abs() < 1e-12);
        assert!((relative_improvement(0.5, 1.0) + 0.5).abs() < 1e-12);
        assert!(relative_improvement(1.0, 0.0).is_nan());
    }

    #[test]
    fn paper_calibration_thirteen_percent() {
        // §5.2: "at UL = 2, the robustness is increased by 13%" with the
        // figure showing ~0.12 — consistent with the natural log.
        let y = log_ratio(1.13, 1.0);
        assert!((y - 0.1222).abs() < 1e-3, "{y}");
    }

    #[test]
    fn series_accumulates_and_reports() {
        let mut s = Series::new("UL=2.0,Makespan");
        s.push(0.0, 1.0);
        s.push(1.0, 1.5);
        s.push(2.0, 1.4);
        assert_eq!(s.last_y(), Some(1.4));
        assert!(s.is_non_decreasing_within(0.2));
        assert!(!s.is_non_decreasing_within(0.0));
        let csv = s.to_csv_rows();
        assert!(csv.contains("UL=2.0,Makespan,0,1"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_rows_use_na_for_non_finite() {
        let mut s = Series::new("R1");
        s.push(2.0, f64::INFINITY);
        s.push(4.0, f64::NAN);
        s.push(6.0, 1.5);
        let csv = s.to_csv_rows();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["R1,2,NA", "R1,4,NA", "R1,6,1.5"]);
    }
}

//! Dense row-major matrix used throughout the workspace.
//!
//! The paper manipulates four matrices: the data-size matrix `D` (n×n), the
//! best-case execution time matrix `B` (n×m), the uncertainty-level matrix
//! `UL` (n×m) and the transfer-rate matrix `TR` (m×m). All are small and
//! dense, so a flat `Vec<f64>` with row-major indexing is the right
//! representation: contiguous, cache-friendly, no per-row allocation.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
///
/// Indexing is `(row, col)`; both [`Index`] and checked accessors are
/// provided. Rows are contiguous in memory.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with `fill`.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn filled(rows: usize, cols: usize, fill: f64) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![fill; len],
        }
    }

    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Builds a matrix from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a square matrix from nested arrays (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have equal length"
        );
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Checked access; returns `None` when out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets a cell, panicking on out-of-bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] = value;
    }

    /// A view of row `row` as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        let start = row * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable view of row `row`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        let start = row * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// Mean of all entries; `NaN` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            f64::NAN
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Mean of one row (the per-task average execution cost used by HEFT's
    /// upward rank, for instance).
    pub fn row_mean(&self, row: usize) -> f64 {
        let r = self.row(row);
        if r.is_empty() {
            f64::NAN
        } else {
            r.iter().sum::<f64>() / r.len() as f64
        }
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination of two equally sized matrices.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `true` when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// `true` when every entry is strictly positive.
    pub fn all_positive(&self) -> bool {
        self.data.iter().all(|&v| v > 0.0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.3}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_zeros() {
        let m = Matrix::filled(2, 3, 1.5);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 1.5));
        let z = Matrix::zeros(4, 4);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_indexing() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(2, 3)], 23.0);
        assert_eq!(m.get(2, 3), Some(23.0));
        assert_eq!(m.get(3, 0), None);
        assert_eq!(m.get(0, 4), None);
    }

    #[test]
    fn from_rows_builds_expected_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn row_mean_and_mean() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[5.0, 7.0]]);
        assert_eq!(m.row_mean(0), 2.0);
        assert_eq!(m.row_mean(1), 6.0);
        assert_eq!(m.mean(), 4.0);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(a.map(|v| v * 2.0).row(0), &[2.0, 4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).row(0), &[11.0, 22.0]);
    }

    #[test]
    fn iter_visits_every_cell() {
        let m = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let cells: Vec<_> = m.iter().collect();
        assert_eq!(
            cells,
            vec![(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)]
        );
    }

    #[test]
    fn finite_and_positive_checks() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert!(m.all_finite());
        assert!(m.all_positive());
        let bad = Matrix::from_rows(&[&[1.0, f64::NAN]]);
        assert!(!bad.all_finite());
        let zero = Matrix::from_rows(&[&[1.0, 0.0]]);
        assert!(!zero.all_positive());
    }

    #[test]
    fn row_mut_updates_in_place() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m[(1, 0)], 9.0);
    }
}

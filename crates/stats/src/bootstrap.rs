//! Non-parametric bootstrap confidence intervals.
//!
//! Monte Carlo robustness studies compare arms (static / dynamic /
//! adaptive) on summary statistics — effective mean makespan, deadline
//! miss rate — whose sampling distributions are skewed and partly
//! discrete (a miss rate is a mean of indicators, an effective mean mixes
//! completed makespans with a fixed failure penalty). The percentile
//! bootstrap makes those comparisons honest without distributional
//! assumptions: resample the realizations with replacement, recompute the
//! statistic per resample, and report the empirical `[α/2, 1-α/2]`
//! quantiles.
//!
//! All resampling is driven by an explicit seed so figures are
//! reproducible bit-for-bit.

use crate::rng::rng_from_seed;
use rand::Rng;

/// A two-sided confidence interval from a percentile bootstrap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// The statistic on the original (un-resampled) sample.
    pub point: f64,
}

impl BootstrapCi {
    /// Half the interval width.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Whether `value` lies inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Whether this interval and `other` share no point — the
    /// bootstrap's notion of a clear separation between two arms.
    #[must_use]
    pub fn disjoint_from(&self, other: &BootstrapCi) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Draws `resamples` bootstrap samples (with replacement, same size as
/// `samples`) from `samples`, applies `stat` to each, and returns the
/// empirical `[α/2, 1-α/2]` percentile interval at confidence
/// `confidence` (e.g. `0.95`). The resampling RNG is derived from `seed`,
/// so results are deterministic.
///
/// Returns `None` when `samples` is empty or `resamples` is zero.
///
/// # Panics
/// Panics if `confidence` is outside `(0, 1)` or `stat` returns NaN on a
/// resample.
pub fn bootstrap_ci<F>(
    samples: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
    stat: F,
) -> Option<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must lie in (0, 1), got {confidence}"
    );
    if samples.is_empty() || resamples == 0 {
        return None;
    }
    let point = stat(samples);
    let mut rng = rng_from_seed(seed);
    let n = samples.len();
    let mut scratch = vec![0.0f64; n];
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in &mut scratch {
            *slot = samples[rng.gen_range(0..n)];
        }
        let s = stat(&scratch);
        assert!(
            !s.is_nan(),
            "statistic returned NaN on a bootstrap resample"
        );
        stats.push(s);
    }
    stats.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    Some(BootstrapCi {
        lo: percentile(&stats, alpha / 2.0),
        hi: percentile(&stats, 1.0 - alpha / 2.0),
        point,
    })
}

/// 95% percentile-bootstrap interval for the sample mean.
///
/// Convenience wrapper over [`bootstrap_ci`] with the mean as statistic
/// and confidence fixed at 0.95. Returns `None` on an empty sample.
#[must_use]
pub fn bootstrap_mean_ci95(samples: &[f64], resamples: usize, seed: u64) -> Option<BootstrapCi> {
    bootstrap_ci(samples, resamples, 0.95, seed, mean)
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Linear-interpolation percentile of an already-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_brackets_the_point_estimate() {
        let samples: Vec<f64> = (0..200).map(|i| f64::from(i) * 0.1).collect();
        let ci = bootstrap_mean_ci95(&samples, 500, 42).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.contains(ci.point));
        assert!(ci.half_width() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let samples: Vec<f64> = (0..50).map(|i| f64::from(i).sin()).collect();
        let a = bootstrap_mean_ci95(&samples, 200, 7).unwrap();
        let b = bootstrap_mean_ci95(&samples, 200, 7).unwrap();
        assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        let c = bootstrap_mean_ci95(&samples, 200, 8).unwrap();
        assert!(a.lo.to_bits() != c.lo.to_bits() || a.hi.to_bits() != c.hi.to_bits());
    }

    #[test]
    fn degenerate_sample_gives_zero_width() {
        let samples = vec![3.5; 40];
        let ci = bootstrap_mean_ci95(&samples, 100, 1).unwrap();
        assert_eq!(ci.lo, 3.5);
        assert_eq!(ci.hi, 3.5);
        assert_eq!(ci.point, 3.5);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn empty_sample_yields_none() {
        assert!(bootstrap_mean_ci95(&[], 100, 0).is_none());
        assert!(bootstrap_mean_ci95(&[1.0], 0, 0).is_none());
    }

    #[test]
    fn narrows_with_sample_size() {
        // CLT sanity: quadrupling the sample should roughly halve the CI.
        let small: Vec<f64> = (0..50).map(|i| f64::from(i % 10)).collect();
        let large: Vec<f64> = (0..800).map(|i| f64::from(i % 10)).collect();
        let ci_s = bootstrap_mean_ci95(&small, 400, 3).unwrap();
        let ci_l = bootstrap_mean_ci95(&large, 400, 3).unwrap();
        assert!(ci_l.half_width() < ci_s.half_width());
    }

    #[test]
    fn miss_rate_statistic_stays_in_unit_interval() {
        // Indicator resampling — the miss-rate use case.
        let indicators: Vec<f64> = (0..100).map(|i| f64::from(u8::from(i % 5 == 0))).collect();
        let ci = bootstrap_ci(&indicators, 300, 0.95, 11, |xs| {
            xs.iter().sum::<f64>() / xs.len() as f64
        })
        .unwrap();
        assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
        assert!((ci.point - 0.2).abs() < 1e-12);
        assert!(ci.contains(0.2));
    }

    #[test]
    fn disjoint_intervals_detected() {
        let a = BootstrapCi {
            lo: 0.0,
            hi: 1.0,
            point: 0.5,
        };
        let b = BootstrapCi {
            lo: 2.0,
            hi: 3.0,
            point: 2.5,
        };
        let c = BootstrapCi {
            lo: 0.5,
            hi: 2.5,
            point: 1.5,
        };
        assert!(a.disjoint_from(&b));
        assert!(b.disjoint_from(&a));
        assert!(!a.disjoint_from(&c));
        assert!(!b.disjoint_from(&c));
    }
}

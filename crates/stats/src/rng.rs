//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component in the workspace (graph generation, matrix
//! generation, GA operators, Monte Carlo realizations) takes an explicit
//! 64-bit seed. Experiments fan out *sub-seeds* with [`split_seed`]
//! (SplitMix64 finalizer), so that:
//!
//! * the same top-level seed reproduces the same experiment bit-for-bit;
//! * parallel iterations (rayon) each derive their own independent stream
//!   from `(seed, index)` and results do not depend on thread scheduling.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The concrete RNG used across the workspace.
///
/// `SmallRng` (xoshiro-family) is fast, non-cryptographic and perfectly
/// adequate for simulation workloads; it is seeded from a `u64` so streams
/// stay reproducible.
pub type StdRng64 = SmallRng;

/// Creates the workspace RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng64 {
    StdRng64::seed_from_u64(seed)
}

/// SplitMix64 finalizer: maps `(seed, index)` to a well-mixed sub-seed.
///
/// This is the standard SplitMix64 output function applied to
/// `seed + (index+1) * GOLDEN_GAMMA`; distinct `(seed, index)` pairs yield
/// effectively independent streams.
#[must_use]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stream of deterministically derived sub-seeds.
///
/// `SeedStream` is how an experiment hands independent randomness to each of
/// its components:
///
/// ```
/// use rds_stats::rng::SeedStream;
/// let mut seeds = SeedStream::new(42);
/// let graph_seed = seeds.next_seed();
/// let matrix_seed = seeds.next_seed();
/// assert_ne!(graph_seed, matrix_seed);
/// // Indexed access for parallel fan-out:
/// let per_item = SeedStream::new(42).nth_seed(17);
/// ```
#[derive(Debug, Clone)]
pub struct SeedStream {
    seed: u64,
    index: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, index: 0 }
    }

    /// Returns the next sub-seed, advancing the stream.
    pub fn next_seed(&mut self) -> u64 {
        let s = split_seed(self.seed, self.index);
        self.index += 1;
        s
    }

    /// Returns the next RNG, advancing the stream.
    pub fn next_rng(&mut self) -> StdRng64 {
        rng_from_seed(self.next_seed())
    }

    /// Random access: the sub-seed at position `n` (independent of how far
    /// the stream has advanced). Used for parallel fan-out where item `n`
    /// must always see the same stream regardless of execution order.
    #[must_use]
    pub fn nth_seed(&self, n: u64) -> u64 {
        split_seed(self.seed, n)
    }

    /// Random access RNG at position `n`.
    #[must_use]
    pub fn nth_rng(&self, n: u64) -> StdRng64 {
        rng_from_seed(self.nth_seed(n))
    }

    /// Derives a child stream for a named subsystem. The label is hashed
    /// (FNV-1a) into the branch index so call sites are self-documenting and
    /// adding a new branch does not shift existing ones.
    #[must_use]
    pub fn branch(&self, label: &str) -> SeedStream {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SeedStream::new(split_seed(self.seed, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(1, 2), split_seed(1, 2));
        assert_ne!(split_seed(1, 2), split_seed(1, 3));
        assert_ne!(split_seed(1, 2), split_seed(2, 2));
    }

    #[test]
    fn split_seed_has_no_obvious_collisions() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for seed in 0..64u64 {
            for idx in 0..64u64 {
                assert!(
                    seen.insert(split_seed(seed, idx)),
                    "collision at {seed},{idx}"
                );
            }
        }
    }

    #[test]
    fn seed_stream_sequential_matches_nth() {
        let mut s = SeedStream::new(7);
        let a = s.next_seed();
        let b = s.next_seed();
        let fresh = SeedStream::new(7);
        assert_eq!(a, fresh.nth_seed(0));
        assert_eq!(b, fresh.nth_seed(1));
    }

    #[test]
    fn rngs_from_same_seed_agree() {
        let mut r1 = rng_from_seed(99);
        let mut r2 = rng_from_seed(99);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn branch_is_stable_and_distinct() {
        let root = SeedStream::new(5);
        let g1 = root.branch("graphs").nth_seed(0);
        let g2 = root.branch("graphs").nth_seed(0);
        let m = root.branch("matrices").nth_seed(0);
        assert_eq!(g1, g2);
        assert_ne!(g1, m);
    }

    #[test]
    fn nth_rng_streams_differ() {
        let s = SeedStream::new(3);
        let x: u64 = s.nth_rng(0).gen();
        let y: u64 = s.nth_rng(1).gen();
        assert_ne!(x, y);
    }
}

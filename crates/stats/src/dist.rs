//! Probability distributions used by the paper's workload generators.
//!
//! The allowed offline crate set does not include `rand_distr`, so the gamma
//! sampler is implemented here from scratch using the Marsaglia–Tsang
//! squeeze method (ACM TOMS 2000), with Ahrens–Dieter style boosting for
//! shape < 1. The parameterization follows §5 of the paper:
//! `G(1/V², μ·V²)` is a gamma with **mean μ** and **coefficient of variation
//! V**, which is exactly the form used by the COV-based matrix generation
//! method of Ali et al.

use rand::Rng;

/// Gamma distribution `Γ(shape k, scale θ)` with density
/// `x^{k-1} e^{-x/θ} / (Γ(k) θ^k)`.
///
/// Mean is `k·θ`, variance `k·θ²`, coefficient of variation `1/√k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma from shape/scale.
    ///
    /// # Errors
    /// Returns `Err` when either parameter is non-finite or non-positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(DistError::InvalidShape(shape));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(DistError::InvalidScale(scale));
        }
        Ok(Self { shape, scale })
    }

    /// The paper's parameterization `G(1/V², μ·V²)`: a gamma with mean
    /// `mean` and coefficient of variation `cov`.
    ///
    /// # Errors
    /// Returns `Err` when `mean` or `cov` is non-finite or non-positive.
    pub fn with_mean_cov(mean: f64, cov: f64) -> Result<Self, DistError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::InvalidMean(mean));
        }
        if !(cov.is_finite() && cov > 0.0) {
            return Err(DistError::InvalidCov(cov));
        }
        let v2 = cov * cov;
        Self::new(1.0 / v2, mean * v2)
    }

    /// Shape parameter `k`.
    #[inline]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Distribution mean `k·θ`.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Coefficient of variation `1/√k`.
    #[inline]
    pub fn cov(&self) -> f64 {
        1.0 / self.shape.sqrt()
    }

    /// Draws one sample.
    ///
    /// Marsaglia–Tsang for `k ≥ 1`; for `k < 1` sample with shape `k+1` and
    /// apply the boosting transform `x · u^{1/k}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let k = self.shape;
        if k < 1.0 {
            // Boost: if Y ~ Γ(k+1, 1) and U ~ U(0,1), then Y·U^{1/k} ~ Γ(k, 1).
            let y = sample_shape_ge1(k + 1.0, rng);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            y * u.powf(1.0 / k) * self.scale
        } else {
            sample_shape_ge1(k, rng) * self.scale
        }
    }

    /// Draws `n` samples into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Marsaglia–Tsang sampler for unit-scale gamma with shape `k ≥ 1`.
fn sample_shape_ge1<R: Rng + ?Sized>(k: f64, rng: &mut R) -> f64 {
    debug_assert!(k >= 1.0);
    let d = k - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Marsaglia polar method.
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        // Squeeze acceptance, then full acceptance test.
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Standard normal deviate via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// A uniform distribution over `[lo, hi]` that tolerates the degenerate case
/// `lo == hi` (which the paper's realization law hits when `UL = 1`, i.e. no
/// uncertainty: `U(b, (2·1−1)b) = U(b,b)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates the distribution.
    ///
    /// # Errors
    /// Returns `Err` if bounds are non-finite or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(DistError::InvalidRange { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Distribution mean `(lo+hi)/2`.
    #[inline]
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Draws one sample (returns `lo` exactly when the range is degenerate).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.hi <= self.lo {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Exponential deviate with the given mean (`mean·(−ln U)`), `0` when
/// `mean <= 0`.
pub fn exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Errors produced by distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistError {
    /// Shape parameter was non-finite or non-positive.
    InvalidShape(f64),
    /// Scale parameter was non-finite or non-positive.
    InvalidScale(f64),
    /// Mean was non-finite or non-positive.
    InvalidMean(f64),
    /// Coefficient of variation was non-finite or non-positive.
    InvalidCov(f64),
    /// Uniform bounds were invalid.
    InvalidRange {
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidShape(v) => write!(f, "invalid gamma shape {v}"),
            DistError::InvalidScale(v) => write!(f, "invalid gamma scale {v}"),
            DistError::InvalidMean(v) => write!(f, "invalid mean {v}"),
            DistError::InvalidCov(v) => write!(f, "invalid coefficient of variation {v}"),
            DistError::InvalidRange { lo, hi } => write!(f, "invalid uniform range [{lo},{hi}]"),
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::OnlineStats;
    use crate::rng::rng_from_seed;

    fn sample_stats(g: Gamma, n: usize, seed: u64) -> OnlineStats {
        let mut rng = rng_from_seed(seed);
        let mut st = OnlineStats::new();
        for _ in 0..n {
            st.push(g.sample(&mut rng));
        }
        st
    }

    #[test]
    fn mean_cov_parameterization_roundtrip() {
        let g = Gamma::with_mean_cov(20.0, 0.5).unwrap();
        assert!((g.mean() - 20.0).abs() < 1e-12);
        assert!((g.cov() - 0.5).abs() < 1e-12);
        assert!((g.shape() - 4.0).abs() < 1e-12);
        assert!((g.scale() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::with_mean_cov(-5.0, 0.5).is_err());
        assert!(Gamma::with_mean_cov(5.0, 0.0).is_err());
        assert!(UniformRange::new(2.0, 1.0).is_err());
        assert!(UniformRange::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn gamma_sample_mean_converges_shape_ge1() {
        // mean 20, CoV 0.5 -> shape 4 (Marsaglia–Tsang path).
        let st = sample_stats(Gamma::with_mean_cov(20.0, 0.5).unwrap(), 200_000, 11);
        assert!((st.mean() - 20.0).abs() < 0.15, "mean {}", st.mean());
        let cov = st.std_dev() / st.mean();
        assert!((cov - 0.5).abs() < 0.02, "cov {cov}");
    }

    #[test]
    fn gamma_sample_mean_converges_shape_lt1() {
        // CoV 2 -> shape 0.25 (boosting path).
        let st = sample_stats(Gamma::with_mean_cov(10.0, 2.0).unwrap(), 400_000, 13);
        assert!((st.mean() - 10.0).abs() < 0.4, "mean {}", st.mean());
        let cov = st.std_dev() / st.mean();
        assert!((cov - 2.0).abs() < 0.1, "cov {cov}");
    }

    #[test]
    fn gamma_samples_are_positive() {
        let g = Gamma::with_mean_cov(1.0, 0.5).unwrap();
        let mut rng = rng_from_seed(1);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn uniform_degenerate_range_returns_bound() {
        let u = UniformRange::new(3.0, 3.0).unwrap();
        let mut rng = rng_from_seed(2);
        assert_eq!(u.sample(&mut rng), 3.0);
    }

    #[test]
    fn uniform_stays_in_bounds_and_mean_converges() {
        let u = UniformRange::new(5.0, 15.0).unwrap();
        let mut rng = rng_from_seed(3);
        let mut st = OnlineStats::new();
        for _ in 0..100_000 {
            let x = u.sample(&mut rng);
            assert!((5.0..15.0).contains(&x));
            st.push(x);
        }
        assert!((st.mean() - 10.0).abs() < 0.05);
    }

    #[test]
    fn realization_law_mean_is_ul_times_bcet() {
        // The paper: c ~ U(b, (2UL-1)b) has mean UL*b.
        let b = 7.0;
        let ul = 3.0;
        let u = UniformRange::new(b, (2.0 * ul - 1.0) * b).unwrap();
        assert!((u.mean() - ul * b).abs() < 1e-12);
    }
}

//! Statistics substrate for the `rds` workspace.
//!
//! The paper's evaluation methodology (Shi, Jeannot & Dongarra, CLUSTER 2006,
//! §5) relies on three statistical building blocks that this crate provides
//! from scratch:
//!
//! * **Gamma sampling** with the mean/coefficient-of-variation
//!   parameterization `G(1/V², μ·V²)` used by the COV-based matrix generation
//!   method of Ali et al. (HCW 2000) — see [`dist::Gamma`].
//! * **Seeded, splittable RNG streams** so that every experiment is
//!   reproducible and parallel iterations draw from independent,
//!   deterministically derived streams — see [`rng`].
//! * **Descriptive statistics** (online mean/variance, quantiles, summaries)
//!   used to aggregate Monte Carlo realizations — see [`describe`].
//!
//! It also provides the dense row-major [`Matrix`] type shared by the BCET
//! matrix `B`, the uncertainty-level matrix `UL`, the data-size matrix `D`
//! and the transfer-rate matrix `TR`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bootstrap;
pub mod corr;
pub mod describe;
pub mod dist;
pub mod histogram;
pub mod matrix;
pub mod rng;
pub mod series;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci95, BootstrapCi};
pub use corr::{pearson, spearman};
pub use describe::{OnlineStats, Summary};
pub use dist::{Gamma, UniformRange};
pub use histogram::Histogram;
pub use matrix::Matrix;
pub use rng::{split_seed, SeedStream, StdRng64};

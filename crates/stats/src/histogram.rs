//! Fixed-bin histograms with terminal rendering.
//!
//! Used by the CLI's `eval` command to show the realized-makespan
//! distribution at a glance, and available to any consumer of Monte Carlo
//! outputs.

/// A histogram over `[lo, hi]` with equal-width bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics when `bins == 0` or the range is degenerate/non-finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi}]"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram spanning the sample range (plus 0.1% margin so
    /// the max lands inside the last bin).
    ///
    /// # Panics
    /// Panics for empty or non-finite samples.
    #[must_use]
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "need samples");
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo.is_finite() && hi.is_finite(), "samples must be finite");
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mut h = Self::new(lo, hi + span * 1e-3, bins);
        for &x in samples {
            h.push(x);
        }
        h
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let last = self.counts.len() - 1;
            let bin = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            self.counts[bin.min(last)] += 1;
        }
    }

    /// Bin counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations (including under/overflow).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    #[inline]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's end.
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// One-line Unicode sparkline (`▁▂▃▄▅▆▇█`), one glyph per bin.
    #[must_use]
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return GLYPHS[0].to_string().repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| {
                let level = (c as f64 / max as f64 * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[level]
            })
            .collect()
    }

    /// Multi-line bar rendering with counts.
    #[must_use]
    pub fn to_text(&self, bar_width: usize) -> String {
        use std::fmt::Write as _;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let bin_w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.lo + bin_w * i as f64;
            let bar = "#".repeat((c as f64 / max as f64 * bar_width as f64).round() as usize);
            let _ = writeln!(out, "{lo:>12.2} | {bar} {c}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_count_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.9] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.0); // hi is exclusive
        h.push(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn from_samples_covers_extremes() {
        let xs = [3.0, 7.0, 7.0, 11.0];
        let h = Histogram::from_samples(&xs, 4);
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow() + h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn sparkline_shape() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for _ in 0..8 {
            h.push(0.5);
        }
        h.push(1.5);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('█'));
        assert!(s.ends_with('▁'));
    }

    #[test]
    fn empty_sparkline_is_flat() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.sparkline(), "▁▁▁▁");
    }

    #[test]
    fn text_rendering() {
        let h = Histogram::from_samples(&[1.0, 1.0, 2.0], 2);
        let t = h.to_text(10);
        assert_eq!(t.lines().count(), 2);
        assert!(t.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn degenerate_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}

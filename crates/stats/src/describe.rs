//! Descriptive statistics for Monte Carlo aggregation.
//!
//! The robustness metrics of the paper are expectations over realizations
//! (`R1 = 1/E[δ]`) and empirical rates (`R2 = 1/α`), so the experiment
//! harness needs numerically stable online mean/variance ([`OnlineStats`],
//! Welford's algorithm) and order statistics over collected samples
//! ([`Summary`]).

/// Welford online mean/variance accumulator.
///
/// Single pass, numerically stable, O(1) memory. Merging two accumulators is
/// supported so parallel shards can be combined deterministically.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation from an iterator.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Builds an accumulator from an iterator (alias of the
    /// [`FromIterator`] impl, kept for call-site readability).
    #[allow(clippy::should_implement_trait)] // the trait IS implemented below
    pub fn from_iter(xs: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        s.extend(xs);
        s
    }

    /// Merges another accumulator (Chan et al. parallel variance).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` with fewer than 2 observations).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean (`NaN` with fewer than 2 observations).
    #[inline]
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// 95% confidence half-width of the mean, using Student's t for small
    /// samples (two-sided, linear interpolation over a small quantile
    /// table) and 1.96 beyond 30 degrees of freedom. `NaN` with fewer
    /// than 2 observations.
    #[must_use]
    pub fn mean_ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return f64::NAN;
        }
        t_quantile_975(self.n - 1) * self.std_error()
    }
}

/// Two-sided 97.5% Student t quantile for `df` degrees of freedom.
fn t_quantile_975(df: u64) -> f64 {
    // Exact-enough table for df 1..30; 1.96 asymptote beyond.
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, //
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, //
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::NAN
    } else if df <= 30 {
        TABLE[(df - 1) as usize]
    } else {
        1.96
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(xs: I) -> Self {
        let mut s = Self::new();
        s.extend(xs);
        s
    }
}

/// An owning summary of a sample: mean, spread, and quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: OnlineStats,
}

impl Summary {
    /// Builds a summary from samples. `NaN`s are rejected.
    ///
    /// # Panics
    /// Panics when a sample is `NaN` — metrics feeding a summary must be
    /// well-defined numbers.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "Summary samples must not contain NaN"
        );
        let stats = OnlineStats::from_iter(samples.iter().copied());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Self {
            sorted: samples,
            stats,
        }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the summary has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sample mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Minimum.
    #[inline]
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Maximum.
    #[inline]
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Linear-interpolated quantile, `q ∈ [0,1]` (`NaN` when empty).
    ///
    /// # Panics
    /// Panics when `q` is outside `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Median (0.5 quantile).
    #[inline]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples strictly greater than `threshold` — this is the
    /// paper's *miss rate* `α` when `threshold = M₀`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        // sorted, so binary search for the first element > threshold.
        let idx = self.sorted.partition_point(|&x| x <= threshold);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// The sorted samples.
    #[inline]
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_variance_match_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let st = OnlineStats::from_iter(xs.iter().copied());
        assert_eq!(st.count(), 8);
        assert!((st.mean() - 5.0).abs() < 1e-12);
        // two-pass variance
        let var = xs.iter().map(|x| (x - 5.0f64).powi(2)).sum::<f64>() / 7.0;
        assert!((st.variance() - var).abs() < 1e-12);
        assert_eq!(st.min(), 2.0);
        assert_eq!(st.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_nan() {
        let st = OnlineStats::new();
        assert!(st.mean().is_nan());
        assert!(st.variance().is_nan());
        assert_eq!(st.count(), 0);
    }

    #[test]
    fn single_observation_variance_is_nan() {
        let st = OnlineStats::from_iter([3.0]);
        assert_eq!(st.mean(), 3.0);
        assert!(st.variance().is_nan());
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let seq = OnlineStats::from_iter(xs.iter().copied());
        let mut a = OnlineStats::from_iter(xs[..37].iter().copied());
        let b = OnlineStats::from_iter(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::from_iter([1.0, 2.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn confidence_interval_half_width() {
        // n=4, sd=1: half width = t_3 * 1/2 = 3.182 / 2.
        let xs = [9.0, 10.0, 10.0, 11.0];
        let st = OnlineStats::from_iter(xs.iter().copied());
        let sd = st.std_dev();
        let expect = 3.182 * sd / 2.0;
        assert!((st.mean_ci95_half_width() - expect).abs() < 1e-9);
        // Large samples approach the normal quantile.
        let big = OnlineStats::from_iter((0..1000).map(|i| (i % 7) as f64));
        let hw = big.mean_ci95_half_width();
        assert!((hw - 1.96 * big.std_error()).abs() < 1e-12);
        // Degenerate cases.
        assert!(OnlineStats::from_iter([1.0])
            .mean_ci95_half_width()
            .is_nan());
    }

    #[test]
    fn summary_quantiles() {
        let s = Summary::from_samples(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.quantile(0.25) - 2.0).abs() < 1e-12);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn fraction_above_counts_strictly_greater() {
        let s = Summary::from_samples(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(s.fraction_above(2.0), 0.25);
        assert_eq!(s.fraction_above(0.0), 1.0);
        assert_eq!(s.fraction_above(3.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        let _ = Summary::from_samples(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let s = Summary::from_samples(vec![1.0]);
        let _ = s.quantile(1.5);
    }

    #[test]
    fn empty_summary_quantile_is_nan() {
        let s = Summary::from_samples(vec![]);
        assert!(s.median().is_nan());
        assert!(s.fraction_above(1.0).is_nan());
        assert!(s.is_empty());
    }
}

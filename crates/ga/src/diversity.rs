//! Population-diversity diagnostics.
//!
//! §4.2.2 motivates the uniqueness filter with premature convergence
//! ("identical chromosomes could lead to a premature convergence where all
//! chromosomes in a population have the same fitness values"). These
//! functions quantify that risk so engines and experiments can watch it:
//!
//! * [`unique_fraction`] — fraction of structurally distinct chromosomes;
//! * [`assignment_entropy`] — mean per-task Shannon entropy of the
//!   processor assignment across the population (bits), `0` when every
//!   individual assigns every task identically;
//! * [`mean_pairwise_distance`] — average normalized Hamming distance
//!   between assignment strings.

use std::collections::HashSet;

use crate::chromosome::Chromosome;

/// Fraction of distinct fingerprints, in `(0, 1]`.
///
/// # Panics
/// Panics on an empty population.
#[must_use]
pub fn unique_fraction(pop: &[Chromosome]) -> f64 {
    assert!(!pop.is_empty(), "population must be non-empty");
    let distinct: HashSet<u64> = pop.iter().map(Chromosome::fingerprint).collect();
    distinct.len() as f64 / pop.len() as f64
}

/// Mean per-task Shannon entropy (bits) of processor assignments.
///
/// # Panics
/// Panics on an empty population or inconsistent chromosome lengths.
#[must_use]
pub fn assignment_entropy(pop: &[Chromosome], proc_count: usize) -> f64 {
    assert!(!pop.is_empty(), "population must be non-empty");
    let n = pop[0].assignment.len();
    assert!(
        pop.iter().all(|c| c.assignment.len() == n),
        "chromosomes must have equal length"
    );
    if n == 0 {
        return 0.0;
    }
    let np = pop.len() as f64;
    let mut total = 0.0;
    let mut counts = vec![0usize; proc_count];
    for t in 0..n {
        counts.iter_mut().for_each(|c| *c = 0);
        for c in pop {
            counts[c.assignment[t].index()] += 1;
        }
        let h: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / np;
                -p * p.log2()
            })
            .sum();
        total += h;
    }
    total / n as f64
}

/// Mean pairwise normalized Hamming distance between assignment strings,
/// in `[0, 1]`. O(|pop|²·n); intended for diagnostics, not hot loops.
///
/// # Panics
/// Panics on an empty population.
#[must_use]
pub fn mean_pairwise_distance(pop: &[Chromosome]) -> f64 {
    assert!(!pop.is_empty(), "population must be non-empty");
    let k = pop.len();
    if k == 1 {
        return 0.0;
    }
    let n = pop[0].assignment.len();
    if n == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..k {
        for j in i + 1..k {
            let d = pop[i]
                .assignment
                .iter()
                .zip(&pop[j].assignment)
                .filter(|(a, b)| a != b)
                .count();
            sum += d as f64 / n as f64;
            pairs += 1;
        }
    }
    sum / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;
    use rds_stats::rng::rng_from_seed;

    fn population(seed: u64, k: usize) -> Vec<Chromosome> {
        let inst = InstanceSpec::new(20, 4).seed(seed).build().unwrap();
        let mut rng = rng_from_seed(seed ^ 0x77);
        (0..k)
            .map(|_| Chromosome::random_for(&inst, &mut rng))
            .collect()
    }

    #[test]
    fn identical_population_has_zero_diversity() {
        let pop = population(1, 1);
        let clones: Vec<Chromosome> = (0..10).map(|_| pop[0].clone()).collect();
        assert!((unique_fraction(&clones) - 0.1).abs() < 1e-12);
        assert_eq!(assignment_entropy(&clones, 4), 0.0);
        assert_eq!(mean_pairwise_distance(&clones), 0.0);
    }

    #[test]
    fn random_population_is_diverse() {
        let pop = population(2, 16);
        assert_eq!(unique_fraction(&pop), 1.0);
        // Uniform over 4 procs -> per-task entropy near log2(4) = 2 bits.
        let h = assignment_entropy(&pop, 4);
        assert!(h > 1.0, "entropy {h}");
        // Random pairs differ in ~3/4 of positions.
        let d = mean_pairwise_distance(&pop);
        assert!((0.55..0.95).contains(&d), "distance {d}");
    }

    #[test]
    fn entropy_bounded_by_log_procs() {
        let pop = population(3, 32);
        let h = assignment_entropy(&pop, 4);
        assert!(h <= 2.0 + 1e-9);
    }

    #[test]
    fn ga_population_loses_diversity_over_time() {
        use crate::engine::GaEngine;
        use crate::objective::Objective;
        use crate::params::GaParams;
        let inst = InstanceSpec::new(20, 4).seed(4).build().unwrap();
        let early = GaEngine::new(
            &inst,
            GaParams::quick()
                .seed(5)
                .max_generations(1)
                .stall_generations(1),
            Objective::MinimizeMakespan,
        )
        .run();
        let late = GaEngine::new(
            &inst,
            GaParams::quick()
                .seed(5)
                .max_generations(80)
                .stall_generations(80),
            Objective::MinimizeMakespan,
        )
        .run();
        let h_early = assignment_entropy(&early.final_population, 4);
        let h_late = assignment_entropy(&late.final_population, 4);
        assert!(
            h_late < h_early,
            "selection should reduce entropy: {h_early} -> {h_late}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_rejected() {
        let _ = unique_fraction(&[]);
    }
}

//! Systematic binary tournament selection (§4.2.4).
//!
//! Two random permutations of the population are drawn; adjacent pairs in
//! each permutation fight one tournament, the fitter individual advancing.
//! Every individual therefore participates in **exactly two** tournaments:
//! the population's best wins both (two copies advance), the worst loses
//! both (eliminated) — the behaviour the paper describes.

use rand::Rng;

/// Returns the indices of the `n` tournament winners forming the
/// intermediate population (`n` = population size; assumes `n ≥ 2`).
///
/// For odd `n`, the leftover individual of each permutation fights a
/// uniformly drawn opponent.
pub fn binary_tournament<R: Rng + ?Sized>(fitness: &[f64], rng: &mut R) -> Vec<usize> {
    let n = fitness.len();
    assert!(n >= 2, "tournament needs at least two individuals");
    let mut winners = Vec::with_capacity(n);
    for _round in 0..2 {
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut i = 0;
        while i + 1 < n {
            winners.push(fight(fitness, perm[i], perm[i + 1]));
            i += 2;
        }
        if n % 2 == 1 {
            // Leftover fights a random opponent.
            let lone = perm[n - 1];
            let opp = rng.gen_range(0..n);
            winners.push(fight(fitness, lone, opp));
        }
    }
    // Two rounds of ⌈n/2⌉ winners yield n (even) or n+1 (odd) — trim.
    winners.truncate(n);
    winners
}

#[inline]
fn fight(fitness: &[f64], a: usize, b: usize) -> usize {
    if fitness[a] >= fitness[b] {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_stats::rng::rng_from_seed;

    #[test]
    fn returns_population_size_winners() {
        let mut rng = rng_from_seed(1);
        for n in [2usize, 3, 4, 7, 20] {
            let fitness: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let w = binary_tournament(&fitness, &mut rng);
            assert_eq!(w.len(), n, "n={n}");
        }
    }

    #[test]
    fn best_appears_exactly_twice_for_even_population() {
        let fitness = vec![1.0, 5.0, 3.0, 9.0, 2.0, 0.5];
        let mut rng = rng_from_seed(2);
        for _ in 0..32 {
            let w = binary_tournament(&fitness, &mut rng);
            let best_copies = w.iter().filter(|&&i| i == 3).count();
            assert_eq!(best_copies, 2, "best must win both its tournaments");
        }
    }

    #[test]
    fn worst_is_eliminated_for_even_population() {
        let fitness = vec![1.0, 5.0, 3.0, 9.0, 2.0, 0.5];
        let mut rng = rng_from_seed(3);
        for _ in 0..32 {
            let w = binary_tournament(&fitness, &mut rng);
            assert!(!w.contains(&5), "worst must lose both tournaments");
        }
    }

    #[test]
    fn average_fitness_improves() {
        let fitness: Vec<f64> = (0..20).map(|i| (i as f64 * 1.37).sin() * 10.0).collect();
        let pop_mean = fitness.iter().sum::<f64>() / 20.0;
        let mut rng = rng_from_seed(4);
        let mut sel_mean_sum = 0.0;
        let rounds = 50;
        for _ in 0..rounds {
            let w = binary_tournament(&fitness, &mut rng);
            sel_mean_sum += w.iter().map(|&i| fitness[i]).sum::<f64>() / 20.0;
        }
        assert!(
            sel_mean_sum / rounds as f64 > pop_mean,
            "selection must raise mean fitness"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_individual() {
        let mut rng = rng_from_seed(5);
        let _ = binary_tournament(&[1.0], &mut rng);
    }

    #[test]
    fn ties_resolve_deterministically_to_first_arg() {
        assert_eq!(fight(&[2.0, 2.0], 0, 1), 0);
        assert_eq!(fight(&[2.0, 3.0], 0, 1), 1);
    }
}

//! Topology-preserving single-point crossover (§4.2.5).
//!
//! **Scheduling strings.** A cut position divides both parents' scheduling
//! strings into left and right parts. Each child keeps its own parent's
//! left part; the right part's tasks are reordered to follow their relative
//! positions in the *other* parent's scheduling string. This always yields
//! a valid topological order: for any edge `(u, v)`, either both endpoints
//! stay in the left part (parent order, valid), `u` is left and `v` right
//! (trivially ordered), or both are right (the other parent's relative
//! order is itself topological). The case `u` right / `v` left cannot occur
//! because the parent's left part precedes `u` entirely.
//!
//! **Assignment strings.** Both parents' assignments are viewed as
//! processor strings (task → processor); a second independent cut swaps the
//! right halves. Per-processor orders are re-derived from each child's own
//! scheduling string on decode, so no repair is needed.

use rand::Rng;

use crate::chromosome::{ChangeTrack, Chromosome};

/// Crosses two parents, producing two children.
///
/// `cut_order` and `cut_assign` are the two cut positions; use
/// [`crossover`] to draw them uniformly.
///
/// # Panics
/// Panics when parents have different lengths or a cut is out of range.
pub fn crossover_at(
    p1: &Chromosome,
    p2: &Chromosome,
    cut_order: usize,
    cut_assign: usize,
) -> (Chromosome, Chromosome) {
    let n = p1.order.len();
    assert_eq!(n, p2.order.len(), "parents must have equal length");
    assert!(cut_order <= n, "order cut out of range");
    assert!(cut_assign <= n, "assignment cut out of range");

    let child_order = |keep: &Chromosome, donor: &Chromosome| -> Vec<rds_graph::TaskId> {
        let mut order = Vec::with_capacity(n);
        order.extend_from_slice(&keep.order[..cut_order]);
        // Membership of the right part.
        let mut in_right = vec![false; n];
        for t in &keep.order[cut_order..] {
            in_right[t.index()] = true;
        }
        // Right tasks in the donor's relative order.
        order.extend(donor.order.iter().copied().filter(|t| in_right[t.index()]));
        order
    };

    let child_assign = |left: &Chromosome, right: &Chromosome| -> Vec<rds_platform::ProcId> {
        let mut a = Vec::with_capacity(n);
        a.extend_from_slice(&left.assignment[..cut_assign]);
        a.extend_from_slice(&right.assignment[cut_assign..]);
        a
    };

    let c1 = Chromosome {
        order: child_order(p1, p2),
        assignment: child_assign(p1, p2),
    };
    let c2 = Chromosome {
        order: child_order(p2, p1),
        assignment: child_assign(p2, p1),
    };
    (c1, c2)
}

/// Single-point crossover with uniformly drawn cut positions.
pub fn crossover<R: Rng + ?Sized>(
    p1: &Chromosome,
    p2: &Chromosome,
    rng: &mut R,
) -> (Chromosome, Chromosome) {
    let (c1, c2, _, _) = crossover_tracked(p1, p2, rng);
    (c1, c2)
}

/// [`crossover`] plus each child's [`ChangeTrack`] against the parent
/// whose left part it kept (`c1` vs `p1`, `c2` vs `p2`) — the parent a
/// delta evaluation would reuse. Consumes exactly the same RNG draws as
/// [`crossover`], so swapping the two never perturbs a GA run.
pub fn crossover_tracked<R: Rng + ?Sized>(
    p1: &Chromosome,
    p2: &Chromosome,
    rng: &mut R,
) -> (Chromosome, Chromosome, ChangeTrack, ChangeTrack) {
    let n = p1.order.len();
    if n < 2 {
        return (
            p1.clone(),
            p2.clone(),
            ChangeTrack::unchanged(n),
            ChangeTrack::unchanged(n),
        );
    }
    // Cuts in 1..n keep both sides non-trivial for the scheduling string.
    let cut_order = rng.gen_range(1..n);
    let cut_assign = rng.gen_range(1..n);
    let (c1, c2) = crossover_at(p1, p2, cut_order, cut_assign);
    let t1 = ChangeTrack::between(p1, &c1);
    let t2 = ChangeTrack::between(p2, &c2);
    (c1, c2, t1, t2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_graph::is_topological_order;
    use rds_sched::instance::InstanceSpec;
    use rds_stats::rng::rng_from_seed;

    #[test]
    fn children_are_valid_on_random_instances() {
        for seed in 0..5u64 {
            let inst = InstanceSpec::new(40, 4).seed(seed).build().unwrap();
            let mut rng = rng_from_seed(seed ^ 0xff);
            for _ in 0..40 {
                let p1 = Chromosome::random_for(&inst, &mut rng);
                let p2 = Chromosome::random_for(&inst, &mut rng);
                let (c1, c2) = crossover(&p1, &p2, &mut rng);
                assert!(c1.is_valid(&inst.graph, 4), "seed {seed}");
                assert!(c2.is_valid(&inst.graph, 4), "seed {seed}");
            }
        }
    }

    #[test]
    fn children_mix_parent_assignments() {
        let inst = InstanceSpec::new(20, 4).seed(9).build().unwrap();
        let mut rng = rng_from_seed(10);
        let p1 = Chromosome::random_for(&inst, &mut rng);
        let p2 = Chromosome::random_for(&inst, &mut rng);
        let cut = 10;
        let (c1, c2) = crossover_at(&p1, &p2, 10, cut);
        assert_eq!(&c1.assignment[..cut], &p1.assignment[..cut]);
        assert_eq!(&c1.assignment[cut..], &p2.assignment[cut..]);
        assert_eq!(&c2.assignment[..cut], &p2.assignment[..cut]);
        assert_eq!(&c2.assignment[cut..], &p1.assignment[cut..]);
    }

    #[test]
    fn left_part_of_order_is_preserved() {
        let inst = InstanceSpec::new(20, 2).seed(11).build().unwrap();
        let mut rng = rng_from_seed(12);
        let p1 = Chromosome::random_for(&inst, &mut rng);
        let p2 = Chromosome::random_for(&inst, &mut rng);
        let (c1, c2) = crossover_at(&p1, &p2, 7, 5);
        assert_eq!(&c1.order[..7], &p1.order[..7]);
        assert_eq!(&c2.order[..7], &p2.order[..7]);
        assert!(is_topological_order(&inst.graph, &c1.order));
        assert!(is_topological_order(&inst.graph, &c2.order));
    }

    #[test]
    fn right_part_follows_other_parents_relative_order() {
        let inst = InstanceSpec::new(15, 2).seed(13).build().unwrap();
        let mut rng = rng_from_seed(14);
        let p1 = Chromosome::random_for(&inst, &mut rng);
        let p2 = Chromosome::random_for(&inst, &mut rng);
        let cut = 6;
        let (c1, _) = crossover_at(&p1, &p2, cut, cut);
        // The tasks after the cut are the same *set* as p1's right part...
        let mut expect: Vec<u32> = p1.order[cut..].iter().map(|t| t.0).collect();
        let got: Vec<u32> = c1.order[cut..].iter().map(|t| t.0).collect();
        expect.sort_unstable();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(expect, got_sorted);
        // ...ordered by p2's positions.
        let pos2: std::collections::HashMap<u32, usize> =
            p2.order.iter().enumerate().map(|(i, t)| (t.0, i)).collect();
        for w in got.windows(2) {
            assert!(pos2[&w[0]] < pos2[&w[1]]);
        }
    }

    #[test]
    fn identical_parents_produce_identical_children() {
        let inst = InstanceSpec::new(12, 3).seed(15).build().unwrap();
        let mut rng = rng_from_seed(16);
        let p = Chromosome::random_for(&inst, &mut rng);
        let (c1, c2) = crossover(&p, &p, &mut rng);
        assert_eq!(c1, p);
        assert_eq!(c2, p);
    }

    #[test]
    fn tiny_chromosomes_are_cloned() {
        let inst = InstanceSpec::new(1, 2).seed(17).build().unwrap();
        let mut rng = rng_from_seed(18);
        let p1 = Chromosome::random_for(&inst, &mut rng);
        let p2 = Chromosome::random_for(&inst, &mut rng);
        let (c1, c2) = crossover(&p1, &p2, &mut rng);
        assert_eq!(c1, p1);
        assert_eq!(c2, p2);
    }
}

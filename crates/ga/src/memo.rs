//! Fingerprint-keyed evaluation memo.
//!
//! [`crate::objective::evaluate`] is a pure function of the chromosome (the
//! instance is fixed for a GA run), so its results can be cached. The GA
//! re-encounters chromosomes constantly — unmutated tournament winners,
//! the carried-forward elite, and whole populations once the search
//! converges — and each re-encounter can skip the evaluation kernel.
//!
//! The memo is keyed by [`Chromosome::fingerprint`] (64-bit FNV-1a). A
//! fingerprint is *not* a proof of identity, so every hit is verified by
//! comparing the stored chromosome with the probe: a mismatched entry is a
//! **collision**, counted and treated as a miss, and the caller falls back
//! to the full evaluation. Memoization therefore never changes GA results;
//! it only changes how often the kernel runs.
//!
//! Eviction is *segmented* (generational): entries live in a `current` and
//! a `previous` map. Inserts go to `current`; when `current` reaches the
//! configured capacity it is demoted wholesale to `previous` (dropping the
//! old `previous`), and probes that hit `previous` are promoted back into
//! `current`. This bounds the memo to at most `2 × capacity` entries with
//! O(1) amortized operations and LRU-like retention of the working set.

use std::collections::HashMap;

use crate::chromosome::Chromosome;
use crate::objective::Evaluation;

/// Hit/miss/collision counters of an [`EvalMemo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Probes answered from the memo (equality-verified).
    pub hits: u64,
    /// Probes that found nothing (including while disabled: none counted).
    pub misses: u64,
    /// Probes whose fingerprint matched a *different* chromosome; counted
    /// separately and treated as misses.
    pub collisions: u64,
}

#[derive(Debug, Clone)]
struct MemoEntry {
    chromosome: Chromosome,
    eval: Evaluation,
}

/// Bounded, collision-safe `Chromosome::fingerprint → Evaluation` memo.
#[derive(Debug, Clone)]
pub struct EvalMemo {
    capacity: usize,
    current: HashMap<u64, MemoEntry>,
    previous: HashMap<u64, MemoEntry>,
    stats: MemoStats,
}

impl EvalMemo {
    /// A memo holding up to `capacity` recent entries (plus up to
    /// `capacity` older ones pending eviction). `capacity == 0` disables
    /// memoization entirely: every probe misses and inserts are dropped.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            current: HashMap::with_capacity(capacity.min(1024)),
            previous: HashMap::new(),
            stats: MemoStats::default(),
        }
    }

    /// `true` when memoization is off (`capacity == 0`).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Looks up a chromosome's cached evaluation, verifying identity.
    ///
    /// Returns `None` on a genuine miss *and* on a fingerprint collision
    /// (stored chromosome differs) — the caller must then run the full
    /// evaluation, which keeps memoization sound under collisions.
    pub fn get(&mut self, c: &Chromosome) -> Option<Evaluation> {
        if self.capacity == 0 {
            return None;
        }
        let key = c.fingerprint();
        if let Some(entry) = self.current.get(&key) {
            return if entry.chromosome == *c {
                self.stats.hits += 1;
                Some(entry.eval)
            } else {
                self.stats.collisions += 1;
                self.stats.misses += 1;
                None
            };
        }
        if let Some(entry) = self.previous.remove(&key) {
            if entry.chromosome == *c {
                self.stats.hits += 1;
                let eval = entry.eval;
                self.insert_entry(key, entry);
                return Some(eval);
            }
            self.stats.collisions += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.misses += 1;
        None
    }

    /// Caches an evaluation. On a fingerprint collision the newer
    /// chromosome replaces the older entry (last-writer-wins).
    pub fn insert(&mut self, c: &Chromosome, eval: Evaluation) {
        if self.capacity == 0 {
            return;
        }
        self.insert_entry(
            c.fingerprint(),
            MemoEntry {
                chromosome: c.clone(),
                eval,
            },
        );
    }

    fn insert_entry(&mut self, key: u64, entry: MemoEntry) {
        if self.current.len() >= self.capacity && !self.current.contains_key(&key) {
            self.previous = std::mem::take(&mut self.current);
        }
        self.current.insert(key, entry);
    }

    /// Number of live entries across both segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.previous.is_empty()
    }

    /// The accumulated hit/miss/collision counters.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Test hook: plant an entry under an arbitrary key to simulate a
    /// fingerprint collision.
    #[cfg(test)]
    fn insert_raw(&mut self, key: u64, c: &Chromosome, eval: Evaluation) {
        self.insert_entry(
            key,
            MemoEntry {
                chromosome: c.clone(),
                eval,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;
    use rds_stats::rng::rng_from_seed;

    fn eval(m: f64) -> Evaluation {
        Evaluation {
            makespan: m,
            avg_slack: 1.0,
        }
    }

    fn chromosomes(n: usize) -> Vec<Chromosome> {
        let inst = InstanceSpec::new(15, 3).seed(7).build().unwrap();
        let mut rng = rng_from_seed(42);
        (0..n)
            .map(|_| Chromosome::random_for(&inst, &mut rng))
            .collect()
    }

    #[test]
    fn hit_after_insert() {
        let cs = chromosomes(2);
        let mut memo = EvalMemo::new(16);
        assert_eq!(memo.get(&cs[0]), None);
        memo.insert(&cs[0], eval(10.0));
        assert_eq!(memo.get(&cs[0]), Some(eval(10.0)));
        assert_eq!(memo.get(&cs[1]), None);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.collisions), (1, 2, 0));
    }

    #[test]
    fn zero_capacity_disables() {
        let cs = chromosomes(1);
        let mut memo = EvalMemo::new(0);
        assert!(memo.is_disabled());
        memo.insert(&cs[0], eval(1.0));
        assert_eq!(memo.get(&cs[0]), None);
        assert!(memo.is_empty());
        // Disabled memos count nothing.
        assert_eq!(memo.stats(), MemoStats::default());
    }

    #[test]
    fn collision_detected_and_treated_as_miss() {
        let cs = chromosomes(2);
        let mut memo = EvalMemo::new(16);
        // Plant cs[1]'s evaluation under cs[0]'s fingerprint.
        memo.insert_raw(cs[0].fingerprint(), &cs[1], eval(99.0));
        assert_eq!(memo.get(&cs[0]), None, "collision must not serve a hit");
        let s = memo.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
        // The colliding probe's fresh result may then overwrite the entry.
        memo.insert(&cs[0], eval(5.0));
        assert_eq!(memo.get(&cs[0]), Some(eval(5.0)));
    }

    #[test]
    fn segmented_eviction_bounds_size_and_keeps_working_set() {
        let cs = chromosomes(10);
        let mut memo = EvalMemo::new(4);
        for (i, c) in cs.iter().enumerate() {
            memo.insert(c, eval(i as f64));
        }
        assert!(memo.len() <= 8, "at most 2 × capacity entries");
        // The most recent insert is always resident.
        assert_eq!(memo.get(&cs[9]), Some(eval(9.0)));
        // The oldest entries have been evicted.
        assert_eq!(memo.get(&cs[0]), None);
    }

    #[test]
    fn previous_segment_hit_promotes() {
        let cs = chromosomes(5);
        let mut memo = EvalMemo::new(2);
        memo.insert(&cs[0], eval(0.0));
        memo.insert(&cs[1], eval(1.0));
        // Next insert demotes {0, 1} to the previous segment.
        memo.insert(&cs[2], eval(2.0));
        // A hit in `previous` is promoted back into `current` and stays
        // alive through the next demotion.
        assert_eq!(memo.get(&cs[0]), Some(eval(0.0)));
        memo.insert(&cs[3], eval(3.0));
        memo.insert(&cs[4], eval(4.0));
        assert_eq!(memo.get(&cs[0]), Some(eval(0.0)));
    }
}

//! Island-model parallel GA.
//!
//! The classic coarse-grained parallelization of a GA: `k` independent
//! populations ("islands") evolve concurrently; every `migration_interval`
//! generations, each island's best individuals replace the worst of the
//! next island on a ring. Islands explore different basins; migration
//! propagates the winners — typically better diversity *and* wall-clock
//! than one k-times-larger population.
//!
//! Islands run in parallel with rayon; every island's stream is derived
//! deterministically from `(seed, island, epoch)`, so results are
//! bit-identical regardless of thread count.

use rayon::prelude::*;

use rds_sched::instance::Instance;
use rds_stats::rng::SeedStream;

use crate::chromosome::Chromosome;
use crate::engine::{GaEngine, GaResult};
use crate::objective::{evaluate_all, Evaluation, Objective};
use crate::params::GaParams;

/// Island-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslandParams {
    /// Per-island GA parameters (`population` is per island;
    /// `max_generations` is the *total* generation budget).
    pub base: GaParams,
    /// Number of islands.
    pub islands: usize,
    /// Generations between migrations.
    pub migration_interval: usize,
    /// Individuals migrating along the ring per epoch.
    pub migrants: usize,
}

impl IslandParams {
    /// Defaults: 4 islands, paper GA knobs per island, migrate 2 every 25
    /// generations.
    #[must_use]
    pub fn new(base: GaParams) -> Self {
        Self {
            base,
            islands: 4,
            migration_interval: 25,
            migrants: 2,
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.islands == 0 {
            return Err("need at least one island".into());
        }
        if self.migration_interval == 0 {
            return Err("migration_interval must be positive".into());
        }
        if self.migrants >= self.base.population {
            return Err("migrants must be fewer than the island population".into());
        }
        Ok(())
    }
}

/// Result of an island run: the globally best individual plus per-island
/// bests.
#[derive(Debug, Clone)]
pub struct IslandResult {
    /// Best chromosome across all islands.
    pub best: Chromosome,
    /// Its evaluation.
    pub best_eval: Evaluation,
    /// Best evaluation per island (diagnostics).
    pub island_bests: Vec<Evaluation>,
    /// Epochs executed.
    pub epochs: usize,
}

/// Runs the island-model GA.
///
/// # Panics
/// Panics when the parameters fail validation.
#[allow(clippy::needless_range_loop)] // ring migration indexes two vectors in lockstep
pub fn run_islands(inst: &Instance, params: IslandParams, objective: Objective) -> IslandResult {
    params.validate().expect("invalid island parameters");
    let seeds = SeedStream::new(params.base.seed);
    let epochs = params
        .base
        .max_generations
        .div_ceil(params.migration_interval);
    let k = params.islands;

    // Initialize island populations: island 0 gets the HEFT seed (when
    // enabled), the rest start fully random for diversity.
    let mut populations: Vec<Vec<Chromosome>> = (0..k)
        .into_par_iter()
        .map(|i| {
            let p = params
                .base
                .seed(seeds.branch("init").nth_seed(i as u64))
                .max_generations(1)
                .stall_generations(1);
            let p = if i == 0 { p } else { p.without_heft_seed() };
            // One throwaway generation builds a valid initial population.
            GaEngine::new(inst, p, objective).run().final_population
        })
        .collect();

    let mut epoch_results: Vec<GaResult> = Vec::new();
    for epoch in 0..epochs {
        // Evolve each island for one interval, in parallel.
        let results: Vec<GaResult> = populations
            .into_par_iter()
            .enumerate()
            .map(|(i, pop)| {
                let p = params
                    .base
                    .seed(seeds.branch("epoch").nth_seed((epoch * k + i) as u64))
                    .max_generations(params.migration_interval)
                    .stall_generations(params.migration_interval); // no early stop mid-epoch
                GaEngine::new(inst, p, objective)
                    .with_initial_population(pop)
                    .run()
            })
            .collect();

        // Ring migration: island i's best `migrants` replace island
        // (i+1)'s worst.
        let mut next: Vec<Vec<Chromosome>> =
            results.iter().map(|r| r.final_population.clone()).collect();
        for i in 0..k {
            let dst = (i + 1) % k;
            if k == 1 {
                break;
            }
            // Rank source by fitness (population-based; evaluate fresh
            // through the scratch-arena kernel).
            let src_evals: Vec<Evaluation> = evaluate_all(inst, &results[i].final_population);
            let src_fit = objective.fitness(&src_evals);
            let mut src_order: Vec<usize> = (0..src_fit.len()).collect();
            src_order.sort_by(|&a, &b| src_fit[b].total_cmp(&src_fit[a]));

            let dst_evals: Vec<Evaluation> = evaluate_all(inst, &next[dst]);
            let dst_fit = objective.fitness(&dst_evals);
            let mut dst_order: Vec<usize> = (0..dst_fit.len()).collect();
            dst_order.sort_by(|&a, &b| dst_fit[a].total_cmp(&dst_fit[b])); // worst first

            for mi in 0..params.migrants {
                let donor = results[i].final_population[src_order[mi]].clone();
                next[dst][dst_order[mi]] = donor;
            }
        }
        populations = next;
        epoch_results = results;
    }

    // Global best across the last epoch's engine results (each tracks its
    // own best-so-far; migration means earlier bests survive via elitism).
    let island_bests: Vec<Evaluation> = epoch_results.iter().map(|r| r.best_eval).collect();
    let best_idx = epoch_results
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            let fa = objective.fitness(std::slice::from_ref(&a.best_eval))[0];
            let fb = objective.fitness(std::slice::from_ref(&b.best_eval))[0];
            fa.total_cmp(&fb)
        })
        .map(|(i, _)| i)
        .expect("at least one island");
    IslandResult {
        best: epoch_results[best_idx].best.clone(),
        best_eval: epoch_results[best_idx].best_eval,
        island_bests,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(30, 3).seed(seed).build().unwrap()
    }

    fn quick_params(seed: u64) -> IslandParams {
        let mut p = IslandParams::new(
            GaParams::quick()
                .seed(seed)
                .max_generations(40)
                .population(10),
        );
        p.islands = 3;
        p.migration_interval = 10;
        p.migrants = 2;
        p
    }

    #[test]
    fn islands_are_deterministic() {
        let i = inst(1);
        let a = run_islands(&i, quick_params(5), Objective::MinimizeMakespan);
        let b = run_islands(&i, quick_params(5), Objective::MinimizeMakespan);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_eval.makespan, b.best_eval.makespan);
        assert_eq!(a.epochs, 4);
    }

    #[test]
    fn islands_beat_or_match_heft_with_seeded_island() {
        let i = inst(2);
        let heft = rds_heft::heft_schedule(&i);
        let r = run_islands(&i, quick_params(7), Objective::MinimizeMakespan);
        assert!(r.best_eval.makespan <= heft.makespan + 1e-9);
        assert!(r.best.is_valid(&i.graph, 3));
        assert_eq!(r.island_bests.len(), 3);
    }

    #[test]
    fn epsilon_objective_respected() {
        let i = inst(3);
        let heft = rds_heft::heft_schedule(&i);
        let obj = Objective::EpsilonConstraint {
            epsilon: 1.4,
            reference_makespan: heft.makespan,
        };
        let r = run_islands(&i, quick_params(9), obj);
        assert!(r.best_eval.makespan <= 1.4 * heft.makespan + 1e-9);
    }

    #[test]
    fn single_island_works() {
        let i = inst(4);
        let mut p = quick_params(11);
        p.islands = 1;
        let r = run_islands(&i, p, Objective::MaximizeSlack);
        assert!(r.best_eval.avg_slack >= 0.0);
        assert_eq!(r.island_bests.len(), 1);
    }

    #[test]
    fn invalid_params_rejected() {
        let base = GaParams::quick();
        let mut p = IslandParams::new(base);
        p.islands = 0;
        assert!(p.validate().is_err());
        let mut p = IslandParams::new(base);
        p.migration_interval = 0;
        assert!(p.validate().is_err());
        let mut p = IslandParams::new(base);
        p.migrants = base.population;
        assert!(p.validate().is_err());
    }
}

//! Objective functions and the ε-constraint fitness of Eq. 8.
//!
//! Every chromosome is evaluated once per generation into an
//! [`Evaluation`] (expected makespan `M₀` and average slack `σ̄`, both
//! computed on the disjunctive graph with expected durations). The
//! [`Objective`] then maps evaluations to *fitness* values, where **larger
//! fitness is always better**:
//!
//! * `MinimizeMakespan` → fitness `= −M₀` (Fig. 2's objective);
//! * `MaximizeSlack` → fitness `= σ̄` (Fig. 3's objective);
//! * `EpsilonConstraint` → Eq. 8: feasible individuals
//!   (`M₀ < ε·M_HEFT`) score `σ̄`; infeasible ones score
//!   `min{fitness of feasible} · ε·M_HEFT / M₀` — a population-based
//!   penalty that ranks worse violators lower. When a population has no
//!   feasible individual the paper's formula is undefined; we fall back to
//!   penalizing the individual's own slack by the same violation ratio,
//!   which preserves the ordering intent (documented deviation).

use rayon::prelude::*;

use rds_sched::csr::EvalScratch;
use rds_sched::disjunctive::DisjunctiveGraph;
use rds_sched::instance::Instance;
use rds_sched::slack;
use rds_sched::timing::expected_durations;

use crate::chromosome::Chromosome;
use crate::memo::EvalMemo;

/// Expected-time evaluation of one chromosome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Expected makespan `M₀`.
    pub makespan: f64,
    /// Average slack `σ̄`.
    pub avg_slack: f64,
}

/// Evaluates a chromosome: decode, build `G_s`, expected-duration slack
/// analysis.
///
/// # Panics
/// Panics if the chromosome is invalid for the instance (operators
/// preserve validity, so this indicates a bug).
pub fn evaluate(inst: &Instance, c: &Chromosome) -> Evaluation {
    let schedule = c.decode(inst.proc_count());
    let ds = DisjunctiveGraph::build(&inst.graph, &schedule)
        .expect("valid chromosome decodes to an acyclic disjunctive graph");
    let durations = expected_durations(&inst.timing, &schedule);
    let a = slack::analyze(&ds, &schedule, &inst.platform, &durations);
    Evaluation {
        makespan: a.makespan,
        avg_slack: a.average_slack,
    }
}

/// Minimum batch size before population evaluation fans out over rayon —
/// below this, per-task overhead outweighs the parallelism.
const PAR_MIN: usize = 8;

/// Zero-allocation twin of [`evaluate`]: builds the flat CSR of `G_s`
/// directly from the chromosome's genes (no `Schedule` decode) inside the
/// caller-owned [`EvalScratch`] and runs the in-place slack passes.
/// Bit-identical to [`evaluate`] — asserted by the parity proptests.
///
/// # Panics
/// Panics if the chromosome is invalid for the instance (operators
/// preserve validity, so this indicates a bug).
pub fn evaluate_with_scratch(
    inst: &Instance,
    c: &Chromosome,
    scratch: &mut EvalScratch,
) -> Evaluation {
    let s = scratch
        .evaluate(inst, &c.order, &c.assignment)
        .expect("valid chromosome decodes to an acyclic disjunctive graph");
    Evaluation {
        makespan: s.makespan,
        avg_slack: s.average_slack,
    }
}

/// Evaluates a batch of chromosomes, fanning out over rayon with one
/// [`EvalScratch`] per worker when the batch is large enough. Results are
/// written by index, and evaluation draws no randomness, so the output is
/// bit-identical for any thread count (including fully sequential).
pub fn evaluate_all(inst: &Instance, chromosomes: &[Chromosome]) -> Vec<Evaluation> {
    if chromosomes.len() >= PAR_MIN {
        chromosomes
            .par_iter()
            .map_init(EvalScratch::new, |scratch, c| {
                evaluate_with_scratch(inst, c, scratch)
            })
            .collect()
    } else {
        let mut scratch = EvalScratch::new();
        chromosomes
            .iter()
            .map(|c| evaluate_with_scratch(inst, c, &mut scratch))
            .collect()
    }
}

/// Per-slot carryover for delta (suffix) evaluation: the [`EvalScratch`]
/// holding the slot's last forward pass, the chromosome it evaluated, and
/// whether that state is trustworthy. One per population slot, ping-ponged
/// between generations by the engine ([`evaluate_population_delta`]).
#[derive(Debug, Default, Clone)]
pub struct EvalState {
    scratch: EvalScratch,
    chrom: Chromosome,
    valid: bool,
}

impl EvalState {
    /// A fresh, invalid state (first generation; delta never applies).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when this slot holds a reusable evaluation.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Takes over `src`'s evaluation state (elite slots and memo-answered
    /// clones inherit their parent's forward pass without re-running the
    /// kernel), reusing this slot's buffers.
    pub fn copy_from(&mut self, src: &EvalState) {
        self.scratch.adopt_eval_state(&src.scratch);
        self.chrom.order.clone_from(&src.chrom.order);
        self.chrom.assignment.clone_from(&src.chrom.assignment);
        self.valid = src.valid;
    }
}

/// Where a population slot's chromosome came from, for delta evaluation:
/// the parent's slot index in the *previous* generation's state pool and
/// the first scheduling-string position any operator touched
/// (`ChangeTrack::first_changed`, `n` for exact clones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHint {
    /// Slot index of the parent in the previous generation.
    pub parent: usize,
    /// First changed scheduling-string position relative to that parent.
    pub first_changed: usize,
}

/// Counters returned by [`evaluate_population_delta`]; all deterministic
/// for a given seed and independent of the rayon thread count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PopEvalStats {
    /// Kernel evaluations performed (full + delta; memo answered the rest).
    pub kernel_evals: u64,
    /// Kernel evaluations that ran as suffix-only delta passes.
    pub delta_evals: u64,
    /// Total suffix tasks recomputed across delta evaluations.
    pub delta_suffix_tasks: u64,
    /// Total task count across delta evaluations (denominator for the
    /// average suffix fraction).
    pub delta_total_tasks: u64,
}

/// `true` when `c` can be delta-evaluated against `prev[h.parent]`: the
/// parent state is valid and agrees with `c` on every scheduling-string
/// position before `h.first_changed` — same task *and* same processor for
/// that task. This is the exact soundness contract of
/// `EvalScratch::evaluate_delta`; hints are advisory, this check is what
/// guarantees bit-identity.
fn delta_applicable(c: &Chromosome, h: DeltaHint, prev: &[EvalState]) -> bool {
    let n = c.order.len();
    let Some(p) = prev.get(h.parent) else {
        return false;
    };
    if !p.valid || h.first_changed == 0 || p.chrom.order.len() != n {
        return false;
    }
    let fc = h.first_changed.min(n);
    for j in 0..fc {
        let t = c.order[j];
        if p.chrom.order[j] != t {
            return false;
        }
        let ti = t.index();
        if p.chrom.assignment[ti] != c.assignment[ti] {
            return false;
        }
    }
    true
}

/// [`evaluate_population`] with delta (suffix) evaluation: population
/// slots whose chromosome shares a verified prefix with their parent's
/// last evaluation reuse the parent's forward pass and recompute only the
/// suffix. `prev` is the previous generation's state pool (indexed by
/// [`DeltaHint::parent`]); `states` receives this generation's, slot by
/// slot. Memo-answered slots inherit their parent's state when the
/// chromosome is an exact clone, keeping delta chains alive across
/// elitism and unmutated tournament winners.
///
/// Bit-identical to [`evaluate_population`] — delta passes reproduce the
/// full kernel exactly (asserted by the parity proptests), and all
/// memo/stats bookkeeping stays sequential.
pub fn evaluate_population_delta(
    inst: &Instance,
    pop: &[Chromosome],
    hints: &[Option<DeltaHint>],
    prev: &[EvalState],
    states: &mut [EvalState],
    memo: &mut EvalMemo,
) -> (Vec<Evaluation>, PopEvalStats) {
    assert_eq!(pop.len(), hints.len(), "one hint per slot");
    assert_eq!(pop.len(), states.len(), "one state per slot");
    // Sequential memo probe (deterministic hit counters).
    let hits: Vec<Option<Evaluation>> = pop.iter().map(|c| memo.get(c)).collect();
    // Decide per miss whether the delta contract holds — sequential and
    // cheap (O(prefix) compares), so the stats are deterministic.
    let plans: Vec<Option<DeltaHint>> = pop
        .iter()
        .zip(&hits)
        .zip(hints)
        .map(|((c, hit), hint)| match (hit, hint) {
            (None, Some(h)) if delta_applicable(c, *h, prev) => Some(*h),
            _ => None,
        })
        .collect();

    let do_slot = |i: usize, st: &mut EvalState| -> Evaluation {
        let c = &pop[i];
        if let Some(e) = hits[i] {
            // Kernel skipped; keep the slot usable as a future delta
            // parent when it is an exact clone of its own parent.
            match hints[i] {
                Some(h)
                    if prev
                        .get(h.parent)
                        .is_some_and(|p| p.valid && p.chrom == *c) =>
                {
                    st.copy_from(&prev[h.parent]);
                }
                _ => st.valid = false,
            }
            return e;
        }
        let summary = match plans[i] {
            Some(h) => st.scratch.evaluate_delta(
                inst,
                &c.order,
                &c.assignment,
                &prev[h.parent].scratch,
                h.first_changed,
            ),
            None => st.scratch.evaluate(inst, &c.order, &c.assignment),
        }
        .expect("valid chromosome decodes to an acyclic disjunctive graph");
        st.chrom.order.clone_from(&c.order);
        st.chrom.assignment.clone_from(&c.assignment);
        st.valid = true;
        Evaluation {
            makespan: summary.makespan,
            avg_slack: summary.average_slack,
        }
    };

    let misses = hits.iter().filter(|h| h.is_none()).count();
    let evals: Vec<Evaluation> = if misses >= PAR_MIN {
        states
            .par_iter_mut()
            .enumerate()
            .map(|(i, st)| do_slot(i, st))
            .collect()
    } else {
        states
            .iter_mut()
            .enumerate()
            .map(|(i, st)| do_slot(i, st))
            .collect()
    };
    // Sequential memo insert of the fresh results.
    let mut stats = PopEvalStats {
        kernel_evals: misses as u64,
        ..PopEvalStats::default()
    };
    for i in 0..pop.len() {
        if hits[i].is_none() {
            memo.insert(&pop[i], evals[i]);
            if let Some(h) = plans[i] {
                let n = pop[i].order.len();
                stats.delta_evals += 1;
                stats.delta_suffix_tasks += (n - h.first_changed.min(n)) as u64;
                stats.delta_total_tasks += n as u64;
            }
        }
    }
    (evals, stats)
}

/// Memoized population evaluation: probes the memo sequentially (so hit
/// counters are deterministic), kernel-evaluates only the misses — in
/// parallel, per-thread scratch, results written by index — then inserts
/// the fresh results sequentially. Returns the evaluations plus the number
/// of kernel evaluations performed (the memo answered the rest).
///
/// Determinism contract: identical inputs produce bit-identical outputs
/// *and* identical memo state/counters for any rayon thread count.
pub fn evaluate_population(
    inst: &Instance,
    pop: &[Chromosome],
    memo: &mut EvalMemo,
) -> (Vec<Evaluation>, u64) {
    let mut results: Vec<Option<Evaluation>> = pop.iter().map(|c| memo.get(c)).collect();
    let miss: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    let fresh: Vec<Evaluation> = if miss.len() >= PAR_MIN {
        miss.par_iter()
            .map_init(EvalScratch::new, |scratch, &i| {
                evaluate_with_scratch(inst, &pop[i], scratch)
            })
            .collect()
    } else {
        let mut scratch = EvalScratch::new();
        miss.iter()
            .map(|&i| evaluate_with_scratch(inst, &pop[i], &mut scratch))
            .collect()
    };
    for (&i, &eval) in miss.iter().zip(&fresh) {
        memo.insert(&pop[i], eval);
        results[i] = Some(eval);
    }
    let kernel_evals = miss.len() as u64;
    (
        results.into_iter().map(|r| r.expect("filled")).collect(),
        kernel_evals,
    )
}

/// The GA's objective function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize the expected makespan (Fig. 2).
    MinimizeMakespan,
    /// Maximize the average slack, unconstrained (Fig. 3).
    MaximizeSlack,
    /// Eq. 7/8: maximize slack subject to `M₀ < ε · M_ref`.
    EpsilonConstraint {
        /// The ε multiplier (paper: 1.0–2.0).
        epsilon: f64,
        /// The reference makespan `M_HEFT`.
        reference_makespan: f64,
    },
    /// Ablation variant of the ε-constraint: infeasible individuals get a
    /// flat zero fitness instead of Eq. 8's graded penalty. Used by
    /// `bench_fitness_penalty` to quantify the value of the
    /// population-based penalty (a flat penalty leaves selection no
    /// gradient back into the feasible region).
    EpsilonConstraintRejecting {
        /// The ε multiplier.
        epsilon: f64,
        /// The reference makespan `M_HEFT`.
        reference_makespan: f64,
    },
    /// The other classical MOOP scalarization: maximize
    /// `(1−w)·σ̄ − w·M₀`. Both objectives are time-dimensional, so the raw
    /// weighted sum is commensurable; `w = 1` reduces to makespan
    /// minimization, `w = 0` to slack maximization. Unlike the
    /// ε-constraint it offers no makespan *guarantee* — which is exactly
    /// the comparison the `bench_moop_methods` ablation makes.
    WeightedSum {
        /// Makespan weight `w ∈ [0, 1]`.
        weight: f64,
    },
}

impl Objective {
    /// The makespan bound `ε·M_HEFT`, if this objective has one.
    #[must_use]
    pub fn bound(&self) -> Option<f64> {
        match *self {
            Objective::EpsilonConstraint {
                epsilon,
                reference_makespan,
            }
            | Objective::EpsilonConstraintRejecting {
                epsilon,
                reference_makespan,
            } => Some(epsilon * reference_makespan),
            _ => None,
        }
    }

    /// `true` when `eval` satisfies the constraint (trivially true for the
    /// single-objective variants).
    ///
    /// Eq. 7 writes the bound strictly, but §5.2 spells out the intended
    /// semantics — "only those schedules with expected makespan **less or
    /// equal** to the makespan of \[HEFT\] are feasible" — and at ε = 1.0 the
    /// strict reading would exclude the HEFT seed itself, leaving the
    /// population with no feasible anchor. The constraint is therefore `≤`.
    #[must_use]
    pub fn is_feasible(&self, eval: &Evaluation) -> bool {
        match self.bound() {
            Some(b) => eval.makespan <= b,
            None => true,
        }
    }

    /// Maps a population's evaluations to fitness values (larger = better).
    pub fn fitness(&self, evals: &[Evaluation]) -> Vec<f64> {
        match *self {
            Objective::MinimizeMakespan => evals.iter().map(|e| -e.makespan).collect(),
            Objective::MaximizeSlack => evals.iter().map(|e| e.avg_slack).collect(),
            Objective::EpsilonConstraint { .. } => {
                let bound = self.bound().expect("epsilon constraint has a bound");
                let min_feasible = evals
                    .iter()
                    .filter(|e| e.makespan <= bound)
                    .map(|e| e.avg_slack)
                    .fold(f64::INFINITY, f64::min);
                evals
                    .iter()
                    .map(|e| {
                        if e.makespan <= bound {
                            e.avg_slack
                        } else {
                            // Violation ratio in (0, 1).
                            let ratio = bound / e.makespan;
                            if min_feasible.is_finite() {
                                min_feasible * ratio
                            } else {
                                // No feasible individual in this population:
                                // penalize own slack by the ratio.
                                e.avg_slack * ratio
                            }
                        }
                    })
                    .collect()
            }
            Objective::EpsilonConstraintRejecting { .. } => {
                let bound = self.bound().expect("epsilon constraint has a bound");
                evals
                    .iter()
                    .map(|e| {
                        if e.makespan <= bound {
                            e.avg_slack
                        } else {
                            0.0
                        }
                    })
                    .collect()
            }
            Objective::WeightedSum { weight } => evals
                .iter()
                .map(|e| (1.0 - weight) * e.avg_slack - weight * e.makespan)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;
    use rds_stats::rng::rng_from_seed;

    fn e(makespan: f64, avg_slack: f64) -> Evaluation {
        Evaluation {
            makespan,
            avg_slack,
        }
    }

    #[test]
    fn minimize_makespan_orders_by_negated_makespan() {
        let f = Objective::MinimizeMakespan.fitness(&[e(10.0, 0.0), e(5.0, 9.0)]);
        assert!(f[1] > f[0]);
    }

    #[test]
    fn maximize_slack_orders_by_slack() {
        let f = Objective::MaximizeSlack.fitness(&[e(10.0, 2.0), e(50.0, 7.0)]);
        assert!(f[1] > f[0]);
    }

    #[test]
    fn epsilon_constraint_feasible_score_is_slack() {
        let obj = Objective::EpsilonConstraint {
            epsilon: 1.2,
            reference_makespan: 10.0,
        };
        // bound = 12; both feasible.
        let f = obj.fitness(&[e(11.0, 3.0), e(9.0, 5.0)]);
        assert_eq!(f, vec![3.0, 5.0]);
        assert!(obj.is_feasible(&e(11.0, 3.0)));
        assert!(obj.is_feasible(&e(12.0, 3.0))); // boundary is feasible (§5.2)
        assert!(!obj.is_feasible(&e(12.1, 3.0)));
    }

    #[test]
    fn epsilon_constraint_penalizes_infeasible_below_feasible() {
        let obj = Objective::EpsilonConstraint {
            epsilon: 1.0,
            reference_makespan: 10.0,
        };
        // bound = 10. evals: feasible slack {4, 6}; infeasible makespans 12, 20.
        let f = obj.fitness(&[e(9.0, 4.0), e(8.0, 6.0), e(12.0, 9.0), e(20.0, 9.0)]);
        assert_eq!(f[0], 4.0);
        assert_eq!(f[1], 6.0);
        // min feasible = 4; penalties 4*10/12 and 4*10/20.
        assert!((f[2] - 4.0 * 10.0 / 12.0).abs() < 1e-12);
        assert!((f[3] - 4.0 * 10.0 / 20.0).abs() < 1e-12);
        // Every infeasible fitness below every feasible fitness.
        assert!(f[2] < f[0] && f[3] < f[0]);
        // Worse violators are penalized more.
        assert!(f[3] < f[2]);
    }

    #[test]
    fn epsilon_constraint_all_infeasible_fallback() {
        let obj = Objective::EpsilonConstraint {
            epsilon: 1.0,
            reference_makespan: 10.0,
        };
        let f = obj.fitness(&[e(20.0, 4.0), e(40.0, 4.0)]);
        // Own slack × bound/makespan.
        assert!((f[0] - 4.0 * 0.5).abs() < 1e-12);
        assert!((f[1] - 4.0 * 0.25).abs() < 1e-12);
        assert!(f[0] > f[1]);
    }

    #[test]
    fn weighted_sum_extremes_match_single_objectives() {
        let evals = [e(10.0, 2.0), e(20.0, 9.0), e(15.0, 5.0)];
        // w = 1: pure makespan minimization ordering.
        let f1 = Objective::WeightedSum { weight: 1.0 }.fitness(&evals);
        let m1 = Objective::MinimizeMakespan.fitness(&evals);
        let order = |f: &[f64]| {
            let mut idx: Vec<usize> = (0..f.len()).collect();
            idx.sort_by(|&a, &b| f[b].total_cmp(&f[a]));
            idx
        };
        assert_eq!(order(&f1), order(&m1));
        // w = 0: pure slack maximization ordering.
        let f0 = Objective::WeightedSum { weight: 0.0 }.fitness(&evals);
        let s0 = Objective::MaximizeSlack.fitness(&evals);
        assert_eq!(order(&f0), order(&s0));
        // Intermediate weight trades off: no bound exists.
        assert!(Objective::WeightedSum { weight: 0.5 }.bound().is_none());
        assert!(Objective::WeightedSum { weight: 0.5 }.is_feasible(&evals[0]));
    }

    #[test]
    fn scratch_batch_and_memo_paths_match_reference_bitwise() {
        use crate::chromosome::Chromosome;
        let inst = InstanceSpec::new(25, 3).seed(1).build().unwrap();
        let mut rng = rng_from_seed(3);
        let pop: Vec<Chromosome> = (0..10)
            .map(|_| Chromosome::random_for(&inst, &mut rng))
            .collect();
        let reference: Vec<Evaluation> = pop.iter().map(|c| evaluate(&inst, c)).collect();
        let mut scratch = EvalScratch::new();
        for (c, r) in pop.iter().zip(&reference) {
            let got = evaluate_with_scratch(&inst, c, &mut scratch);
            assert_eq!(got.makespan.to_bits(), r.makespan.to_bits());
            assert_eq!(got.avg_slack.to_bits(), r.avg_slack.to_bits());
        }
        assert_eq!(evaluate_all(&inst, &pop), reference);
        let mut memo = EvalMemo::new(64);
        let (evals, fresh) = evaluate_population(&inst, &pop, &mut memo);
        assert_eq!(evals, reference);
        assert_eq!(fresh, 10);
        // Second pass: everything is memo-resident.
        let (evals2, fresh2) = evaluate_population(&inst, &pop, &mut memo);
        assert_eq!(evals2, reference);
        assert_eq!(fresh2, 0);
        assert_eq!(memo.stats().hits, 10);
        // Disabled memo: same evaluations, all through the kernel.
        let mut off = EvalMemo::new(0);
        let (evals3, fresh3) = evaluate_population(&inst, &pop, &mut off);
        assert_eq!(evals3, reference);
        assert_eq!(fresh3, 10);
    }

    #[test]
    fn evaluate_matches_slack_analysis() {
        let inst = InstanceSpec::new(25, 3).seed(1).build().unwrap();
        let mut rng = rng_from_seed(2);
        let c = crate::chromosome::Chromosome::random_for(&inst, &mut rng);
        let ev = evaluate(&inst, &c);
        let s = c.decode(3);
        let a = rds_sched::slack::analyze_expected(&inst, &s).unwrap();
        assert_eq!(ev.makespan, a.makespan);
        assert_eq!(ev.avg_slack, a.average_slack);
        assert!(ev.makespan > 0.0);
        assert!(ev.avg_slack >= 0.0);
    }
}

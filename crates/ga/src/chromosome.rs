//! The chromosome encoding of §4.2.1.
//!
//! A chromosome is a *scheduling string* — a topological order of the task
//! graph — plus the assignment of every task to a processor. The paper
//! stores the assignment as `p` per-processor strings; since each
//! processor's execution order must agree with the scheduling string, the
//! task → processor vector is an equivalent, more compact encoding, and the
//! per-processor strings are recovered on decode (this is exactly the
//! "convert each parent's assignment string into a processor string"
//! round-trip the paper itself performs inside crossover).

use rand::Rng;

use rds_graph::topo::random_topological_order;
use rds_graph::{TaskGraph, TaskId};
use rds_platform::ProcId;
use rds_sched::instance::Instance;
use rds_sched::schedule::Schedule;

/// One GA individual.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Chromosome {
    /// The scheduling string: a topological order of all tasks.
    pub order: Vec<TaskId>,
    /// The processor string: `assignment[i]` is task `i`'s processor.
    pub assignment: Vec<ProcId>,
}

impl Chromosome {
    /// Draws a uniformly random valid chromosome (§4.2.2: random
    /// topological sort + random processor per task).
    pub fn random<R: Rng + ?Sized>(graph: &TaskGraph, proc_count: usize, rng: &mut R) -> Self {
        let order = random_topological_order(graph, rng);
        let assignment = (0..graph.task_count())
            .map(|_| ProcId(rng.gen_range(0..proc_count) as u32))
            .collect();
        Self { order, assignment }
    }

    /// Encodes an existing schedule (used to seed HEFT's solution into the
    /// initial population). The scheduling string is a topological order of
    /// the schedule's disjunctive graph, so per-processor orders decode
    /// back exactly.
    ///
    /// # Panics
    /// Panics if the schedule is incompatible with the graph (cyclic
    /// disjunctive graph) — seed schedules come from validated heuristics.
    pub fn from_schedule(graph: &TaskGraph, schedule: &Schedule) -> Self {
        let ds = rds_sched::disjunctive::DisjunctiveGraph::build(graph, schedule)
            .expect("seed schedule must be valid");
        Self {
            order: ds.topo_order().to_vec(),
            assignment: schedule.assignment().to_vec(),
        }
    }

    /// Decodes into a [`Schedule`]: each processor executes its tasks in
    /// scheduling-string order.
    ///
    /// # Panics
    /// Panics if the chromosome is malformed (operators preserve validity,
    /// so this indicates a bug).
    pub fn decode(&self, proc_count: usize) -> Schedule {
        Schedule::from_order_and_assignment(&self.order, &self.assignment, proc_count)
            .expect("chromosome operators preserve validity")
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` for the empty chromosome.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Structural validity: scheduling string is a topological order and
    /// every assignment is within range.
    pub fn is_valid(&self, graph: &TaskGraph, proc_count: usize) -> bool {
        rds_graph::topo::is_topological_order(graph, &self.order)
            && self.assignment.len() == graph.task_count()
            && self.assignment.iter().all(|p| p.index() < proc_count)
    }

    /// A 64-bit structural fingerprint for the uniqueness check of §4.2.2
    /// (identical chromosomes are discarded at population init). FNV-1a
    /// over the order and assignment words.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u32| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for t in &self.order {
            eat(t.0);
        }
        eat(u32::MAX); // separator
        for p in &self.assignment {
            eat(p.0);
        }
        h
    }

    /// Random chromosome for an instance (convenience).
    pub fn random_for<R: Rng + ?Sized>(inst: &Instance, rng: &mut R) -> Self {
        Self::random(&inst.graph, inst.proc_count(), rng)
    }
}

/// Where a variation operator first touched a chromosome, expressed in
/// *scheduling-string positions* — the currency of delta (suffix)
/// evaluation. A chromosome's evaluation can reuse a parent's forward
/// pass for every position before [`ChangeTrack::first_changed`]:
///
/// * `first_order` — the first position whose task differs from the
///   parent's (`n` when the orders are identical);
/// * `first_assign` — the first position (in the *child's* order) holding
///   a task whose processor assignment differs from the parent's (`n`
///   when the assignments agree).
///
/// Tracks compose across operators by taking position-wise minima
/// ([`ChangeTrack::merge`]): if A→B leaves positions `< f₁` untouched and
/// B→C leaves positions `< f₂` untouched, then A→C leaves positions
/// `< min(f₁, f₂)` untouched — rotations and swaps never move a task
/// *out* of the changed region into the common prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeTrack {
    /// First scheduling-string position whose task changed (`n` = none).
    pub first_order: usize,
    /// First position holding an assignment-changed task (`n` = none).
    pub first_assign: usize,
}

impl ChangeTrack {
    /// The track of an exact clone of an `n`-task chromosome.
    #[must_use]
    pub fn unchanged(n: usize) -> Self {
        Self {
            first_order: n,
            first_assign: n,
        }
    }

    /// First position at which *anything* changed — the largest sound
    /// `first_changed` for `EvalScratch::evaluate_delta`.
    #[must_use]
    pub fn first_changed(&self) -> usize {
        self.first_order.min(self.first_assign)
    }

    /// Composes a subsequent operator's track into this one.
    pub fn merge(&mut self, later: &ChangeTrack) {
        self.first_order = self.first_order.min(later.first_order);
        self.first_assign = self.first_assign.min(later.first_assign);
    }

    /// Computes the exact track between a parent and its child (same
    /// length required). `O(n)`; used by crossover, whose changed region
    /// is cheaper to measure than to predict.
    #[must_use]
    pub fn between(parent: &Chromosome, child: &Chromosome) -> Self {
        let n = parent.order.len();
        debug_assert_eq!(n, child.order.len());
        let first_order = (0..n)
            .find(|&j| parent.order[j] != child.order[j])
            .unwrap_or(n);
        let first_assign = (0..n)
            .find(|&j| {
                let t = child.order[j].index();
                parent.assignment[t] != child.assignment[t]
            })
            .unwrap_or(n);
        Self {
            first_order,
            first_assign,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;
    use rds_stats::rng::rng_from_seed;

    #[test]
    fn random_chromosomes_are_valid() {
        let inst = InstanceSpec::new(30, 4).seed(1).build().unwrap();
        let mut rng = rng_from_seed(2);
        for _ in 0..50 {
            let c = Chromosome::random_for(&inst, &mut rng);
            assert!(c.is_valid(&inst.graph, 4));
            let s = c.decode(4);
            assert!(s.validate_against(&inst.graph).is_ok());
        }
    }

    #[test]
    fn decode_orders_procs_by_scheduling_string() {
        let inst = InstanceSpec::new(20, 2).seed(3).build().unwrap();
        let mut rng = rng_from_seed(4);
        let c = Chromosome::random_for(&inst, &mut rng);
        let s = c.decode(2);
        // Tasks on each processor must appear in scheduling-string order.
        let pos: Vec<usize> = {
            let mut v = vec![0usize; c.len()];
            for (i, t) in c.order.iter().enumerate() {
                v[t.index()] = i;
            }
            v
        };
        for p in 0..2u32 {
            let tasks = s.tasks_on(ProcId(p));
            for w in tasks.windows(2) {
                assert!(pos[w[0].index()] < pos[w[1].index()]);
            }
        }
    }

    #[test]
    fn from_schedule_roundtrip() {
        let inst = InstanceSpec::new(30, 3).seed(5).build().unwrap();
        let heft = rds_heft::heft_schedule(&inst);
        let c = Chromosome::from_schedule(&inst.graph, &heft.schedule);
        assert!(c.is_valid(&inst.graph, 3));
        let decoded = c.decode(3);
        assert_eq!(decoded, heft.schedule);
    }

    #[test]
    fn fingerprints_distinguish_chromosomes() {
        let inst = InstanceSpec::new(25, 3).seed(6).build().unwrap();
        let mut rng = rng_from_seed(7);
        let a = Chromosome::random_for(&inst, &mut rng);
        let b = Chromosome::random_for(&inst, &mut rng);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn fingerprint_sensitive_to_assignment_only_changes() {
        let inst = InstanceSpec::new(10, 3).seed(8).build().unwrap();
        let mut rng = rng_from_seed(9);
        let a = Chromosome::random_for(&inst, &mut rng);
        let mut b = a.clone();
        b.assignment[0] = ProcId((b.assignment[0].0 + 1) % 3);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn invalid_chromosomes_detected() {
        let inst = InstanceSpec::new(10, 2).seed(10).build().unwrap();
        let mut rng = rng_from_seed(11);
        let mut c = Chromosome::random_for(&inst, &mut rng);
        // Swap the first two entries; most likely breaks topo order on a
        // layered DAG only if related — force invalid via out-of-range proc.
        c.assignment[0] = ProcId(99);
        assert!(!c.is_valid(&inst.graph, 2));
    }
}

//! The tri-objective chromosome: scheduling string + assignment string +
//! per-task DVFS *frequency string*.
//!
//! [`TriChromosome`] wraps the paper's [`Chromosome`] unchanged (so the
//! bi-objective GA, its memo keys, and its operators are untouched) and
//! adds one gene per task indexing the platform's
//! [`rds_platform::FreqLadder`]. Variation
//! composes the existing topology-preserving operators with
//! frequency-string counterparts: single-point crossover over the
//! frequency genes and a frequency-aware mutation that re-draws one task's
//! ladder level alongside the precedence-window reposition.

use rand::Rng;

use rds_graph::TaskGraph;
use rds_platform::EnergyModel;
use rds_sched::energy::EnergyScratch;
use rds_sched::instance::Instance;

use rayon::prelude::*;

use crate::chromosome::Chromosome;
use crate::crossover::crossover;
use crate::mutation::mutate;

/// One tri-objective GA individual.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriChromosome {
    /// The bi-objective genes: scheduling string + assignment string.
    pub chrom: Chromosome,
    /// The frequency string: `freq[i]` indexes task `i`'s DVFS level in
    /// the ladder (ascending; the top index is full speed).
    pub freq: Vec<u8>,
}

impl TriChromosome {
    /// Wraps a chromosome with every task at full speed — evaluates
    /// bit-identically to the frequency-oblivious kernel.
    #[must_use]
    pub fn full_speed(chrom: Chromosome, model: &EnergyModel) -> Self {
        let n = chrom.len();
        Self {
            chrom,
            freq: vec![model.ladder.top_index() as u8; n],
        }
    }

    /// Draws a uniformly random valid individual: random chromosome plus a
    /// uniform ladder level per task.
    pub fn random_for<R: Rng + ?Sized>(
        inst: &Instance,
        model: &EnergyModel,
        rng: &mut R,
    ) -> Self {
        let chrom = Chromosome::random_for(inst, rng);
        let levels = model.ladder.len();
        let freq = (0..chrom.len())
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        Self { chrom, freq }
    }

    /// Number of tasks.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.chrom.len()
    }

    /// `true` for the empty individual.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chrom.is_empty()
    }
}

/// Expected-time tri-objective evaluation of one individual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriEvaluation {
    /// Expected makespan `M₀` under frequency-scaled durations.
    pub makespan: f64,
    /// Average slack `σ̄` (robustness surrogate) under the same durations.
    pub avg_slack: f64,
    /// Total energy.
    pub energy: f64,
    /// Schedule reliability in `(0, 1]` — the constraint, not an
    /// objective.
    pub reliability: f64,
}

/// Evaluates one individual through the zero-alloc energy kernel.
///
/// # Panics
/// Panics if the individual is invalid for the instance (operators
/// preserve validity, so this indicates a bug).
pub fn evaluate_tri_with_scratch(
    inst: &Instance,
    model: &EnergyModel,
    c: &TriChromosome,
    scratch: &mut EnergyScratch,
) -> TriEvaluation {
    let s = scratch
        .evaluate(inst, model, &c.chrom.order, &c.chrom.assignment, &c.freq)
        .expect("valid chromosome decodes to an acyclic disjunctive graph");
    TriEvaluation {
        makespan: s.makespan,
        avg_slack: s.average_slack,
        energy: s.energy,
        reliability: s.reliability,
    }
}

/// Minimum batch size before evaluation fans out over rayon (same
/// threshold as the bi-objective kernel).
const PAR_MIN: usize = 8;

/// Evaluates a batch of individuals, one [`EnergyScratch`] per rayon
/// worker for large batches. Evaluation draws no randomness and results
/// are written by index, so the output is bit-identical for any thread
/// count.
pub fn evaluate_all_tri(
    inst: &Instance,
    model: &EnergyModel,
    pop: &[TriChromosome],
) -> Vec<TriEvaluation> {
    if pop.len() >= PAR_MIN {
        pop.par_iter()
            .map_init(EnergyScratch::new, |scratch, c| {
                evaluate_tri_with_scratch(inst, model, c, scratch)
            })
            .collect()
    } else {
        let mut scratch = EnergyScratch::new();
        pop.iter()
            .map(|c| evaluate_tri_with_scratch(inst, model, c, &mut scratch))
            .collect()
    }
}

/// Topology-preserving crossover of both parents' scheduling/assignment
/// strings (the paper's operator, unchanged) plus single-point crossover
/// of the frequency strings.
pub fn crossover_tri<R: Rng + ?Sized>(
    a: &TriChromosome,
    b: &TriChromosome,
    rng: &mut R,
) -> (TriChromosome, TriChromosome) {
    let (c1, c2) = crossover(&a.chrom, &b.chrom, rng);
    let n = a.freq.len();
    let (f1, f2) = if n < 2 {
        (a.freq.clone(), b.freq.clone())
    } else {
        let cut = rng.gen_range(1..n);
        let mut f1 = a.freq[..cut].to_vec();
        f1.extend_from_slice(&b.freq[cut..]);
        let mut f2 = b.freq[..cut].to_vec();
        f2.extend_from_slice(&a.freq[cut..]);
        (f1, f2)
    };
    (
        TriChromosome { chrom: c1, freq: f1 },
        TriChromosome { chrom: c2, freq: f2 },
    )
}

/// Frequency-aware mutation: the precedence-window reposition + processor
/// re-draw of the base operator, then one uniformly drawn task gets a
/// uniformly drawn ladder level (ladders with a single level skip the
/// frequency draw entirely, so trivial-ladder runs consume the same
/// randomness pattern apart from the base operator).
pub fn mutate_tri<R: Rng + ?Sized>(
    c: &mut TriChromosome,
    graph: &TaskGraph,
    proc_count: usize,
    ladder_levels: usize,
    rng: &mut R,
) {
    mutate(&mut c.chrom, graph, proc_count, rng);
    let n = c.freq.len();
    if n == 0 || ladder_levels <= 1 {
        return;
    }
    let t = rng.gen_range(0..n);
    c.freq[t] = rng.gen_range(0..ladder_levels) as u8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;
    use rds_stats::rng::rng_from_seed;

    fn setup() -> (Instance, EnergyModel) {
        let inst = InstanceSpec::new(20, 3).seed(2).build().unwrap();
        let model = EnergyModel::default_for(3);
        (inst, model)
    }

    #[test]
    fn random_individuals_are_valid() {
        let (inst, model) = setup();
        let mut rng = rng_from_seed(1);
        for _ in 0..10 {
            let c = TriChromosome::random_for(&inst, &model, &mut rng);
            assert_eq!(c.len(), 20);
            assert!(c.chrom.is_valid(&inst.graph, 3));
            assert!(c.freq.iter().all(|&f| (f as usize) < model.ladder.len()));
        }
    }

    #[test]
    fn full_speed_wrap_pins_top_level() {
        let (inst, model) = setup();
        let mut rng = rng_from_seed(3);
        let c = Chromosome::random_for(&inst, &mut rng);
        let tc = TriChromosome::full_speed(c, &model);
        assert!(tc
            .freq
            .iter()
            .all(|&f| f as usize == model.ladder.top_index()));
    }

    #[test]
    fn variation_preserves_validity_and_gene_ranges() {
        let (inst, model) = setup();
        let mut rng = rng_from_seed(4);
        let mut a = TriChromosome::random_for(&inst, &model, &mut rng);
        let b = TriChromosome::random_for(&inst, &model, &mut rng);
        for _ in 0..50 {
            let (c1, c2) = crossover_tri(&a, &b, &mut rng);
            for c in [&c1, &c2] {
                assert!(c.chrom.is_valid(&inst.graph, 3));
                assert_eq!(c.freq.len(), 20);
                assert!(c.freq.iter().all(|&f| (f as usize) < model.ladder.len()));
            }
            a = c1;
            mutate_tri(&mut a, &inst.graph, 3, model.ladder.len(), &mut rng);
            assert!(a.chrom.is_valid(&inst.graph, 3));
            assert!(a.freq.iter().all(|&f| (f as usize) < model.ladder.len()));
        }
    }

    #[test]
    fn batch_evaluation_matches_sequential_bitwise() {
        let (inst, model) = setup();
        let mut rng = rng_from_seed(5);
        let pop: Vec<TriChromosome> = (0..12)
            .map(|_| TriChromosome::random_for(&inst, &model, &mut rng))
            .collect();
        let batch = evaluate_all_tri(&inst, &model, &pop);
        let mut scratch = EnergyScratch::new();
        for (c, e) in pop.iter().zip(&batch) {
            let r = evaluate_tri_with_scratch(&inst, &model, c, &mut scratch);
            assert_eq!(r, *e);
            assert!(r.reliability > 0.0 && r.reliability <= 1.0);
            assert!(r.energy > 0.0);
        }
    }
}

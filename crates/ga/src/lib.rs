//! The bi-objective genetic algorithm of §4.2.
//!
//! * [`chromosome`] — the encoding: a *scheduling string* (topological
//!   order) plus per-processor *assignment strings* (stored compactly as a
//!   task → processor vector; the per-processor orders are recovered from
//!   the scheduling string, exactly the decoding of §4.2.1).
//! * [`objective`] — the three objective functions used by the paper's
//!   experiments: minimize makespan (Fig. 2), maximize slack (Fig. 3), and
//!   the ε-constraint fitness of Eq. 8 (Figs. 4–8) with its
//!   population-based penalty for infeasible individuals.
//! * [`selection`] — systematic binary tournament (§4.2.4: every individual
//!   participates in exactly two tournaments).
//! * [`crossover`] — topology-preserving single-point crossover of both
//!   strings (§4.2.5).
//! * [`mutation`] — precedence-window task repositioning plus processor
//!   reassignment (§4.2.6).
//! * [`engine`] — the GA loop: HEFT-seeded unique initial population,
//!   selection → crossover → mutation, elitism, and the paper's stopping
//!   rule (1000 generations or 100 without improvement), with a
//!   per-generation history used by the figure generators.
//! * [`memo`] — a fingerprint-keyed, collision-safe evaluation cache so
//!   chromosomes the GA has already seen (elites, unmutated tournament
//!   winners, converged populations) skip the evaluation kernel.
//! * [`tri`] — the tri-objective extension: [`tri::TriChromosome`] adds a
//!   per-task DVFS frequency string, evaluated for (makespan, slack,
//!   energy) plus schedule reliability through `rds_sched::energy`.
//! * [`nsga2`] — bi-objective NSGA-II, plus the reliability-constrained
//!   tri-objective variant ([`nsga2::nsga2_tri`]) with feasibility-first
//!   dominance.
//! * [`hypervolume`] — the 3-D hypervolume indicator used to summarize
//!   tri-objective front quality.
//!
//! Population evaluation runs through the flat-CSR scratch-arena kernel of
//! `rds_sched::csr` ([`objective::evaluate_population`]), in parallel via
//! rayon for large populations — results are bit-identical to the
//! sequential path for any thread count because evaluation draws no random
//! numbers and all memo/selection bookkeeping stays sequential.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chromosome;
pub mod crossover;
pub mod diversity;
pub mod engine;
pub mod hypervolume;
pub mod islands;
pub mod memo;
pub mod mutation;
pub mod nsga2;
pub mod objective;
pub mod params;
pub mod robust_engine;
pub mod selection;
pub mod tri;

pub use chromosome::{ChangeTrack, Chromosome};
pub use engine::{GaEngine, GaResult, GaRunStats, GenerationStats};
pub use hypervolume::{hypervolume_3d, nadir_reference, tri_hypervolume};
pub use memo::{EvalMemo, MemoStats};
pub use nsga2::{nsga2_tri, Nsga2TriResult, TriFrontPoint};
pub use objective::{DeltaHint, EvalState, Evaluation, Objective, PopEvalStats};
pub use params::GaParams;
pub use robust_engine::{
    evaluate_mc_delta, evaluate_mc_scalar, evaluate_mc_with, try_run_robust_ga, McScalarScratch,
    McScratch, RobustGaError, RobustGaParams, RobustGaResult,
};
pub use tri::{evaluate_all_tri, TriChromosome, TriEvaluation};

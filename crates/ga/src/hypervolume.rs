//! Hypervolume indicator for 3-objective fronts.
//!
//! The hypervolume of a front w.r.t. a reference point `r` is the Lebesgue
//! measure of the region dominated by the front and bounded by `r` — the
//! standard strictly-monotonic quality indicator for Pareto fronts (larger
//! is better; adding a non-dominated point never decreases it). All axes
//! are *minimized*; [`tri_hypervolume`] adapts the scheduler's
//! (makespan ↓, slack ↑, energy ↓) evaluations by negating slack.
//!
//! The implementation is the classical z-sweep: sort points by the third
//! coordinate and accumulate, per z-slab, the 2-D union area of the boxes
//! spanned by all points at or below the slab — `O(n² log n)`, plenty for
//! GA front sizes (tens of points).

use crate::tri::TriEvaluation;

/// Union area in 2-D of the boxes `[x_i, rx] × [y_i, ry]`.
///
/// `pts` must only contain points with `x < rx` and `y < ry`.
fn union_area_2d(pts: &mut Vec<[f64; 2]>, rx: f64, ry: f64) -> f64 {
    if pts.is_empty() {
        return 0.0;
    }
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    let mut area = 0.0;
    let mut cur_y = ry;
    for p in pts.iter() {
        if p[1] < cur_y {
            area += (rx - p[0]) * (cur_y - p[1]);
            cur_y = p[1];
        }
    }
    area
}

/// Hypervolume of `points` (all objectives minimized) w.r.t. `reference`.
///
/// Points that do not strictly dominate the reference on every axis
/// contribute nothing and are skipped; dominated points are harmless
/// (the union measure ignores them). Returns `0.0` for an empty or fully
/// out-of-reference front.
#[must_use]
pub fn hypervolume_3d(points: &[[f64; 3]], reference: [f64; 3]) -> f64 {
    let mut pts: Vec<[f64; 3]> = points
        .iter()
        .copied()
        .filter(|p| p[0] < reference[0] && p[1] < reference[1] && p[2] < reference[2])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sweep slabs along z: within [z_k, z_next), the dominated cross
    // section is the union of the xy-boxes of every point with z ≤ z_k.
    pts.sort_by(|a, b| a[2].total_cmp(&b[2]));
    let mut hv = 0.0;
    let mut active: Vec<[f64; 2]> = Vec::with_capacity(pts.len());
    let mut i = 0;
    while i < pts.len() {
        let z = pts[i][2];
        while i < pts.len() && pts[i][2] == z {
            active.push([pts[i][0], pts[i][1]]);
            i += 1;
        }
        let z_next = if i < pts.len() { pts[i][2] } else { reference[2] };
        if z_next > z {
            let mut slab = active.clone();
            hv += union_area_2d(&mut slab, reference[0], reference[1]) * (z_next - z);
        }
    }
    hv
}

/// Hypervolume of a tri-objective front in (makespan ↓, slack ↑,
/// energy ↓) space. `reference` is `(makespan, slack, energy)` in the
/// *original* orientation — a point worse than the whole front: makespan
/// and energy above, slack below.
#[must_use]
pub fn tri_hypervolume(evals: &[TriEvaluation], reference: [f64; 3]) -> f64 {
    let pts: Vec<[f64; 3]> = evals
        .iter()
        .map(|e| [e.makespan, -e.avg_slack, e.energy])
        .collect();
    hypervolume_3d(&pts, [reference[0], -reference[1], reference[2]])
}

/// A reference point safely worse than every member of `evals` on each
/// axis: the nadir pushed out by `margin` (relative, e.g. `0.1` for 10 %
/// beyond the worst observed value on every objective). Returns `None`
/// for an empty front.
#[must_use]
pub fn nadir_reference(evals: &[TriEvaluation], margin: f64) -> Option<[f64; 3]> {
    if evals.is_empty() {
        return None;
    }
    let worst_mk = evals.iter().map(|e| e.makespan).fold(f64::NEG_INFINITY, f64::max);
    let worst_sl = evals.iter().map(|e| e.avg_slack).fold(f64::INFINITY, f64::min);
    let worst_en = evals.iter().map(|e| e.energy).fold(f64::NEG_INFINITY, f64::max);
    let pad = |x: f64| {
        let m = x.abs().max(1e-12) * margin;
        x + m
    };
    // Slack is maximized: the reference sits *below* the worst slack.
    Some([pad(worst_mk), worst_sl - worst_sl.abs().max(1e-12) * margin, pad(worst_en)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_volume_is_box_volume() {
        let hv = hypervolume_3d(&[[1.0, 1.0, 1.0]], [2.0, 3.0, 4.0]);
        assert!((hv - 1.0 * 2.0 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_reference_points_contribute_nothing() {
        let hv = hypervolume_3d(&[[5.0, 1.0, 1.0]], [2.0, 3.0, 4.0]);
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume_3d(&[], [1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let lone = hypervolume_3d(&[[1.0, 1.0, 1.0]], [4.0, 4.0, 4.0]);
        let with_dom = hypervolume_3d(&[[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]], [4.0, 4.0, 4.0]);
        assert!((lone - with_dom).abs() < 1e-12);
    }

    #[test]
    fn staircase_union_counted_once() {
        // Two points overlapping in the xy plane, same z.
        let hv = hypervolume_3d(&[[1.0, 2.0, 1.0], [2.0, 1.0, 1.0]], [3.0, 3.0, 2.0]);
        // Union area = 2*1 + 1*2 - 1*1 = 3; slab height 1.
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn non_dominated_point_strictly_increases_volume() {
        let base = vec![[1.0, 3.0, 1.0]];
        let hv0 = hypervolume_3d(&base, [4.0, 4.0, 4.0]);
        let mut more = base.clone();
        more.push([3.0, 1.0, 1.0]);
        let hv1 = hypervolume_3d(&more, [4.0, 4.0, 4.0]);
        assert!(hv1 > hv0);
    }

    #[test]
    fn z_slabs_accumulate() {
        // A point at z=1 and a wider box appearing at z=2.
        let hv = hypervolume_3d(&[[2.0, 2.0, 1.0], [1.0, 1.0, 2.0]], [3.0, 3.0, 3.0]);
        // Slab [1,2): area (3-2)*(3-2)=1 -> 1. Slab [2,3): union of
        // (1×1 box from first point) and (2×2 from second) = 4 -> 4.
        assert!((hv - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tri_orientation_negates_slack() {
        use crate::tri::TriEvaluation;
        let e = TriEvaluation {
            makespan: 1.0,
            avg_slack: 2.0,
            energy: 1.0,
            reliability: 1.0,
        };
        // Reference: makespan 2, slack 1 (worse = lower), energy 2.
        let hv = tri_hypervolume(&[e], [2.0, 1.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nadir_reference_bounds_the_front() {
        let evals = vec![
            TriEvaluation {
                makespan: 10.0,
                avg_slack: 2.0,
                energy: 5.0,
                reliability: 0.99,
            },
            TriEvaluation {
                makespan: 12.0,
                avg_slack: 3.0,
                energy: 4.0,
                reliability: 0.98,
            },
        ];
        let r = nadir_reference(&evals, 0.1).unwrap();
        assert!(r[0] > 12.0);
        assert!(r[1] < 2.0);
        assert!(r[2] > 5.0);
        assert!(tri_hypervolume(&evals, r) > 0.0);
        assert!(nadir_reference(&[], 0.1).is_none());
    }
}

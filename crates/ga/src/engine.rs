//! The GA loop (§4.2).
//!
//! Structure per generation: evaluate → (record) → systematic binary
//! tournament → paired single-point crossover with probability `pc` →
//! mutation with probability `pm` → elitism (the new population's worst is
//! replaced by the previous population's best). Evolution stops at
//! `max_generations` or when the best solution has not improved for
//! `stall_generations` (paper: 1000 / 100).
//!
//! The initial population consists of unique random chromosomes plus —
//! §4.2.2 — the HEFT solution.

use rand::Rng;
use std::collections::HashSet;
use std::time::Instant;

use rds_sched::instance::Instance;
use rds_stats::rng::rng_from_seed;

use crate::chromosome::Chromosome;
use crate::crossover::crossover_tracked;
use crate::memo::EvalMemo;
use crate::mutation::mutate_tracked;
use crate::objective::{
    evaluate_population, evaluate_population_delta, DeltaHint, EvalState, Evaluation, Objective,
};
use crate::params::GaParams;
use crate::selection::binary_tournament;

/// Per-generation record used by the figure generators.
#[derive(Debug, Clone)]
pub struct GenerationStats {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Expected makespan of the generation's best individual.
    pub best_makespan: f64,
    /// Average slack of the generation's best individual.
    pub best_slack: f64,
    /// Whether the best individual satisfies the ε-constraint (always
    /// `true` for unconstrained objectives).
    pub best_feasible: bool,
    /// The generation's best chromosome (for post-hoc Monte Carlo
    /// evaluation along the evolution, Figs. 2–3).
    pub best_chromosome: Chromosome,
}

/// Evaluation-kernel counters of one GA run.
///
/// `kernel_evals + memo_hits` equals the number of chromosome evaluations
/// the run *requested*; the memo answered `memo_hits` of them without
/// touching the kernel. All counters except `eval_nanos` are deterministic
/// for a given seed and thread count-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaRunStats {
    /// Full kernel evaluations performed (memo misses).
    pub kernel_evals: u64,
    /// Evaluations answered by the fingerprint memo.
    pub memo_hits: u64,
    /// Fingerprint collisions detected (counted, fell back to the kernel).
    pub memo_collisions: u64,
    /// Wall-clock nanoseconds spent inside population evaluation.
    pub eval_nanos: u64,
    /// Kernel evaluations (a subset of `kernel_evals`) that ran as
    /// suffix-only delta passes against a verified parent prefix.
    pub delta_evals: u64,
    /// Suffix tasks recomputed across all delta evaluations.
    pub delta_suffix_tasks: u64,
    /// Total task count across all delta evaluations (denominator of
    /// [`GaRunStats::suffix_fraction`]).
    pub delta_total_tasks: u64,
    /// Monte-Carlo realization lanes walked through the batched SoA
    /// kernel (robust engine only; `0` for the expected-time GA).
    pub mc_lane_evals: u64,
}

impl GaRunStats {
    /// Fraction of evaluation requests answered by the memo, in `[0, 1]`.
    #[must_use]
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.kernel_evals;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Kernel throughput (full evaluations per second of evaluation time).
    #[must_use]
    pub fn evals_per_sec(&self) -> f64 {
        if self.eval_nanos == 0 {
            0.0
        } else {
            self.kernel_evals as f64 * 1e9 / self.eval_nanos as f64
        }
    }

    /// Fraction of kernel evaluations that ran as delta passes, in `[0, 1]`.
    #[must_use]
    pub fn delta_hit_rate(&self) -> f64 {
        if self.kernel_evals == 0 {
            0.0
        } else {
            self.delta_evals as f64 / self.kernel_evals as f64
        }
    }

    /// Average fraction of the scheduling string a delta evaluation had to
    /// recompute, in `[0, 1]` (`0` when no delta evaluation ran).
    #[must_use]
    pub fn suffix_fraction(&self) -> f64 {
        if self.delta_total_tasks == 0 {
            0.0
        } else {
            self.delta_suffix_tasks as f64 / self.delta_total_tasks as f64
        }
    }

    /// Accumulates another run's counters into this one (aggregation
    /// across runs/islands/studies).
    pub fn absorb(&mut self, other: &GaRunStats) {
        self.kernel_evals += other.kernel_evals;
        self.memo_hits += other.memo_hits;
        self.memo_collisions += other.memo_collisions;
        self.eval_nanos += other.eval_nanos;
        self.delta_evals += other.delta_evals;
        self.delta_suffix_tasks += other.delta_suffix_tasks;
        self.delta_total_tasks += other.delta_total_tasks;
        self.mc_lane_evals += other.mc_lane_evals;
    }
}

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult {
    /// Best chromosome found across the whole run.
    pub best: Chromosome,
    /// Its evaluation.
    pub best_eval: Evaluation,
    /// Whether the best chromosome satisfies the objective's constraint.
    pub best_feasible: bool,
    /// Number of generations executed (excluding the initial population).
    pub generations: usize,
    /// Per-generation history (entry 0 is the initial population).
    pub history: Vec<GenerationStats>,
    /// The final population (used by the island model to continue
    /// evolution across migration epochs).
    pub final_population: Vec<Chromosome>,
    /// `true` when a watch callback stopped the run before `max_generations`
    /// / stall termination (see [`GaEngine::run_with_watch`]). The `best`
    /// fields still hold the best-so-far solution.
    pub interrupted: bool,
    /// Evaluation-kernel and memo counters for the run.
    pub stats: GaRunStats,
}

impl GaResult {
    /// Decodes the best chromosome into a schedule.
    #[must_use]
    pub fn best_schedule(&self, inst: &Instance) -> rds_sched::schedule::Schedule {
        self.best.decode(inst.proc_count())
    }
}

/// Population-independent quality used for best-so-far tracking and stall
/// detection: feasibility dominates, then the objective's own scalar.
fn quality(obj: &Objective, e: &Evaluation) -> (bool, f64) {
    let feasible = obj.is_feasible(e);
    let value = match obj {
        Objective::MinimizeMakespan => -e.makespan,
        Objective::MaximizeSlack => e.avg_slack,
        Objective::EpsilonConstraint { .. } | Objective::EpsilonConstraintRejecting { .. } => {
            if feasible {
                e.avg_slack
            } else {
                // Less infeasible is better.
                -e.makespan
            }
        }
        Objective::WeightedSum { weight } => (1.0 - weight) * e.avg_slack - weight * e.makespan,
    };
    (feasible, value)
}

fn better(a: (bool, f64), b: (bool, f64)) -> bool {
    a.0 & !b.0 || (a.0 == b.0 && a.1 > b.1)
}

/// The GA engine. Construct, then [`GaEngine::run`].
///
/// ```
/// use rds_ga::{GaEngine, GaParams, Objective};
/// use rds_sched::InstanceSpec;
///
/// let inst = InstanceSpec::new(20, 3).seed(5).build()?;
/// let heft = rds_heft::heft_schedule(&inst);
/// // Eq. 7: maximize average slack subject to M0 <= 1.3 x M_HEFT.
/// let objective = Objective::EpsilonConstraint {
///     epsilon: 1.3,
///     reference_makespan: heft.makespan,
/// };
/// let result = GaEngine::new(&inst, GaParams::quick().seed(1), objective).run();
/// assert!(result.best_feasible);
/// assert!(result.best_eval.makespan <= 1.3 * heft.makespan);
/// # Ok::<(), String>(())
/// ```
pub struct GaEngine<'a> {
    inst: &'a Instance,
    params: GaParams,
    objective: Objective,
    initial: Option<Vec<Chromosome>>,
}

impl<'a> GaEngine<'a> {
    /// Creates an engine.
    ///
    /// # Panics
    /// Panics when `params` fail validation. Daemons handling untrusted
    /// job input should use [`GaEngine::try_new`] instead.
    pub fn new(inst: &'a Instance, params: GaParams, objective: Objective) -> Self {
        Self::try_new(inst, params, objective).expect("invalid GA parameters")
    }

    /// Creates an engine, returning the parameter-validation failure as a
    /// value instead of panicking.
    ///
    /// # Errors
    /// Returns the validation message when `params` are inconsistent.
    pub fn try_new(
        inst: &'a Instance,
        params: GaParams,
        objective: Objective,
    ) -> Result<Self, String> {
        params.validate()?;
        Ok(Self {
            inst,
            params,
            objective,
            initial: None,
        })
    }

    /// Supplies an explicit initial population (the island model resumes
    /// evolution this way). Must contain exactly `params.population`
    /// chromosomes; bypasses the HEFT seed and the uniqueness filter.
    ///
    /// # Panics
    /// Panics when the size disagrees with `params.population`.
    #[must_use]
    pub fn with_initial_population(mut self, pop: Vec<Chromosome>) -> Self {
        assert_eq!(
            pop.len(),
            self.params.population,
            "initial population must match the configured size"
        );
        self.initial = Some(pop);
        self
    }

    /// Builds the initial population: the HEFT seed (if enabled) plus
    /// unique random chromosomes (§4.2.2 discards duplicates).
    fn initial_population<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Chromosome> {
        let np = self.params.population;
        let mut pop: Vec<Chromosome> = Vec::with_capacity(np);
        let mut seen: HashSet<u64> = HashSet::with_capacity(np * 2);
        if self.params.seed_heft {
            let heft = rds_heft::heft_schedule(self.inst);
            let c = Chromosome::from_schedule(&self.inst.graph, &heft.schedule);
            seen.insert(c.fingerprint());
            pop.push(c);
        }
        // Uniqueness with a bounded retry budget; tiny instances may not
        // have Np distinct chromosomes, in which case duplicates are
        // admitted after the budget is spent.
        let mut attempts = 0usize;
        let budget = np * 200;
        while pop.len() < np {
            let c = Chromosome::random_for(self.inst, rng);
            attempts += 1;
            if seen.insert(c.fingerprint()) || attempts > budget {
                pop.push(c);
            }
        }
        pop
    }

    /// Runs the GA to completion.
    pub fn run(&self) -> GaResult {
        self.run_with_watch(&mut |_| false)
    }

    /// Runs the GA under a cooperative cancellation watch.
    ///
    /// `watch(gen)` is consulted before evolving generation `gen`
    /// (`1..=max_generations`); returning `true` stops the run immediately
    /// and marks the result [`GaResult::interrupted`], with `best` holding
    /// the best-so-far solution. This is how a serving layer enforces
    /// per-job deadline budgets without killing threads: the engine never
    /// blocks for longer than one generation.
    ///
    /// A watch that always returns `false` is exactly [`GaEngine::run`]:
    /// the RNG stream is untouched by watching, so interrupted and
    /// uninterrupted runs agree on every generation they both execute.
    pub fn run_with_watch(&self, watch: &mut dyn FnMut(usize) -> bool) -> GaResult {
        let mut rng = rng_from_seed(self.params.seed);
        let np = self.params.population;

        let mut pop = match &self.initial {
            Some(p) => p.clone(),
            None => self.initial_population(&mut rng),
        };
        // Evaluation pipeline: fingerprint memo in front of the parallel
        // CSR kernel, with delta (suffix) evaluation layered on when
        // enabled. Evaluation is pure and draws no randomness, and delta
        // passes are bit-identical to full ones, so the results — and the
        // RNG stream below — are bit-identical to a sequential, unmemoized,
        // full-evaluation run.
        let mut memo = EvalMemo::new(self.params.memo_capacity);
        let mut stats = GaRunStats::default();
        let use_delta = self.params.delta_eval;
        let mut cur_states: Vec<EvalState> = if use_delta {
            (0..np).map(|_| EvalState::new()).collect()
        } else {
            Vec::new()
        };
        let mut prev_states: Vec<EvalState> = cur_states.clone();
        let mut hints: Vec<Option<DeltaHint>> = vec![None; np];
        let eval_start = Instant::now();
        let mut evals = if use_delta {
            let (e, pes) =
                evaluate_population_delta(self.inst, &pop, &hints, &prev_states, &mut cur_states, &mut memo);
            stats.kernel_evals += pes.kernel_evals;
            stats.delta_evals += pes.delta_evals;
            stats.delta_suffix_tasks += pes.delta_suffix_tasks;
            stats.delta_total_tasks += pes.delta_total_tasks;
            e
        } else {
            let (e, fresh) = evaluate_population(self.inst, &pop, &mut memo);
            stats.kernel_evals += fresh;
            e
        };
        stats.eval_nanos += eval_start.elapsed().as_nanos() as u64;

        let gen_best = |pop: &[Chromosome], evals: &[Evaluation]| -> usize {
            let mut bi = 0;
            for i in 1..pop.len() {
                if better(
                    quality(&self.objective, &evals[i]),
                    quality(&self.objective, &evals[bi]),
                ) {
                    bi = i;
                }
            }
            bi
        };

        let mut history: Vec<GenerationStats> = Vec::with_capacity(self.params.max_generations + 1);
        let record = |gen: usize,
                      pop: &[Chromosome],
                      evals: &[Evaluation],
                      hist: &mut Vec<GenerationStats>| {
            let bi = gen_best(pop, evals);
            hist.push(GenerationStats {
                generation: gen,
                best_makespan: evals[bi].makespan,
                best_slack: evals[bi].avg_slack,
                best_feasible: self.objective.is_feasible(&evals[bi]),
                best_chromosome: pop[bi].clone(),
            });
        };
        record(0, &pop, &evals, &mut history);

        let mut best_idx = gen_best(&pop, &evals);
        let mut best = pop[best_idx].clone();
        let mut best_eval = evals[best_idx];
        let mut best_q = quality(&self.objective, &best_eval);

        let mut stall = 0usize;
        let mut generations = 0usize;
        let mut interrupted = false;

        for gen in 1..=self.params.max_generations {
            if watch(gen) {
                interrupted = true;
                break;
            }
            generations = gen;
            let fitness = self.objective.fitness(&evals);

            // Previous best (for elitism), by population-based fitness as
            // the paper specifies.
            let prev_best_idx = fitness
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .expect("non-empty population");
            let elite = pop[prev_best_idx].clone();
            let elite_eval = evals[prev_best_idx];

            // Selection. Each slot starts as a clone of its tournament
            // winner; the hint records that parent slot and the first
            // scheduling-string position the operators below touch.
            let winners = binary_tournament(&fitness, &mut rng);
            let mut next: Vec<Chromosome> = winners.iter().map(|&i| pop[i].clone()).collect();
            let n_tasks = self.inst.task_count();
            for (h, &w) in hints.iter_mut().zip(&winners) {
                *h = Some(DeltaHint {
                    parent: w,
                    first_changed: n_tasks,
                });
            }

            // Crossover over consecutive pairs with probability pc.
            for pair in 0..np / 2 {
                let (a, b) = (2 * pair, 2 * pair + 1);
                if rng.gen_bool(self.params.crossover_prob) {
                    let (c1, c2, t1, t2) = crossover_tracked(&next[a], &next[b], &mut rng);
                    next[a] = c1;
                    next[b] = c2;
                    if let Some(h) = hints[a].as_mut() {
                        h.first_changed = h.first_changed.min(t1.first_changed());
                    }
                    if let Some(h) = hints[b].as_mut() {
                        h.first_changed = h.first_changed.min(t2.first_changed());
                    }
                }
            }

            // Mutation with probability pm per individual.
            for (i, c) in next.iter_mut().enumerate() {
                if rng.gen_bool(self.params.mutation_prob) {
                    let t = mutate_tracked(c, &self.inst.graph, self.inst.proc_count(), &mut rng);
                    if let Some(h) = hints[i].as_mut() {
                        h.first_changed = h.first_changed.min(t.first_changed());
                    }
                }
            }

            // Evaluate and apply elitism: replace the worst of the new
            // population with the previous best. Unmutated tournament
            // winners were evaluated (and memoized) last generation, so
            // only fresh offspring reach the kernel here.
            let eval_start = Instant::now();
            let mut next_evals = if use_delta {
                std::mem::swap(&mut cur_states, &mut prev_states);
                let (e, pes) = evaluate_population_delta(
                    self.inst,
                    &next,
                    &hints,
                    &prev_states,
                    &mut cur_states,
                    &mut memo,
                );
                stats.kernel_evals += pes.kernel_evals;
                stats.delta_evals += pes.delta_evals;
                stats.delta_suffix_tasks += pes.delta_suffix_tasks;
                stats.delta_total_tasks += pes.delta_total_tasks;
                e
            } else {
                let (e, fresh) = evaluate_population(self.inst, &next, &mut memo);
                stats.kernel_evals += fresh;
                e
            };
            stats.eval_nanos += eval_start.elapsed().as_nanos() as u64;
            let next_fitness = self.objective.fitness(&next_evals);
            let worst_idx = next_fitness
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .expect("non-empty population");
            next[worst_idx] = elite;
            next_evals[worst_idx] = elite_eval;
            if use_delta {
                // Keep the elite slot's state consistent with the elite
                // chromosome, so it can parent delta evaluations next
                // generation.
                cur_states[worst_idx].copy_from(&prev_states[prev_best_idx]);
            }

            pop = next;
            evals = next_evals;
            record(gen, &pop, &evals, &mut history);

            // Best-so-far and stall tracking.
            let bi = gen_best(&pop, &evals);
            let q = quality(&self.objective, &evals[bi]);
            if better(q, best_q) {
                best_q = q;
                best_idx = bi;
                best = pop[bi].clone();
                best_eval = evals[bi];
                stall = 0;
            } else {
                stall += 1;
            }
            let _ = best_idx;
            if stall >= self.params.stall_generations {
                break;
            }
        }

        let memo_stats = memo.stats();
        stats.memo_hits = memo_stats.hits;
        stats.memo_collisions = memo_stats.collisions;

        GaResult {
            best_feasible: best_q.0,
            best,
            best_eval,
            generations,
            history,
            final_population: pop,
            interrupted,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use rds_sched::instance::InstanceSpec;

    fn quick_inst(seed: u64) -> Instance {
        InstanceSpec::new(30, 3).seed(seed).build().unwrap()
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let inst = quick_inst(1);
        let params = GaParams::quick().seed(42).max_generations(20);
        let a = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        let b = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.generations, b.generations);
        assert_eq!(a.best_eval.makespan, b.best_eval.makespan);
    }

    #[test]
    fn minimize_makespan_improves_over_initial() {
        let inst = quick_inst(2);
        let params = GaParams::quick().seed(7);
        let r = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        let initial_best = r.history[0].best_makespan;
        assert!(
            r.best_eval.makespan <= initial_best + 1e-9,
            "GA must not regress: {} > {}",
            r.best_eval.makespan,
            initial_best
        );
        // Best chromosome decodes to a valid schedule.
        let s = r.best_schedule(&inst);
        assert!(s.validate_against(&inst.graph).is_ok());
    }

    #[test]
    fn maximize_slack_improves_slack_and_costs_makespan() {
        let inst = quick_inst(3);
        let params = GaParams::quick().seed(9).max_generations(80);
        let slack_run = GaEngine::new(&inst, params, Objective::MaximizeSlack).run();
        let mk_run = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        assert!(
            slack_run.best_eval.avg_slack > mk_run.best_eval.avg_slack,
            "slack objective should find slackier schedules ({} vs {})",
            slack_run.best_eval.avg_slack,
            mk_run.best_eval.avg_slack
        );
        assert!(
            slack_run.best_eval.makespan >= mk_run.best_eval.makespan,
            "conflict: slack-optimal should not also be makespan-optimal"
        );
    }

    #[test]
    fn heft_seed_guarantees_quality_floor() {
        // With elitism and the HEFT seed, the best makespan can never be
        // worse than HEFT's.
        let inst = quick_inst(4);
        let heft = rds_heft::heft_schedule(&inst);
        let params = GaParams::quick().seed(11).max_generations(15);
        let r = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        assert!(r.best_eval.makespan <= heft.makespan + 1e-9);
    }

    #[test]
    fn epsilon_constraint_respected_by_best() {
        let inst = quick_inst(5);
        let heft = rds_heft::heft_schedule(&inst);
        let obj = Objective::EpsilonConstraint {
            epsilon: 1.3,
            reference_makespan: heft.makespan,
        };
        let params = GaParams::quick().seed(13).max_generations(60);
        let r = GaEngine::new(&inst, params, obj).run();
        assert!(r.best_feasible, "HEFT seed guarantees one feasible point");
        assert!(r.best_eval.makespan < 1.3 * heft.makespan);
        // And the slack should beat HEFT's own slack (that is the point).
        let heft_eval = evaluate(
            &inst,
            &Chromosome::from_schedule(&inst.graph, &heft.schedule),
        );
        assert!(
            r.best_eval.avg_slack >= heft_eval.avg_slack - 1e-9,
            "{} < {}",
            r.best_eval.avg_slack,
            heft_eval.avg_slack
        );
    }

    #[test]
    fn stall_terminates_early() {
        let inst = quick_inst(6);
        let params = GaParams::quick()
            .seed(17)
            .max_generations(1000)
            .stall_generations(5);
        let r = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        assert!(r.generations < 1000, "stall should stop the run");
        assert_eq!(r.history.len(), r.generations + 1);
    }

    #[test]
    fn history_is_complete_and_monotone_for_elitist_quality() {
        let inst = quick_inst(7);
        let params = GaParams::quick().seed(19).max_generations(30);
        let r = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        assert_eq!(r.history[0].generation, 0);
        // Elitism ⇒ per-generation best makespan is non-increasing.
        for w in r.history.windows(2) {
            assert!(
                w[1].best_makespan <= w[0].best_makespan + 1e-9,
                "gen {} regressed",
                w[1].generation
            );
        }
    }

    #[test]
    fn population_size_is_constant() {
        let inst = quick_inst(8);
        let engine = GaEngine::new(&inst, GaParams::quick().seed(21), Objective::MaximizeSlack);
        let mut rng = rng_from_seed(21);
        let pop = engine.initial_population(&mut rng);
        assert_eq!(pop.len(), GaParams::quick().population);
        // All unique.
        let fps: HashSet<u64> = pop.iter().map(Chromosome::fingerprint).collect();
        assert_eq!(fps.len(), pop.len());
    }

    #[test]
    fn final_population_has_configured_size_and_contains_best() {
        let inst = quick_inst(10);
        let params = GaParams::quick().seed(25).max_generations(15);
        let r = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        assert_eq!(r.final_population.len(), params.population);
        // Elitism keeps the best in the final population.
        assert!(
            r.final_population.contains(&r.best),
            "best chromosome must survive to the end"
        );
    }

    #[test]
    fn initial_population_continuation_is_seamless() {
        let inst = quick_inst(11);
        let params = GaParams::quick()
            .seed(27)
            .max_generations(10)
            .stall_generations(10);
        let first = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        // Continue from where the first run stopped.
        let second = GaEngine::new(&inst, params.seed(28), Objective::MinimizeMakespan)
            .with_initial_population(first.final_population.clone())
            .run();
        // Continuation cannot regress below the carried-over population's
        // best (elitism).
        assert!(second.best_eval.makespan <= first.best_eval.makespan + 1e-9);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn wrong_initial_population_size_rejected() {
        let inst = quick_inst(12);
        let params = GaParams::quick().seed(1);
        let _ = GaEngine::new(&inst, params, Objective::MinimizeMakespan)
            .with_initial_population(vec![]);
    }

    #[test]
    fn watch_interrupts_and_preserves_best_so_far() {
        let inst = quick_inst(13);
        let params = GaParams::quick().seed(31).max_generations(50);
        let full = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        assert!(!full.interrupted);

        // Stop before generation 6: identical prefix, flagged interrupted.
        let cut = 6usize;
        let stopped = GaEngine::new(&inst, params, Objective::MinimizeMakespan)
            .run_with_watch(&mut |gen| gen >= cut);
        assert!(stopped.interrupted);
        assert_eq!(stopped.generations, cut - 1);
        assert_eq!(stopped.history.len(), cut);
        for (a, b) in stopped.history.iter().zip(&full.history) {
            assert_eq!(a.best_chromosome, b.best_chromosome, "prefix must agree");
        }
        // Best-so-far is the best of the executed prefix; elitism makes the
        // last recorded generation's best exactly that.
        let last = stopped.history.last().unwrap();
        assert_eq!(stopped.best_eval.makespan, last.best_makespan);
        // A watch firing immediately yields the initial population's best.
        let immediate =
            GaEngine::new(&inst, params, Objective::MinimizeMakespan).run_with_watch(&mut |_| true);
        assert!(immediate.interrupted);
        assert_eq!(immediate.generations, 0);
        assert_eq!(immediate.history.len(), 1);
    }

    #[test]
    fn memo_never_changes_results_and_records_hits() {
        let inst = quick_inst(15);
        let params = GaParams::quick().seed(33).max_generations(25);
        let with_memo = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        let without =
            GaEngine::new(&inst, params.memo_capacity(0), Objective::MinimizeMakespan).run();
        // Memoization is an optimization only: bit-identical evolution.
        assert_eq!(with_memo.best, without.best);
        assert_eq!(
            with_memo.best_eval.makespan.to_bits(),
            without.best_eval.makespan.to_bits()
        );
        assert_eq!(with_memo.generations, without.generations);
        assert_eq!(with_memo.final_population, without.final_population);
        // The disabled run pays the kernel for every request the memoized
        // run answered from cache.
        assert_eq!(without.stats.memo_hits, 0);
        assert!(with_memo.stats.memo_hits > 0, "elites/clones must hit");
        assert_eq!(
            with_memo.stats.kernel_evals + with_memo.stats.memo_hits,
            without.stats.kernel_evals
        );
        assert!(with_memo.stats.memo_hit_rate() > 0.0);
    }

    #[test]
    fn try_new_reports_invalid_params_as_value() {
        let inst = quick_inst(14);
        let bad = GaParams::quick().population(0);
        assert!(GaEngine::try_new(&inst, bad, Objective::MinimizeMakespan).is_err());
    }

    #[test]
    fn without_heft_seed_still_runs() {
        let inst = quick_inst(9);
        let params = GaParams::quick()
            .seed(23)
            .without_heft_seed()
            .max_generations(10);
        let r = GaEngine::new(&inst, params, Objective::MinimizeMakespan).run();
        assert!(r.best_eval.makespan > 0.0);
    }
}

//! GA hyper-parameters.

/// Hyper-parameters of the genetic algorithm.
///
/// Defaults are the paper's §5 settings: `Np = 20`, `pc = 0.9`,
/// `pm = 0.1`, stop after 1000 generations or 100 without improvement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaParams {
    /// Population size `Np` (kept constant through evolution).
    pub population: usize,
    /// Crossover probability `pc`: the fraction of the intermediate
    /// population that undergoes crossover; the rest is copied unchanged.
    pub crossover_prob: f64,
    /// Mutation probability `pm` applied per selected individual.
    pub mutation_prob: f64,
    /// Hard generation cap.
    pub max_generations: usize,
    /// Stop when the best fitness has not improved for this many
    /// generations.
    pub stall_generations: usize,
    /// Seed HEFT's solution into the initial population (§4.2.2).
    pub seed_heft: bool,
    /// RNG seed.
    pub seed: u64,
    /// Capacity of the fingerprint-keyed evaluation memo (number of cached
    /// chromosome evaluations; `0` disables memoization). Memoization never
    /// changes results — evaluation is a pure function — it only skips the
    /// kernel for chromosomes already seen (elites, tournament clones,
    /// converged populations).
    pub memo_capacity: usize,
    /// Delta (suffix) evaluation: offspring that share a verified prefix
    /// of the scheduling string with their parent reuse the parent's
    /// forward pass and recompute only the suffix. Bit-identical to full
    /// evaluation — results never change, only the kernel cost. `false`
    /// forces the full pass everywhere (reference for parity tests and
    /// ablations).
    pub delta_eval: bool,
}

impl Default for GaParams {
    fn default() -> Self {
        Self {
            population: 20,
            crossover_prob: 0.9,
            mutation_prob: 0.1,
            max_generations: 1000,
            stall_generations: 100,
            seed_heft: true,
            seed: 0,
            memo_capacity: 4096,
            delta_eval: true,
        }
    }
}

impl GaParams {
    /// The paper's configuration (same as `Default`).
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    /// A scaled-down configuration for tests and quick experiments.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            population: 12,
            max_generations: 60,
            stall_generations: 25,
            ..Self::default()
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the generation cap.
    #[must_use]
    pub fn max_generations(mut self, g: usize) -> Self {
        self.max_generations = g;
        self
    }

    /// Sets the stall window.
    #[must_use]
    pub fn stall_generations(mut self, g: usize) -> Self {
        self.stall_generations = g;
        self
    }

    /// Sets the population size.
    #[must_use]
    pub fn population(mut self, n: usize) -> Self {
        self.population = n;
        self
    }

    /// Disables the HEFT seed (ablation).
    #[must_use]
    pub fn without_heft_seed(mut self) -> Self {
        self.seed_heft = false;
        self
    }

    /// Sets the evaluation-memo capacity (`0` disables memoization).
    #[must_use]
    pub fn memo_capacity(mut self, capacity: usize) -> Self {
        self.memo_capacity = capacity;
        self
    }

    /// Enables or disables delta (suffix) evaluation (`true` by default;
    /// `false` is the full-pass reference).
    #[must_use]
    pub fn delta_eval(mut self, on: bool) -> Self {
        self.delta_eval = on;
        self
    }

    /// Validates ranges.
    ///
    /// # Errors
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.population < 2 {
            return Err("population must be at least 2".into());
        }
        if !(0.0..=1.0).contains(&self.crossover_prob) {
            return Err(format!(
                "crossover_prob {} outside [0,1]",
                self.crossover_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.mutation_prob) {
            return Err(format!(
                "mutation_prob {} outside [0,1]",
                self.mutation_prob
            ));
        }
        if self.max_generations == 0 {
            return Err("max_generations must be positive".into());
        }
        if self.stall_generations == 0 {
            return Err("stall_generations must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = GaParams::paper();
        assert_eq!(p.population, 20);
        assert_eq!(p.crossover_prob, 0.9);
        assert_eq!(p.mutation_prob, 0.1);
        assert_eq!(p.max_generations, 1000);
        assert_eq!(p.stall_generations, 100);
        assert!(p.seed_heft);
        assert_eq!(p.memo_capacity, 4096);
        assert!(p.delta_eval);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builders_apply() {
        let p = GaParams::quick().seed(9).population(8).max_generations(5);
        assert_eq!(p.seed, 9);
        assert_eq!(p.population, 8);
        assert_eq!(p.max_generations, 5);
        assert!(!p.without_heft_seed().seed_heft);
        assert_eq!(GaParams::quick().memo_capacity(0).memo_capacity, 0);
        assert!(!GaParams::quick().delta_eval(false).delta_eval);
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(GaParams::paper().population(1).validate().is_err());
        let mut p = GaParams::paper();
        p.crossover_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = GaParams::paper();
        p.mutation_prob = -0.1;
        assert!(p.validate().is_err());
        assert!(GaParams::paper().max_generations(0).validate().is_err());
        assert!(GaParams::paper().stall_generations(0).validate().is_err());
    }
}

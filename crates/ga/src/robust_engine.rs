//! A GA that optimizes *measured* robustness directly — Monte Carlo in
//! the fitness loop.
//!
//! The paper optimizes slack as a cheap robustness *surrogate* and lists
//! stochastic-information-guided scheduling as future work (§6). This
//! engine implements the direct approach: each chromosome's fitness is the
//! (negated) mean relative tardiness estimated from a small batch of
//! realizations, under the same ε-constraint on the expected makespan.
//!
//! Two standard simulation techniques keep this honest and affordable:
//!
//! * **Common random numbers** — every chromosome in every generation is
//!   evaluated on the *same* fixed set of realization seeds, so fitness
//!   differences reflect schedule differences, not sampling noise;
//! * **small batches** — a few dozen realizations suffice for ranking
//!   (the final report should still use a large independent batch).

use rand::Rng;
use rayon::prelude::*;
use std::collections::HashSet;

use rds_sched::csr::EvalScratch;
use rds_sched::instance::Instance;
use rds_stats::rng::{rng_from_seed, SeedStream};

use crate::chromosome::Chromosome;
use crate::crossover::crossover;
use crate::mutation::mutate;
use crate::params::GaParams;
use crate::selection::binary_tournament;

/// Parameters of the robustness-direct GA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustGaParams {
    /// The usual GA knobs.
    pub base: GaParams,
    /// Realizations per fitness evaluation (common random numbers).
    pub mc_samples: usize,
    /// Seed of the shared realization streams.
    pub mc_seed: u64,
    /// The ε multiplier of the makespan constraint.
    pub epsilon: f64,
}

impl RobustGaParams {
    /// Defaults: paper GA knobs, 32 realizations per evaluation.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Self {
            base: GaParams::paper(),
            mc_samples: 32,
            mc_seed: 0xC0FFEE,
            epsilon,
        }
    }

    /// Scaled-down configuration for tests.
    #[must_use]
    pub fn quick(epsilon: f64) -> Self {
        Self {
            base: GaParams::quick(),
            mc_samples: 16,
            ..Self::new(epsilon)
        }
    }

    /// Sets the GA seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base = self.base.seed(seed);
        self
    }
}

/// Evaluation of one chromosome under the direct objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustEvaluation {
    /// Expected makespan `M₀`.
    pub makespan: f64,
    /// Average slack (reported for comparison; not optimized).
    pub avg_slack: f64,
    /// Estimated mean relative tardiness over the common batch.
    pub mean_tardiness: f64,
}

/// Result of a robustness-direct GA run.
#[derive(Debug, Clone)]
pub struct RobustGaResult {
    /// Best chromosome found (feasible whenever any feasible individual
    /// was seen — the HEFT seed guarantees that).
    pub best: Chromosome,
    /// Its evaluation.
    pub best_eval: RobustEvaluation,
    /// Generations executed.
    pub generations: usize,
}

/// Per-thread buffers for [`evaluate_mc_with`]: the slack arena plus the
/// realized-duration and finish-time vectors, all reused across
/// chromosomes and realizations.
#[derive(Debug, Default, Clone)]
struct McScratch {
    eval: EvalScratch,
    realized: Vec<f64>,
    finish: Vec<f64>,
}

/// Evaluates one chromosome on the shared realization seeds, reusing the
/// caller's scratch. The CSR of `G_s` is built once per chromosome and
/// re-walked for every realization.
fn evaluate_mc_with(
    inst: &Instance,
    c: &Chromosome,
    sample_seeds: &[u64],
    scratch: &mut McScratch,
) -> RobustEvaluation {
    let summary = scratch
        .eval
        .evaluate(inst, &c.order, &c.assignment)
        .expect("valid chromosome decodes to an acyclic disjunctive graph");
    let m0 = summary.makespan;

    let mut tardiness_sum = 0.0;
    for &s in sample_seeds {
        let mut rng = rng_from_seed(s);
        scratch.realized.clear();
        for (t, &p) in c.assignment.iter().enumerate() {
            scratch.realized.push(inst.timing.sample(t, p, &mut rng));
        }
        let m = scratch
            .eval
            .csr()
            .makespan(&scratch.realized, &mut scratch.finish);
        tardiness_sum += (m - m0).max(0.0) / m0;
    }
    RobustEvaluation {
        makespan: m0,
        avg_slack: summary.average_slack,
        mean_tardiness: tardiness_sum / sample_seeds.len() as f64,
    }
}

/// Evaluates one chromosome on the shared realization seeds (fresh
/// buffers; kept as the simple entry point for tests).
#[cfg(test)]
fn evaluate_mc(inst: &Instance, c: &Chromosome, sample_seeds: &[u64]) -> RobustEvaluation {
    evaluate_mc_with(inst, c, sample_seeds, &mut McScratch::default())
}

/// Population fitness: feasible → `−mean_tardiness`; infeasible → below
/// every feasible value, ordered by violation (mirrors Eq. 8's intent).
fn fitness(evals: &[RobustEvaluation], bound: f64) -> Vec<f64> {
    let min_feasible = evals
        .iter()
        .filter(|e| e.makespan <= bound)
        .map(|e| -e.mean_tardiness)
        .fold(f64::INFINITY, f64::min);
    evals
        .iter()
        .map(|e| {
            if e.makespan <= bound {
                -e.mean_tardiness
            } else if min_feasible.is_finite() {
                min_feasible - e.makespan / bound
            } else {
                -e.mean_tardiness - e.makespan / bound
            }
        })
        .collect()
}

/// Runs the robustness-direct GA.
///
/// # Panics
/// Panics when the parameters fail validation or `mc_samples == 0`.
pub fn run_robust_ga(inst: &Instance, params: RobustGaParams) -> RobustGaResult {
    params.base.validate().expect("invalid GA parameters");
    assert!(params.mc_samples > 0, "need at least one realization");
    let heft = rds_heft::heft_schedule(inst);
    let bound = params.epsilon * heft.makespan;

    // The common random numbers: one seed per sample, fixed for the run.
    let seeds = SeedStream::new(params.mc_seed);
    let sample_seeds: Vec<u64> = (0..params.mc_samples)
        .map(|i| seeds.nth_seed(i as u64))
        .collect();

    let mut rng = rng_from_seed(params.base.seed);
    let np = params.base.population;

    // Initial population: HEFT seed + unique randoms.
    let mut pop: Vec<Chromosome> = Vec::with_capacity(np);
    let mut seen: HashSet<u64> = HashSet::new();
    if params.base.seed_heft {
        let c = Chromosome::from_schedule(&inst.graph, &heft.schedule);
        seen.insert(c.fingerprint());
        pop.push(c);
    }
    let mut attempts = 0;
    while pop.len() < np {
        let c = Chromosome::random_for(inst, &mut rng);
        attempts += 1;
        if seen.insert(c.fingerprint()) || attempts > np * 200 {
            pop.push(c);
        }
    }
    // Monte-Carlo fitness is the expensive part: fan chromosomes out over
    // rayon with per-thread scratch. Each chromosome's realizations use
    // only its own seeded RNGs (common random numbers), so results are
    // bit-identical for any thread count.
    let eval_pop = |chroms: &[Chromosome]| -> Vec<RobustEvaluation> {
        if chroms.len() >= 8 {
            chroms
                .par_iter()
                .map_init(McScratch::default, |s, c| {
                    evaluate_mc_with(inst, c, &sample_seeds, s)
                })
                .collect()
        } else {
            let mut s = McScratch::default();
            chroms
                .iter()
                .map(|c| evaluate_mc_with(inst, c, &sample_seeds, &mut s))
                .collect()
        }
    };

    let mut evals: Vec<RobustEvaluation> = eval_pop(&pop);

    let quality =
        |e: &RobustEvaluation| -> (bool, f64) { (e.makespan <= bound, -e.mean_tardiness) };
    let better = |a: (bool, f64), b: (bool, f64)| a.0 & !b.0 || (a.0 == b.0 && a.1 > b.1);

    let mut best_idx = 0;
    for i in 1..np {
        if better(quality(&evals[i]), quality(&evals[best_idx])) {
            best_idx = i;
        }
    }
    let mut best = pop[best_idx].clone();
    let mut best_eval = evals[best_idx];
    let mut best_q = quality(&best_eval);

    let mut stall = 0;
    let mut generations = 0;
    for gen in 1..=params.base.max_generations {
        generations = gen;
        let fit = fitness(&evals, bound);
        let elite_idx = fit
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .expect("non-empty population");
        let elite = pop[elite_idx].clone();
        let elite_eval = evals[elite_idx];

        let winners = binary_tournament(&fit, &mut rng);
        let mut next: Vec<Chromosome> = winners.iter().map(|&i| pop[i].clone()).collect();
        for pair in 0..np / 2 {
            let (a, b) = (2 * pair, 2 * pair + 1);
            if rng.gen_bool(params.base.crossover_prob) {
                let (c1, c2) = crossover(&next[a], &next[b], &mut rng);
                next[a] = c1;
                next[b] = c2;
            }
        }
        for c in &mut next {
            if rng.gen_bool(params.base.mutation_prob) {
                mutate(c, &inst.graph, inst.proc_count(), &mut rng);
            }
        }
        let mut next_evals: Vec<RobustEvaluation> = eval_pop(&next);
        let next_fit = fitness(&next_evals, bound);
        let worst = next_fit
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .expect("non-empty population");
        next[worst] = elite;
        next_evals[worst] = elite_eval;
        pop = next;
        evals = next_evals;

        let mut gi = 0;
        for i in 1..np {
            if better(quality(&evals[i]), quality(&evals[gi])) {
                gi = i;
            }
        }
        let q = quality(&evals[gi]);
        if better(q, best_q) {
            best_q = q;
            best = pop[gi].clone();
            best_eval = evals[gi];
            stall = 0;
        } else {
            stall += 1;
        }
        if stall >= params.base.stall_generations {
            break;
        }
    }

    RobustGaResult {
        best,
        best_eval,
        generations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(25, 3)
            .seed(seed)
            .uncertainty_level(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let i = inst(1);
        let p = RobustGaParams::quick(1.3).seed(5);
        let a = run_robust_ga(&i, p);
        let b = run_robust_ga(&i, p);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_eval.mean_tardiness, b.best_eval.mean_tardiness);
    }

    #[test]
    fn best_is_feasible_and_no_worse_than_heft_on_crn() {
        let i = inst(2);
        let p = RobustGaParams::quick(1.3).seed(7);
        let r = run_robust_ga(&i, p);
        let heft = rds_heft::heft_schedule(&i);
        assert!(r.best_eval.makespan <= 1.3 * heft.makespan + 1e-9);

        // On the same common random numbers, elitism + HEFT seed mean the
        // best tardiness can never exceed HEFT's.
        let seeds: Vec<u64> = {
            let s = SeedStream::new(p.mc_seed);
            (0..p.mc_samples).map(|k| s.nth_seed(k as u64)).collect()
        };
        let heft_eval = evaluate_mc(
            &i,
            &Chromosome::from_schedule(&i.graph, &heft.schedule),
            &seeds,
        );
        assert!(
            r.best_eval.mean_tardiness <= heft_eval.mean_tardiness + 1e-12,
            "{} > {}",
            r.best_eval.mean_tardiness,
            heft_eval.mean_tardiness
        );
    }

    #[test]
    fn direct_objective_actually_reduces_tardiness() {
        // Against an independent validation batch, the direct GA's best
        // should have tardiness no worse than HEFT's (generous tolerance;
        // small instance).
        let i = inst(3);
        let r = run_robust_ga(&i, RobustGaParams::quick(1.5).seed(9));
        let heft = rds_heft::heft_schedule(&i);
        let mc = rds_sched::realization::RealizationConfig::with_realizations(400).seed(777);
        let ga_rep = rds_sched::realization::monte_carlo(&i, &r.best.decode(3), &mc).unwrap();
        let heft_rep = rds_sched::realization::monte_carlo(&i, &heft.schedule, &mc).unwrap();
        assert!(
            ga_rep.mean_tardiness <= heft_rep.mean_tardiness * 1.1,
            "direct GA {} vs HEFT {}",
            ga_rep.mean_tardiness,
            heft_rep.mean_tardiness
        );
    }

    #[test]
    #[should_panic(expected = "at least one realization")]
    fn zero_samples_rejected() {
        let i = inst(4);
        let mut p = RobustGaParams::quick(1.2);
        p.mc_samples = 0;
        let _ = run_robust_ga(&i, p);
    }
}

//! A GA that optimizes *measured* robustness directly — Monte Carlo in
//! the fitness loop.
//!
//! The paper optimizes slack as a cheap robustness *surrogate* and lists
//! stochastic-information-guided scheduling as future work (§6). This
//! engine implements the direct approach: each chromosome's fitness is the
//! (negated) mean relative tardiness estimated from a small batch of
//! realizations, under the same ε-constraint on the expected makespan.
//!
//! Two standard simulation techniques keep this honest and affordable:
//!
//! * **Common random numbers** — every chromosome in every generation is
//!   evaluated on the *same* fixed set of realization seeds, so fitness
//!   differences reflect schedule differences, not sampling noise;
//! * **small batches** — a few dozen realizations suffice for ranking
//!   (the final report should still use a large independent batch).

use rand::Rng;
use rayon::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

use rds_sched::csr::{ensure_scratch_len, EvalScratch, LANES};
use rds_sched::disjunctive::CycleError;
use rds_sched::instance::Instance;
use rds_stats::rng::{rng_from_seed, SeedStream};

use crate::chromosome::Chromosome;
use crate::crossover::crossover_tracked;
use crate::engine::GaRunStats;
use crate::mutation::mutate_tracked;
use crate::objective::DeltaHint;
use crate::params::GaParams;
use crate::selection::binary_tournament;

/// Parameters of the robustness-direct GA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustGaParams {
    /// The usual GA knobs.
    pub base: GaParams,
    /// Realizations per fitness evaluation (common random numbers).
    pub mc_samples: usize,
    /// Seed of the shared realization streams.
    pub mc_seed: u64,
    /// The ε multiplier of the makespan constraint.
    pub epsilon: f64,
}

impl RobustGaParams {
    /// Defaults: paper GA knobs, 32 realizations per evaluation.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Self {
            base: GaParams::paper(),
            mc_samples: 32,
            mc_seed: 0xC0FFEE,
            epsilon,
        }
    }

    /// Scaled-down configuration for tests.
    #[must_use]
    pub fn quick(epsilon: f64) -> Self {
        Self {
            base: GaParams::quick(),
            mc_samples: 16,
            ..Self::new(epsilon)
        }
    }

    /// Sets the GA seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base = self.base.seed(seed);
        self
    }
}

/// Evaluation of one chromosome under the direct objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustEvaluation {
    /// Expected makespan `M₀`.
    pub makespan: f64,
    /// Average slack (reported for comparison; not optimized).
    pub avg_slack: f64,
    /// Estimated mean relative tardiness over the common batch.
    pub mean_tardiness: f64,
}

/// Result of a robustness-direct GA run.
#[derive(Debug, Clone)]
pub struct RobustGaResult {
    /// Best chromosome found (feasible whenever any feasible individual
    /// was seen — the HEFT seed guarantees that).
    pub best: Chromosome,
    /// Its evaluation.
    pub best_eval: RobustEvaluation,
    /// Generations executed.
    pub generations: usize,
    /// Evaluation-kernel counters (batched MC lanes, delta hits, timing).
    pub stats: GaRunStats,
}

/// Ways a robust GA run can fail, as values instead of panics — a
/// malformed job reaching a service worker must not take the worker down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RobustGaError {
    /// The base GA parameters failed validation.
    InvalidParams(String),
    /// `mc_samples == 0`: the direct objective needs at least one
    /// realization.
    ZeroSamples,
    /// A chromosome's `(order, assignment)` pair contradicts the
    /// precedence constraints (operators preserve validity, so this
    /// indicates corrupted input).
    Cycle(CycleError),
}

impl std::fmt::Display for RobustGaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RobustGaError::InvalidParams(m) => write!(f, "invalid GA parameters: {m}"),
            RobustGaError::ZeroSamples => write!(f, "need at least one realization"),
            RobustGaError::Cycle(_) => {
                write!(f, "chromosome contradicts the precedence constraints")
            }
        }
    }
}

impl std::error::Error for RobustGaError {}

impl From<CycleError> for RobustGaError {
    fn from(e: CycleError) -> Self {
        RobustGaError::Cycle(e)
    }
}

/// Per-slot buffers and carryover state for the batched Monte-Carlo
/// kernel: the slack arena, the realized durations and finish times of
/// all realizations in SoA layout (`buf[LANES * task + lane]`, chunked by
/// [`LANES`] realizations), and the chromosome the state belongs to. A
/// valid scratch can parent a delta evaluation
/// ([`evaluate_mc_delta`]).
#[derive(Debug, Default, Clone)]
pub struct McScratch {
    eval: EvalScratch,
    dur_soa: Vec<f64>,
    fin_soa: Vec<f64>,
    chrom: Chromosome,
    valid: bool,
}

impl McScratch {
    /// Fresh buffers; grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Evaluates one chromosome on the shared realization seeds, reusing the
/// caller's scratch. The CSR of `G_s` is built once per chromosome;
/// realized durations are sampled per seed in the existing substream
/// order into the SoA buffer, then the CSR is walked once per [`LANES`]
/// realizations by the batched kernel — bit-identical to the scalar
/// per-realization walk ([`evaluate_mc_scalar`], asserted by the parity
/// tests).
///
/// # Errors
/// Returns [`CycleError`] when the chromosome contradicts the precedence
/// constraints.
pub fn evaluate_mc_with(
    inst: &Instance,
    c: &Chromosome,
    sample_seeds: &[u64],
    scratch: &mut McScratch,
) -> Result<RobustEvaluation, CycleError> {
    scratch.valid = false;
    let summary = scratch.eval.evaluate(inst, &c.order, &c.assignment)?;
    let m0 = summary.makespan;
    let n = c.assignment.len();
    let k = sample_seeds.len();
    let chunks = k.div_ceil(LANES);
    ensure_scratch_len(&mut scratch.dur_soa, chunks * LANES * n);
    ensure_scratch_len(&mut scratch.fin_soa, chunks * LANES * n);

    // Sample in the existing per-(seed, task) substream order — seed-major,
    // tasks ascending — scattering into the SoA lanes. Realization j lands
    // in lane j % LANES of chunk j / LANES.
    for (j, &s) in sample_seeds.iter().enumerate() {
        let mut rng = rng_from_seed(s);
        let base = (j / LANES) * LANES * n + (j % LANES);
        for (t, &p) in c.assignment.iter().enumerate() {
            scratch.dur_soa[base + LANES * t] = inst.timing.sample(t, p, &mut rng);
        }
    }

    // One CSR walk per chunk; tardiness accumulates chunk-major,
    // lane-minor = realization order, so the sum is bitwise identical to
    // the scalar loop's. Padding lanes of a ragged tail are walked but
    // ignored.
    let mut tardiness_sum = 0.0;
    let mut out = [0.0f64; LANES];
    for ci in 0..chunks {
        let live = LANES.min(k - ci * LANES);
        let lo = ci * LANES * n;
        let hi = lo + LANES * n;
        scratch.eval.csr().makespan_batch(
            &scratch.dur_soa[lo..hi],
            &mut scratch.fin_soa[lo..hi],
            &mut out,
        );
        for &m in &out[..live] {
            tardiness_sum += (m - m0).max(0.0) / m0;
        }
    }
    scratch.chrom.order.clone_from(&c.order);
    scratch.chrom.assignment.clone_from(&c.assignment);
    scratch.valid = true;
    Ok(RobustEvaluation {
        makespan: m0,
        avg_slack: summary.average_slack,
        mean_tardiness: tardiness_sum / k as f64,
    })
}

/// Delta twin of [`evaluate_mc_with`]: when `c` differs from the
/// chromosome in `parent` only at scheduling-string positions at or after
/// `first_changed` — same assignment everywhere — the realized durations
/// are identical draw-for-draw (duration sampling consumes a
/// chromosome-dependent number of RNG draws per task, so *any* assignment
/// change invalidates the whole stream), and every prefix task's realized
/// finish time is unchanged. The expected-time pass and each chunk's CSR
/// walk then only recompute the suffix.
///
/// Returns `None` when the contract does not hold (caller falls back to
/// the full pass); `Some(result)` is bit-identical to
/// [`evaluate_mc_with`].
pub fn evaluate_mc_delta(
    inst: &Instance,
    c: &Chromosome,
    sample_seeds: &[u64],
    parent: &McScratch,
    scratch: &mut McScratch,
    first_changed: usize,
) -> Option<Result<RobustEvaluation, CycleError>> {
    let n = c.order.len();
    let k = sample_seeds.len();
    let chunks = k.div_ceil(LANES);
    let fc = first_changed.min(n);
    if !parent.valid
        || fc == 0
        || parent.chrom.order.len() != n
        || parent.chrom.assignment != c.assignment
        || parent.chrom.order[..fc] != c.order[..fc]
        || parent.dur_soa.len() != chunks * LANES * n
    {
        return None;
    }
    scratch.valid = false;
    let summary = match scratch
        .eval
        .evaluate_delta(inst, &c.order, &c.assignment, &parent.eval, fc)
    {
        Ok(s) => s,
        Err(e) => return Some(Err(e)),
    };
    let m0 = summary.makespan;
    // Identical assignment ⇒ identical realized durations; prefix finish
    // times carry over, the suffix is re-walked per chunk.
    scratch.dur_soa.clear();
    scratch.dur_soa.extend_from_slice(&parent.dur_soa);
    scratch.fin_soa.clear();
    scratch.fin_soa.extend_from_slice(&parent.fin_soa);
    let mut tardiness_sum = 0.0;
    let mut out = [0.0f64; LANES];
    for ci in 0..chunks {
        let live = LANES.min(k - ci * LANES);
        let lo = ci * LANES * n;
        let hi = lo + LANES * n;
        scratch.eval.csr().makespan_batch_delta(
            &scratch.dur_soa[lo..hi],
            &mut scratch.fin_soa[lo..hi],
            &c.order[..fc],
            &c.order[fc..],
            &mut out,
        );
        for &m in &out[..live] {
            tardiness_sum += (m - m0).max(0.0) / m0;
        }
    }
    scratch.chrom.order.clone_from(&c.order);
    scratch.chrom.assignment.clone_from(&c.assignment);
    scratch.valid = true;
    Some(Ok(RobustEvaluation {
        makespan: m0,
        avg_slack: summary.average_slack,
        mean_tardiness: tardiness_sum / k as f64,
    }))
}

/// Buffers for [`evaluate_mc_scalar`], the pre-batching reference kernel.
#[derive(Debug, Default, Clone)]
pub struct McScalarScratch {
    eval: EvalScratch,
    realized: Vec<f64>,
    finish: Vec<f64>,
}

/// The scalar reference: one CSR walk per realization. Kept as the
/// bit-identity anchor for the batched kernel (parity tests, the
/// `mc_batched_vs_scalar` bench, and the CI regression gate).
///
/// # Errors
/// Returns [`CycleError`] when the chromosome contradicts the precedence
/// constraints.
pub fn evaluate_mc_scalar(
    inst: &Instance,
    c: &Chromosome,
    sample_seeds: &[u64],
    scratch: &mut McScalarScratch,
) -> Result<RobustEvaluation, CycleError> {
    let summary = scratch.eval.evaluate(inst, &c.order, &c.assignment)?;
    let m0 = summary.makespan;

    let mut tardiness_sum = 0.0;
    for &s in sample_seeds {
        let mut rng = rng_from_seed(s);
        scratch.realized.clear();
        for (t, &p) in c.assignment.iter().enumerate() {
            scratch.realized.push(inst.timing.sample(t, p, &mut rng));
        }
        let m = scratch
            .eval
            .csr()
            .makespan(&scratch.realized, &mut scratch.finish);
        tardiness_sum += (m - m0).max(0.0) / m0;
    }
    Ok(RobustEvaluation {
        makespan: m0,
        avg_slack: summary.average_slack,
        mean_tardiness: tardiness_sum / sample_seeds.len() as f64,
    })
}

/// Evaluates one chromosome on the shared realization seeds (fresh
/// buffers; kept as the simple entry point for tests).
#[cfg(test)]
fn evaluate_mc(inst: &Instance, c: &Chromosome, sample_seeds: &[u64]) -> RobustEvaluation {
    evaluate_mc_with(inst, c, sample_seeds, &mut McScratch::default())
        .expect("valid chromosome decodes to an acyclic disjunctive graph")
}

/// Population fitness: feasible → `−mean_tardiness`; infeasible → below
/// every feasible value, ordered by violation (mirrors Eq. 8's intent).
fn fitness(evals: &[RobustEvaluation], bound: f64) -> Vec<f64> {
    let min_feasible = evals
        .iter()
        .filter(|e| e.makespan <= bound)
        .map(|e| -e.mean_tardiness)
        .fold(f64::INFINITY, f64::min);
    evals
        .iter()
        .map(|e| {
            if e.makespan <= bound {
                -e.mean_tardiness
            } else if min_feasible.is_finite() {
                min_feasible - e.makespan / bound
            } else {
                -e.mean_tardiness - e.makespan / bound
            }
        })
        .collect()
}

/// Minimum population before MC evaluation fans out over rayon.
const PAR_MIN: usize = 8;

/// Evaluates a population into per-slot states. Slots with a usable hint
/// run the delta kernel against the previous generation's state pool;
/// everything else takes the full batched pass. Per-slot work touches
/// only its own state plus the shared `prev` pool, so the rayon fan-out
/// is bit-identical to the sequential path. Returns per-slot results
/// plus, per slot, the suffix start when the delta kernel ran.
#[allow(clippy::too_many_arguments)] // the evaluator's full context
fn eval_population_mc(
    inst: &Instance,
    chroms: &[Chromosome],
    sample_seeds: &[u64],
    hints: &[Option<DeltaHint>],
    prev: &[McScratch],
    states: &mut [McScratch],
    use_delta: bool,
    stats: &mut GaRunStats,
) -> Result<Vec<RobustEvaluation>, CycleError> {
    let slot = |i: usize, st: &mut McScratch| -> (Result<RobustEvaluation, CycleError>, Option<usize>) {
        let c = &chroms[i];
        if use_delta {
            if let Some(h) = hints[i] {
                if let Some(p) = prev.get(h.parent) {
                    if let Some(r) = evaluate_mc_delta(inst, c, sample_seeds, p, st, h.first_changed)
                    {
                        return (r, Some(h.first_changed.min(c.len())));
                    }
                }
            }
        }
        (evaluate_mc_with(inst, c, sample_seeds, st), None)
    };

    let slots: Vec<(Result<RobustEvaluation, CycleError>, Option<usize>)> =
        if chroms.len() >= PAR_MIN {
            states
                .par_iter_mut()
                .enumerate()
                .map(|(i, st)| slot(i, st))
                .collect()
        } else {
            states
                .iter_mut()
                .enumerate()
                .map(|(i, st)| slot(i, st))
                .collect()
        };

    let n = inst.task_count() as u64;
    let k = sample_seeds.len() as u64;
    let mut evals = Vec::with_capacity(chroms.len());
    for (r, delta_fc) in slots {
        evals.push(r?);
        stats.kernel_evals += 1;
        stats.mc_lane_evals += k;
        if let Some(fc) = delta_fc {
            stats.delta_evals += 1;
            stats.delta_suffix_tasks += n - fc as u64;
            stats.delta_total_tasks += n;
        }
    }
    Ok(evals)
}

/// Runs the robustness-direct GA.
///
/// # Panics
/// Panics when the parameters fail validation or `mc_samples == 0`.
pub fn run_robust_ga(inst: &Instance, params: RobustGaParams) -> RobustGaResult {
    params.base.validate().expect("invalid GA parameters");
    assert!(params.mc_samples > 0, "need at least one realization");
    match try_run_robust_ga(inst, params) {
        Ok(r) => r,
        Err(e) => panic!("robust GA failed: {e}"),
    }
}

/// Runs the robustness-direct GA, reporting failures as values — the
/// entry point for service workers, which must survive malformed jobs.
///
/// # Errors
/// [`RobustGaError::InvalidParams`] / [`RobustGaError::ZeroSamples`] for
/// bad configuration, [`RobustGaError::Cycle`] when a chromosome
/// contradicts the precedence constraints.
pub fn try_run_robust_ga(
    inst: &Instance,
    params: RobustGaParams,
) -> Result<RobustGaResult, RobustGaError> {
    params.base.validate().map_err(RobustGaError::InvalidParams)?;
    if params.mc_samples == 0 {
        return Err(RobustGaError::ZeroSamples);
    }
    let heft = rds_heft::heft_schedule(inst);
    let bound = params.epsilon * heft.makespan;

    // The common random numbers: one seed per sample, fixed for the run.
    let seeds = SeedStream::new(params.mc_seed);
    let sample_seeds: Vec<u64> = (0..params.mc_samples)
        .map(|i| seeds.nth_seed(i as u64))
        .collect();

    let mut rng = rng_from_seed(params.base.seed);
    let np = params.base.population;
    let n_tasks = inst.task_count();

    // Initial population: HEFT seed + unique randoms.
    let mut pop: Vec<Chromosome> = Vec::with_capacity(np);
    let mut seen: HashSet<u64> = HashSet::new();
    if params.base.seed_heft {
        let c = Chromosome::from_schedule(&inst.graph, &heft.schedule);
        seen.insert(c.fingerprint());
        pop.push(c);
    }
    let mut attempts = 0;
    while pop.len() < np {
        let c = Chromosome::random_for(inst, &mut rng);
        attempts += 1;
        if seen.insert(c.fingerprint()) || attempts > np * 200 {
            pop.push(c);
        }
    }

    // Monte-Carlo fitness is the expensive part: per-slot states fan out
    // over rayon, the batched SoA kernel walks the CSR once per LANES
    // realizations, and offspring delta-evaluate against their parent's
    // slot. Each chromosome's realizations use only its own seeded RNGs
    // (common random numbers), so results are bit-identical for any
    // thread count, with and without batching or delta.
    let use_delta = params.base.delta_eval;
    let mut stats = GaRunStats::default();
    let mut cur_states: Vec<McScratch> = (0..np).map(|_| McScratch::new()).collect();
    let mut prev_states: Vec<McScratch> = cur_states.clone();
    let mut hints: Vec<Option<DeltaHint>> = vec![None; np];

    let eval_start = Instant::now();
    let mut evals = eval_population_mc(
        inst,
        &pop,
        &sample_seeds,
        &hints,
        &prev_states,
        &mut cur_states,
        use_delta,
        &mut stats,
    )?;
    stats.eval_nanos += eval_start.elapsed().as_nanos() as u64;

    let quality =
        |e: &RobustEvaluation| -> (bool, f64) { (e.makespan <= bound, -e.mean_tardiness) };
    let better = |a: (bool, f64), b: (bool, f64)| a.0 & !b.0 || (a.0 == b.0 && a.1 > b.1);

    let mut best_idx = 0;
    for i in 1..np {
        if better(quality(&evals[i]), quality(&evals[best_idx])) {
            best_idx = i;
        }
    }
    let mut best = pop[best_idx].clone();
    let mut best_eval = evals[best_idx];
    let mut best_q = quality(&best_eval);

    let mut stall = 0;
    let mut generations = 0;
    for gen in 1..=params.base.max_generations {
        generations = gen;
        let fit = fitness(&evals, bound);
        let elite_idx = fit
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .expect("non-empty population");
        let elite = pop[elite_idx].clone();
        let elite_eval = evals[elite_idx];

        let winners = binary_tournament(&fit, &mut rng);
        let mut next: Vec<Chromosome> = winners.iter().map(|&i| pop[i].clone()).collect();
        for (h, &w) in hints.iter_mut().zip(&winners) {
            *h = Some(DeltaHint {
                parent: w,
                first_changed: n_tasks,
            });
        }
        for pair in 0..np / 2 {
            let (a, b) = (2 * pair, 2 * pair + 1);
            if rng.gen_bool(params.base.crossover_prob) {
                let (c1, c2, t1, t2) = crossover_tracked(&next[a], &next[b], &mut rng);
                next[a] = c1;
                next[b] = c2;
                if let Some(h) = hints[a].as_mut() {
                    h.first_changed = h.first_changed.min(t1.first_changed());
                }
                if let Some(h) = hints[b].as_mut() {
                    h.first_changed = h.first_changed.min(t2.first_changed());
                }
            }
        }
        for (i, c) in next.iter_mut().enumerate() {
            if rng.gen_bool(params.base.mutation_prob) {
                let t = mutate_tracked(c, &inst.graph, inst.proc_count(), &mut rng);
                if let Some(h) = hints[i].as_mut() {
                    h.first_changed = h.first_changed.min(t.first_changed());
                }
            }
        }

        std::mem::swap(&mut cur_states, &mut prev_states);
        let eval_start = Instant::now();
        let mut next_evals = eval_population_mc(
            inst,
            &next,
            &sample_seeds,
            &hints,
            &prev_states,
            &mut cur_states,
            use_delta,
            &mut stats,
        )?;
        stats.eval_nanos += eval_start.elapsed().as_nanos() as u64;
        let next_fit = fitness(&next_evals, bound);
        let worst = next_fit
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .expect("non-empty population");
        next[worst] = elite;
        next_evals[worst] = elite_eval;
        // The previous pool is done parenting this generation; hand the
        // elite's state to its new slot so it can parent the next one.
        std::mem::swap(&mut cur_states[worst], &mut prev_states[elite_idx]);
        pop = next;
        evals = next_evals;

        let mut gi = 0;
        for i in 1..np {
            if better(quality(&evals[i]), quality(&evals[gi])) {
                gi = i;
            }
        }
        let q = quality(&evals[gi]);
        if better(q, best_q) {
            best_q = q;
            best = pop[gi].clone();
            best_eval = evals[gi];
            stall = 0;
        } else {
            stall += 1;
        }
        if stall >= params.base.stall_generations {
            break;
        }
    }

    Ok(RobustGaResult {
        best,
        best_eval,
        generations,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;

    fn inst(seed: u64) -> Instance {
        InstanceSpec::new(25, 3)
            .seed(seed)
            .uncertainty_level(4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let i = inst(1);
        let p = RobustGaParams::quick(1.3).seed(5);
        let a = run_robust_ga(&i, p);
        let b = run_robust_ga(&i, p);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_eval.mean_tardiness, b.best_eval.mean_tardiness);
    }

    #[test]
    fn best_is_feasible_and_no_worse_than_heft_on_crn() {
        let i = inst(2);
        let p = RobustGaParams::quick(1.3).seed(7);
        let r = run_robust_ga(&i, p);
        let heft = rds_heft::heft_schedule(&i);
        assert!(r.best_eval.makespan <= 1.3 * heft.makespan + 1e-9);

        // On the same common random numbers, elitism + HEFT seed mean the
        // best tardiness can never exceed HEFT's.
        let seeds: Vec<u64> = {
            let s = SeedStream::new(p.mc_seed);
            (0..p.mc_samples).map(|k| s.nth_seed(k as u64)).collect()
        };
        let heft_eval = evaluate_mc(
            &i,
            &Chromosome::from_schedule(&i.graph, &heft.schedule),
            &seeds,
        );
        assert!(
            r.best_eval.mean_tardiness <= heft_eval.mean_tardiness + 1e-12,
            "{} > {}",
            r.best_eval.mean_tardiness,
            heft_eval.mean_tardiness
        );
    }

    #[test]
    fn direct_objective_actually_reduces_tardiness() {
        // Against an independent validation batch, the direct GA's best
        // should have tardiness no worse than HEFT's (generous tolerance;
        // small instance).
        let i = inst(3);
        let r = run_robust_ga(&i, RobustGaParams::quick(1.5).seed(9));
        let heft = rds_heft::heft_schedule(&i);
        let mc = rds_sched::realization::RealizationConfig::with_realizations(400).seed(777);
        let ga_rep = rds_sched::realization::monte_carlo(&i, &r.best.decode(3), &mc).unwrap();
        let heft_rep = rds_sched::realization::monte_carlo(&i, &heft.schedule, &mc).unwrap();
        assert!(
            ga_rep.mean_tardiness <= heft_rep.mean_tardiness * 1.1,
            "direct GA {} vs HEFT {}",
            ga_rep.mean_tardiness,
            heft_rep.mean_tardiness
        );
    }

    #[test]
    #[should_panic(expected = "at least one realization")]
    fn zero_samples_rejected() {
        let i = inst(4);
        let mut p = RobustGaParams::quick(1.2);
        p.mc_samples = 0;
        let _ = run_robust_ga(&i, p);
    }

    #[test]
    fn try_run_reports_errors_as_values() {
        let i = inst(4);
        let mut p = RobustGaParams::quick(1.2);
        p.mc_samples = 0;
        assert!(matches!(
            try_run_robust_ga(&i, p),
            Err(RobustGaError::ZeroSamples)
        ));
        let mut p = RobustGaParams::quick(1.2);
        p.base.population = 1;
        assert!(matches!(
            try_run_robust_ga(&i, p),
            Err(RobustGaError::InvalidParams(_))
        ));
    }

    #[test]
    fn batched_matches_scalar_bitwise_for_ragged_k() {
        // Lane-exact identity of the SoA kernel against the scalar
        // reference, across full chunks (8, 32), ragged tails (7, 9),
        // and a single realization.
        let i = inst(5);
        let mut rng = rng_from_seed(42);
        let c = Chromosome::random_for(&i, &mut rng);
        let stream = SeedStream::new(0xFEED);
        for k in [1usize, 7, 8, 9, 32] {
            let seeds: Vec<u64> = (0..k).map(|j| stream.nth_seed(j as u64)).collect();
            let b = evaluate_mc_with(&i, &c, &seeds, &mut McScratch::default()).unwrap();
            let s = evaluate_mc_scalar(&i, &c, &seeds, &mut McScalarScratch::default()).unwrap();
            assert_eq!(b.makespan.to_bits(), s.makespan.to_bits(), "k={k}");
            assert_eq!(b.avg_slack.to_bits(), s.avg_slack.to_bits(), "k={k}");
            assert_eq!(
                b.mean_tardiness.to_bits(),
                s.mean_tardiness.to_bits(),
                "k={k}"
            );
        }
    }

    #[test]
    fn delta_matches_full_bitwise() {
        // An order-only perturbation after a common prefix must take the
        // delta path and reproduce the full batched result exactly.
        let i = inst(6);
        let mut rng = rng_from_seed(77);
        let stream = SeedStream::new(0xFEED);
        let seeds: Vec<u64> = (0..13).map(|j| stream.nth_seed(j as u64)).collect();
        let mut hits = 0;
        for _ in 0..40 {
            let parent_c = Chromosome::random_for(&i, &mut rng);
            let mut parent = McScratch::default();
            evaluate_mc_with(&i, &parent_c, &seeds, &mut parent).unwrap();

            let mut child = parent_c.clone();
            let t = mutate_tracked(&mut child, &i.graph, i.proc_count(), &mut rng);
            let fc = t.first_changed();
            if t.first_assign < child.len() || fc == 0 || fc >= child.len() {
                continue; // assignment changed or no-op: delta contract void
            }
            let mut scratch = McScratch::default();
            let d = evaluate_mc_delta(&i, &child, &seeds, &parent, &mut scratch, fc)
                .expect("order-only suffix change must satisfy the delta contract")
                .unwrap();
            let f = evaluate_mc_with(&i, &child, &seeds, &mut McScratch::default()).unwrap();
            assert_eq!(d.makespan.to_bits(), f.makespan.to_bits());
            assert_eq!(d.avg_slack.to_bits(), f.avg_slack.to_bits());
            assert_eq!(d.mean_tardiness.to_bits(), f.mean_tardiness.to_bits());
            hits += 1;
        }
        assert!(hits >= 5, "only {hits} delta-eligible mutations in 40");
    }

    #[test]
    fn delta_ga_matches_full_ga_and_uses_delta() {
        // The whole robust GA with delta + batching on is bit-identical
        // to the full-pass reference, and the delta path actually fires.
        let i = inst(7);
        let p_on = RobustGaParams::quick(1.3).seed(11);
        let mut p_off = p_on;
        p_off.base = p_off.base.delta_eval(false);
        let on = run_robust_ga(&i, p_on);
        let off = run_robust_ga(&i, p_off);
        assert_eq!(on.best, off.best);
        assert_eq!(
            on.best_eval.mean_tardiness.to_bits(),
            off.best_eval.mean_tardiness.to_bits()
        );
        assert_eq!(on.generations, off.generations);
        assert!(on.stats.delta_evals > 0, "delta path never fired");
        assert_eq!(off.stats.delta_evals, 0);
        assert!(on.stats.mc_lane_evals >= on.stats.kernel_evals * 16);
    }
}

//! Precedence-window mutation (§4.2.6).
//!
//! A task `v` is drawn uniformly from the scheduling string and moved to a
//! uniformly drawn position inside its *valid range* — strictly after the
//! last of its immediate predecessors and strictly before the first of its
//! immediate successors in the current string. Any position in that window
//! keeps the string a valid topological order. The task is then assigned a
//! uniformly drawn (possibly different) processor; its position inside the
//! new processor's order is implied by the scheduling string, which is
//! exactly the paper's "keeping the relative order of all the tasks
//! assigned on that processor according to the scheduling string".

use rand::Rng;

use rds_graph::{TaskGraph, TaskId};
use rds_platform::ProcId;

use crate::chromosome::{ChangeTrack, Chromosome};

/// Mutates `c` in place.
pub fn mutate<R: Rng + ?Sized>(
    c: &mut Chromosome,
    graph: &TaskGraph,
    proc_count: usize,
    rng: &mut R,
) {
    let _ = mutate_tracked(c, graph, proc_count, rng);
}

/// [`mutate`] plus the [`ChangeTrack`] of the edit. The rotated window
/// starts at `min(cur, target)`, so positions before it are untouched;
/// the mutated task ends at `target` (or stays at `cur`), which is where
/// an assignment change becomes visible. Consumes exactly the same RNG
/// draws as [`mutate`].
pub fn mutate_tracked<R: Rng + ?Sized>(
    c: &mut Chromosome,
    graph: &TaskGraph,
    proc_count: usize,
    rng: &mut R,
) -> ChangeTrack {
    let n = c.order.len();
    if n == 0 {
        return ChangeTrack::unchanged(0);
    }
    let v = c.order[rng.gen_range(0..n)];
    let (cur, target) = reposition_in_window(c, graph, v, rng);
    // New processor, drawn uniformly (may equal the old one).
    let proc = ProcId(rng.gen_range(0..proc_count) as u32);
    let proc_changed = c.assignment[v.index()] != proc;
    c.assignment[v.index()] = proc;
    ChangeTrack {
        first_order: if target == cur {
            n
        } else {
            cur.min(target)
        },
        first_assign: if proc_changed { target } else { n },
    }
}

/// Moves `v` to a uniform position within its precedence window,
/// returning `(current, target)` positions.
fn reposition_in_window<R: Rng + ?Sized>(
    c: &mut Chromosome,
    graph: &TaskGraph,
    v: TaskId,
    rng: &mut R,
) -> (usize, usize) {
    let n = c.order.len();
    let mut pos = vec![usize::MAX; n];
    for (i, t) in c.order.iter().enumerate() {
        pos[t.index()] = i;
    }
    let cur = pos[v.index()];

    // Window bounds in the *current* string.
    let lo = graph
        .predecessors(v)
        .iter()
        .map(|e| pos[e.task.index()])
        .max()
        .map_or(0, |p| p + 1); // first legal index
    let hi = graph
        .successors(v)
        .iter()
        .map(|e| pos[e.task.index()])
        .min()
        .map_or(n, |p| p); // one past the last legal index (exclusive)
    debug_assert!(lo <= cur && cur < hi, "current position must be legal");

    // Choose the target slot among the window's positions.
    let target = rng.gen_range(lo..hi);
    if target == cur {
        return (cur, target);
    }
    // Rotate v into place, shifting the in-between tasks by one.
    if target < cur {
        c.order[target..=cur].rotate_right(1);
    } else {
        c.order[cur..=target].rotate_left(1);
    }
    (cur, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_graph::is_topological_order;
    use rds_sched::instance::InstanceSpec;
    use rds_stats::rng::rng_from_seed;

    #[test]
    fn mutation_preserves_validity() {
        for seed in 0..5u64 {
            let inst = InstanceSpec::new(40, 4).seed(seed).build().unwrap();
            let mut rng = rng_from_seed(seed ^ 0x55);
            let mut c = Chromosome::random_for(&inst, &mut rng);
            for _ in 0..200 {
                mutate(&mut c, &inst.graph, 4, &mut rng);
                assert!(c.is_valid(&inst.graph, 4), "seed {seed}");
            }
        }
    }

    #[test]
    fn mutation_changes_chromosomes_eventually() {
        let inst = InstanceSpec::new(30, 4).seed(7).build().unwrap();
        let mut rng = rng_from_seed(8);
        let c0 = Chromosome::random_for(&inst, &mut rng);
        let mut c = c0.clone();
        let mut changed = false;
        for _ in 0..20 {
            mutate(&mut c, &inst.graph, 4, &mut rng);
            if c != c0 {
                changed = true;
                break;
            }
        }
        assert!(changed, "20 mutations should alter the chromosome");
    }

    #[test]
    fn chain_graph_pins_positions() {
        // In a pure chain every task's window is exactly its own position:
        // only the processor can change.
        use rds_graph::gen::workflows::chain;
        use rds_graph::TaskGraphBuilder;
        let _ = TaskGraphBuilder::with_tasks(0); // silence unused import lint paths
        let g = chain(10, 1.0);
        let order: Vec<TaskId> = (0..10u32).map(TaskId).collect();
        let mut c = Chromosome {
            order: order.clone(),
            assignment: vec![ProcId(0); 10],
        };
        let mut rng = rng_from_seed(9);
        for _ in 0..50 {
            mutate(&mut c, &g, 3, &mut rng);
            assert_eq!(c.order, order, "chain order is rigid");
        }
        // But processors do get reassigned.
        assert!(c.assignment.iter().any(|p| p.index() != 0));
    }

    #[test]
    fn independent_tasks_can_move_anywhere() {
        // No edges: all n! orders are legal; mutation should move tasks.
        use rds_graph::TaskGraphBuilder;
        let g = TaskGraphBuilder::with_tasks(6).build().unwrap();
        let mut c = Chromosome {
            order: (0..6u32).map(TaskId).collect(),
            assignment: vec![ProcId(0); 6],
        };
        let mut rng = rng_from_seed(10);
        let mut seen_orders = std::collections::HashSet::new();
        for _ in 0..100 {
            mutate(&mut c, &g, 1, &mut rng);
            assert!(is_topological_order(&g, &c.order));
            seen_orders.insert(c.order.clone());
        }
        assert!(seen_orders.len() > 10, "mutation should explore orders");
    }

    #[test]
    fn empty_chromosome_is_untouched() {
        use rds_graph::TaskGraphBuilder;
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        let mut c = Chromosome {
            order: vec![],
            assignment: vec![],
        };
        let mut rng = rng_from_seed(11);
        mutate(&mut c, &g, 2, &mut rng);
        assert!(c.is_empty());
    }
}

//! NSGA-II: a true multi-objective GA over (makespan ↓, slack ↑).
//!
//! The paper solves its bi-objective problem with the classical
//! ε-constraint scalarization (one GA run per ε). The evolutionary
//! alternative from the same literature (Deb, cited as \[10\]) approximates
//! the whole Pareto front in a *single* run: rank individuals by fast
//! non-dominated sorting, break ties by crowding distance, and select/vary
//! as usual. This module provides that alternative for the
//! `bench_moop_methods` ablation and the `pareto_front` example — same
//! chromosome encoding and variation operators as the paper's GA, only the
//! selection pressure differs.

use rand::Rng;

use rds_platform::EnergyModel;
use rds_sched::instance::Instance;
use rds_stats::rng::rng_from_seed;

use crate::chromosome::Chromosome;
use crate::crossover::crossover;
use crate::mutation::mutate;
use crate::objective::{evaluate_all, Evaluation};
use crate::params::GaParams;
use crate::tri::{crossover_tri, evaluate_all_tri, mutate_tri, TriChromosome, TriEvaluation};

/// `true` when `a` Pareto-dominates `b` in (makespan ↓, slack ↑).
#[must_use]
pub fn dominates(a: &Evaluation, b: &Evaluation) -> bool {
    let no_worse = a.makespan <= b.makespan && a.avg_slack >= b.avg_slack;
    let better = a.makespan < b.makespan || a.avg_slack > b.avg_slack;
    no_worse && better
}

/// Fast non-dominated sorting: returns the front index (0 = best) of every
/// individual (Deb et al. 2002, O(M·N²)).
#[must_use]
pub fn non_dominated_sort(evals: &[Evaluation]) -> Vec<usize> {
    let n = evals.len();
    let mut dominated_by: Vec<usize> = vec![0; n]; // how many dominate i
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&evals[i], &evals[j]) {
                dominates_list[i].push(j);
            } else if dominates(&evals[j], &evals[i]) {
                dominated_by[i] += 1;
            }
        }
    }
    let mut front = vec![usize::MAX; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut rank = 0;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            front[i] = rank;
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        rank += 1;
    }
    front
}

/// Crowding distances within one front (Deb et al. 2002): boundary points
/// get `+∞`; interior points the normalized side lengths of their
/// enclosing cuboid.
#[must_use]
pub fn crowding_distance(evals: &[Evaluation], members: &[usize]) -> Vec<f64> {
    let m = members.len();
    let mut dist = vec![0.0_f64; m];
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    // Objective extractors: makespan and slack.
    for get in [
        (|e: &Evaluation| e.makespan) as fn(&Evaluation) -> f64,
        |e: &Evaluation| e.avg_slack,
    ] {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| get(&evals[members[a]]).total_cmp(&get(&evals[members[b]])));
        let lo = get(&evals[members[order[0]]]);
        let hi = get(&evals[members[order[m - 1]]]);
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let prev = get(&evals[members[order[w - 1]]]);
            let next = get(&evals[members[order[w + 1]]]);
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

/// One point of the final front.
#[derive(Debug, Clone)]
pub struct FrontPoint {
    /// The chromosome.
    pub chromosome: Chromosome,
    /// Its evaluation.
    pub eval: Evaluation,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Result {
    /// The non-dominated set of the final population, sorted by makespan.
    pub front: Vec<FrontPoint>,
    /// Generations executed.
    pub generations: usize,
}

/// Runs NSGA-II. Reuses [`GaParams`] (population, pc, pm, max
/// generations — the stall rule does not apply; front-quality stalls are
/// ill-defined, so the run always uses `max_generations`).
///
/// # Panics
/// Panics when `params` fail validation.
pub fn nsga2(inst: &Instance, params: GaParams) -> Nsga2Result {
    params.validate().expect("invalid GA parameters");
    let mut rng = rng_from_seed(params.seed);
    let np = params.population;

    // Initial population (HEFT seed included when enabled: it anchors the
    // low-makespan end of the front).
    let mut pop: Vec<Chromosome> = Vec::with_capacity(np);
    if params.seed_heft {
        let heft = rds_heft::heft_schedule(inst);
        pop.push(Chromosome::from_schedule(&inst.graph, &heft.schedule));
    }
    while pop.len() < np {
        pop.push(Chromosome::random_for(inst, &mut rng));
    }
    let mut evals: Vec<Evaluation> = evaluate_all(inst, &pop);

    for _gen in 0..params.max_generations {
        // Variation: binary tournaments on (rank, crowding), then
        // crossover + mutation to produce np offspring.
        let fronts = non_dominated_sort(&evals);
        let crowd = full_crowding(&evals, &fronts);
        let pick = |rng: &mut rds_stats::rng::StdRng64| -> usize {
            let a = rng.gen_range(0..np);
            let b = rng.gen_range(0..np);
            if (fronts[a], std::cmp::Reverse(ordered(crowd[a])))
                <= (fronts[b], std::cmp::Reverse(ordered(crowd[b])))
            {
                a
            } else {
                b
            }
        };
        let mut offspring: Vec<Chromosome> = Vec::with_capacity(np);
        while offspring.len() < np {
            let p1 = pick(&mut rng);
            let p2 = pick(&mut rng);
            let (mut c1, mut c2) = if rng.gen_bool(params.crossover_prob) {
                crossover(&pop[p1], &pop[p2], &mut rng)
            } else {
                (pop[p1].clone(), pop[p2].clone())
            };
            if rng.gen_bool(params.mutation_prob) {
                mutate(&mut c1, &inst.graph, inst.proc_count(), &mut rng);
            }
            if rng.gen_bool(params.mutation_prob) {
                mutate(&mut c2, &inst.graph, inst.proc_count(), &mut rng);
            }
            offspring.push(c1);
            if offspring.len() < np {
                offspring.push(c2);
            }
        }
        let off_evals: Vec<Evaluation> = evaluate_all(inst, &offspring);

        // Environmental selection over parents + offspring.
        let mut all_pop = pop;
        all_pop.extend(offspring);
        let mut all_evals = evals;
        all_evals.extend(off_evals);
        let fronts = non_dominated_sort(&all_evals);
        let crowd = full_crowding(&all_evals, &fronts);
        let mut order: Vec<usize> = (0..all_pop.len()).collect();
        order.sort_by(|&a, &b| {
            fronts[a]
                .cmp(&fronts[b])
                .then_with(|| crowd[b].total_cmp(&crowd[a]))
        });
        order.truncate(np);
        pop = order.iter().map(|&i| all_pop[i].clone()).collect();
        evals = order.iter().map(|&i| all_evals[i]).collect();
    }

    // Extract the final non-dominated set.
    let fronts = non_dominated_sort(&evals);
    let mut front: Vec<FrontPoint> = pop
        .into_iter()
        .zip(evals)
        .zip(&fronts)
        .filter(|(_, &f)| f == 0)
        .map(|((chromosome, eval), _)| FrontPoint { chromosome, eval })
        .collect();
    front.sort_by(|a, b| a.eval.makespan.total_cmp(&b.eval.makespan));
    // Collapse duplicate objective vectors.
    front.dedup_by(|a, b| {
        a.eval.makespan == b.eval.makespan && a.eval.avg_slack == b.eval.avg_slack
    });
    Nsga2Result {
        front,
        generations: params.max_generations,
    }
}

/// Crowding distance across the whole population, computed front by front.
fn full_crowding(evals: &[Evaluation], fronts: &[usize]) -> Vec<f64> {
    let n = evals.len();
    let max_front = fronts.iter().copied().max().unwrap_or(0);
    let mut crowd = vec![0.0_f64; n];
    for f in 0..=max_front {
        let members: Vec<usize> = (0..n).filter(|&i| fronts[i] == f).collect();
        if members.is_empty() {
            continue;
        }
        let d = crowding_distance(evals, &members);
        for (k, &i) in members.iter().enumerate() {
            crowd[i] = d[k];
        }
    }
    crowd
}

/// Total order helper for possibly infinite crowding values.
fn ordered(x: f64) -> std::cmp::Reverse<u64> {
    // Map to an order-preserving integer (f64 total order via bits for
    // non-negative values; infinities map to the max).
    std::cmp::Reverse(x.to_bits())
}

// ---------------------------------------------------------------------------
// Tri-objective extension: (makespan ↓, slack ↑, energy ↓) under a
// schedule-reliability constraint, handled as feasibility-first dominance
// (Deb's constraint handling: feasible beats infeasible, less-violating
// beats more-violating, and only among feasible solutions does Pareto
// dominance on the three objectives apply).
// ---------------------------------------------------------------------------

/// `true` when `a` Pareto-dominates `b` in (makespan ↓, slack ↑,
/// energy ↓). Reliability is the constraint, not an objective — see
/// [`constrained_dominates_tri`].
#[must_use]
pub fn dominates_tri(a: &TriEvaluation, b: &TriEvaluation) -> bool {
    let no_worse =
        a.makespan <= b.makespan && a.avg_slack >= b.avg_slack && a.energy <= b.energy;
    let better = a.makespan < b.makespan || a.avg_slack > b.avg_slack || a.energy < b.energy;
    no_worse && better
}

/// Feasibility-first dominance under the reliability constraint
/// `reliability ≥ rel_min`:
///
/// 1. a feasible solution dominates every infeasible one;
/// 2. between two infeasible solutions, the higher reliability (smaller
///    violation) dominates;
/// 3. between two feasible solutions, plain [`dominates_tri`] decides.
#[must_use]
pub fn constrained_dominates_tri(a: &TriEvaluation, b: &TriEvaluation, rel_min: f64) -> bool {
    let fa = a.reliability >= rel_min;
    let fb = b.reliability >= rel_min;
    match (fa, fb) {
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.reliability > b.reliability,
        (true, true) => dominates_tri(a, b),
    }
}

/// Fast non-dominated sorting under constrained tri-objective dominance:
/// returns the front index (0 = best) of every individual.
#[must_use]
pub fn non_dominated_sort_tri(evals: &[TriEvaluation], rel_min: f64) -> Vec<usize> {
    let n = evals.len();
    let mut dominated_by: Vec<usize> = vec![0; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if constrained_dominates_tri(&evals[i], &evals[j], rel_min) {
                dominates_list[i].push(j);
            } else if constrained_dominates_tri(&evals[j], &evals[i], rel_min) {
                dominated_by[i] += 1;
            }
        }
    }
    let mut front = vec![usize::MAX; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut rank = 0;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            front[i] = rank;
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        rank += 1;
    }
    front
}

/// Crowding distances within one front over the three objectives
/// (boundary points per objective get `+∞`, interior points the
/// normalized cuboid side lengths — exactly the bi-objective rule with a
/// third extractor).
#[must_use]
pub fn crowding_distance_tri(evals: &[TriEvaluation], members: &[usize]) -> Vec<f64> {
    let m = members.len();
    let mut dist = vec![0.0_f64; m];
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    for get in [
        (|e: &TriEvaluation| e.makespan) as fn(&TriEvaluation) -> f64,
        |e: &TriEvaluation| e.avg_slack,
        |e: &TriEvaluation| e.energy,
    ] {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| get(&evals[members[a]]).total_cmp(&get(&evals[members[b]])));
        let lo = get(&evals[members[order[0]]]);
        let hi = get(&evals[members[order[m - 1]]]);
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let prev = get(&evals[members[order[w - 1]]]);
            let next = get(&evals[members[order[w + 1]]]);
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

/// One point of the final tri-objective front.
#[derive(Debug, Clone)]
pub struct TriFrontPoint {
    /// The individual (scheduling + assignment + frequency strings).
    pub chromosome: TriChromosome,
    /// Its evaluation.
    pub eval: TriEvaluation,
}

/// Result of a tri-objective NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2TriResult {
    /// The rank-0 set of the final population, sorted by makespan and
    /// deduplicated on the objective triple. When any feasible individual
    /// survives, constrained dominance guarantees the whole front is
    /// feasible.
    pub front: Vec<TriFrontPoint>,
    /// Generations executed.
    pub generations: usize,
    /// Total chromosome evaluations performed (for evals/sec reporting).
    pub evaluations: usize,
    /// `true` when every front member meets the reliability constraint.
    pub feasible: bool,
}

/// Runs the tri-objective, reliability-constrained NSGA-II. Same loop
/// shape as [`nsga2`], with the frequency string carried through
/// variation ([`crossover_tri`] / [`mutate_tri`]) and constrained
/// dominance in both tournament and environmental selection.
///
/// # Panics
/// Panics when `params` fail validation, `rel_min` is outside `[0, 1]`,
/// or the model's processor count disagrees with the instance.
pub fn nsga2_tri(
    inst: &Instance,
    model: &EnergyModel,
    rel_min: f64,
    params: GaParams,
) -> Nsga2TriResult {
    params.validate().expect("invalid GA parameters");
    assert!(
        (0.0..=1.0).contains(&rel_min),
        "reliability threshold must be in [0, 1], got {rel_min}"
    );
    assert_eq!(
        model.power.proc_count(),
        inst.proc_count(),
        "energy model and instance disagree on processor count"
    );
    let mut rng = rng_from_seed(params.seed);
    let np = params.population;
    let levels = model.ladder.len();
    let mut evaluations = 0usize;

    // Initial population: the HEFT seed enters at full speed (it anchors
    // both the low-makespan and the high-reliability end).
    let mut pop: Vec<TriChromosome> = Vec::with_capacity(np);
    if params.seed_heft {
        let heft = rds_heft::heft_schedule(inst);
        let chrom = Chromosome::from_schedule(&inst.graph, &heft.schedule);
        pop.push(TriChromosome::full_speed(chrom, model));
    }
    while pop.len() < np {
        pop.push(TriChromosome::random_for(inst, model, &mut rng));
    }
    let mut evals: Vec<TriEvaluation> = evaluate_all_tri(inst, model, &pop);
    evaluations += pop.len();

    for _gen in 0..params.max_generations {
        let fronts = non_dominated_sort_tri(&evals, rel_min);
        let crowd = full_crowding_tri(&evals, &fronts);
        let pick = |rng: &mut rds_stats::rng::StdRng64| -> usize {
            let a = rng.gen_range(0..np);
            let b = rng.gen_range(0..np);
            if (fronts[a], std::cmp::Reverse(ordered(crowd[a])))
                <= (fronts[b], std::cmp::Reverse(ordered(crowd[b])))
            {
                a
            } else {
                b
            }
        };
        let mut offspring: Vec<TriChromosome> = Vec::with_capacity(np);
        while offspring.len() < np {
            let p1 = pick(&mut rng);
            let p2 = pick(&mut rng);
            let (mut c1, mut c2) = if rng.gen_bool(params.crossover_prob) {
                crossover_tri(&pop[p1], &pop[p2], &mut rng)
            } else {
                (pop[p1].clone(), pop[p2].clone())
            };
            if rng.gen_bool(params.mutation_prob) {
                mutate_tri(&mut c1, &inst.graph, inst.proc_count(), levels, &mut rng);
            }
            if rng.gen_bool(params.mutation_prob) {
                mutate_tri(&mut c2, &inst.graph, inst.proc_count(), levels, &mut rng);
            }
            offspring.push(c1);
            if offspring.len() < np {
                offspring.push(c2);
            }
        }
        let off_evals: Vec<TriEvaluation> = evaluate_all_tri(inst, model, &offspring);
        evaluations += offspring.len();

        let mut all_pop = pop;
        all_pop.extend(offspring);
        let mut all_evals = evals;
        all_evals.extend(off_evals);
        let fronts = non_dominated_sort_tri(&all_evals, rel_min);
        let crowd = full_crowding_tri(&all_evals, &fronts);
        let mut order: Vec<usize> = (0..all_pop.len()).collect();
        order.sort_by(|&a, &b| {
            fronts[a]
                .cmp(&fronts[b])
                .then_with(|| crowd[b].total_cmp(&crowd[a]))
        });
        order.truncate(np);
        pop = order.iter().map(|&i| all_pop[i].clone()).collect();
        evals = order.iter().map(|&i| all_evals[i]).collect();
    }

    let fronts = non_dominated_sort_tri(&evals, rel_min);
    let mut front: Vec<TriFrontPoint> = pop
        .into_iter()
        .zip(evals)
        .zip(&fronts)
        .filter(|(_, &f)| f == 0)
        .map(|((chromosome, eval), _)| TriFrontPoint { chromosome, eval })
        .collect();
    front.sort_by(|a, b| a.eval.makespan.total_cmp(&b.eval.makespan));
    front.dedup_by(|a, b| {
        a.eval.makespan == b.eval.makespan
            && a.eval.avg_slack == b.eval.avg_slack
            && a.eval.energy == b.eval.energy
    });
    let feasible = !front.is_empty() && front.iter().all(|p| p.eval.reliability >= rel_min);
    Nsga2TriResult {
        front,
        generations: params.max_generations,
        evaluations,
        feasible,
    }
}

/// Crowding distance across the whole population under the tri-objective
/// rule, computed front by front.
fn full_crowding_tri(evals: &[TriEvaluation], fronts: &[usize]) -> Vec<f64> {
    let n = evals.len();
    let max_front = fronts.iter().copied().max().unwrap_or(0);
    let mut crowd = vec![0.0_f64; n];
    for f in 0..=max_front {
        let members: Vec<usize> = (0..n).filter(|&i| fronts[i] == f).collect();
        if members.is_empty() {
            continue;
        }
        let d = crowding_distance_tri(evals, &members);
        for (k, &i) in members.iter().enumerate() {
            crowd[i] = d[k];
        }
    }
    crowd
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_sched::instance::InstanceSpec;

    fn e(makespan: f64, avg_slack: f64) -> Evaluation {
        Evaluation {
            makespan,
            avg_slack,
        }
    }

    #[test]
    fn dominance_in_objective_space() {
        assert!(dominates(&e(1.0, 5.0), &e(2.0, 4.0)));
        assert!(!dominates(&e(1.0, 3.0), &e(2.0, 5.0)));
        assert!(!dominates(&e(1.0, 5.0), &e(1.0, 5.0)));
    }

    #[test]
    fn non_dominated_sort_layers() {
        // (1,5) and (2,6): front 0. (2,4): dominated by (1,5) only -> front 1.
        // (3,3): dominated by (1,5), (2,4)... wait (2,4) dominates (3,3).
        let evals = vec![e(1.0, 5.0), e(2.0, 6.0), e(2.0, 4.0), e(3.0, 3.0)];
        let fronts = non_dominated_sort(&evals);
        assert_eq!(fronts[0], 0);
        assert_eq!(fronts[1], 0);
        assert_eq!(fronts[2], 1);
        assert_eq!(fronts[3], 2);
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let evals = vec![e(1.0, 1.0), e(2.0, 2.0), e(3.0, 3.0), e(4.0, 4.0)];
        let members = vec![0, 1, 2, 3];
        let d = crowding_distance(&evals, &members);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn tiny_fronts_are_all_infinite() {
        let evals = vec![e(1.0, 1.0), e(2.0, 2.0)];
        let d = crowding_distance(&evals, &[0, 1]);
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn nsga2_front_is_non_dominated_and_sorted() {
        let inst = InstanceSpec::new(25, 3).seed(5).build().unwrap();
        let params = GaParams::quick().seed(7).max_generations(30);
        let r = nsga2(&inst, params);
        assert!(!r.front.is_empty());
        // Sorted by makespan; mutually non-dominated means slack must also
        // be increasing.
        for w in r.front.windows(2) {
            assert!(w[0].eval.makespan <= w[1].eval.makespan);
            assert!(
                w[0].eval.avg_slack <= w[1].eval.avg_slack + 1e-9,
                "front not a trade-off curve"
            );
        }
        for a in &r.front {
            for b in &r.front {
                assert!(
                    !dominates(&a.eval, &b.eval) || a.eval == b.eval || {
                        // identical coordinates deduped; strict domination forbidden
                        false
                    }
                );
            }
        }
        // Every front chromosome decodes to a valid schedule.
        for p in &r.front {
            assert!(p.chromosome.decode(3).validate_against(&inst.graph).is_ok());
        }
    }

    #[test]
    fn nsga2_is_deterministic() {
        let inst = InstanceSpec::new(20, 3).seed(6).build().unwrap();
        let params = GaParams::quick().seed(9).max_generations(15);
        let a = nsga2(&inst, params);
        let b = nsga2(&inst, params);
        assert_eq!(a.front.len(), b.front.len());
        for (x, y) in a.front.iter().zip(&b.front) {
            assert_eq!(x.eval.makespan, y.eval.makespan);
        }
    }

    fn te(makespan: f64, avg_slack: f64, energy: f64, reliability: f64) -> TriEvaluation {
        TriEvaluation {
            makespan,
            avg_slack,
            energy,
            reliability,
        }
    }

    #[test]
    fn tri_dominance_in_objective_space() {
        assert!(dominates_tri(&te(1.0, 5.0, 2.0, 0.99), &te(2.0, 4.0, 3.0, 0.99)));
        // Better energy alone dominates when the rest ties.
        assert!(dominates_tri(&te(1.0, 5.0, 2.0, 0.99), &te(1.0, 5.0, 3.0, 0.99)));
        // Trade-off: faster but more energy — no domination either way.
        assert!(!dominates_tri(&te(1.0, 5.0, 4.0, 0.99), &te(2.0, 4.0, 3.0, 0.99)));
        assert!(!dominates_tri(&te(2.0, 4.0, 3.0, 0.99), &te(1.0, 5.0, 4.0, 0.99)));
        assert!(!dominates_tri(&te(1.0, 5.0, 2.0, 0.99), &te(1.0, 5.0, 2.0, 0.99)));
    }

    #[test]
    fn constrained_dominance_is_feasibility_first() {
        let rel_min = 0.9;
        let feasible_bad = te(9.0, 0.1, 9.0, 0.95);
        let infeasible_great = te(1.0, 9.0, 0.1, 0.5);
        // Feasibility trumps all three objectives.
        assert!(constrained_dominates_tri(&feasible_bad, &infeasible_great, rel_min));
        assert!(!constrained_dominates_tri(&infeasible_great, &feasible_bad, rel_min));
        // Both infeasible: higher reliability wins regardless of objectives.
        let worse_rel = te(1.0, 9.0, 0.1, 0.4);
        assert!(constrained_dominates_tri(&infeasible_great, &worse_rel, rel_min));
        assert!(!constrained_dominates_tri(&worse_rel, &infeasible_great, rel_min));
        // Both feasible: plain tri-objective Pareto dominance.
        let a = te(1.0, 5.0, 2.0, 0.95);
        let b = te(2.0, 4.0, 3.0, 0.99);
        assert!(constrained_dominates_tri(&a, &b, rel_min));
        assert!(!constrained_dominates_tri(&b, &a, rel_min));
    }

    #[test]
    fn tri_sort_puts_feasible_ahead_of_infeasible() {
        let evals = vec![
            te(1.0, 9.0, 0.1, 0.5),  // infeasible, great objectives
            te(9.0, 9.5, 9.0, 0.95), // feasible, slow but slack-rich
            te(5.0, 5.0, 5.0, 0.97), // feasible
            te(2.0, 2.0, 2.0, 0.4),  // infeasible, lowest reliability
        ];
        let fronts = non_dominated_sort_tri(&evals, 0.9);
        assert_eq!(fronts[1], 0);
        assert_eq!(fronts[2], 0);
        assert!(fronts[0] > 0);
        assert!(fronts[3] > fronts[0]);
    }

    #[test]
    fn tri_crowding_boundaries_are_infinite() {
        let evals = vec![
            te(1.0, 1.0, 4.0, 1.0),
            te(2.0, 2.0, 3.0, 1.0),
            te(3.0, 3.0, 2.0, 1.0),
            te(4.0, 4.0, 1.0, 1.0),
        ];
        let d = crowding_distance_tri(&evals, &[0, 1, 2, 3]);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn nsga2_tri_front_is_feasible_and_non_dominated() {
        let inst = InstanceSpec::new(25, 3).seed(5).build().unwrap();
        let model = rds_platform::EnergyModel::default_for(3);
        let params = GaParams::quick().seed(7).max_generations(25);
        let rel_min = 0.9;
        let r = nsga2_tri(&inst, &model, rel_min, params);
        assert!(!r.front.is_empty());
        assert!(r.feasible, "default model at full speed must admit feasible schedules");
        assert!(r.evaluations >= params.population * (1 + params.max_generations));
        for p in &r.front {
            assert!(p.eval.reliability >= rel_min);
            assert!(p.eval.reliability <= 1.0);
            assert!(p.eval.energy > 0.0);
            assert!(p.chromosome.chrom.decode(3).validate_against(&inst.graph).is_ok());
        }
        for a in &r.front {
            for b in &r.front {
                assert!(
                    !dominates_tri(&a.eval, &b.eval) || a.eval == b.eval,
                    "front members must be mutually non-dominated"
                );
            }
        }
        for w in r.front.windows(2) {
            assert!(w[0].eval.makespan <= w[1].eval.makespan);
        }
    }

    #[test]
    fn nsga2_tri_is_deterministic() {
        let inst = InstanceSpec::new(20, 3).seed(6).build().unwrap();
        let model = rds_platform::EnergyModel::default_for(3);
        let params = GaParams::quick().seed(9).max_generations(12);
        let a = nsga2_tri(&inst, &model, 0.8, params);
        let b = nsga2_tri(&inst, &model, 0.8, params);
        assert_eq!(a.front.len(), b.front.len());
        for (x, y) in a.front.iter().zip(&b.front) {
            assert_eq!(x.eval.makespan.to_bits(), y.eval.makespan.to_bits());
            assert_eq!(x.eval.energy.to_bits(), y.eval.energy.to_bits());
            assert_eq!(x.chromosome, y.chromosome);
        }
    }

    #[test]
    fn nsga2_tri_dvfs_finds_lower_energy_than_full_speed_front_end() {
        // With a real ladder the GA should discover slower, cheaper
        // schedules: the front's minimum energy must undercut the energy of
        // running its own fastest member at full speed.
        let inst = InstanceSpec::new(25, 3).seed(8).build().unwrap();
        let model = rds_platform::EnergyModel::default_for(3);
        let params = GaParams::quick().seed(3).population(24).max_generations(40);
        let r = nsga2_tri(&inst, &model, 0.5, params);
        assert!(r.feasible);
        let fastest = &r.front[0];
        let full = crate::tri::TriChromosome::full_speed(fastest.chromosome.chrom.clone(), &model);
        let mut scratch = rds_sched::energy::EnergyScratch::new();
        let full_eval = crate::tri::evaluate_tri_with_scratch(&inst, &model, &full, &mut scratch);
        let min_energy = r
            .front
            .iter()
            .map(|p| p.eval.energy)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_energy < full_eval.energy,
            "expected DVFS to save energy: min front energy {min_energy} vs full-speed {}",
            full_eval.energy
        );
    }

    #[test]
    fn nsga2_tri_respects_tight_reliability_threshold() {
        // A threshold near the full-speed reliability forces the front to
        // high frequencies; every member must still satisfy it.
        let inst = InstanceSpec::new(20, 3).seed(11).build().unwrap();
        let model = rds_platform::EnergyModel::default_for(3);
        // Find the achievable full-speed reliability of the HEFT seed.
        let heft = rds_heft::heft_schedule(&inst);
        let chrom = Chromosome::from_schedule(&inst.graph, &heft.schedule);
        let tc = crate::tri::TriChromosome::full_speed(chrom, &model);
        let mut scratch = rds_sched::energy::EnergyScratch::new();
        let seed_eval = crate::tri::evaluate_tri_with_scratch(&inst, &model, &tc, &mut scratch);
        let rel_min = seed_eval.reliability * 0.999;
        let params = GaParams::quick().seed(4).max_generations(15);
        let r = nsga2_tri(&inst, &model, rel_min, params);
        assert!(r.feasible, "HEFT seed itself satisfies the threshold");
        for p in &r.front {
            assert!(p.eval.reliability >= rel_min);
        }
    }

    #[test]
    fn nsga2_front_spans_a_tradeoff() {
        // With enough generations the front should contain more than one
        // point (both a fast and a slacky schedule).
        let inst = InstanceSpec::new(30, 4).seed(8).build().unwrap();
        let params = GaParams::quick().seed(3).population(24).max_generations(40);
        let r = nsga2(&inst, params);
        assert!(
            r.front.len() >= 2,
            "expected a spread front, got {} point(s)",
            r.front.len()
        );
        let first = &r.front[0].eval;
        let last = &r.front[r.front.len() - 1].eval;
        assert!(last.avg_slack > first.avg_slack);
        assert!(last.makespan > first.makespan);
    }

    #[test]
    fn nsga2_tri_front_spans_a_tradeoff() {
        let inst = InstanceSpec::new(30, 4).seed(8).build().unwrap();
        let model = rds_platform::EnergyModel::default_for(4);
        let params = GaParams::quick().seed(3).population(24).max_generations(40);
        let r = nsga2_tri(&inst, &model, 0.5, params);
        assert!(
            r.front.len() >= 2,
            "expected a spread tri front, got {} point(s)",
            r.front.len()
        );
        let energies: Vec<f64> = r.front.iter().map(|p| p.eval.energy).collect();
        let min_e = energies.iter().copied().fold(f64::INFINITY, f64::min);
        let max_e = energies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max_e > min_e, "front should trade energy against speed");
    }
}

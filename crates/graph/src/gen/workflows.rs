//! Structured workflow topologies.
//!
//! The paper's introduction motivates DAG scheduling with real parallel
//! applications; these generators provide the classic structured topologies
//! used across the DAG-scheduling literature (Topcuoglu et al. evaluate on
//! Gaussian elimination and FFT graphs; Montage is the canonical
//! astronomy-mosaicking workflow). They give the examples and tests
//! realistic, *deterministic* workloads to complement the random layered
//! generator.
//!
//! All generators take a `data` knob for the uniform edge data size; callers
//! pair them with a COV-generated BCET matrix for heterogeneous timings.

use crate::dag::{TaskGraph, TaskGraphBuilder, TaskId};

/// A linear chain `v0 → v1 → … → v_{n-1}`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn chain(n: usize, data: f64) -> TaskGraph {
    assert!(n > 0, "chain needs at least one task");
    let mut b = TaskGraphBuilder::with_tasks(n);
    for i in 1..n {
        b.add_edge(TaskId(i as u32 - 1), TaskId(i as u32), data);
    }
    b.build().expect("chain is a DAG")
}

/// Fork–join: one source fans out to `width` parallel tasks which join into
/// one sink. Total `width + 2` tasks.
///
/// # Panics
/// Panics if `width == 0`.
pub fn fork_join(width: usize, data: f64) -> TaskGraph {
    assert!(width > 0, "fork_join needs at least one branch");
    let n = width + 2;
    let mut b = TaskGraphBuilder::with_tasks(n);
    let source = TaskId(0);
    let sink = TaskId(n as u32 - 1);
    for i in 0..width {
        let mid = TaskId(1 + i as u32);
        b.add_edge(source, mid, data).add_edge(mid, sink, data);
    }
    b.build().expect("fork-join is a DAG")
}

/// The task graph of Gaussian elimination on an `m × m` matrix
/// (Topcuoglu et al. §VI): for each elimination step `k`, one pivot task
/// `T_{k,k}` feeds the `m−k−1` update tasks `T_{k,j}` of its step, and each
/// update task feeds the next step's pivot and its own column's update.
///
/// Task count is `(m² + m − 2) / 2` for `m ≥ 2`.
///
/// # Panics
/// Panics if `m < 2`.
pub fn gaussian_elimination(m: usize, data: f64) -> TaskGraph {
    assert!(m >= 2, "gaussian elimination needs m >= 2");
    // Index tasks: step k has a pivot P_k and updates U_{k,j} for j in k+1..m.
    // Lay out ids step by step.
    let mut id_of_pivot = vec![0u32; m - 1];
    let mut id_of_update = vec![std::collections::HashMap::new(); m - 1];
    let mut next = 0u32;
    for k in 0..m - 1 {
        id_of_pivot[k] = next;
        next += 1;
        for j in k + 1..m {
            id_of_update[k].insert(j, next);
            next += 1;
        }
    }
    let mut b = TaskGraphBuilder::with_tasks(next as usize);
    for k in 0..m - 1 {
        let pk = TaskId(id_of_pivot[k]);
        for j in k + 1..m {
            let ukj = TaskId(id_of_update[k][&j]);
            // Pivot feeds each update of its step.
            b.add_edge(pk, ukj, data);
            if k + 1 < m - 1 {
                if j == k + 1 {
                    // First update feeds the next pivot.
                    b.add_edge(ukj, TaskId(id_of_pivot[k + 1]), data);
                } else {
                    // Update feeds the same column's update in the next step.
                    b.add_edge(ukj, TaskId(id_of_update[k + 1][&j]), data);
                }
            }
        }
    }
    b.build().expect("gaussian elimination graph is a DAG")
}

/// The butterfly task graph of a recursive FFT on `2^log2n` points:
/// `log2n + 1` ranks of `2^log2n` tasks; task `(r+1, i)` depends on
/// `(r, i)` and `(r, i XOR 2^r)`.
///
/// # Panics
/// Panics if `log2n == 0` or the graph would exceed `u32` ids.
pub fn fft(log2n: usize, data: f64) -> TaskGraph {
    assert!(log2n > 0, "fft needs at least one stage");
    let width = 1usize << log2n;
    let ranks = log2n + 1;
    let n = width * ranks;
    assert!(n <= u32::MAX as usize, "fft graph too large");
    let id = |rank: usize, i: usize| TaskId((rank * width + i) as u32);
    let mut b = TaskGraphBuilder::with_tasks(n);
    for r in 0..log2n {
        for i in 0..width {
            let partner = i ^ (1 << r);
            b.add_edge(id(r, i), id(r + 1, i), data);
            b.add_edge(id(r, partner), id(r + 1, i), data);
        }
    }
    b.build().expect("fft butterfly is a DAG")
}

/// A Montage-like astronomy mosaicking workflow:
///
/// ```text
///   mProject × w   (reproject each input image)
///   mDiffFit  × (w-1)  (fit overlaps of neighbouring projections)
///   mConcatFit × 1  (combine the fits)
///   mBgModel  × 1   (model background corrections)
///   mBackground × w (apply corrections, one per image)
///   mImgtbl   × 1   (aggregate metadata)
///   mAdd      × 1   (co-add into the final mosaic)
/// ```
///
/// Total `3w + 3` tasks for `w ≥ 2` input images.
///
/// # Panics
/// Panics if `images < 2`.
pub fn montage(images: usize, data: f64) -> TaskGraph {
    assert!(images >= 2, "montage needs at least two input images");
    let w = images;
    let n = 3 * w + 3;
    let mut b = TaskGraphBuilder::with_tasks(n);
    let project = |i: usize| TaskId(i as u32);
    let difffit = |i: usize| TaskId((w + i) as u32);
    let concat = TaskId((2 * w - 1) as u32);
    let bgmodel = TaskId((2 * w) as u32);
    let background = |i: usize| TaskId((2 * w + 1 + i) as u32);
    let imgtbl = TaskId((3 * w + 1) as u32);
    let add = TaskId((3 * w + 2) as u32);

    for i in 0..w - 1 {
        // Each overlap fit consumes two neighbouring projections.
        b.add_edge(project(i), difffit(i), data)
            .add_edge(project(i + 1), difffit(i), data)
            .add_edge(difffit(i), concat, data);
    }
    b.add_edge(concat, bgmodel, data);
    for i in 0..w {
        b.add_edge(bgmodel, background(i), data)
            .add_edge(project(i), background(i), data)
            .add_edge(background(i), imgtbl, data);
    }
    b.add_edge(imgtbl, add, data);
    b.build().expect("montage workflow is a DAG")
}

/// The task graph of a tiled Cholesky factorization on a `t × t` tile
/// grid: per step `k`, `POTRF(k)` feeds the `TRSM(k,i)` of its column
/// (`i > k`), each `TRSM(k,i)` feeds the `SYRK(k,i)` update of its
/// diagonal tile and the `GEMM(k,i,j)` updates of its row/column pairs,
/// and the step-`k` updates feed the step-`k+1` kernels that touch the
/// same tiles.
///
/// Task count is `t` POTRFs + `t(t−1)/2` TRSMs + `t(t−1)/2` SYRKs +
/// `t(t−1)(t−2)/6` GEMMs.
///
/// # Panics
/// Panics if `tiles < 2`.
#[allow(clippy::needless_range_loop)] // index math mirrors the kernel indices
pub fn cholesky(tiles: usize, data: f64) -> TaskGraph {
    assert!(tiles >= 2, "cholesky needs at least a 2x2 tile grid");
    let t = tiles;
    // Assign ids kernel by kernel, step by step.
    let mut next = 0u32;
    let mut potrf = vec![0u32; t];
    let mut trsm = std::collections::HashMap::new(); // (k, i), i > k
    let mut syrk = std::collections::HashMap::new(); // (k, i), i > k
    let mut gemm = std::collections::HashMap::new(); // (k, i, j), k < i < j
    for k in 0..t {
        potrf[k] = next;
        next += 1;
        for i in k + 1..t {
            trsm.insert((k, i), next);
            next += 1;
        }
        for i in k + 1..t {
            syrk.insert((k, i), next);
            next += 1;
            for j in i + 1..t {
                gemm.insert((k, i, j), next);
                next += 1;
            }
        }
    }
    let mut b = TaskGraphBuilder::with_tasks(next as usize);
    let edge = |from: u32, to: u32, b: &mut TaskGraphBuilder| {
        if !b.has_edge(TaskId(from), TaskId(to)) {
            b.add_edge(TaskId(from), TaskId(to), data);
        }
    };
    for k in 0..t {
        for i in k + 1..t {
            // POTRF(k) -> TRSM(k, i)
            edge(potrf[k], trsm[&(k, i)], &mut b);
            // TRSM(k, i) -> SYRK(k, i)
            edge(trsm[&(k, i)], syrk[&(k, i)], &mut b);
            for j in i + 1..t {
                // TRSM(k, i) and TRSM(k, j) -> GEMM(k, i, j)
                edge(trsm[&(k, i)], gemm[&(k, i, j)], &mut b);
                edge(trsm[&(k, j)], gemm[&(k, i, j)], &mut b);
            }
            // Step-k update of tile (i, i) feeds step-(k+1) kernels on it.
            if i == k + 1 {
                edge(syrk[&(k, i)], potrf[k + 1], &mut b);
            } else {
                edge(syrk[&(k, i)], syrk[&(k + 1, i)], &mut b);
            }
            for j in i + 1..t {
                if i == k + 1 {
                    edge(gemm[&(k, i, j)], trsm[&(k + 1, j)], &mut b);
                } else {
                    edge(gemm[&(k, i, j)], gemm[&(k + 1, i, j)], &mut b);
                }
            }
        }
    }
    b.build().expect("cholesky task graph is a DAG")
}

/// A stencil/pipeline grid: `rows × cols` tasks; task `(r,c)` feeds
/// `(r+1,c)` and `(r+1,c+1)` (wavefront dependence).
///
/// # Panics
/// Panics if `rows == 0 || cols == 0`.
pub fn wavefront(rows: usize, cols: usize, data: f64) -> TaskGraph {
    assert!(rows > 0 && cols > 0, "wavefront needs positive dimensions");
    let id = |r: usize, c: usize| TaskId((r * cols + c) as u32);
    let mut b = TaskGraphBuilder::with_tasks(rows * cols);
    for r in 0..rows - 1 {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r + 1, c), data);
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r + 1, c + 1), data);
            }
        }
    }
    b.build().expect("wavefront is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::critical_path_length;
    use crate::topo::topological_order;

    #[test]
    fn chain_shape() {
        let g = chain(5, 1.0);
        assert_eq!(g.task_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.exits().len(), 1);
        // Unit node weights, zero comm: CP length = 5.
        assert_eq!(critical_path_length(&g, |_| 1.0, |_, _, _| 0.0), 5.0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(8, 2.0);
        assert_eq!(g.task_count(), 10);
        assert_eq!(g.edge_count(), 16);
        assert_eq!(g.entries(), vec![TaskId(0)]);
        assert_eq!(g.exits(), vec![TaskId(9)]);
        // Depth is 3 regardless of width.
        assert_eq!(critical_path_length(&g, |_| 1.0, |_, _, _| 0.0), 3.0);
    }

    #[test]
    fn gaussian_elimination_task_count() {
        // m=5: (25 + 5 - 2)/2 = 14 tasks.
        let g = gaussian_elimination(5, 1.0);
        assert_eq!(g.task_count(), 14);
        assert!(topological_order(&g).is_some());
        assert_eq!(g.entries().len(), 1, "single initial pivot");
    }

    #[test]
    fn gaussian_elimination_depth_grows_linearly() {
        let d =
            |m: usize| critical_path_length(&gaussian_elimination(m, 0.0), |_| 1.0, |_, _, _| 0.0);
        // Each step adds pivot + update to the critical path: depth 2(m-1).
        assert_eq!(d(2), 2.0);
        assert_eq!(d(4), 6.0);
        assert_eq!(d(6), 10.0);
    }

    #[test]
    fn fft_shape() {
        let g = fft(3, 1.0); // 8-point FFT: 4 ranks x 8 = 32 tasks
        assert_eq!(g.task_count(), 32);
        assert_eq!(g.edge_count(), 3 * 8 * 2);
        assert_eq!(g.entries().len(), 8);
        assert_eq!(g.exits().len(), 8);
        assert_eq!(critical_path_length(&g, |_| 1.0, |_, _, _| 0.0), 4.0);
    }

    #[test]
    fn fft_dependencies_are_butterflies() {
        let g = fft(2, 1.0); // width 4
                             // Task (1, 0) depends on (0,0) and (0,1).
        let t10 = TaskId(4);
        let preds: Vec<u32> = g.predecessors(t10).iter().map(|e| e.task.0).collect();
        let mut sorted = preds.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn montage_shape() {
        let g = montage(4, 1.0);
        assert_eq!(g.task_count(), 15);
        assert!(topological_order(&g).is_some());
        // Entries are exactly the projections.
        assert_eq!(g.entries().len(), 4);
        // Single final mosaic.
        assert_eq!(g.exits().len(), 1);
    }

    #[test]
    fn wavefront_shape() {
        let g = wavefront(3, 4, 1.0);
        assert_eq!(g.task_count(), 12);
        assert!(topological_order(&g).is_some());
        assert_eq!(critical_path_length(&g, |_| 1.0, |_, _, _| 0.0), 3.0);
        assert_eq!(g.entries().len(), 4, "whole first row is ready initially");
    }

    #[test]
    fn cholesky_task_count_and_validity() {
        // t tiles: t + t(t-1)/2 + t(t-1)/2 + t(t-1)(t-2)/6 tasks.
        let count = |t: usize| t + t * (t - 1) + t * (t - 1) * (t - 2) / 6;
        for t in 2..=6 {
            let g = cholesky(t, 1.0);
            assert_eq!(g.task_count(), count(t), "t={t}");
            assert!(topological_order(&g).is_some());
            // Exactly one entry: POTRF(0).
            assert_eq!(g.entries(), vec![TaskId(0)], "t={t}");
        }
    }

    #[test]
    fn cholesky_critical_path_scales_with_steps() {
        // Unit durations, zero comm: the dependency chain
        // POTRF(k) -> TRSM -> SYRK -> POTRF(k+1) gives depth 3(t-1)+1.
        let d = |t: usize| critical_path_length(&cholesky(t, 0.0), |_| 1.0, |_, _, _| 0.0);
        assert_eq!(d(2), 4.0);
        assert_eq!(d(3), 7.0);
        assert_eq!(d(5), 13.0);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn montage_rejects_tiny_inputs() {
        let _ = montage(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn chain_rejects_zero() {
        let _ = chain(0, 1.0);
    }
}

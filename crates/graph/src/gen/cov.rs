//! COV-based matrix generation (Ali et al., HCW 2000) as used in §5.
//!
//! The paper generates both the best-case execution time matrix `B` and the
//! uncertainty-level matrix `UL` with the *coefficient-of-variation* method:
//!
//! 1. Draw a per-task vector `q = {q_1..q_n}` from `G(1/V₁², μ·V₁²)` —
//!    a gamma with mean `μ` (the average computation cost `cc`, or the
//!    average uncertainty level `UL`) and CoV `V₁` (task heterogeneity).
//! 2. For each task `i` and processor `j`, draw `x_{i,j}` from
//!    `G(1/V₂², q_i·V₂²)` — mean `q_i`, CoV `V₂` (machine heterogeneity).
//!
//! The paper sets `V_task = V_mach = 0.5` for `B` and `V₁ = V₂ = 0.5` for
//! `UL`. For the `UL` matrix, entries are clamped to `≥ 1`: `UL = 1` means
//! *no uncertainty* (the realization law `U(b, (2·UL−1)·b)` degenerates to
//! the point mass at `b`), and values below 1 would make the law's upper
//! bound fall below its lower bound. The paper's average UL values (2–8)
//! with V=0.5 make sub-1 draws rare, so the clamp is a boundary guard, not
//! a distribution change.

use rand::Rng;

use rds_stats::dist::{DistError, Gamma};
use rds_stats::matrix::Matrix;
use rds_stats::rng::rng_from_seed;

/// Specification of a COV-generated `tasks × machines` matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CovMatrixSpec {
    /// Number of rows (tasks).
    pub tasks: usize,
    /// Number of columns (machines).
    pub machines: usize,
    /// Overall mean `μ` (paper: `cc = 20` for `B`; `UL ∈ {2,4,6,8}` for `UL`).
    pub mean: f64,
    /// Task heterogeneity `V_task` / `V₁` (paper: 0.5).
    pub task_cov: f64,
    /// Machine heterogeneity `V_mach` / `V₂` (paper: 0.5).
    pub machine_cov: f64,
    /// Lower clamp applied to every entry (`0` disables; `1` for UL
    /// matrices, a small positive floor for BCET matrices so no task is
    /// free).
    pub floor: f64,
}

impl CovMatrixSpec {
    /// The paper's BCET spec: mean `cc = 20`, `V_task = V_mach = 0.5`,
    /// floored at a small ε so no execution time is zero.
    #[must_use]
    pub fn bcet(tasks: usize, machines: usize) -> Self {
        Self {
            tasks,
            machines,
            mean: 20.0,
            task_cov: 0.5,
            machine_cov: 0.5,
            floor: 1e-6,
        }
    }

    /// The paper's uncertainty-level spec: mean `avg_ul`, `V₁ = V₂ = 0.5`,
    /// floored at 1 (no-uncertainty lower bound).
    #[must_use]
    pub fn uncertainty(tasks: usize, machines: usize, avg_ul: f64) -> Self {
        Self {
            tasks,
            machines,
            mean: avg_ul,
            task_cov: 0.5,
            machine_cov: 0.5,
            floor: 1.0,
        }
    }

    /// Overrides the overall mean.
    #[must_use]
    pub fn mean(mut self, mean: f64) -> Self {
        self.mean = mean;
        self
    }

    /// Overrides both CoVs.
    #[must_use]
    pub fn covs(mut self, task_cov: f64, machine_cov: f64) -> Self {
        self.task_cov = task_cov;
        self.machine_cov = machine_cov;
        self
    }

    /// Generates the matrix deterministically from a seed.
    ///
    /// # Errors
    /// Returns [`DistError`] when the spec's mean/CoVs are invalid.
    pub fn generate(&self, seed: u64) -> Result<Matrix, DistError> {
        let mut rng = rng_from_seed(seed);
        self.generate_with(&mut rng)
    }

    /// Generates the matrix drawing randomness from the provided RNG.
    ///
    /// # Errors
    /// Returns [`DistError`] when the spec's mean/CoVs are invalid.
    pub fn generate_with<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Matrix, DistError> {
        let task_dist = Gamma::with_mean_cov(self.mean, self.task_cov)?;
        let mut m = Matrix::zeros(self.tasks, self.machines);
        for i in 0..self.tasks {
            // Stage 1: the task's expected value across machines.
            let qi = task_dist.sample(rng).max(f64::MIN_POSITIVE);
            // Stage 2: per-machine values around q_i.
            let mach_dist = Gamma::with_mean_cov(qi, self.machine_cov)?;
            for j in 0..self.machines {
                m[(i, j)] = mach_dist.sample(rng).max(self.floor);
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_stats::describe::OnlineStats;

    #[test]
    fn bcet_matrix_has_right_shape_and_mean() {
        let m = CovMatrixSpec::bcet(200, 16).generate(42).unwrap();
        assert_eq!(m.rows(), 200);
        assert_eq!(m.cols(), 16);
        assert!(m.all_positive());
        // Mean over 3200 entries should be near 20 (CoV 0.5 at two stages
        // leaves the grand mean unbiased).
        assert!((m.mean() - 20.0).abs() < 2.0, "mean {}", m.mean());
    }

    #[test]
    fn uncertainty_matrix_is_clamped_at_one() {
        // Low average UL forces many sub-1 draws; all must clamp to 1.
        let m = CovMatrixSpec::uncertainty(100, 8, 1.05)
            .generate(3)
            .unwrap();
        for (_, _, v) in m.iter() {
            assert!(v >= 1.0);
        }
    }

    #[test]
    fn uncertainty_matrix_mean_tracks_target() {
        let m = CovMatrixSpec::uncertainty(300, 16, 6.0)
            .generate(5)
            .unwrap();
        assert!((m.mean() - 6.0).abs() < 0.6, "mean {}", m.mean());
    }

    #[test]
    fn task_rows_are_correlated_machine_columns_vary() {
        // With task CoV 0.5 and machine CoV 0.05, row means should spread
        // much more than within-row variation.
        let spec = CovMatrixSpec::bcet(50, 16).covs(0.5, 0.05);
        let m = spec.generate(7).unwrap();
        let row_means: Vec<f64> = (0..50).map(|i| m.row_mean(i)).collect();
        let between = OnlineStats::from_iter(row_means.iter().copied()).std_dev();
        let mut within = OnlineStats::new();
        for i in 0..50 {
            let mean = m.row_mean(i);
            let sd = OnlineStats::from_iter(m.row(i).iter().copied()).std_dev();
            within.push(sd / mean);
        }
        // Within-row relative spread ≈ 0.05; between-row relative spread ≈ 0.5.
        assert!(
            between / 20.0 > 4.0 * within.mean(),
            "between {between}, within {}",
            within.mean()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = CovMatrixSpec::bcet(10, 4);
        assert_eq!(spec.generate(1).unwrap(), spec.generate(1).unwrap());
        assert_ne!(spec.generate(1).unwrap(), spec.generate(2).unwrap());
    }

    #[test]
    fn invalid_spec_is_an_error() {
        assert!(CovMatrixSpec::bcet(4, 4).mean(-1.0).generate(0).is_err());
        assert!(CovMatrixSpec::bcet(4, 4)
            .covs(0.0, 0.5)
            .generate(0)
            .is_err());
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let m = CovMatrixSpec::bcet(0, 4).generate(0).unwrap();
        assert_eq!(m.rows(), 0);
    }
}

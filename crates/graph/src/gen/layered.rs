//! Random layered DAG generator.
//!
//! §5 of the paper: *"Random task graphs are generated using same method as
//! in \[22\] with the following input parameters: task number n, shape
//! parameter α, average computation cost (cc),
//! communication-to-computation ratio (CCR)."* The method of \[22\] (Shi &
//! Dongarra, FGCS 2006), itself following Topcuoglu et al., builds a
//! *layered* DAG:
//!
//! 1. The number of levels is drawn around `√n / α` (uniformly in
//!    `[√n/(2α), 3√n/(2α)]`), so large `α` yields short/wide (parallel)
//!    graphs and small `α` tall/narrow (sequential) ones.
//! 2. The width of each level is drawn around `α·√n` and the `n` tasks are
//!    distributed accordingly (every level keeps at least one task).
//! 3. Every task in level `ℓ > 0` receives between 1 and `max_in_degree`
//!    predecessors drawn from level `ℓ-1` (guaranteeing the level
//!    structure), and additional long edges from any earlier level are added
//!    with probability `long_edge_prob`.
//! 4. Edge data sizes are drawn uniformly in `[0, 2·cc·ccr]`, so with unit
//!    transfer rates the expected communication-to-computation ratio matches
//!    `ccr` by construction (`E[data] = cc·ccr`).
//!
//! The generator only produces the *topology and data sizes*; execution
//! times come from the COV matrix method in [`crate::gen::cov`], which is
//! where `cc` reappears as `μ_task`.

use rand::Rng;

use crate::dag::{GraphError, TaskGraph, TaskGraphBuilder};
use rds_stats::rng::rng_from_seed;

/// Specification of a random layered DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredDagSpec {
    /// Number of tasks `n ≥ 1` (paper: 100).
    pub tasks: usize,
    /// Shape parameter `α > 0` (paper: 1.0). Larger ⇒ wider/shallower.
    pub alpha: f64,
    /// Average computation cost `cc` (paper: 20). Used only to scale edge
    /// data so the target CCR holds; execution times are generated
    /// separately.
    pub avg_comp_cost: f64,
    /// Communication-to-computation ratio (paper: 0.1).
    pub ccr: f64,
    /// Maximum number of same-level-to-next-level predecessors per task.
    pub max_in_degree: usize,
    /// Probability of each extra long (level-skipping) edge candidate.
    pub long_edge_prob: f64,
}

impl LayeredDagSpec {
    /// The paper's configuration: `n=100, α=1.0, cc=20, CCR=0.1`.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            tasks: 100,
            alpha: 1.0,
            avg_comp_cost: 20.0,
            ccr: 0.1,
            max_in_degree: 4,
            long_edge_prob: 0.15,
        }
    }

    /// A spec with the given size, other knobs at paper defaults.
    #[must_use]
    pub fn with_tasks(tasks: usize) -> Self {
        Self {
            tasks,
            ..Self::paper()
        }
    }

    /// Sets the shape parameter.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the CCR.
    #[must_use]
    pub fn ccr(mut self, ccr: f64) -> Self {
        self.ccr = ccr;
        self
    }

    /// Sets the average computation cost.
    #[must_use]
    pub fn avg_comp_cost(mut self, cc: f64) -> Self {
        self.avg_comp_cost = cc;
        self
    }

    /// Validates the parameters.
    ///
    /// # Errors
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.tasks == 0 {
            return Err("tasks must be >= 1".into());
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(format!("alpha must be positive, got {}", self.alpha));
        }
        if !(self.avg_comp_cost.is_finite() && self.avg_comp_cost > 0.0) {
            return Err(format!(
                "avg_comp_cost must be positive, got {}",
                self.avg_comp_cost
            ));
        }
        if !(self.ccr.is_finite() && self.ccr >= 0.0) {
            return Err(format!("ccr must be non-negative, got {}", self.ccr));
        }
        if self.max_in_degree == 0 {
            return Err("max_in_degree must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.long_edge_prob) {
            return Err(format!(
                "long_edge_prob must be in [0,1], got {}",
                self.long_edge_prob
            ));
        }
        Ok(())
    }

    /// Generates a DAG from a seed (deterministic for a given spec+seed).
    ///
    /// # Errors
    /// Propagates [`GraphError`] (cannot occur for a validated spec — the
    /// construction is cycle-free by levels) and spec validation failures as
    /// `GraphError`-independent panics are avoided by returning a message.
    pub fn generate(&self, seed: u64) -> Result<TaskGraph, String> {
        self.validate()?;
        let mut rng = rng_from_seed(seed);
        self.generate_with(&mut rng).map_err(|e| e.to_string())
    }

    /// Generates a DAG drawing randomness from the provided RNG.
    ///
    /// # Errors
    /// Returns [`GraphError`] on internal construction failure (should not
    /// occur for a validated spec).
    pub fn generate_with<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<TaskGraph, GraphError> {
        let n = self.tasks;
        let layers = self.sample_layers(rng);
        let mut builder = TaskGraphBuilder::with_tasks(n);

        // Mean data size cc*ccr => draw U[0, 2*cc*ccr].
        let max_data = 2.0 * self.avg_comp_cost * self.ccr;
        let draw_data = |rng: &mut R| {
            if max_data > 0.0 {
                rng.gen_range(0.0..max_data)
            } else {
                0.0
            }
        };

        for li in 1..layers.len() {
            let prev = &layers[li - 1];
            let cur = &layers[li];
            for &t in cur {
                // 1..=max_in_degree predecessors from the previous level.
                let k = rng.gen_range(1..=self.max_in_degree.min(prev.len()));
                // Partial Fisher–Yates over a scratch copy for distinct picks.
                let mut pool = prev.clone();
                for pick in 0..k {
                    let j = rng.gen_range(pick..pool.len());
                    pool.swap(pick, j);
                    builder.add_edge(pool[pick], t, draw_data(rng));
                }
                // Optional long edges from any layer before the previous.
                if li >= 2 && rng.gen_bool(self.long_edge_prob) {
                    let src_layer = rng.gen_range(0..li - 1);
                    let src = layers[src_layer][rng.gen_range(0..layers[src_layer].len())];
                    if !builder.has_edge(src, t) {
                        builder.add_edge(src, t, draw_data(rng));
                    }
                }
            }
        }
        builder.build()
    }

    /// Draws the layer structure: a partition of `0..n` into consecutive
    /// id ranges (ids are assigned level by level, so levels are contiguous
    /// and the graph is trivially acyclic).
    fn sample_layers<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Vec<crate::dag::TaskId>> {
        use crate::dag::TaskId;
        let n = self.tasks;
        let sqrt_n = (n as f64).sqrt();
        let mean_levels = (sqrt_n / self.alpha).max(1.0);
        let lo = (0.5 * mean_levels).max(1.0);
        let hi = (1.5 * mean_levels).max(lo + 1.0);
        let levels = (rng.gen_range(lo..hi).round() as usize).clamp(1, n);

        // Distribute n tasks over `levels` levels: start with one each, then
        // place the rest with weights drawn around α·√n per level.
        let mut sizes = vec![1usize; levels];
        let mut remaining = n - levels;
        let mean_width = (self.alpha * sqrt_n).max(1.0);
        while remaining > 0 {
            // Pick a level biased by how far it is below its target width.
            let li = rng.gen_range(0..levels);
            let want = rng.gen_range(0.5 * mean_width..1.5 * mean_width);
            if (sizes[li] as f64) < want || rng.gen_bool(0.25) {
                sizes[li] += 1;
                remaining -= 1;
            }
        }

        let mut layers = Vec::with_capacity(levels);
        let mut next_id = 0u32;
        for s in sizes {
            let layer: Vec<TaskId> = (next_id..next_id + s as u32).map(TaskId).collect();
            next_id += s as u32;
            layers.push(layer);
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::topological_order;

    #[test]
    fn paper_spec_generates_valid_dag() {
        let g = LayeredDagSpec::paper().generate(42).unwrap();
        assert_eq!(g.task_count(), 100);
        assert!(g.edge_count() >= 99, "every non-entry node has >= 1 pred");
        assert!(topological_order(&g).is_some());
    }

    #[test]
    fn deterministic_for_seed() {
        let spec = LayeredDagSpec::paper();
        let g1 = spec.generate(7).unwrap();
        let g2 = spec.generate(7).unwrap();
        assert_eq!(g1, g2);
        let g3 = spec.generate(8).unwrap();
        assert_ne!(g1, g3);
    }

    #[test]
    fn all_non_first_layer_tasks_have_predecessors() {
        let g = LayeredDagSpec::with_tasks(60).generate(3).unwrap();
        // Entry nodes must all belong to the first layer: since ids are
        // assigned level-by-level, entries form a prefix of the id range.
        let entries = g.entries();
        let max_entry = entries.iter().map(|t| t.index()).max().unwrap();
        for t in g.tasks() {
            if t.index() <= max_entry {
                continue;
            }
            // Non-prefix tasks may still be entries only if they are in
            // layer 0; verify instead the structural guarantee:
            if g.is_entry(t) {
                // must be unreachable from any earlier task: acceptable only
                // for layer-0 tasks, which are a contiguous prefix. Ids above
                // the largest entry id must have predecessors.
                panic!("task {t} beyond entry prefix has no predecessor");
            }
        }
    }

    #[test]
    fn edge_data_respects_ccr_scaling() {
        let spec = LayeredDagSpec::with_tasks(200).ccr(0.5).avg_comp_cost(10.0);
        let g = spec.generate(11).unwrap();
        let max_allowed = 2.0 * 10.0 * 0.5;
        let mean: f64 = g.total_edge_data() / g.edge_count() as f64;
        for (_, _, d) in g.edges() {
            assert!((0.0..max_allowed).contains(&d));
        }
        // Mean should be near cc*ccr = 5.
        assert!((mean - 5.0).abs() < 1.0, "mean data {mean}");
    }

    #[test]
    fn zero_ccr_means_zero_data() {
        let g = LayeredDagSpec::with_tasks(30).ccr(0.0).generate(5).unwrap();
        assert_eq!(g.total_edge_data(), 0.0);
    }

    #[test]
    fn alpha_controls_shape() {
        // Wide graph (alpha large) should have more entries than a tall one.
        let wide = LayeredDagSpec::with_tasks(100)
            .alpha(4.0)
            .generate(9)
            .unwrap();
        let tall = LayeredDagSpec::with_tasks(100)
            .alpha(0.25)
            .generate(9)
            .unwrap();
        assert!(
            wide.entries().len() > tall.entries().len(),
            "wide {} vs tall {}",
            wide.entries().len(),
            tall.entries().len()
        );
        // Tall graph should have a longer hop-count critical path.
        let hops = |g: &TaskGraph| crate::paths::critical_path_length(g, |_| 1.0, |_, _, _| 0.0);
        assert!(hops(&tall) > hops(&wide));
    }

    #[test]
    fn single_task_graph_is_fine() {
        let g = LayeredDagSpec::with_tasks(1).generate(1).unwrap();
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn rejects_invalid_specs() {
        assert!(LayeredDagSpec::with_tasks(0).validate().is_err());
        assert!(LayeredDagSpec::paper().alpha(0.0).validate().is_err());
        assert!(LayeredDagSpec::paper().ccr(-1.0).validate().is_err());
        let mut s = LayeredDagSpec::paper();
        s.max_in_degree = 0;
        assert!(s.validate().is_err());
        let mut s = LayeredDagSpec::paper();
        s.long_edge_prob = 1.5;
        assert!(s.validate().is_err());
        let mut s = LayeredDagSpec::paper();
        s.avg_comp_cost = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn various_sizes_generate_valid_dags() {
        for &n in &[2usize, 5, 10, 33, 64, 100, 250] {
            for seed in 0..3 {
                let g = LayeredDagSpec::with_tasks(n).generate(seed).unwrap();
                assert_eq!(g.task_count(), n);
                assert!(topological_order(&g).is_some(), "n={n} seed={seed}");
            }
        }
    }
}

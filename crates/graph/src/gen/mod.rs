//! Workload generators.
//!
//! * [`layered`] — the random layered DAG generator of §5 (parameters `n`,
//!   shape `α`, with data sizes calibrated for a target CCR).
//! * [`cov`] — the COV-based matrix generation method of Ali et al.
//!   (HCW 2000) used for both the BCET matrix `B` and the uncertainty-level
//!   matrix `UL` (§5, two-stage gamma).
//! * [`workflows`] — structured workflow topologies (fork–join, chains,
//!   Gaussian elimination, FFT, Montage-like mosaicking) used by examples
//!   and tests as realistic non-random workloads.

pub mod cov;
pub mod erdos;
pub mod layered;
pub mod workflows;

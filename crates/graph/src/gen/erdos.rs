//! G(n, p) random DAGs (upper-triangular Erdős–Rényi).
//!
//! The second standard random-topology family in the scheduling
//! literature: fix an ordering `v0 < v1 < … < v_{n−1}` and include each
//! forward edge `(v_i, v_j)`, `i < j`, independently with probability
//! `p`. Compared to the layered generator, G(n,p) has no level structure
//! — long edges are as likely as short ones — which stresses schedulers
//! differently (denser precedence, fewer clean fronts). Used by the
//! sensitivity tests.

use rand::Rng;

use crate::dag::{TaskGraph, TaskGraphBuilder, TaskId};
use rds_stats::rng::rng_from_seed;

/// Specification of a G(n, p) DAG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErdosDagSpec {
    /// Number of tasks.
    pub tasks: usize,
    /// Forward-edge probability `p ∈ [0, 1]`.
    pub edge_prob: f64,
    /// Average computation cost (scales data sizes, as in the layered
    /// generator).
    pub avg_comp_cost: f64,
    /// Communication-to-computation ratio.
    pub ccr: f64,
}

impl ErdosDagSpec {
    /// A spec with the given size and edge probability, paper-default cost
    /// parameters.
    #[must_use]
    pub fn new(tasks: usize, edge_prob: f64) -> Self {
        Self {
            tasks,
            edge_prob,
            avg_comp_cost: 20.0,
            ccr: 0.1,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.tasks == 0 {
            return Err("tasks must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.edge_prob) {
            return Err(format!("edge_prob {} outside [0,1]", self.edge_prob));
        }
        if !(self.avg_comp_cost.is_finite() && self.avg_comp_cost > 0.0) {
            return Err("avg_comp_cost must be positive".into());
        }
        if !(self.ccr.is_finite() && self.ccr >= 0.0) {
            return Err("ccr must be non-negative".into());
        }
        Ok(())
    }

    /// Generates the DAG deterministically from a seed.
    ///
    /// # Errors
    /// Returns validation errors as a message.
    pub fn generate(&self, seed: u64) -> Result<TaskGraph, String> {
        self.validate()?;
        let mut rng = rng_from_seed(seed);
        let max_data = 2.0 * self.avg_comp_cost * self.ccr;
        let mut b = TaskGraphBuilder::with_tasks(self.tasks);
        for i in 0..self.tasks {
            for j in i + 1..self.tasks {
                if rng.gen_bool(self.edge_prob) {
                    let data = if max_data > 0.0 {
                        rng.gen_range(0.0..max_data)
                    } else {
                        0.0
                    };
                    b.add_edge(TaskId(i as u32), TaskId(j as u32), data);
                }
            }
        }
        b.build().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::topological_order;

    #[test]
    fn generates_valid_dags() {
        for seed in 0..4 {
            let g = ErdosDagSpec::new(50, 0.1).generate(seed).unwrap();
            assert_eq!(g.task_count(), 50);
            assert!(topological_order(&g).is_some());
        }
    }

    #[test]
    fn edge_count_tracks_probability() {
        let n = 80;
        let pairs = (n * (n - 1) / 2) as f64;
        for &p in &[0.05, 0.2, 0.5] {
            let g = ErdosDagSpec::new(n, p).generate(7).unwrap();
            let expected = pairs * p;
            let got = g.edge_count() as f64;
            assert!(
                (got - expected).abs() < 4.0 * (pairs * p * (1.0 - p)).sqrt(),
                "p={p}: {got} edges vs expected {expected}"
            );
        }
    }

    #[test]
    fn extreme_probabilities() {
        let empty = ErdosDagSpec::new(20, 0.0).generate(1).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = ErdosDagSpec::new(10, 1.0).generate(1).unwrap();
        assert_eq!(full.edge_count(), 45);
        // Full upper-triangular DAG is a total order.
        let m = crate::metrics::graph_metrics(&full);
        assert_eq!(m.depth, 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ErdosDagSpec::new(30, 0.15);
        assert_eq!(spec.generate(3).unwrap(), spec.generate(3).unwrap());
        assert_ne!(spec.generate(3).unwrap(), spec.generate(4).unwrap());
    }

    #[test]
    fn rejects_invalid_specs() {
        assert!(ErdosDagSpec::new(0, 0.1).generate(0).is_err());
        assert!(ErdosDagSpec::new(5, 1.5).generate(0).is_err());
        let mut s = ErdosDagSpec::new(5, 0.5);
        s.ccr = -1.0;
        assert!(s.generate(0).is_err());
    }

    #[test]
    fn no_level_structure_unlike_layered() {
        // In G(n,p) some edge should skip more than a few "levels":
        // check max edge span is large relative to n.
        let g = ErdosDagSpec::new(60, 0.1).generate(5).unwrap();
        let max_span = g
            .edges()
            .map(|(a, b, _)| b.0 as i64 - a.0 as i64)
            .max()
            .unwrap();
        assert!(max_span > 30, "max span {max_span}");
    }
}

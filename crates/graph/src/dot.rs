//! Graphviz DOT export.
//!
//! Used by the worked example (paper Figure 1) and for debugging generated
//! workloads. The schedule crate adds its own export for disjunctive graphs
//! with the extra `E'` edges dashed, mirroring Fig. 1(d).

use std::fmt::Write as _;

use crate::dag::{TaskGraph, TaskId};

/// Options controlling DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Render edge data sizes as labels.
    pub edge_labels: bool,
    /// Optional per-task extra label (e.g. `"v3\nw=5.0"`).
    pub task_label: Option<fn(TaskId) -> String>,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            name: "G".to_owned(),
            edge_labels: false,
            task_label: None,
        }
    }
}

/// Renders the task graph as a DOT digraph.
pub fn to_dot(g: &TaskGraph, opts: &DotOptions) -> String {
    let mut out = String::with_capacity(64 + 32 * (g.task_count() + g.edge_count()));
    let _ = writeln!(out, "digraph {} {{", opts.name);
    let _ = writeln!(out, "  rankdir=TB;");
    for t in g.tasks() {
        let label = match opts.task_label {
            Some(f) => f(t),
            None => format!("{t}"),
        };
        let _ = writeln!(out, "  {} [label=\"{}\"];", t.index(), label);
    }
    for (from, to, data) in g.edges() {
        if opts.edge_labels {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{:.1}\"];",
                from.index(),
                to.index(),
                data
            );
        } else {
            let _ = writeln!(out, "  {} -> {};", from.index(), to.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::fig1_example;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = fig1_example(1.0);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph G {"));
        assert!(dot.trim_end().ends_with('}'));
        for t in g.tasks() {
            assert!(dot.contains(&format!("{} [label=\"v{}\"]", t.index(), t.0)));
        }
        assert_eq!(dot.matches("->").count(), g.edge_count());
    }

    #[test]
    fn edge_labels_render_data() {
        let g = fig1_example(2.5);
        let dot = to_dot(
            &g,
            &DotOptions {
                edge_labels: true,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("label=\"2.5\""));
    }

    #[test]
    fn custom_task_labels() {
        let g = fig1_example(1.0);
        let dot = to_dot(
            &g,
            &DotOptions {
                task_label: Some(|t| format!("task-{}", t.0 + 1)),
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("task-1"));
        assert!(dot.contains("task-8"));
    }
}

//! Task-DAG substrate for the `rds` workspace.
//!
//! Implements the application model of §3.1 of the paper: a task graph
//! `G = (V, E)` whose edges carry communication data sizes, plus everything
//! the schedulers and experiments need around it:
//!
//! * [`dag`] — the [`TaskGraph`] structure and its builder/validator.
//! * [`topo`] — deterministic and *random* topological sorts (the GA's
//!   initial population draws random topological orders, §4.2.2).
//! * [`paths`] — longest-path machinery: top/bottom levels over arbitrary
//!   node/edge weight functions (used by HEFT's upward rank and by the
//!   disjunctive-graph slack computation).
//! * [`gen`] — workload generators: the layered random DAG generator used in
//!   §5 (parameters `n`, shape `α`, average computation cost `cc`, `CCR`)
//!   and the COV-based matrix generation method of Ali et al. for the BCET
//!   and uncertainty-level matrices.
//! * [`dot`] — Graphviz export for debugging and the worked example.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dag;
pub mod dot;
pub mod gen;
pub mod metrics;
pub mod paths;
pub mod topo;

pub use dag::{Edge, GraphError, TaskGraph, TaskGraphBuilder, TaskId};
pub use gen::cov::CovMatrixSpec;
pub use gen::layered::LayeredDagSpec;
pub use topo::{is_topological_order, random_topological_order, topological_order};

//! Longest-path machinery over a weighted view of a [`TaskGraph`].
//!
//! The paper's definitions all reduce to longest paths with node and edge
//! weights supplied *by the caller* (Definition 3.3):
//!
//! * **top level** `Tl(i)` — length of a longest entry→`i` path *excluding*
//!   `i`'s own weight;
//! * **bottom level** `Bl(i)` — length of a longest `i`→exit path
//!   *including* `i`'s weight;
//! * the **critical path** length is `max_i (Tl(i) + Bl(i))`, and equals the
//!   makespan of a schedule on its disjunctive graph (Claim 3.2).
//!
//! Keeping the weights as closures lets the same kernels serve HEFT's
//! upward rank (mean execution + mean communication weights), expected-time
//! slack analysis, and realized-duration makespans.

use crate::dag::{TaskGraph, TaskId};
use crate::topo::topological_order;

/// Top levels of all tasks under the given weights.
///
/// `node_w(t)` is the duration of task `t`; `edge_w(u, v, data)` is the
/// communication time along the edge `u → v` carrying `data` units.
pub fn top_levels(
    g: &TaskGraph,
    node_w: impl Fn(TaskId) -> f64,
    edge_w: impl Fn(TaskId, TaskId, f64) -> f64,
) -> Vec<f64> {
    let order = topological_order(g).expect("TaskGraph is validated acyclic");
    let mut tl = vec![0.0; g.task_count()];
    for &t in &order {
        for e in g.predecessors(t) {
            let cand = tl[e.task.index()] + node_w(e.task) + edge_w(e.task, t, e.data);
            if cand > tl[t.index()] {
                tl[t.index()] = cand;
            }
        }
    }
    tl
}

/// Bottom levels of all tasks under the given weights (includes the task's
/// own weight, per Kwok & Ahmad's b-level convention used in the paper).
pub fn bottom_levels(
    g: &TaskGraph,
    node_w: impl Fn(TaskId) -> f64,
    edge_w: impl Fn(TaskId, TaskId, f64) -> f64,
) -> Vec<f64> {
    let order = topological_order(g).expect("TaskGraph is validated acyclic");
    let mut bl = vec![0.0; g.task_count()];
    for &t in order.iter().rev() {
        let own = node_w(t);
        let mut best = own;
        for e in g.successors(t) {
            let cand = own + edge_w(t, e.task, e.data) + bl[e.task.index()];
            if cand > best {
                best = cand;
            }
        }
        bl[t.index()] = best;
    }
    bl
}

/// Critical-path length: `max_t (Tl(t) + Bl(t))`, which simplifies to
/// `max over entries of Bl` (0 for an empty graph).
pub fn critical_path_length(
    g: &TaskGraph,
    node_w: impl Fn(TaskId) -> f64,
    edge_w: impl Fn(TaskId, TaskId, f64) -> f64,
) -> f64 {
    bottom_levels(g, &node_w, &edge_w)
        .into_iter()
        .fold(0.0, f64::max)
}

/// One concrete critical path (sequence of tasks realizing the longest
/// path). Useful for CPOP and for diagnostics.
pub fn critical_path(
    g: &TaskGraph,
    node_w: impl Fn(TaskId) -> f64,
    edge_w: impl Fn(TaskId, TaskId, f64) -> f64,
) -> Vec<TaskId> {
    if g.task_count() == 0 {
        return Vec::new();
    }
    let bl = bottom_levels(g, &node_w, &edge_w);
    // Start from the entry with largest bottom level.
    let mut cur = g
        .tasks()
        .filter(|&t| g.is_entry(t))
        .max_by(|&a, &b| bl[a.index()].total_cmp(&bl[b.index()]))
        .expect("non-empty DAG has an entry");
    let mut path = vec![cur];
    const EPS: f64 = 1e-9;
    loop {
        let own = node_w(cur);
        // Follow the successor on the longest path.
        let next = g
            .successors(cur)
            .iter()
            .find(|e| {
                (own + edge_w(cur, e.task, e.data) + bl[e.task.index()] - bl[cur.index()]).abs()
                    <= EPS * bl[cur.index()].max(1.0)
            })
            .map(|e| e.task);
        match next {
            Some(t) => {
                path.push(t);
                cur = t;
            }
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskGraphBuilder;

    /// Diamond with distinguishable weights:
    /// 0(w=1) -> 1(w=2) -> 3(w=1), 0 -> 2(w=5) -> 3; edges carry data=10,
    /// edge weight = data / 10 = 1.
    fn weighted_diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::with_tasks(4);
        b.add_edge(TaskId(0), TaskId(1), 10.0)
            .add_edge(TaskId(0), TaskId(2), 10.0)
            .add_edge(TaskId(1), TaskId(3), 10.0)
            .add_edge(TaskId(2), TaskId(3), 10.0);
        b.build().unwrap()
    }

    fn w(t: TaskId) -> f64 {
        [1.0, 2.0, 5.0, 1.0][t.index()]
    }

    fn e(_: TaskId, _: TaskId, data: f64) -> f64 {
        data / 10.0
    }

    #[test]
    fn top_levels_exclude_own_weight() {
        let g = weighted_diamond();
        let tl = top_levels(&g, w, e);
        assert_eq!(tl[0], 0.0);
        assert_eq!(tl[1], 2.0); // 1 + edge 1
        assert_eq!(tl[2], 2.0);
        // via 2: tl=2 + w(2)=5 + edge 1 = 8; via 1: 2 + 2 + 1 = 5.
        assert_eq!(tl[3], 8.0);
    }

    #[test]
    fn bottom_levels_include_own_weight() {
        let g = weighted_diamond();
        let bl = bottom_levels(&g, w, e);
        assert_eq!(bl[3], 1.0);
        assert_eq!(bl[1], 2.0 + 1.0 + 1.0); // own + edge + bl(3)
        assert_eq!(bl[2], 5.0 + 1.0 + 1.0);
        assert_eq!(bl[0], 1.0 + 1.0 + 7.0); // via 2
    }

    #[test]
    fn critical_path_length_is_max_entry_bl() {
        let g = weighted_diamond();
        assert_eq!(critical_path_length(&g, w, e), 9.0);
        // And Tl + Bl is constant along the critical path.
        let tl = top_levels(&g, w, e);
        let bl = bottom_levels(&g, w, e);
        assert_eq!(tl[2] + bl[2], 9.0);
        assert_eq!(tl[0] + bl[0], 9.0);
        assert_eq!(tl[3] + bl[3], 9.0);
        // Off-critical task 1 has smaller total.
        assert!(tl[1] + bl[1] < 9.0);
    }

    #[test]
    fn critical_path_follows_heavy_branch() {
        let g = weighted_diamond();
        let p = critical_path(&g, w, e);
        assert_eq!(p, vec![TaskId(0), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn zero_edge_weights_reduce_to_node_sums() {
        let g = weighted_diamond();
        let len = critical_path_length(&g, w, |_, _, _| 0.0);
        assert_eq!(len, 1.0 + 5.0 + 1.0);
    }

    #[test]
    fn single_task_graph() {
        let g = TaskGraphBuilder::with_tasks(1).build().unwrap();
        let tl = top_levels(&g, |_| 3.0, |_, _, _| 0.0);
        let bl = bottom_levels(&g, |_| 3.0, |_, _, _| 0.0);
        assert_eq!(tl, vec![0.0]);
        assert_eq!(bl, vec![3.0]);
        assert_eq!(critical_path(&g, |_| 3.0, |_, _, _| 0.0), vec![TaskId(0)]);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        assert_eq!(critical_path_length(&g, |_| 1.0, |_, _, _| 0.0), 0.0);
        assert!(critical_path(&g, |_| 1.0, |_, _, _| 0.0).is_empty());
    }

    #[test]
    fn disconnected_components_take_max() {
        // Two chains: 0->1 (weights 1,1) and 2->3 (weights 4,4).
        let mut b = TaskGraphBuilder::with_tasks(4);
        b.add_edge(TaskId(0), TaskId(1), 0.0)
            .add_edge(TaskId(2), TaskId(3), 0.0);
        let g = b.build().unwrap();
        let w = |t: TaskId| [1.0, 1.0, 4.0, 4.0][t.index()];
        assert_eq!(critical_path_length(&g, w, |_, _, _| 0.0), 8.0);
    }
}

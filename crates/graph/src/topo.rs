//! Topological orders over a [`TaskGraph`].
//!
//! Three operations matter to the paper:
//!
//! * a deterministic topological order ([`topological_order`]) for timing
//!   and level computations;
//! * a **uniformly randomized** topological order
//!   ([`random_topological_order`]) — §4.2.2 builds each initial GA
//!   chromosome from "a randomly generated topological sort list";
//! * validity checking ([`is_topological_order`]) — the GA's crossover and
//!   mutation must preserve precedence constraints, and tests verify this.

use rand::Rng;

use crate::dag::{TaskGraph, TaskId};

/// Deterministic topological order (Kahn's algorithm, smallest-id-first so
/// the result is stable across runs).
///
/// Returns `None` if the graph contains a cycle; a [`TaskGraph`] built
/// through the builder is always acyclic, so `None` can only occur for
/// graphs assembled by unsafe means (not possible in this crate) — callers
/// may safely `expect`.
pub fn topological_order(g: &TaskGraph) -> Option<Vec<TaskId>> {
    let n = g.task_count();
    let mut indeg: Vec<usize> = g.tasks().map(|t| g.in_degree(t)).collect();
    // Min-heap by id for determinism.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<TaskId>> = g
        .tasks()
        .filter(|t| indeg[t.index()] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(t)) = ready.pop() {
        order.push(t);
        for e in g.successors(t) {
            indeg[e.task.index()] -= 1;
            if indeg[e.task.index()] == 0 {
                ready.push(std::cmp::Reverse(e.task));
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// A random topological order: at every step one task is drawn uniformly
/// from the current ready set (randomized Kahn).
///
/// This samples a topological order with full support (every valid order has
/// positive probability), which is what the GA's initial-population
/// diversity relies on.
pub fn random_topological_order<R: Rng + ?Sized>(g: &TaskGraph, rng: &mut R) -> Vec<TaskId> {
    let n = g.task_count();
    let mut indeg: Vec<usize> = g.tasks().map(|t| g.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = g.tasks().filter(|t| indeg[t.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick = rng.gen_range(0..ready.len());
        let t = ready.swap_remove(pick);
        order.push(t);
        for e in g.successors(t) {
            indeg[e.task.index()] -= 1;
            if indeg[e.task.index()] == 0 {
                ready.push(e.task);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "TaskGraph is validated acyclic");
    order
}

/// Checks that `order` is a permutation of all tasks satisfying every
/// precedence constraint.
pub fn is_topological_order(g: &TaskGraph, order: &[TaskId]) -> bool {
    let n = g.task_count();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &t) in order.iter().enumerate() {
        if t.index() >= n || pos[t.index()] != usize::MAX {
            return false; // out of range or repeated
        }
        pos[t.index()] = i;
    }
    g.edges()
        .all(|(from, to, _)| pos[from.index()] < pos[to.index()])
}

/// Position-lookup table for an order: `positions[task] = index in order`.
///
/// The GA's crossover/mutation operators consult positions constantly; this
/// is the one shared helper.
pub fn positions(order: &[TaskId], n: usize) -> Vec<usize> {
    let mut pos = vec![usize::MAX; n];
    for (i, &t) in order.iter().enumerate() {
        pos[t.index()] = i;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskGraphBuilder;
    use rds_stats::rng::rng_from_seed;

    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::with_tasks(4);
        b.add_edge(TaskId(0), TaskId(1), 0.0)
            .add_edge(TaskId(0), TaskId(2), 0.0)
            .add_edge(TaskId(1), TaskId(3), 0.0)
            .add_edge(TaskId(2), TaskId(3), 0.0);
        b.build().unwrap()
    }

    #[test]
    fn deterministic_order_is_valid_and_stable() {
        let g = diamond();
        let o1 = topological_order(&g).unwrap();
        let o2 = topological_order(&g).unwrap();
        assert_eq!(o1, o2);
        assert!(is_topological_order(&g, &o1));
        assert_eq!(o1[0], TaskId(0));
        assert_eq!(o1[3], TaskId(3));
    }

    #[test]
    fn random_orders_are_valid() {
        let g = diamond();
        let mut rng = rng_from_seed(42);
        for _ in 0..100 {
            let o = random_topological_order(&g, &mut rng);
            assert!(is_topological_order(&g, &o));
        }
    }

    #[test]
    fn random_orders_cover_both_middles() {
        // The diamond admits exactly two orders; both must appear.
        let g = diamond();
        let mut rng = rng_from_seed(7);
        let mut seen_12 = false;
        let mut seen_21 = false;
        for _ in 0..64 {
            let o = random_topological_order(&g, &mut rng);
            match (o[1], o[2]) {
                (TaskId(1), TaskId(2)) => seen_12 = true,
                (TaskId(2), TaskId(1)) => seen_21 = true,
                other => panic!("unexpected middle {other:?}"),
            }
        }
        assert!(seen_12 && seen_21, "both diamond orders should be sampled");
    }

    #[test]
    fn is_topological_order_rejects_bad_inputs() {
        let g = diamond();
        // wrong length
        assert!(!is_topological_order(&g, &[TaskId(0)]));
        // repeated task
        assert!(!is_topological_order(
            &g,
            &[TaskId(0), TaskId(1), TaskId(1), TaskId(3)]
        ));
        // precedence violation
        assert!(!is_topological_order(
            &g,
            &[TaskId(1), TaskId(0), TaskId(2), TaskId(3)]
        ));
        // out-of-range id
        assert!(!is_topological_order(
            &g,
            &[TaskId(0), TaskId(1), TaskId(2), TaskId(9)]
        ));
    }

    #[test]
    fn positions_inverts_order() {
        let order = vec![TaskId(2), TaskId(0), TaskId(1)];
        let pos = positions(&order, 3);
        assert_eq!(pos, vec![1, 2, 0]);
    }

    #[test]
    fn empty_graph_topo_is_empty() {
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        assert_eq!(topological_order(&g).unwrap(), Vec::<TaskId>::new());
        let mut rng = rng_from_seed(1);
        assert!(random_topological_order(&g, &mut rng).is_empty());
    }
}

//! Structural metrics of task graphs.
//!
//! Used by the experiment harness to characterize generated workloads
//! (sanity-checking the layered generator against its `α`/CCR targets)
//! and by the CLI's `info` command.

use crate::dag::{TaskGraph, TaskId};
use crate::paths::bottom_levels;

/// Summary of a task graph's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of edges.
    pub edges: usize,
    /// Entry-node count.
    pub entries: usize,
    /// Exit-node count.
    pub exits: usize,
    /// Longest path in hops (unit node weights, zero edge weights).
    pub depth: usize,
    /// Maximum antichain *approximation*: the largest level population of
    /// the canonical level decomposition (exact max-antichain is NP-easy
    /// via matching but unnecessary here).
    pub max_level_width: usize,
    /// Average parallelism `tasks / depth`.
    pub avg_parallelism: f64,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Edge density relative to a full level-respecting DAG: `edges /
    /// (tasks·(tasks−1)/2)`.
    pub density: f64,
}

/// Computes the metrics.
#[must_use]
pub fn graph_metrics(g: &TaskGraph) -> GraphMetrics {
    let n = g.task_count();
    if n == 0 {
        return GraphMetrics {
            tasks: 0,
            edges: 0,
            entries: 0,
            exits: 0,
            depth: 0,
            max_level_width: 0,
            avg_parallelism: 0.0,
            mean_out_degree: 0.0,
            density: 0.0,
        };
    }
    // Depth via unit-weight bottom levels.
    let bl = bottom_levels(g, |_| 1.0, |_, _, _| 0.0);
    let depth = bl.iter().copied().fold(0.0_f64, f64::max) as usize;

    // Level decomposition: level(t) = longest hop distance from an entry.
    let tl = crate::paths::top_levels(g, |_| 1.0, |_, _, _| 0.0);
    let mut width = vec![0usize; depth.max(1)];
    let last = width.len() - 1;
    for t in g.tasks() {
        let level = tl[t.index()] as usize;
        width[level.min(last)] += 1;
    }
    let max_level_width = width.iter().copied().max().unwrap_or(0);

    GraphMetrics {
        tasks: n,
        edges: g.edge_count(),
        entries: g.entries().len(),
        exits: g.exits().len(),
        depth,
        max_level_width,
        avg_parallelism: n as f64 / depth.max(1) as f64,
        mean_out_degree: g.edge_count() as f64 / n as f64,
        density: if n > 1 {
            g.edge_count() as f64 / (n * (n - 1) / 2) as f64
        } else {
            0.0
        },
    }
}

/// The *sequential bottleneck* of a weighted DAG: critical-path work
/// divided by total work, in `[1/n, 1]` — 1 means a pure chain; small
/// values mean abundant parallelism.
#[must_use]
pub fn sequentiality(g: &TaskGraph, node_w: impl Fn(TaskId) -> f64 + Copy) -> f64 {
    let total: f64 = g.tasks().map(node_w).sum();
    if total <= 0.0 {
        return f64::NAN;
    }
    let cp = crate::paths::critical_path_length(g, node_w, |_, _, _| 0.0);
    cp / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::workflows::{chain, fork_join};
    use crate::TaskGraphBuilder;

    #[test]
    fn chain_metrics() {
        let g = chain(6, 1.0);
        let m = graph_metrics(&g);
        assert_eq!(m.tasks, 6);
        assert_eq!(m.edges, 5);
        assert_eq!(m.depth, 6);
        assert_eq!(m.max_level_width, 1);
        assert_eq!(m.entries, 1);
        assert_eq!(m.exits, 1);
        assert!((m.avg_parallelism - 1.0).abs() < 1e-12);
        assert_eq!(sequentiality(&g, |_| 1.0), 1.0);
    }

    #[test]
    fn fork_join_metrics() {
        let g = fork_join(8, 1.0);
        let m = graph_metrics(&g);
        assert_eq!(m.tasks, 10);
        assert_eq!(m.depth, 3);
        assert_eq!(m.max_level_width, 8);
        assert!((m.avg_parallelism - 10.0 / 3.0).abs() < 1e-12);
        // Sequentiality of a wide fork-join is low.
        assert!(sequentiality(&g, |_| 1.0) < 0.5);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        let m = graph_metrics(&g);
        assert_eq!(m.tasks, 0);
        assert_eq!(m.depth, 0);
        assert!(sequentiality(&g, |_| 1.0).is_nan());
    }

    #[test]
    fn layered_generator_width_tracks_alpha() {
        use crate::gen::layered::LayeredDagSpec;
        let wide = graph_metrics(
            &LayeredDagSpec::with_tasks(100)
                .alpha(4.0)
                .generate(1)
                .unwrap(),
        );
        let tall = graph_metrics(
            &LayeredDagSpec::with_tasks(100)
                .alpha(0.25)
                .generate(1)
                .unwrap(),
        );
        assert!(wide.max_level_width > tall.max_level_width);
        assert!(wide.depth < tall.depth);
        assert!(wide.avg_parallelism > tall.avg_parallelism);
    }

    #[test]
    fn weighted_sequentiality() {
        // Diamond with a heavy branch: 0 -> {1,2} -> 3, w = [1, 1, 8, 1].
        let mut b = TaskGraphBuilder::with_tasks(4);
        use crate::TaskId;
        b.add_edge(TaskId(0), TaskId(1), 0.0)
            .add_edge(TaskId(0), TaskId(2), 0.0)
            .add_edge(TaskId(1), TaskId(3), 0.0)
            .add_edge(TaskId(2), TaskId(3), 0.0);
        let g = b.build().unwrap();
        let w = |t: TaskId| [1.0, 1.0, 8.0, 1.0][t.index()];
        // CP = 1 + 8 + 1 = 10; total = 11.
        assert!((sequentiality(&g, w) - 10.0 / 11.0).abs() < 1e-12);
    }
}

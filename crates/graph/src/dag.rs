//! The task graph `G = (V, E)` of §3.1.
//!
//! Nodes are tasks identified by dense [`TaskId`]s; directed edges carry the
//! communication data size `d_ij` (the matrix `D` of the paper, stored
//! sparsely on the edges). The structure keeps both successor and
//! predecessor adjacency for O(1) traversal in either direction — schedulers
//! walk predecessors (ready times) as often as successors (ranks).

use std::fmt;

/// Dense task identifier; index into all per-task arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A directed edge with its communication data size `d_ij`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// The task at the other end of the edge.
    pub task: TaskId,
    /// Amount of data transferred along the edge (units of the data-size
    /// matrix `D`; divided by a transfer rate to obtain a communication
    /// time).
    pub data: f64,
}

/// Errors from graph construction/validation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a task id outside `0..n`.
    UnknownTask(TaskId),
    /// A self-loop `v -> v` was added.
    SelfLoop(TaskId),
    /// The same directed edge was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The edge set contains a cycle (not a DAG).
    Cycle,
    /// A data size was negative or non-finite.
    InvalidData {
        /// Edge source.
        from: TaskId,
        /// Edge destination.
        to: TaskId,
        /// Offending data size.
        data: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTask(t) => write!(f, "unknown task {t}"),
            GraphError::SelfLoop(t) => write!(f, "self loop on {t}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::InvalidData { from, to, data } => {
                write!(f, "invalid data size {data} on edge {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, validated task DAG.
///
/// Construct through [`TaskGraphBuilder`], which checks ids, rejects
/// duplicate edges and self-loops, and verifies acyclicity on
/// [`TaskGraphBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    succs: Vec<Vec<Edge>>,
    preds: Vec<Vec<Edge>>,
    edge_count: usize,
    /// Per-task importance weight (default 1.0); the degradation metric of
    /// the adaptive executor reports dropped weight over total weight.
    weight: Vec<f64>,
    /// Per-task optionality (default `false`). Optional tasks may be shed
    /// under deadline pressure; the closure invariant (an optional task's
    /// successors are all optional) is enforced by [`Self::mark_optional`].
    optional: Vec<bool>,
    /// Per-task type-affinity mask (default `u64::MAX` — runs anywhere).
    /// Bit `ty` set means the task may run on cores of type `ty`; typed
    /// platforms (`rds-platform`) consult this during placement. Untyped
    /// scheduling ignores it entirely.
    affinity: Vec<u64>,
}

impl TaskGraph {
    /// Number of tasks `n = |V|`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all task ids in increasing order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.succs.len() as u32).map(TaskId)
    }

    /// Immediate successors of `t` with their data sizes.
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[Edge] {
        &self.succs[t.index()]
    }

    /// Immediate predecessors of `t` with their data sizes.
    #[inline]
    pub fn predecessors(&self, t: TaskId) -> &[Edge] {
        &self.preds[t.index()]
    }

    /// In-degree of `t`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> usize {
        self.preds[t.index()].len()
    }

    /// Out-degree of `t`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> usize {
        self.succs[t.index()].len()
    }

    /// `true` when `t` has no predecessors (an *entry* node).
    #[inline]
    pub fn is_entry(&self, t: TaskId) -> bool {
        self.preds[t.index()].is_empty()
    }

    /// `true` when `t` has no successors (an *exit* node).
    #[inline]
    pub fn is_exit(&self, t: TaskId) -> bool {
        self.succs[t.index()].is_empty()
    }

    /// All entry nodes.
    pub fn entries(&self) -> Vec<TaskId> {
        self.tasks().filter(|&t| self.is_entry(t)).collect()
    }

    /// All exit nodes.
    pub fn exits(&self) -> Vec<TaskId> {
        self.tasks().filter(|&t| self.is_exit(t)).collect()
    }

    /// The data size `d_ij` if the edge `from -> to` exists.
    pub fn edge_data(&self, from: TaskId, to: TaskId) -> Option<f64> {
        self.succs[from.index()]
            .iter()
            .find(|e| e.task == to)
            .map(|e| e.data)
    }

    /// `true` when the edge `from -> to` exists.
    #[inline]
    pub fn has_edge(&self, from: TaskId, to: TaskId) -> bool {
        self.edge_data(from, to).is_some()
    }

    /// Iterator over all edges as `(from, to, data)`.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId, f64)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, es)| es.iter().map(move |e| (TaskId(i as u32), e.task, e.data)))
    }

    /// Total of all edge data sizes (useful for CCR accounting).
    pub fn total_edge_data(&self) -> f64 {
        self.edges().map(|(_, _, d)| d).sum()
    }

    /// Importance weight of `t` (1.0 unless set).
    #[inline]
    pub fn weight_of(&self, t: TaskId) -> f64 {
        self.weight[t.index()]
    }

    /// `true` when `t` may be shed under deadline pressure.
    #[inline]
    pub fn is_optional(&self, t: TaskId) -> bool {
        self.optional[t.index()]
    }

    /// Sum of all task weights.
    pub fn total_weight(&self) -> f64 {
        self.weight.iter().sum()
    }

    /// Sum of the weights of tasks marked optional.
    pub fn optional_weight(&self) -> f64 {
        self.weight
            .iter()
            .zip(&self.optional)
            .filter(|&(_, &o)| o)
            .map(|(&w, _)| w)
            .sum()
    }

    /// All tasks currently marked optional.
    pub fn optional_tasks(&self) -> Vec<TaskId> {
        self.tasks().filter(|&t| self.is_optional(t)).collect()
    }

    /// Sets the importance weight of `t`.
    ///
    /// # Panics
    /// Panics when `w` is negative or non-finite.
    pub fn set_weight(&mut self, t: TaskId, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "invalid task weight {w} for {t}");
        self.weight[t.index()] = w;
    }

    /// Type-affinity mask of `t` (`u64::MAX` unless set — runs anywhere).
    #[inline]
    pub fn affinity_of(&self, t: TaskId) -> u64 {
        self.affinity[t.index()]
    }

    /// `true` when any task carries a non-trivial affinity mask.
    pub fn has_affinity_constraints(&self) -> bool {
        self.affinity.iter().any(|&m| m != u64::MAX)
    }

    /// Sets the type-affinity mask of `t`.
    ///
    /// # Panics
    /// Panics when `mask == 0` — a task that can run nowhere makes every
    /// schedule infeasible.
    pub fn set_affinity(&mut self, t: TaskId, mask: u64) {
        assert!(mask != 0, "empty affinity mask for {t}");
        self.affinity[t.index()] = mask;
    }

    /// Marks `t` optional if every successor of `t` is already optional,
    /// returning whether the mark was applied.
    ///
    /// The closure invariant matters for shedding: dropping a task kills
    /// everything downstream of it, so a task may only be optional when its
    /// whole successor cone is. Mark tasks in reverse topological order to
    /// build an optional fringe from the exits inward.
    pub fn mark_optional(&mut self, t: TaskId) -> bool {
        if self.succs[t.index()]
            .iter()
            .all(|e| self.optional[e.task.index()])
        {
            self.optional[t.index()] = true;
            true
        } else {
            false
        }
    }

    /// Order-insensitive structural equality: same task count and same
    /// edge set (with data), regardless of adjacency-list ordering.
    /// `PartialEq` on `TaskGraph` is stricter (it compares list order,
    /// which depends on construction order); serialization round-trips
    /// preserve structure but not necessarily predecessor-list order.
    #[must_use]
    pub fn same_structure(&self, other: &TaskGraph) -> bool {
        if self.task_count() != other.task_count() || self.edge_count() != other.edge_count() {
            return false;
        }
        let canon = |g: &TaskGraph| -> Vec<(u32, u32, u64)> {
            let mut edges: Vec<(u32, u32, u64)> =
                g.edges().map(|(a, b, d)| (a.0, b.0, d.to_bits())).collect();
            edges.sort_unstable();
            edges
        };
        canon(self) == canon(other)
    }

    /// `true` when `a` and `b` are **independent**: neither reaches the
    /// other. (Corollary 3.5 composes slack over *independent* tasks; tests
    /// use this.) O(V + E) per query via BFS.
    pub fn are_independent(&self, a: TaskId, b: TaskId) -> bool {
        a != b && !self.reaches(a, b) && !self.reaches(b, a)
    }

    /// `true` when a directed path `from ⇝ to` exists.
    pub fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.task_count()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(t) = stack.pop() {
            for e in self.successors(t) {
                if e.task == to {
                    return true;
                }
                if !seen[e.task.index()] {
                    seen[e.task.index()] = true;
                    stack.push(e.task);
                }
            }
        }
        false
    }

    /// The transitive closure as a boolean matrix `reach[i][j]`
    /// (row-major `n×n`, computed in O(V·E)); callers doing many
    /// independence queries should use this instead of [`Self::reaches`].
    pub fn reachability(&self) -> Vec<bool> {
        let n = self.task_count();
        let mut reach = vec![false; n * n];
        // Process in reverse topological order so successors are complete.
        let order = crate::topo::topological_order(self).expect("validated DAG");
        for &t in order.iter().rev() {
            let ti = t.index();
            reach[ti * n + ti] = true;
            // Collect successor rows first to appease the borrow checker.
            for e in self.successors(t) {
                let si = e.task.index();
                // reach[t] |= reach[s]
                for j in 0..n {
                    if reach[si * n + j] {
                        reach[ti * n + j] = true;
                    }
                }
            }
        }
        reach
    }
}

/// Builder for [`TaskGraph`].
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    succs: Vec<Vec<Edge>>,
    preds: Vec<Vec<Edge>>,
    edge_count: usize,
    error: Option<GraphError>,
}

impl TaskGraphBuilder {
    /// Starts a builder with `n` tasks and no edges.
    #[must_use]
    pub fn with_tasks(n: usize) -> Self {
        Self {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            edge_count: 0,
            error: None,
        }
    }

    /// Adds one more task, returning its id.
    pub fn add_task(&mut self) -> TaskId {
        let id = TaskId(self.succs.len() as u32);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Number of tasks added so far.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.succs.len()
    }

    /// Adds the directed edge `from -> to` carrying `data`.
    ///
    /// Errors are latched and reported by [`Self::build`], so call sites can
    /// chain additions without per-call `?`.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId, data: f64) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        let n = self.succs.len();
        if from.index() >= n {
            self.error = Some(GraphError::UnknownTask(from));
            return self;
        }
        if to.index() >= n {
            self.error = Some(GraphError::UnknownTask(to));
            return self;
        }
        if from == to {
            self.error = Some(GraphError::SelfLoop(from));
            return self;
        }
        if !(data.is_finite() && data >= 0.0) {
            self.error = Some(GraphError::InvalidData { from, to, data });
            return self;
        }
        if self.succs[from.index()].iter().any(|e| e.task == to) {
            self.error = Some(GraphError::DuplicateEdge(from, to));
            return self;
        }
        self.succs[from.index()].push(Edge { task: to, data });
        self.preds[to.index()].push(Edge { task: from, data });
        self.edge_count += 1;
        self
    }

    /// `true` if the edge is already present (lets generators avoid the
    /// duplicate-edge error without tracking their own set).
    pub fn has_edge(&self, from: TaskId, to: TaskId) -> bool {
        from.index() < self.succs.len() && self.succs[from.index()].iter().any(|e| e.task == to)
    }

    /// Finalizes the graph, verifying acyclicity (Kahn's algorithm).
    ///
    /// # Errors
    /// Returns the first construction error, or [`GraphError::Cycle`] if the
    /// edge set is not a DAG.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let n = self.succs.len();
        let g = TaskGraph {
            succs: self.succs,
            preds: self.preds,
            edge_count: self.edge_count,
            weight: vec![1.0; n],
            optional: vec![false; n],
            affinity: vec![u64::MAX; n],
        };
        // Kahn: if we cannot consume every node, there is a cycle.
        let mut indeg: Vec<usize> = g.tasks().map(|t| g.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = g.tasks().filter(|t| indeg[t.index()] == 0).collect();
        let mut seen = 0usize;
        while let Some(t) = ready.pop() {
            seen += 1;
            for e in g.successors(t) {
                indeg[e.task.index()] -= 1;
                if indeg[e.task.index()] == 0 {
                    ready.push(e.task);
                }
            }
        }
        if seen != g.task_count() {
            return Err(GraphError::Cycle);
        }
        Ok(g)
    }
}

/// The transitive reduction of a DAG: the unique minimal edge subset with
/// the same reachability. Useful for sparsifying generated graphs (the
/// G(n,p) generator emits many redundant edges) before scheduling — note
/// that removing a redundant edge also removes its communication data, so
/// only reduce when the data on redundant edges is immaterial (e.g. the
/// producer also reaches the consumer through an intermediate task that
/// re-exports the data).
///
/// O(V·E) time using the reverse-topological reachability closure.
#[must_use]
pub fn transitive_reduction(g: &TaskGraph) -> TaskGraph {
    let n = g.task_count();
    let reach = g.reachability();
    let mut b = TaskGraphBuilder::with_tasks(n);
    for (from, to, data) in g.edges() {
        // The edge is redundant iff some *other* successor of `from`
        // reaches `to`.
        let redundant = g
            .successors(from)
            .iter()
            .any(|mid| mid.task != to && reach[mid.task.index() * n + to.index()]);
        if !redundant {
            b.add_edge(from, to, data);
        }
    }
    let mut r = b.build().expect("subset of a DAG is a DAG");
    // Reduction changes edges only; weights, optional flags, and affinity
    // masks carry over.
    r.weight.clone_from(&g.weight);
    r.optional.clone_from(&g.optional);
    r.affinity.clone_from(&g.affinity);
    r
}

/// Builds the 8-task example graph of the paper's Figure 1(a).
///
/// Edge data sizes are uniform (`data` per edge); the paper's figure does
/// not annotate sizes, so a single knob suffices for the worked example.
///
/// Structure: v1 feeds v2..v6; v2 and v4 feed v7 is **not** in the figure —
/// the figure shows: v1 → {v2,v3,v4}; v2 → v5; v3 → {v5,v6}; v4 → v6;
/// v5 → v7, v5 → v8; v6 → v8; v7 → v8 is not present; v7 and v8 are exits
/// fed as above. (The exact figure wiring reproduced from Fig. 1(a)/(d).)
pub fn fig1_example(data: f64) -> TaskGraph {
    let mut b = TaskGraphBuilder::with_tasks(8);
    let v = |i: u32| TaskId(i - 1); // paper numbers tasks from 1
    b.add_edge(v(1), v(2), data)
        .add_edge(v(1), v(3), data)
        .add_edge(v(1), v(4), data)
        .add_edge(v(2), v(5), data)
        .add_edge(v(3), v(5), data)
        .add_edge(v(3), v(6), data)
        .add_edge(v(4), v(8), data)
        .add_edge(v(5), v(7), data)
        .add_edge(v(5), v(8), data)
        .add_edge(v(6), v(7), data);
    b.build().expect("fig1 graph is a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = TaskGraphBuilder::with_tasks(4);
        b.add_edge(TaskId(0), TaskId(1), 1.0)
            .add_edge(TaskId(0), TaskId(2), 2.0)
            .add_edge(TaskId(1), TaskId(3), 3.0)
            .add_edge(TaskId(2), TaskId(3), 4.0);
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.entries(), vec![TaskId(0)]);
        assert_eq!(g.exits(), vec![TaskId(3)]);
        assert_eq!(g.edge_data(TaskId(0), TaskId(2)), Some(2.0));
        assert_eq!(g.edge_data(TaskId(2), TaskId(0)), None);
        assert!(g.has_edge(TaskId(1), TaskId(3)));
        assert_eq!(g.in_degree(TaskId(3)), 2);
        assert_eq!(g.out_degree(TaskId(0)), 2);
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 0.0)
            .add_edge(TaskId(1), TaskId(2), 0.0)
            .add_edge(TaskId(2), TaskId(0), 0.0);
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TaskGraphBuilder::with_tasks(1);
        b.add_edge(TaskId(0), TaskId(0), 0.0);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop(TaskId(0)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(1), 1.0)
            .add_edge(TaskId(0), TaskId(1), 2.0);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateEdge(TaskId(0), TaskId(1))
        );
    }

    #[test]
    fn rejects_unknown_task_and_bad_data() {
        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(5), 1.0);
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownTask(TaskId(5)));

        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(1), -1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::InvalidData { .. }
        ));
    }

    #[test]
    fn first_error_wins() {
        let mut b = TaskGraphBuilder::with_tasks(2);
        b.add_edge(TaskId(0), TaskId(9), 1.0) // unknown
            .add_edge(TaskId(0), TaskId(0), 1.0); // self loop, ignored
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownTask(TaskId(9)));
    }

    #[test]
    fn reachability_and_independence() {
        let g = diamond();
        assert!(g.reaches(TaskId(0), TaskId(3)));
        assert!(!g.reaches(TaskId(3), TaskId(0)));
        assert!(g.are_independent(TaskId(1), TaskId(2)));
        assert!(!g.are_independent(TaskId(0), TaskId(1)));
        assert!(!g.are_independent(TaskId(1), TaskId(1)));

        let reach = g.reachability();
        let n = g.task_count();
        assert!(reach[3]); // row 0, col 3
        assert!(!reach[3 * n]);
        assert!(!reach[n + 2]);
        assert!(reach[2 * n + 2]); // reflexive
    }

    #[test]
    fn add_task_grows_graph() {
        let mut b = TaskGraphBuilder::with_tasks(0);
        let a = b.add_task();
        let c = b.add_task();
        b.add_edge(a, c, 1.5);
        let g = b.build().unwrap();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.edge_data(a, c), Some(1.5));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = TaskGraphBuilder::with_tasks(0).build().unwrap();
        assert_eq!(g.task_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.entries().is_empty());
    }

    #[test]
    fn isolated_tasks_are_entry_and_exit() {
        let g = TaskGraphBuilder::with_tasks(3).build().unwrap();
        for t in g.tasks() {
            assert!(g.is_entry(t));
            assert!(g.is_exit(t));
        }
    }

    #[test]
    fn transitive_reduction_removes_shortcuts() {
        // Chain 0 -> 1 -> 2 plus shortcut 0 -> 2: the shortcut goes.
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 1.0)
            .add_edge(TaskId(1), TaskId(2), 2.0)
            .add_edge(TaskId(0), TaskId(2), 9.0);
        let g = b.build().unwrap();
        let r = transitive_reduction(&g);
        assert_eq!(r.edge_count(), 2);
        assert!(r.has_edge(TaskId(0), TaskId(1)));
        assert!(r.has_edge(TaskId(1), TaskId(2)));
        assert!(!r.has_edge(TaskId(0), TaskId(2)));
    }

    #[test]
    fn transitive_reduction_preserves_reachability() {
        use crate::gen::erdos::ErdosDagSpec;
        let g = ErdosDagSpec::new(30, 0.25).generate(3).unwrap();
        let r = transitive_reduction(&g);
        assert!(r.edge_count() < g.edge_count(), "G(n,p) has redundancy");
        let n = g.task_count();
        let a = g.reachability();
        let b = r.reachability();
        for i in 0..n * n {
            assert_eq!(a[i], b[i], "reachability changed at {i}");
        }
    }

    #[test]
    fn reduction_of_reduced_graph_is_identity() {
        let g = fig1_example(1.0);
        let r = transitive_reduction(&g);
        let rr = transitive_reduction(&r);
        assert!(r.same_structure(&rr));
    }

    #[test]
    fn fig1_graph_shape() {
        let g = fig1_example(10.0);
        assert_eq!(g.task_count(), 8);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.entries(), vec![TaskId(0)]);
        // v7 (index 6) and v8 (index 7) are exits.
        assert_eq!(g.exits(), vec![TaskId(6), TaskId(7)]);
    }

    #[test]
    fn same_structure_ignores_adjacency_order() {
        // Build the diamond twice with edges added in different orders.
        let mut b1 = TaskGraphBuilder::with_tasks(4);
        b1.add_edge(TaskId(0), TaskId(1), 1.0)
            .add_edge(TaskId(0), TaskId(2), 2.0)
            .add_edge(TaskId(1), TaskId(3), 3.0)
            .add_edge(TaskId(2), TaskId(3), 4.0);
        let g1 = b1.build().unwrap();
        let mut b2 = TaskGraphBuilder::with_tasks(4);
        b2.add_edge(TaskId(2), TaskId(3), 4.0)
            .add_edge(TaskId(0), TaskId(2), 2.0)
            .add_edge(TaskId(1), TaskId(3), 3.0)
            .add_edge(TaskId(0), TaskId(1), 1.0);
        let g2 = b2.build().unwrap();
        assert!(g1.same_structure(&g2));
        // Different data breaks it.
        let mut b3 = TaskGraphBuilder::with_tasks(4);
        b3.add_edge(TaskId(0), TaskId(1), 9.0)
            .add_edge(TaskId(0), TaskId(2), 2.0)
            .add_edge(TaskId(1), TaskId(3), 3.0)
            .add_edge(TaskId(2), TaskId(3), 4.0);
        assert!(!g1.same_structure(&b3.build().unwrap()));
        // Different sizes break it.
        let small = TaskGraphBuilder::with_tasks(3).build().unwrap();
        assert!(!g1.same_structure(&small));
    }

    #[test]
    fn edges_iterator_and_total_data() {
        let g = diamond();
        assert_eq!(g.edges().count(), 4);
        assert_eq!(g.total_edge_data(), 10.0);
    }

    #[test]
    fn weights_default_to_one() {
        let g = diamond();
        for t in g.tasks() {
            assert_eq!(g.weight_of(t), 1.0);
            assert!(!g.is_optional(t));
        }
        assert_eq!(g.total_weight(), 4.0);
        assert_eq!(g.optional_weight(), 0.0);
        assert!(g.optional_tasks().is_empty());
    }

    #[test]
    fn mark_optional_enforces_successor_closure() {
        let mut g = diamond();
        // 1 feeds 3; 3 is mandatory, so 1 cannot be shed yet.
        assert!(!g.mark_optional(TaskId(1)));
        assert!(!g.is_optional(TaskId(1)));
        // Exits are always markable; then the fringe grows inward.
        assert!(g.mark_optional(TaskId(3)));
        assert!(g.mark_optional(TaskId(1)));
        assert!(g.is_optional(TaskId(1)));
        assert_eq!(g.optional_tasks(), vec![TaskId(1), TaskId(3)]);
        g.set_weight(TaskId(3), 2.5);
        assert_eq!(g.total_weight(), 5.5);
        assert_eq!(g.optional_weight(), 3.5);
    }

    #[test]
    #[should_panic(expected = "invalid task weight")]
    fn set_weight_rejects_negative() {
        let mut g = diamond();
        g.set_weight(TaskId(0), -1.0);
    }

    #[test]
    fn affinity_defaults_to_full_mask() {
        let mut g = diamond();
        for t in g.tasks() {
            assert_eq!(g.affinity_of(t), u64::MAX);
        }
        assert!(!g.has_affinity_constraints());
        g.set_affinity(TaskId(1), 0b101);
        assert_eq!(g.affinity_of(TaskId(1)), 0b101);
        assert!(g.has_affinity_constraints());
    }

    #[test]
    #[should_panic(expected = "empty affinity mask")]
    fn set_affinity_rejects_empty_mask() {
        let mut g = diamond();
        g.set_affinity(TaskId(0), 0);
    }

    #[test]
    fn transitive_reduction_preserves_flags() {
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 1.0)
            .add_edge(TaskId(1), TaskId(2), 2.0)
            .add_edge(TaskId(0), TaskId(2), 9.0);
        let mut g = b.build().unwrap();
        assert!(g.mark_optional(TaskId(2)));
        g.set_weight(TaskId(1), 4.0);
        let r = transitive_reduction(&g);
        assert!(r.is_optional(TaskId(2)));
        assert_eq!(r.weight_of(TaskId(1)), 4.0);
    }

    #[test]
    fn transitive_reduction_preserves_affinity() {
        let mut b = TaskGraphBuilder::with_tasks(3);
        b.add_edge(TaskId(0), TaskId(1), 1.0)
            .add_edge(TaskId(1), TaskId(2), 2.0)
            .add_edge(TaskId(0), TaskId(2), 9.0);
        let mut g = b.build().unwrap();
        g.set_affinity(TaskId(1), 0b11);
        let r = transitive_reduction(&g);
        assert_eq!(r.affinity_of(TaskId(1)), 0b11);
        assert_eq!(r.affinity_of(TaskId(0)), u64::MAX);
    }
}

//! Evaluation-kernel benchmarks backing `scripts/bench_snapshot.sh`.
//!
//! Three single-chromosome paths (alloc-per-eval reference, flat-CSR
//! scratch arena, warm memo) and two population-sized paths (64
//! chromosomes: sequential alloc-per-eval vs the parallel CSR kernel), all
//! on the 100-task × 8-processor bench instance — the configuration the
//! issue's ≥ 3× evals/sec acceptance criterion is measured on.
//!
//! Plus the batched-SoA / delta pair backing the `mc_batched_vs_scalar`
//! and `delta_vs_full` snapshot entries:
//!
//! * `mc_walk_*` — the pure kernel walk on 32 pre-sampled realizations
//!   (sampling outside the timed region): one scalar CSR walk per
//!   realization vs one SoA walk per `LANES` realizations;
//! * `mc_eval_*` — the full Monte-Carlo evaluation path including
//!   duration sampling (`evaluate_mc_scalar` vs `evaluate_mc_with`);
//! * `delta_*` — full `EvalScratch::evaluate` vs
//!   `EvalScratch::evaluate_delta` on a tail-only order perturbation.

use criterion::{criterion_group, criterion_main, Criterion};

use rds_bench::bench_instance;
use rds_ga::chromosome::Chromosome;
use rds_ga::memo::EvalMemo;
use rds_ga::objective::{evaluate, evaluate_all, evaluate_population, evaluate_with_scratch};
use rds_ga::robust_engine::{
    evaluate_mc_delta, evaluate_mc_scalar, evaluate_mc_with, McScalarScratch, McScratch,
};
use rds_sched::csr::{EvalScratch, LANES};
use rds_sched::Instance;
use rds_stats::rng::{rng_from_seed, SeedStream};

/// Realizations per Monte-Carlo evaluation in the `mc_*` benches.
const MC_K: usize = 32;

fn setup(n: usize) -> (Instance, Vec<Chromosome>) {
    let inst = bench_instance(100, 8, 2.0);
    let mut rng = rng_from_seed(0xE7A1);
    let chromosomes = (0..n)
        .map(|_| Chromosome::random_for(&inst, &mut rng))
        .collect();
    (inst, chromosomes)
}

/// The seed path: per evaluation, build the nested disjunctive graph,
/// collect durations, and run the allocating slack analysis.
fn bench_eval_alloc(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    c.bench_function("eval_alloc_100x8", |b| {
        b.iter(|| evaluate(&inst, &cs[0]));
    });
}

/// The flat-CSR scratch-arena kernel: same numbers, zero steady-state
/// allocations.
fn bench_eval_csr(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    c.bench_function("eval_csr_100x8", |b| {
        let mut scratch = EvalScratch::new();
        b.iter(|| evaluate_with_scratch(&inst, &cs[0], &mut scratch));
    });
}

/// A warm memo: every probe is a verified fingerprint hit.
fn bench_eval_memo_warm(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    c.bench_function("eval_memo_warm_100x8", |b| {
        let mut memo = EvalMemo::new(64);
        memo.insert(&cs[0], evaluate(&inst, &cs[0]));
        b.iter(|| memo.get(&cs[0]).expect("warm memo hits"));
    });
}

/// Population of 64 through the sequential alloc-per-eval path.
fn bench_pop_alloc(c: &mut Criterion) {
    let (inst, cs) = setup(64);
    c.bench_function("eval_pop64_alloc_100x8", |b| {
        b.iter(|| cs.iter().map(|x| evaluate(&inst, x)).collect::<Vec<_>>());
    });
}

/// Population of 64 through the parallel CSR kernel (the GA's hot path;
/// cold memo so every chromosome pays one kernel run per iteration).
fn bench_pop_csr_parallel(c: &mut Criterion) {
    let (inst, cs) = setup(64);
    c.bench_function("eval_pop64_csr_par_100x8", |b| {
        b.iter(|| evaluate_all(&inst, &cs));
    });
}

/// Population of 64 through the memoized entry point with a warm memo —
/// the steady-state cost of re-seeing a converged population.
fn bench_pop_memo_warm(c: &mut Criterion) {
    let (inst, cs) = setup(64);
    c.bench_function("eval_pop64_memo_warm_100x8", |b| {
        let mut memo = EvalMemo::new(256);
        let (_, fresh) = evaluate_population(&inst, &cs, &mut memo);
        assert_eq!(fresh, 64);
        b.iter(|| evaluate_population(&inst, &cs, &mut memo));
    });
}

/// The pure Monte-Carlo kernel walk, sampling excluded: `MC_K`
/// pre-sampled realizations through one scalar CSR walk each vs one SoA
/// walk per [`LANES`] of them. This isolates the batching win the CI
/// regression gate guards (`speedup_mc_batched_vs_scalar`).
fn bench_mc_walk(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    let chrom = &cs[0];
    let n = chrom.order.len();
    let mut scratch = EvalScratch::new();
    scratch
        .evaluate(&inst, &chrom.order, &chrom.assignment)
        .expect("bench chromosome is valid");

    let mut rng = rng_from_seed(0xBA7C);
    let realizations: Vec<Vec<f64>> = (0..MC_K)
        .map(|_| inst.timing.sample_assigned(&chrom.assignment, &mut rng))
        .collect();
    let chunks = MC_K.div_ceil(LANES);
    let mut dur_soa = vec![0.0; chunks * LANES * n];
    for (j, d) in realizations.iter().enumerate() {
        let base = (j / LANES) * LANES * n + (j % LANES);
        for (t, &x) in d.iter().enumerate() {
            dur_soa[base + LANES * t] = x;
        }
    }

    let csr = scratch.csr();
    c.bench_function("mc_walk_scalar_100x8x32", |b| {
        let mut finish = Vec::new();
        b.iter(|| {
            let mut acc = 0.0;
            for d in &realizations {
                acc += csr.makespan(d, &mut finish);
            }
            acc
        });
    });
    c.bench_function("mc_walk_batched_100x8x32", |b| {
        let mut fin_soa = vec![0.0; chunks * LANES * n];
        let mut out = [0.0f64; LANES];
        b.iter(|| {
            let mut acc = 0.0;
            for ci in 0..chunks {
                let (lo, hi) = (ci * LANES * n, (ci + 1) * LANES * n);
                csr.makespan_batch(&dur_soa[lo..hi], &mut fin_soa[lo..hi], &mut out);
                for &m in &out {
                    acc += m;
                }
            }
            acc
        });
    });
}

/// A child differing from `parent` only by an adjacent independent-pair
/// swap in the last quarter of the scheduling string, plus the swap's
/// first-changed position — the canonical delta-eligible offspring.
fn tail_swapped(inst: &Instance, parent: &Chromosome) -> (Chromosome, usize) {
    let n = parent.order.len();
    let mut child = parent.clone();
    for i in (n * 3 / 4..n - 1).rev() {
        let (a, b) = (child.order[i], child.order[i + 1]);
        if !inst.graph.successors(a).iter().any(|e| e.task == b) {
            child.order.swap(i, i + 1);
            return (child, i);
        }
    }
    panic!("bench instance has a swappable tail pair");
}

/// The full robust-MC evaluation path, sampling included — what one
/// robust-GA fitness evaluation actually costs — plus the delta path,
/// which reuses the parent's realized durations (no resampling) and
/// re-walks only the suffix.
fn bench_mc_eval(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    let chrom = &cs[0];
    let stream = SeedStream::new(0xC0FFEE);
    let seeds: Vec<u64> = (0..MC_K).map(|i| stream.nth_seed(i as u64)).collect();
    c.bench_function("mc_eval_scalar_100x8x32", |b| {
        let mut s = McScalarScratch::default();
        b.iter(|| evaluate_mc_scalar(&inst, chrom, &seeds, &mut s).expect("valid"));
    });
    c.bench_function("mc_eval_batched_100x8x32", |b| {
        let mut s = McScratch::new();
        b.iter(|| evaluate_mc_with(&inst, chrom, &seeds, &mut s).expect("valid"));
    });

    let mut parent = McScratch::new();
    evaluate_mc_with(&inst, chrom, &seeds, &mut parent).expect("valid");
    let (child, fc) = tail_swapped(&inst, chrom);
    c.bench_function("mc_delta_100x8x32", |b| {
        let mut s = McScratch::new();
        b.iter(|| {
            evaluate_mc_delta(&inst, &child, &seeds, &parent, &mut s, fc)
                .expect("delta contract holds")
                .expect("valid")
        });
    });
}

/// Full evaluation vs delta (suffix) evaluation of a child that differs
/// from its parent only by an adjacent independent-pair swap in the last
/// quarter of the scheduling string.
fn bench_delta_vs_full(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    let parent = &cs[0];
    let mut prev = EvalScratch::new();
    prev.evaluate(&inst, &parent.order, &parent.assignment)
        .expect("bench chromosome is valid");

    let (child, fc) = tail_swapped(&inst, parent);

    c.bench_function("delta_full_100x8", |b| {
        let mut s = EvalScratch::new();
        b.iter(|| {
            s.evaluate(&inst, &child.order, &child.assignment)
                .expect("valid")
                .makespan
        });
    });
    c.bench_function("delta_suffix_100x8", |b| {
        let mut s = EvalScratch::new();
        b.iter(|| {
            s.evaluate_delta(&inst, &child.order, &child.assignment, &prev, fc)
                .expect("valid")
                .makespan
        });
    });
}

criterion_group!(
    benches,
    bench_eval_alloc,
    bench_eval_csr,
    bench_eval_memo_warm,
    bench_pop_alloc,
    bench_pop_csr_parallel,
    bench_pop_memo_warm,
    bench_mc_walk,
    bench_mc_eval,
    bench_delta_vs_full
);
criterion_main!(benches);

//! Evaluation-kernel benchmarks backing `scripts/bench_snapshot.sh`.
//!
//! Three single-chromosome paths (alloc-per-eval reference, flat-CSR
//! scratch arena, warm memo) and two population-sized paths (64
//! chromosomes: sequential alloc-per-eval vs the parallel CSR kernel), all
//! on the 100-task × 8-processor bench instance — the configuration the
//! issue's ≥ 3× evals/sec acceptance criterion is measured on.

use criterion::{criterion_group, criterion_main, Criterion};

use rds_bench::bench_instance;
use rds_ga::chromosome::Chromosome;
use rds_ga::memo::EvalMemo;
use rds_ga::objective::{evaluate, evaluate_all, evaluate_population, evaluate_with_scratch};
use rds_sched::csr::EvalScratch;
use rds_sched::Instance;
use rds_stats::rng::rng_from_seed;

fn setup(n: usize) -> (Instance, Vec<Chromosome>) {
    let inst = bench_instance(100, 8, 2.0);
    let mut rng = rng_from_seed(0xE7A1);
    let chromosomes = (0..n)
        .map(|_| Chromosome::random_for(&inst, &mut rng))
        .collect();
    (inst, chromosomes)
}

/// The seed path: per evaluation, build the nested disjunctive graph,
/// collect durations, and run the allocating slack analysis.
fn bench_eval_alloc(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    c.bench_function("eval_alloc_100x8", |b| {
        b.iter(|| evaluate(&inst, &cs[0]));
    });
}

/// The flat-CSR scratch-arena kernel: same numbers, zero steady-state
/// allocations.
fn bench_eval_csr(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    c.bench_function("eval_csr_100x8", |b| {
        let mut scratch = EvalScratch::new();
        b.iter(|| evaluate_with_scratch(&inst, &cs[0], &mut scratch));
    });
}

/// A warm memo: every probe is a verified fingerprint hit.
fn bench_eval_memo_warm(c: &mut Criterion) {
    let (inst, cs) = setup(1);
    c.bench_function("eval_memo_warm_100x8", |b| {
        let mut memo = EvalMemo::new(64);
        memo.insert(&cs[0], evaluate(&inst, &cs[0]));
        b.iter(|| memo.get(&cs[0]).expect("warm memo hits"));
    });
}

/// Population of 64 through the sequential alloc-per-eval path.
fn bench_pop_alloc(c: &mut Criterion) {
    let (inst, cs) = setup(64);
    c.bench_function("eval_pop64_alloc_100x8", |b| {
        b.iter(|| cs.iter().map(|x| evaluate(&inst, x)).collect::<Vec<_>>());
    });
}

/// Population of 64 through the parallel CSR kernel (the GA's hot path;
/// cold memo so every chromosome pays one kernel run per iteration).
fn bench_pop_csr_parallel(c: &mut Criterion) {
    let (inst, cs) = setup(64);
    c.bench_function("eval_pop64_csr_par_100x8", |b| {
        b.iter(|| evaluate_all(&inst, &cs));
    });
}

/// Population of 64 through the memoized entry point with a warm memo —
/// the steady-state cost of re-seeing a converged population.
fn bench_pop_memo_warm(c: &mut Criterion) {
    let (inst, cs) = setup(64);
    c.bench_function("eval_pop64_memo_warm_100x8", |b| {
        let mut memo = EvalMemo::new(256);
        let (_, fresh) = evaluate_population(&inst, &cs, &mut memo);
        assert_eq!(fresh, 64);
        b.iter(|| evaluate_population(&inst, &cs, &mut memo));
    });
}

criterion_group!(
    benches,
    bench_eval_alloc,
    bench_eval_csr,
    bench_eval_memo_warm,
    bench_pop_alloc,
    bench_pop_csr_parallel,
    bench_pop_memo_warm
);
criterion_main!(benches);

//! Ablation benchmarks for the design choices called out in DESIGN.md.
//!
//! Each ablation measures the *time* of both variants; the accompanying
//! quality deltas are printed once per bench run (criterion measures time,
//! quality is a one-shot sanity log to stderr).

use criterion::{criterion_group, criterion_main, Criterion};

use rds_bench::bench_instance;
use rds_ga::{GaEngine, GaParams, Objective};
use rds_heft::heft::schedule_by_priority_list;
use rds_heft::heft_schedule;
use rds_heft::ranks::rank_order;
use rds_sched::realization::{realized_makespans, RealizationConfig};

/// Ablation 1: insertion-based vs append-only HEFT.
fn bench_heft_insertion(c: &mut Criterion) {
    let inst = bench_instance(100, 8, 2.0);
    let order = rank_order(&inst.graph, &inst.platform, &inst.timing);
    let with = schedule_by_priority_list(&inst, &order, true).makespan;
    let without = schedule_by_priority_list(&inst, &order, false).makespan;
    eprintln!("[ablation heft-insertion] makespan with={with:.2} without={without:.2}");
    c.bench_function("heft_insertion_on", |b| {
        b.iter(|| schedule_by_priority_list(&inst, &order, true));
    });
    c.bench_function("heft_insertion_off", |b| {
        b.iter(|| schedule_by_priority_list(&inst, &order, false));
    });
}

/// Ablation 2: HEFT seeding of the GA initial population.
fn bench_ga_seeding(c: &mut Criterion) {
    let inst = bench_instance(60, 8, 2.0);
    let heft = heft_schedule(&inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.5,
        reference_makespan: heft.makespan,
    };
    let base = GaParams::paper().max_generations(20).stall_generations(20);
    let seeded = GaEngine::new(&inst, base.seed(1), objective).run();
    let unseeded = GaEngine::new(&inst, base.seed(1).without_heft_seed(), objective).run();
    eprintln!(
        "[ablation ga-seeding] slack seeded={:.2} unseeded={:.2}",
        seeded.best_eval.avg_slack, unseeded.best_eval.avg_slack
    );
    c.bench_function("ga_with_heft_seed", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            GaEngine::new(&inst, base.seed(s), objective).run()
        });
    });
    c.bench_function("ga_without_heft_seed", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            GaEngine::new(&inst, base.seed(s).without_heft_seed(), objective).run()
        });
    });
}

/// Ablation 3: Eq. 8's graded penalty vs flat rejection of infeasible
/// individuals.
fn bench_fitness_penalty(c: &mut Criterion) {
    let inst = bench_instance(60, 8, 2.0);
    let heft = heft_schedule(&inst);
    let base = GaParams::paper().max_generations(20).stall_generations(20);
    let graded = Objective::EpsilonConstraint {
        epsilon: 1.2,
        reference_makespan: heft.makespan,
    };
    let flat = Objective::EpsilonConstraintRejecting {
        epsilon: 1.2,
        reference_makespan: heft.makespan,
    };
    let g = GaEngine::new(&inst, base.seed(1), graded).run();
    let f = GaEngine::new(&inst, base.seed(1), flat).run();
    eprintln!(
        "[ablation fitness-penalty] slack graded={:.2} flat={:.2}",
        g.best_eval.avg_slack, f.best_eval.avg_slack
    );
    c.bench_function("ga_graded_penalty", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            GaEngine::new(&inst, base.seed(s), graded).run()
        });
    });
    c.bench_function("ga_flat_rejection", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            GaEngine::new(&inst, base.seed(s), flat).run()
        });
    });
}

/// Ablation 4: ε-constraint GA vs simulated annealing at a similar
/// evaluation budget.
fn bench_moop_methods(c: &mut Criterion) {
    let inst = bench_instance(60, 8, 2.0);
    let heft = heft_schedule(&inst);
    let objective = Objective::EpsilonConstraint {
        epsilon: 1.5,
        reference_makespan: heft.makespan,
    };
    // GA: 20 gens x 20 pop = 400 evals. SA: ~20 temps x 20 moves = 400.
    let ga_params = GaParams::paper().max_generations(20).stall_generations(20);
    let mut sa_params = rds_anneal::SaParams::quick();
    sa_params.moves_per_temp = 20;
    sa_params.cooling = 0.7;
    c.bench_function("moop_ga", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            GaEngine::new(&inst, ga_params.seed(s), objective).run()
        });
    });
    c.bench_function("moop_sa", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            rds_anneal::anneal(&inst, sa_params.seed(s), objective)
        });
    });
}

/// Ablation 4b: ε-constraint sweep vs one NSGA-II run for approximating
/// the Pareto front (time per front).
fn bench_front_methods(c: &mut Criterion) {
    let inst = bench_instance(40, 6, 2.0);
    let heft = heft_schedule(&inst);
    c.bench_function("front_epsilon_sweep_5pts", |b| {
        let params = GaParams::paper().max_generations(15).stall_generations(15);
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            [1.0, 1.25, 1.5, 1.75, 2.0]
                .iter()
                .map(|&eps| {
                    let obj = Objective::EpsilonConstraint {
                        epsilon: eps,
                        reference_makespan: heft.makespan,
                    };
                    GaEngine::new(&inst, params.seed(s), obj).run().best_eval
                })
                .collect::<Vec<_>>()
        });
    });
    c.bench_function("front_nsga2_one_run", |b| {
        let params = GaParams::paper().max_generations(15).population(40);
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            rds_ga::nsga2::nsga2(&inst, params.seed(s))
        });
    });
}

/// Ablation 4c: slack surrogate (Eq. 8) vs direct Monte Carlo fitness —
/// the cost of optimizing measured robustness instead of the cheap proxy.
fn bench_fitness_surrogate(c: &mut Criterion) {
    use rds_ga::robust_engine::{run_robust_ga, RobustGaParams};
    let inst = bench_instance(40, 6, 4.0);
    let heft = heft_schedule(&inst);
    let base = GaParams::paper().max_generations(10).stall_generations(10);
    c.bench_function("fitness_slack_surrogate", |b| {
        let obj = Objective::EpsilonConstraint {
            epsilon: 1.3,
            reference_makespan: heft.makespan,
        };
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            GaEngine::new(&inst, base.seed(s), obj).run()
        });
    });
    c.bench_function("fitness_direct_mc_16", |b| {
        let mut params = RobustGaParams::new(1.3);
        params.base = base;
        params.mc_samples = 16;
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            run_robust_ga(&inst, params.seed(s))
        });
    });
}

/// Ablation 5: serial vs rayon-parallel Monte Carlo.
fn bench_parallel_mc(c: &mut Criterion) {
    let inst = bench_instance(100, 8, 4.0);
    let heft = heft_schedule(&inst);
    c.bench_function("mc_1000_parallel", |b| {
        let cfg = RealizationConfig::with_realizations(1000).seed(1);
        b.iter(|| realized_makespans(&inst, &heft.schedule, &cfg).unwrap());
    });
    c.bench_function("mc_1000_serial", |b| {
        let cfg = RealizationConfig::with_realizations(1000).seed(1).serial();
        b.iter(|| realized_makespans(&inst, &heft.schedule, &cfg).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_heft_insertion, bench_ga_seeding, bench_fitness_penalty, bench_moop_methods, bench_front_methods, bench_fitness_surrogate, bench_parallel_mc
}
criterion_main!(benches);

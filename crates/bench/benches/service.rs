//! Scheduling-service benchmarks: queue + worker-pool throughput with a
//! cold cache (every job computed) vs a warm cache (every job a hit).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rds_bench::bench_instance;
use rds_service::{Algo, JobSpec, Service, ServiceConfig};

/// A batch of GA jobs over `distinct` distinct (instance, seed) pairs,
/// `repeat` submissions each. `distinct * repeat` jobs total; with a warm
/// cache only `distinct` of them compute.
fn ga_batch(instances: &[Arc<rds_sched::Instance>], repeat: usize) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(instances.len() * repeat);
    for (i, inst) in instances.iter().enumerate() {
        for r in 0..repeat {
            jobs.push(
                JobSpec::new(format!("job-{i}-{r}"), Algo::Ga, Arc::clone(inst))
                    .seed(i as u64)
                    .generations(10),
            );
        }
    }
    jobs
}

fn bench_service_throughput(c: &mut Criterion) {
    let instances: Vec<Arc<rds_sched::Instance>> = (0..4)
        .map(|i| Arc::new(bench_instance(30 + 5 * i, 4, 2.0)))
        .collect();
    let config = ServiceConfig::default().workers(2).queue_capacity(64);

    // Cold: distinct jobs only — every job runs its scheduler.
    c.bench_function("service_cold_cache_4_ga_jobs", |b| {
        b.iter_batched(
            || ga_batch(&instances, 1),
            |jobs| Service::run_batch(config.clone(), jobs),
            BatchSize::SmallInput,
        );
    });

    // Warm: the same four schedules requested four times each; 12 of the
    // 16 jobs should be served from cache. The gap to a linear 4x of the
    // cold time is the cache's win.
    c.bench_function("service_warm_cache_16_ga_jobs", |b| {
        b.iter_batched(
            || ga_batch(&instances, 4),
            |jobs| Service::run_batch(config.clone(), jobs),
            BatchSize::SmallInput,
        );
    });

    // Express-only control: queue + pool overhead on sub-millisecond HEFT
    // jobs, no cache effect (all distinct ids, same key — so measure with
    // cache disabled).
    c.bench_function("service_express_32_heft_jobs_nocache", |b| {
        let nocache = config.clone().cache_capacity(0);
        let inst = Arc::new(bench_instance(50, 4, 2.0));
        b.iter_batched(
            || {
                (0..32)
                    .map(|i| JobSpec::new(format!("h-{i}"), Algo::Heft, Arc::clone(&inst)))
                    .collect::<Vec<_>>()
            },
            |jobs| Service::run_batch(nocache.clone(), jobs),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);

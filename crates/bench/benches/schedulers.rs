//! End-to-end scheduler benchmarks: HEFT, CPOP, random, GA, SA.

use criterion::{criterion_group, criterion_main, Criterion};

use rds_anneal::{anneal, SaParams};
use rds_bench::bench_instance;
use rds_ga::{GaEngine, GaParams, Objective};
use rds_heft::{cpop_schedule, heft_schedule, random_schedule};
use rds_stats::rng::rng_from_seed;

fn bench_list_schedulers(c: &mut Criterion) {
    let inst = bench_instance(100, 8, 2.0);
    c.bench_function("heft_100x8", |b| b.iter(|| heft_schedule(&inst)));
    c.bench_function("cpop_100x8", |b| b.iter(|| cpop_schedule(&inst)));
    c.bench_function("lookahead_heft_100x8", |b| {
        b.iter(|| rds_heft::lookahead_heft_schedule(&inst))
    });
    c.bench_function("sheft_100x8", |b| {
        b.iter(|| rds_heft::sheft_schedule(&inst, 1.0))
    });
    c.bench_function("random_schedule_100x8", |b| {
        let mut rng = rng_from_seed(1);
        b.iter(|| random_schedule(&inst, &mut rng));
    });
    c.bench_function("dynamic_eft_run_100x8", |b| {
        use rds_sched::dynamic::{run_dynamic, DynamicPriority};
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            run_dynamic(&inst, DynamicPriority::UpwardRank, s)
        });
    });
}

fn bench_ga_generations(c: &mut Criterion) {
    let inst = bench_instance(60, 8, 2.0);
    let heft = heft_schedule(&inst);
    c.bench_function("ga_25_generations_60x8", |b| {
        let params = GaParams::paper().max_generations(25).stall_generations(25);
        let objective = Objective::EpsilonConstraint {
            epsilon: 1.5,
            reference_makespan: heft.makespan,
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            GaEngine::new(&inst, params.seed(seed), objective).run()
        });
    });
}

fn bench_islands(c: &mut Criterion) {
    use rds_ga::islands::{run_islands, IslandParams};
    let inst = bench_instance(60, 8, 2.0);
    // Equal total budget: 1 island x pop 40 x 20 gens vs 4 islands x pop 10.
    c.bench_function("ga_single_population_40", |b| {
        let params = GaParams::paper()
            .population(40)
            .max_generations(20)
            .stall_generations(20);
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            GaEngine::new(&inst, params.seed(s), Objective::MinimizeMakespan).run()
        });
    });
    c.bench_function("ga_islands_4x10", |b| {
        let mut params = IslandParams::new(
            GaParams::paper()
                .population(10)
                .max_generations(20)
                .stall_generations(20),
        );
        params.islands = 4;
        params.migration_interval = 10;
        params.migrants = 2;
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            let mut p = params;
            p.base = p.base.seed(s);
            run_islands(&inst, p, Objective::MinimizeMakespan)
        });
    });
}

fn bench_sa(c: &mut Criterion) {
    let inst = bench_instance(60, 8, 2.0);
    c.bench_function("sa_quick_60x8", |b| {
        let mut params = SaParams::quick();
        params.moves_per_temp = 10;
        params.cooling = 0.8;
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            anneal(&inst, params.seed(seed), Objective::MaximizeSlack)
        });
    });
}

criterion_group!(
    benches,
    bench_list_schedulers,
    bench_ga_generations,
    bench_islands,
    bench_sa
);
criterion_main!(benches);

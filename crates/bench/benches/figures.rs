//! One benchmark per paper figure, each wrapping its generator at a tiny
//! (shape-preserving) scale. `cargo bench -p rds-bench --bench figures`
//! regenerates every evaluation artifact and reports its wall time; the
//! figure CSVs land in `target/bench-results/`.

use criterion::{criterion_group, criterion_main, Criterion};

use rds_experiments::config::ExperimentConfig;
use rds_experiments::figures::{fig2_3, fig4, fig5_6, fig7_8, sweep};

fn tiny() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.graphs = 2;
    cfg.tasks = 25;
    cfg.realizations = 50;
    cfg.out_dir = "target/bench-results".to_owned();
    cfg
}

fn bench_fig2(c: &mut Criterion) {
    let cfg = tiny();
    c.bench_function("fig2_evolution_min_makespan", |b| {
        b.iter(|| {
            let fig = fig2_3::run_fig2(&cfg);
            let _ = fig.write_csv(&cfg.out_dir);
            fig
        });
    });
}

fn bench_fig3(c: &mut Criterion) {
    let cfg = tiny();
    c.bench_function("fig3_evolution_max_slack", |b| {
        b.iter(|| {
            let fig = fig2_3::run_fig3(&cfg);
            let _ = fig.write_csv(&cfg.out_dir);
            fig
        });
    });
}

fn bench_fig4(c: &mut Criterion) {
    let cfg = tiny();
    c.bench_function("fig4_improvement_over_heft", |b| {
        b.iter(|| {
            let fig = fig4::run_fig4(&cfg);
            let _ = fig.write_csv(&cfg.out_dir);
            fig
        });
    });
}

fn bench_fig5_to_8(c: &mut Criterion) {
    let cfg = tiny();
    // Figures 5-8 share one sweep; bench the sweep once and the four
    // figure extractions on top of it.
    c.bench_function("fig5_to_8_epsilon_sweep", |b| {
        b.iter(|| {
            let sweeps = sweep::sweep_all(&cfg, &sweep::sweep_epsilon_grid());
            for fig in [
                fig5_6::fig5_from_sweeps(&sweeps),
                fig5_6::fig6_from_sweeps(&sweeps),
                fig7_8::fig7_from_sweeps(&sweeps),
                fig7_8::fig8_from_sweeps(&sweeps),
            ] {
                let _ = fig.write_csv(&cfg.out_dir);
            }
            sweeps
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig3, bench_fig4, bench_fig5_to_8
}
criterion_main!(benches);

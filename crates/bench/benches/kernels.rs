//! Micro-benchmarks of every hot kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rds_bench::bench_instance;
use rds_ga::chromosome::Chromosome;
use rds_graph::gen::layered::LayeredDagSpec;
use rds_graph::topo::random_topological_order;
use rds_graph::TaskId;
use rds_sched::disjunctive::{DisjunctiveGraph, ReachScratch};
use rds_sched::realization::{realized_makespans_with, RealizationConfig};
use rds_sched::timing::{expected_durations, makespan_with_durations};
use rds_stats::dist::Gamma;
use rds_stats::rng::rng_from_seed;

fn bench_graph_generation(c: &mut Criterion) {
    c.bench_function("generate_layered_dag_100", |b| {
        let spec = LayeredDagSpec::paper();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            spec.generate(seed).unwrap()
        });
    });
}

fn bench_gamma_sampling(c: &mut Criterion) {
    c.bench_function("gamma_sample_1000", |b| {
        let g = Gamma::with_mean_cov(20.0, 0.5).unwrap();
        let mut rng = rng_from_seed(1);
        b.iter(|| g.sample_n(&mut rng, 1000));
    });
}

fn bench_random_topo(c: &mut Criterion) {
    let inst = bench_instance(100, 8, 2.0);
    c.bench_function("random_topological_order_100", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| random_topological_order(&inst.graph, &mut rng));
    });
}

fn bench_disjunctive_and_timing(c: &mut Criterion) {
    let inst = bench_instance(100, 8, 2.0);
    let mut rng = rng_from_seed(3);
    let chromo = Chromosome::random_for(&inst, &mut rng);
    let schedule = chromo.decode(inst.proc_count());

    c.bench_function("disjunctive_build_100", |b| {
        b.iter(|| DisjunctiveGraph::build(&inst.graph, &schedule).unwrap());
    });

    let ds = DisjunctiveGraph::build(&inst.graph, &schedule).unwrap();
    let durations = expected_durations(&inst.timing, &schedule);
    c.bench_function("makespan_eval_100", |b| {
        b.iter_batched(
            Vec::new,
            |mut scratch| {
                makespan_with_durations(&ds, &schedule, &inst.platform, &durations, &mut scratch)
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("slack_analysis_100", |b| {
        b.iter(|| rds_sched::slack::analyze(&ds, &schedule, &inst.platform, &durations));
    });

    // Pairwise independence queries over the first 25 tasks, one reused
    // scratch (the bitset walk that replaced the alloc-per-call DFS).
    c.bench_function("are_independent_100", |b| {
        let mut scratch = ReachScratch::new();
        b.iter(|| {
            let mut independent = 0u32;
            for a in 0..25u32 {
                for q in 0..25u32 {
                    if ds.are_independent_with(TaskId(a), TaskId(q), &mut scratch) {
                        independent += 1;
                    }
                }
            }
            independent
        });
    });
}

fn bench_realization_batch(c: &mut Criterion) {
    let inst = bench_instance(100, 8, 4.0);
    let mut rng = rng_from_seed(4);
    let chromo = Chromosome::random_for(&inst, &mut rng);
    let schedule = chromo.decode(inst.proc_count());
    let ds = DisjunctiveGraph::build(&inst.graph, &schedule).unwrap();

    c.bench_function("monte_carlo_100x100_parallel", |b| {
        let cfg = RealizationConfig::with_realizations(100).seed(1);
        b.iter(|| realized_makespans_with(&inst, &schedule, &ds, &cfg));
    });
}

criterion_group!(
    benches,
    bench_graph_generation,
    bench_gamma_sampling,
    bench_random_topo,
    bench_disjunctive_and_timing,
    bench_realization_batch
);
criterion_main!(benches);

//! Shared fixtures for the criterion benchmarks.
//!
//! Benches need consistent, quickly constructed instances; this tiny crate
//! centralizes them so every bench measures the same workloads.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use rds_sched::instance::{Instance, InstanceSpec};

/// The standard bench instance: `tasks` tasks on `procs` processors,
/// paper-style parameters, fixed seed.
#[must_use]
pub fn bench_instance(tasks: usize, procs: usize, ul: f64) -> Instance {
    InstanceSpec::new(tasks, procs)
        .seed(0xBE7C)
        .uncertainty_level(ul)
        .build()
        .expect("bench instance generates")
}

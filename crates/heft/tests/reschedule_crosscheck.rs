//! Cross-check: `rds_heft::reschedule` and the runtime replanner in
//! `rds-sched` must produce identical schedules from the same frozen
//! state.
//!
//! Historically the rank + insertion-EFT mathematics was duplicated on
//! both sides of the crate boundary (`rds-heft` sits above `rds-sched`,
//! so `recovery.rs` restated the pass inline) and could drift silently.
//! Both now delegate to `rds_sched::replan::replan_partial`; these tests
//! pin the delegation so a future re-divergence fails loudly.

use rds_graph::TaskId;
use rds_heft::heft_schedule;
use rds_heft::reschedule::{heft_reschedule, PartialState};
use rds_platform::ProcId;
use rds_sched::instance::{Instance, InstanceSpec};
use rds_sched::replan::{rank_order, replan_partial, FrozenState};

fn inst(seed: u64, tasks: usize, procs: usize) -> Instance {
    InstanceSpec::new(tasks, procs)
        .seed(seed)
        .uncertainty_level(3.0)
        .build()
        .unwrap()
}

/// A frozen mid-flight state: everything finishing by `cut` under plain
/// HEFT is done, `dead` is down, survivors are busy until `cut`.
fn freeze(i: &Instance, cut_frac: f64, dead: Option<usize>) -> PartialState {
    let plain = heft_schedule(i);
    let cut = cut_frac * plain.makespan;
    let finished: Vec<Option<(ProcId, f64)>> = (0..i.task_count())
        .map(|t| {
            let tid = TaskId(t as u32);
            let f = plain.timed.finish_of(tid);
            (f <= cut).then(|| (plain.schedule.proc_of(tid), f))
        })
        .collect();
    let mut alive = vec![true; i.proc_count()];
    if let Some(d) = dead {
        alive[d] = false;
    }
    PartialState {
        finished,
        alive,
        free_at: vec![cut; i.proc_count()],
    }
}

fn to_frozen(state: &PartialState) -> FrozenState {
    FrozenState {
        finished: state.finished.clone(),
        alive: state.alive.clone(),
        free_at: state.free_at.clone(),
        skip: vec![false; state.finished.len()],
    }
}

#[test]
fn heft_and_sched_replanners_agree_bitwise() {
    for seed in 0..8u64 {
        let i = inst(seed, 40, 4);
        for (cut, dead) in [(0.3, Some(0)), (0.5, Some(1)), (0.4, None), (0.0, Some(2))] {
            let state = freeze(&i, cut, dead);
            let heft_side = heft_reschedule(&i, &state).unwrap();
            let order = rank_order(&i);
            let sched_side = replan_partial(&i, &order, &to_frozen(&state)).unwrap();

            assert_eq!(heft_side.replanned, sched_side.replanned, "seed {seed}");
            assert_eq!(
                heft_side.est_makespan.to_bits(),
                sched_side.est_makespan.to_bits(),
                "seed {seed} cut {cut}"
            );
            for t in 0..i.task_count() {
                assert_eq!(
                    heft_side.est_finish[t].to_bits(),
                    sched_side.est_finish[t].to_bits(),
                    "seed {seed} task {t}"
                );
            }
            // The heft-side schedule is the sched-side per-processor lists
            // with the realized prefix prepended.
            for p in i.platform.procs() {
                let on_p = heft_side.schedule.tasks_on(p);
                let prefix: Vec<TaskId> = on_p
                    .iter()
                    .copied()
                    .filter(|t| state.finished[t.index()].is_some())
                    .collect();
                let replanned_on_p: Vec<TaskId> = on_p
                    .iter()
                    .copied()
                    .filter(|t| state.finished[t.index()].is_none())
                    .collect();
                assert_eq!(
                    replanned_on_p,
                    sched_side.proc_tasks[p.index()],
                    "seed {seed} proc {p}"
                );
                // Prefix and replanned tasks are contiguous, prefix first.
                assert_eq!(prefix.len() + replanned_on_p.len(), on_p.len());
                assert!(on_p
                    .iter()
                    .take(prefix.len())
                    .all(|t| state.finished[t.index()].is_some()));
                for &t in &replanned_on_p {
                    assert_eq!(sched_side.placement[t.index()], p);
                }
            }
        }
    }
}

#[test]
fn fresh_state_matches_plain_heft_through_both_paths() {
    for seed in 0..4u64 {
        let i = inst(seed ^ 0x5A, 30, 3);
        let plain = heft_schedule(&i);
        let fresh = PartialState::fresh(i.task_count(), i.proc_count());
        let heft_side = heft_reschedule(&i, &fresh).unwrap();
        assert_eq!(heft_side.schedule, plain.schedule, "seed {seed}");

        let order = rank_order(&i);
        let sched_side = replan_partial(
            &i,
            &order,
            &FrozenState::fresh(i.task_count(), i.proc_count()),
        )
        .unwrap();
        for p in i.platform.procs() {
            assert_eq!(
                sched_side.proc_tasks[p.index()],
                plain.schedule.tasks_on(p).to_vec(),
                "seed {seed} proc {p}"
            );
        }
    }
}

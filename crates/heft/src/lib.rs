//! List-scheduling baselines.
//!
//! The paper's comparator is **HEFT** (Topcuoglu, Hariri & Wu, TPDS 2002):
//! upward-rank prioritization followed by insertion-based earliest-finish-
//! time processor selection, fed with *expected* execution times
//! (`UL · B`). `MakespanHEFT` anchors the ε-constraint (Eq. 7), HEFT seeds
//! the GA's initial population (§4.2.2), and Figure 4 reports improvements
//! over HEFT.
//!
//! Also provided:
//!
//! * [`cpop`] — the CPOP (Critical-Path-on-a-Processor) companion heuristic
//!   from the same paper, used as an extra baseline in ablations;
//! * [`random_schedule`] — a valid random schedule, the null baseline;
//! * [`reschedule`] — partial-graph HEFT over a frozen execution prefix
//!   (the planner behind migrate-on-failure recovery).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cpop;
pub mod heft;
pub mod lookahead;
pub mod random;
pub mod ranks;
pub mod reschedule;
pub mod stochastic;
pub mod timeline;

pub use cpop::cpop_schedule;
pub use heft::{heft_schedule, HeftResult};
pub use lookahead::lookahead_heft_schedule;
pub use random::random_schedule;
pub use ranks::{downward_ranks, upward_ranks};
pub use reschedule::{heft_reschedule, PartialState, RescheduleResult};
pub use stochastic::sheft_schedule;
